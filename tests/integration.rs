//! Cross-crate integration tests: full pipelines from dataset generation
//! through measurement, modeling and applications.

use gplus_san::apps::recommend::{evaluate_precision, RecommenderWeights};
use gplus_san::apps::sybil::{sybil_curve, SybilLimitConfig};
use gplus_san::graph::io::{from_text, to_text};
use gplus_san::metrics::clustering::{
    approx_average_clustering, average_clustering_exact, NodeSet,
};
use gplus_san::metrics::reciprocity::global_reciprocity;
use gplus_san::model::attach::AttachModel;
use gplus_san::model::model::{SanModel, SanModelParams};
use gplus_san::model::params::{measure_target, GreedySearch};
use gplus_san::sim::GooglePlus;
use gplus_san::stats::fit::{fit_degree_distribution, FitFamily};
use gplus_san::stats::SplitRng;

/// Simulate → crawl → measure: the paper's §2–§4 pipeline end to end.
#[test]
fn simulate_crawl_measure_pipeline() {
    let data = GooglePlus::at_scale(10).generate(3);
    let crawl = data.crawl_final();
    // Crawl quality (paper: >= 70% coverage).
    assert!(
        crawl.node_coverage > 0.7,
        "coverage={}",
        crawl.node_coverage
    );
    crawl.san.check_consistency().unwrap();

    // Degree families (paper Figs. 5/10): lognormal social degrees,
    // power-law attribute social degrees.
    let dv = gplus_san::graph::degree::degree_vectors(&crawl.san);
    let out_fit = fit_degree_distribution(&dv.out).unwrap();
    assert_eq!(out_fit.family, FitFamily::Lognormal, "{out_fit:?}");
    let attr_fit = fit_degree_distribution(&dv.social_of_attr).unwrap();
    assert!(attr_fit.ks_powerlaw < 0.1, "{attr_fit:?}");

    // Reciprocity in the hybrid band and declining (paper Fig. 4a).
    let r_final = global_reciprocity(&crawl.san);
    assert!((0.15..0.65).contains(&r_final), "r={r_final}");

    // Declaration rate near the configured 22% (paper §2.2).
    let rate = gplus_san::graph::subsample::attribute_declaration_rate(&data.truth);
    assert!((rate - 0.22).abs() < 0.06, "rate={rate}");
}

/// Algorithm 2 agrees with the exact clustering coefficient on a crawled
/// network at the paper's error budget.
#[test]
fn algorithm2_on_crawled_network() {
    let data = GooglePlus::at_scale(8).generate(4);
    let san = data.crawl_final().san;
    let exact = average_clustering_exact(&san, NodeSet::Social);
    let mut rng = SplitRng::new(5);
    let approx = approx_average_clustering(&san, NodeSet::Social, 0.01, 100.0, &mut rng);
    assert!(
        (approx - exact).abs() <= 0.01 + 1e-9,
        "approx={approx} exact={exact}"
    );
}

/// LAPA wins the attachment-likelihood comparison on SAN-grown data
/// (Fig. 15's qualitative conclusion), evaluated on the ground-truth
/// arrival trace.
#[test]
fn lapa_beats_pa_on_simulated_trace() {
    let data = GooglePlus::at_scale(8).generate(6);
    let tl = &data.timeline;
    let l_uniform = AttachModel::Uniform.log_likelihood(tl).unwrap();
    let l_pa = AttachModel::Pa { alpha: 1.0 }.log_likelihood(tl).unwrap();
    let l_lapa = AttachModel::Lapa {
        alpha: 1.0,
        beta: 10.0,
    }
    .log_likelihood(tl)
    .unwrap();
    assert!(l_pa > l_uniform, "PA must beat uniform");
    assert!(l_lapa > l_pa, "LAPA must beat PA: {l_lapa} vs {l_pa}");
}

/// Model calibration: greedy search against a crawled target does not
/// diverge and the calibrated model regenerates the right degree family.
#[test]
fn calibrate_and_regenerate() {
    let data = GooglePlus::at_scale(8).generate(7);
    let target = measure_target(&data.crawl_final().san);
    let search = GreedySearch {
        sweeps: 1,
        trial_days: 30,
        trial_arrivals: 10,
    };
    let (best, loss) = search.run(&target, SanModelParams::paper_default(30, 10), 8);
    assert!(loss.is_finite());
    let (_, regen) = SanModel::new(best).unwrap().generate(9);
    let degrees: Vec<u64> = regen
        .social_nodes()
        .map(|u| regen.out_degree(u) as u64)
        .collect();
    let fit = fit_degree_distribution(&degrees).unwrap();
    assert_eq!(fit.family, FitFamily::Lognormal);
}

/// Application fidelity (Fig. 19a shape): the attribute-aware model's
/// Sybil curve lands closer to the "real" network than the Zhel baseline.
#[test]
fn sybil_fidelity_ordering() {
    let data = GooglePlus::at_scale(10).generate(10);
    let google = data.crawl_final().san;
    let (_, ours) = SanModel::new(SanModelParams::paper_default(98, 10))
        .unwrap()
        .generate(10);
    let (_, zhel) = gplus_san::model::zhel::generate_zhel(98, 10, 10);
    let n = google.num_social_nodes();
    let counts = [n / 100, n / 50, n / 25];
    let cfg = SybilLimitConfig::default();
    let mut rng = SplitRng::new(11);
    let curve = |san: &gplus_san::graph::San, rng: &mut SplitRng| -> Vec<f64> {
        sybil_curve(san, cfg, &counts, rng)
            .into_iter()
            .map(|r| r.sybil_identities as f64)
            .collect()
    };
    let g = curve(&google, &mut rng);
    let o = curve(&ours, &mut rng);
    let z = curve(&zhel, &mut rng);
    let err = |m: &[f64]| -> f64 {
        m.iter()
            .zip(&g)
            .map(|(a, b)| (a - b).abs() / b.max(1.0))
            .sum::<f64>()
            / m.len() as f64
    };
    assert!(
        err(&o) < err(&z),
        "our model must track the real curve better: ours={:.3} zhel={:.3}",
        err(&o),
        err(&z)
    );
}

/// Recommendation replay: attribute-aware recommendations are at least as
/// precise as structure-only ones on SAN data (§7 implication).
#[test]
fn recommendation_replay() {
    let data = GooglePlus::at_scale(10).generate(12);
    let earlier = data.timeline.snapshot_at(70);
    let mut rng = SplitRng::new(13);
    let (p_struct, n1) = evaluate_precision(
        &earlier,
        &data.truth,
        5,
        RecommenderWeights::structure_only(),
        200,
        &mut rng,
    );
    let mut rng = SplitRng::new(13);
    let (p_attr, n2) = evaluate_precision(
        &earlier,
        &data.truth,
        5,
        RecommenderWeights::attribute_aware(),
        200,
        &mut rng,
    );
    assert!(n1 > 50 && n2 > 50, "need evaluated users: {n1}/{n2}");
    assert!(
        p_attr >= p_struct * 0.9,
        "attribute features must not hurt: attr={p_attr} struct={p_struct}"
    );
    assert!(p_attr > 0.0);
}

/// Frozen CSR snapshots are drop-in replacements for the mutable graph
/// across the whole measurement surface: identical metrics, identical
/// application results, and thread-shareable for parallel sweeps.
#[test]
fn frozen_snapshots_measure_identically_and_in_parallel() {
    use gplus_san::graph::CsrSan;
    use gplus_san::metrics::jdd::{social_assortativity, social_knn};
    use gplus_san::metrics::{attr_density, social_density};

    let data = GooglePlus::at_scale(8).generate(21);
    let crawl = data.crawl_final();
    let live = &crawl.san;
    let frozen: CsrSan = live.freeze();

    // Deterministic metrics agree exactly through either representation.
    assert_eq!(global_reciprocity(live), global_reciprocity(&frozen));
    assert_eq!(social_density(live), social_density(&frozen));
    assert_eq!(attr_density(live), attr_density(&frozen));
    assert_eq!(social_knn(live), social_knn(&frozen));
    // Assortativity sums floats in link-iteration order, which differs
    // between insertion-ordered and sorted CSR rows: equal to rounding.
    assert!((social_assortativity(live) - social_assortativity(&frozen)).abs() < 1e-12);
    assert_eq!(
        average_clustering_exact(live, NodeSet::Social),
        average_clustering_exact(&frozen, NodeSet::Social)
    );
    assert_eq!(
        average_clustering_exact(live, NodeSet::Attr),
        average_clustering_exact(&frozen, NodeSet::Attr)
    );

    // Seeded stochastic pipelines agree too (identical RNG consumption).
    let mut rng_a = SplitRng::new(33);
    let mut rng_b = SplitRng::new(33);
    let counts = [live.num_social_nodes() / 50];
    let cfg = SybilLimitConfig::default();
    let a = sybil_curve(live, cfg, &counts, &mut rng_a);
    let b = sybil_curve(&frozen, cfg, &counts, &mut rng_b);
    assert_eq!(a[0].attack_edges, b[0].attack_edges);

    // Timeline → CSR snapshots directly, fanned across threads (CsrSan is
    // Send + Sync): a miniature parallel per-day metric sweep.
    let days = [40u32, 70, 98];
    let reciprocities: Vec<(u32, f64)> = std::thread::scope(|scope| {
        let timeline = &data.timeline;
        let handles: Vec<_> = days
            .iter()
            .map(|&day| scope.spawn(move || (day, global_reciprocity(&timeline.snapshot_csr(day)))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    for (day, r) in &reciprocities {
        let serial = global_reciprocity(&data.timeline.snapshot_at(*day));
        assert_eq!(*r, serial, "day {day}");
    }
    // Reciprocity declines across the sampled days (Fig. 4a shape).
    assert!(reciprocities[2].1 < reciprocities[0].1);
}

/// Serialisation round-trip of a full crawled snapshot.
#[test]
fn crawl_serialisation_roundtrip() {
    let data = GooglePlus::at_scale(6).generate(14);
    let san = data.crawl_final().san;
    let text = to_text(&san);
    let back = from_text(&text).unwrap();
    assert_eq!(back.num_social_nodes(), san.num_social_nodes());
    assert_eq!(back.num_social_links(), san.num_social_links());
    assert_eq!(back.num_attr_links(), san.num_attr_links());
    back.check_consistency().unwrap();
}

/// Ablation: removing focal closure collapses attribute clustering
/// (Fig. 18b — the dramatic, scale-robust effect), while the full model's
/// in-degree remains decisively lognormal (the Fig. 16b/18a baseline;
/// the *family flip* of Fig. 18a is a 10M-node effect that does not
/// reproduce at laptop scale — see EXPERIMENTS.md).
#[test]
fn ablations_have_reported_effects() {
    let base = SanModelParams::paper_default(98, 12);
    let (_, full) = SanModel::new(base.clone()).unwrap().generate(15);
    let (_, no_focal) = SanModel::new(base.clone().without_focal_closure())
        .unwrap()
        .generate(15);
    let c_full = average_clustering_exact(&full, NodeSet::Attr);
    let c_ablate = average_clustering_exact(&no_focal, NodeSet::Attr);
    assert!(
        c_ablate * 2.0 < c_full,
        "focal closure drives attribute clustering: {c_ablate} !< {c_full}/2"
    );

    let indeg: Vec<u64> = full
        .social_nodes()
        .skip(5)
        .map(|u| full.in_degree(u) as u64)
        .collect();
    let fit_full = fit_degree_distribution(&indeg).unwrap();
    assert_eq!(fit_full.family, FitFamily::Lognormal);
    assert!(fit_full.ks_lognormal < fit_full.ks_powerlaw);
}
