//! Integration suite for the snapshot-serving layer: day-resolution
//! semantics, cache behaviour (hits/misses/evictions, byte bound),
//! metric equivalence between served views and eagerly-loaded snapshots,
//! and the mixed-day query driver under real thread contention.

#![cfg(unix)]

use san_graph::store::{SnapshotVault, StoreError};
use san_graph::{SanRead, SanTimeline, SocialId, TimelineBuilder};
use san_metrics::clustering::{average_clustering_exact, NodeSet};
use san_metrics::reciprocity::global_reciprocity;
use san_serve::{QueryOutcome, ServeConfig, SnapshotServer};
use san_stats::SplitRng;
use std::path::PathBuf;

/// A fresh scratch directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "san-serve-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A 30-day growing timeline with links and attributes on every day.
fn growing_timeline(days: u32) -> SanTimeline {
    let mut rng = SplitRng::new(u64::from(days) + 11);
    let mut tb = TimelineBuilder::new();
    let mut users = vec![tb.add_social_node()];
    let attrs: Vec<_> = (0..6)
        .map(|i| tb.add_attr_node(san_graph::AttrType::PAPER_TYPES[i % 4]))
        .collect();
    for day in 1..=days {
        tb.advance_to_day(day);
        for _ in 0..4 {
            let u = tb.add_social_node();
            let v = users[rng.below(users.len() as u64) as usize];
            tb.add_social_link(u, v);
            if rng.chance(0.5) {
                tb.add_social_link(v, u);
            }
            if rng.chance(0.4) {
                tb.add_attr_link(u, attrs[rng.below(attrs.len() as u64) as usize]);
            }
            users.push(u);
        }
    }
    tb.finish().0
}

/// Vault with every `step`-th day persisted, plus the timeline.
fn served_vault(tag: &str, days: u32, step: u32) -> (TempDir, SanTimeline, Vec<u32>) {
    let tmp = TempDir::new(tag);
    let tl = growing_timeline(days);
    let mut vault = SnapshotVault::create(&tmp.0).expect("create vault");
    let saved = vault.save_timeline(&tl, step).expect("persist");
    (tmp, tl, saved)
}

#[test]
fn get_resolves_nearest_at_or_before() {
    let (tmp, _tl, saved) = served_vault("nearest", 30, 5);
    assert_eq!(saved, vec![0, 5, 10, 15, 20, 25, 30]);
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    for probe in 0..=40u32 {
        let expect = saved.iter().copied().rfind(|&d| d <= probe);
        let got = server.get(probe).expect("get").map(|h| h.day());
        assert_eq!(got, expect, "probe {probe}");
    }
}

#[test]
fn get_before_first_persisted_day_is_none() {
    let tmp = TempDir::new("before-first");
    let tl = growing_timeline(20);
    let mut vault = SnapshotVault::create(&tmp.0).expect("create");
    vault.save_day(7, &tl.snapshot_csr(7)).expect("save");
    let server = SnapshotServer::from_vault(vault, ServeConfig::default());
    assert!(server.get(6).expect("get").is_none());
    assert_eq!(server.metrics().no_snapshot(), 1);
    assert_eq!(server.get(7).expect("get").map(|h| h.day()), Some(7));
}

#[test]
fn get_exact_requires_the_precise_day() {
    let (tmp, _tl, _saved) = served_vault("exact", 20, 5);
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    assert_eq!(server.get_exact(10).expect("persisted").day(), 10);
    assert!(matches!(
        server.get_exact(11).expect_err("not persisted"),
        StoreError::DayNotPersisted { day: 11 }
    ));
}

#[test]
fn hits_and_misses_are_counted_and_io_metered() {
    let (tmp, _tl, saved) = served_vault("hitmiss", 20, 10);
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    let mut expected_bytes = 0u64;
    for &day in &saved {
        let h = server.get(day).expect("get").expect("served");
        expected_bytes += h.mapped().mapped_bytes() as u64;
    }
    assert_eq!(server.metrics().misses(), saved.len() as u64);
    assert_eq!(server.metrics().hits(), 0);
    // Second round: all hits, no new IO.
    for &day in &saved {
        server.get(day).expect("get").expect("served");
    }
    assert_eq!(server.metrics().hits(), saved.len() as u64);
    assert_eq!(server.metrics().misses(), saved.len() as u64);
    assert_eq!(server.metrics().io().read_bytes(), expected_bytes);
    assert_eq!(server.metrics().io().reads(), saved.len() as u64);
    assert_eq!(
        server.metrics().io().read_latency().count(),
        saved.len() as u64
    );
    assert_eq!(server.resident_bytes(), expected_bytes);
    assert_eq!(server.cached_days(), saved.len());
}

#[test]
fn byte_bound_evicts_and_evicted_handles_stay_valid() {
    let (tmp, tl, saved) = served_vault("evict", 30, 5);
    // One shard with a budget of one snapshot: every new day evicts.
    let server = SnapshotServer::open(
        &tmp.0,
        ServeConfig {
            max_resident_bytes: 1,
            cache_shards: 1,
        },
    )
    .expect("open");
    let first = server.get(saved[0]).expect("get").expect("served");
    for &day in &saved[1..] {
        server.get(day).expect("get").expect("served");
    }
    assert_eq!(server.metrics().evictions(), saved.len() as u64 - 1);
    assert_eq!(server.cached_days(), 1);
    // The evicted day's handle still reads its (unmapped-from-cache)
    // snapshot correctly.
    assert_eq!(
        first.view().to_owned_csr(),
        tl.snapshot_csr(saved[0]),
        "evicted handle stays valid"
    );
    // Re-getting the evicted day is a fresh miss, not corruption.
    let again = server.get(saved[0]).expect("get").expect("served");
    assert_eq!(again.view().to_owned_csr(), tl.snapshot_csr(saved[0]));
}

#[test]
fn served_views_match_eager_loads_on_metrics() {
    let (tmp, _tl, saved) = served_vault("equiv", 25, 5);
    let vault = SnapshotVault::open(&tmp.0).expect("reopen");
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    for &day in &saved {
        let served = server.get(day).expect("get").expect("served");
        let loaded = vault.load_day(day).expect("load");
        let view = served.view();
        assert_eq!(view.to_owned_csr(), *loaded, "day {day}");
        // Bit-identical metric results between the mapped view and the
        // eagerly-loaded snapshot.
        assert_eq!(
            average_clustering_exact(&view, NodeSet::Social).to_bits(),
            average_clustering_exact(&*loaded, NodeSet::Social).to_bits(),
            "clustering day {day}"
        );
        assert_eq!(
            global_reciprocity(&view).to_bits(),
            global_reciprocity(&*loaded).to_bits(),
            "reciprocity day {day}"
        );
    }
}

#[test]
fn for_each_query_returns_input_order_and_matches_direct() {
    let (tmp, _tl, _saved) = served_vault("queries", 30, 5);
    let vault = SnapshotVault::open(&tmp.0).expect("reopen");
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    let mut rng = SplitRng::new(77);
    let queries: Vec<(u32, u64)> = (0..64).map(|i| (rng.below(35) as u32, i)).collect();
    for threads in [1usize, 2, 8] {
        let outcomes = server.for_each_query(threads, &queries, |&tag, day_served, view| {
            // A SanRead-generic evaluation mixing structure and payload.
            (
                tag,
                day_served,
                view.num_social_links(),
                global_reciprocity(view).to_bits(),
            )
        });
        assert_eq!(outcomes.len(), queries.len());
        for (outcome, &(day, tag)) in outcomes.iter().zip(&queries) {
            match vault.nearest_at_or_before(day) {
                None => {
                    assert!(
                        matches!(outcome, QueryOutcome::NoSnapshot { day_requested } if *day_requested == day),
                        "day {day}"
                    );
                }
                Some(persisted) => {
                    let loaded = vault.load_day(persisted).expect("load");
                    let QueryOutcome::Served {
                        day_requested,
                        day_served,
                        value,
                    } = outcome
                    else {
                        panic!("day {day}: expected Served, got {outcome:?}");
                    };
                    assert_eq!(*day_requested, day);
                    assert_eq!(*day_served, persisted);
                    assert_eq!(
                        *value,
                        (
                            tag,
                            persisted,
                            loaded.num_social_links(),
                            global_reciprocity(&*loaded).to_bits()
                        ),
                        "threads {threads} day {day}"
                    );
                }
            }
        }
    }
    assert_eq!(server.metrics().queries(), 3 * queries.len() as u64);
}

#[test]
fn concurrent_gets_share_one_server() {
    let (tmp, tl, saved) = served_vault("concurrent", 30, 5);
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    let final_links = tl
        .snapshot_csr(*saved.last().expect("nonempty"))
        .num_social_links();
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let server = &server;
            let saved = &saved;
            scope.spawn(move || {
                let mut rng = SplitRng::new(t as u64);
                for _ in 0..50 {
                    let day = saved[rng.below(saved.len() as u64) as usize];
                    let handle = server.get(day).expect("get").expect("served");
                    assert_eq!(handle.day(), day);
                    let view = handle.view();
                    // Spot-check structure: degrees are consistent.
                    let n = view.num_social_nodes();
                    assert!(n >= 1);
                    let u = SocialId(rng.below(n as u64) as u32);
                    assert_eq!(view.out_degree(u), view.out_neighbors(u).len());
                    assert!(view.num_social_links() <= final_links);
                }
            });
        }
    });
    // Every get recorded exactly one of hit / miss / dedup-wait; misses
    // are bounded by distinct days (single-flight: a day's herd pays one).
    let m = server.metrics();
    assert_eq!(m.hits() + m.misses() + m.dedup_waits(), 8 * 50);
    assert!(m.misses() >= saved.len() as u64 - 1, "most days touched");
    assert!(
        m.misses() <= saved.len() as u64,
        "single-flight bounds misses by distinct days, got {} for {} days",
        m.misses(),
        saved.len()
    );
    assert_eq!(
        m.dedup_hits(),
        m.dedup_waits(),
        "all waits resolved to mappings"
    );
    assert_eq!(
        m.duplicate_inserts(),
        0,
        "no redundant maps reached the cache"
    );
}

/// The SAN-001 acceptance test: a real 8-thread thundering herd on one
/// cold day performs exactly **one** map+validate (observed through the
/// server's vault-side IO meters), and every thread gets a handle to the
/// *same* mapping with identical query results.
#[test]
fn thundering_herd_on_cold_day_maps_once() {
    let (tmp, tl, saved) = served_vault("herd", 20, 5);
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    let day = saved[2];
    let start = std::sync::Barrier::new(8);
    let handles: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let server = &server;
                let start = &start;
                scope.spawn(move || {
                    start.wait();
                    server.get(day).expect("get").expect("served")
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("herd thread"))
            .collect()
    });
    // One map for the whole herd: the vault-side IO meters saw a single
    // read, and the serve counters account every thread exactly once.
    let m = server.metrics();
    assert_eq!(m.io().reads(), 1, "exactly one map+validate");
    assert_eq!(m.misses(), 1, "exactly one leader");
    assert_eq!(m.hits() + m.dedup_waits(), 7, "everyone else hit or waited");
    assert_eq!(
        m.dedup_hits(),
        m.dedup_waits(),
        "every wait got the mapping"
    );
    assert_eq!(m.duplicate_inserts(), 0);
    assert_eq!(m.dedup_wait_latency().count(), m.dedup_waits());
    // Every handle shares the leader's one mapping and reads identically.
    let reference = tl.snapshot_csr(day);
    let expect_bits = global_reciprocity(&reference).to_bits();
    for h in &handles {
        assert!(
            std::sync::Arc::ptr_eq(h.mapped(), handles[0].mapped()),
            "one shared mapping"
        );
        assert_eq!(h.day(), day);
        assert_eq!(global_reciprocity(&h.view()).to_bits(), expect_bits);
    }
}

/// Failure-path robustness under a herd: every thread racing a corrupt
/// cold day receives the typed checksum error (leaders from their own
/// map, waiters from the broadcast latch), nothing is negatively cached,
/// and once the file is repaired the next fetch serves normally.
#[test]
fn herd_on_corrupt_day_all_fail_typed_then_repair_recovers() {
    let (tmp, tl, saved) = served_vault("herd-corrupt", 10, 5);
    let vault = SnapshotVault::open(&tmp.0).expect("reopen");
    let victim = saved[1];
    let path = vault.day_path(victim);
    let pristine = std::fs::read(&path).expect("read victim");
    let mut bytes = pristine.clone();
    let len = bytes.len();
    bytes[len - 1] ^= 0xff; // checksum trailer flip
    std::fs::write(&path, &bytes).expect("corrupt victim");
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    let start = std::sync::Barrier::new(8);
    let errors: Vec<StoreError> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let server = &server;
                let start = &start;
                scope.spawn(move || {
                    start.wait();
                    server.get(victim).expect_err("corrupt day must fail")
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("herd thread"))
            .collect()
    });
    assert_eq!(errors.len(), 8);
    for e in &errors {
        assert!(
            matches!(e, StoreError::BadChecksum { .. }),
            "typed failure for every thread, got {e:?}"
        );
    }
    // Nothing was cached (positively or negatively), and the books
    // balance: each fetch either led a failing map or waited one out.
    let m = server.metrics();
    assert_eq!(server.cached_days(), 0);
    assert_eq!(m.hits(), 0);
    assert_eq!(m.dedup_hits(), 0, "no wait resolved to a mapping");
    assert_eq!(m.misses() + m.dedup_waits(), 8);
    assert!(m.misses() >= 1, "someone led each failing flight");
    // Repair the file: the very next fetch succeeds — failures were
    // never latched.
    std::fs::write(&path, &pristine).expect("repair victim");
    let healed = server.get(victim).expect("repaired get").expect("served");
    assert_eq!(healed.view().to_owned_csr(), tl.snapshot_csr(victim));
    assert_eq!(server.cached_days(), 1);
}

#[test]
fn empty_vault_serves_nothing() {
    let tmp = TempDir::new("empty");
    SnapshotVault::create(&tmp.0).expect("create");
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    assert!(server.get(0).expect("get").is_none());
    assert!(server.get(u32::MAX).expect("get").is_none());
    let outcomes = server.for_each_query(2, &[(3u32, ()), (9, ())], |_, _, _| 0u8);
    assert!(outcomes
        .iter()
        .all(|o| matches!(o, QueryOutcome::NoSnapshot { .. })));
}

#[test]
fn corrupt_file_surfaces_as_typed_query_failure() {
    let (tmp, _tl, saved) = served_vault("corrupt", 10, 5);
    // Corrupt one persisted day behind the manifest's back.
    let vault = SnapshotVault::open(&tmp.0).expect("reopen");
    let victim = saved[1];
    let path = vault.day_path(victim);
    let mut bytes = std::fs::read(&path).expect("read victim");
    let len = bytes.len();
    bytes[len - 1] ^= 0xff; // checksum trailer flip
    std::fs::write(&path, &bytes).expect("rewrite victim");
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    assert!(matches!(
        server.get(victim).expect_err("corrupt day must fail"),
        StoreError::BadChecksum { .. }
    ));
    let outcomes = server.for_each_query(2, &[(saved[0], ()), (victim, ())], |_, _, view| {
        view.num_social_nodes()
    });
    assert!(matches!(outcomes[0], QueryOutcome::Served { .. }));
    assert!(matches!(
        &outcomes[1],
        QueryOutcome::Failed {
            error: StoreError::BadChecksum { .. },
            ..
        }
    ));
}

/// `get_exact_kind` classifies what each fetch paid: the first touch of
/// a persisted day is a cold map, every touch after it a hit, and a herd
/// racing a cold day splits into exactly one `ColdMap` leader with the
/// rest reporting `DedupWait`.
#[test]
fn get_exact_kind_classifies_fetch_cost() {
    use san_serve::FetchKind;
    let (tmp, _tl, saved) = served_vault("fetch-kind", 10, 5);
    let server = SnapshotServer::open(&tmp.0, ServeConfig::default()).expect("open");
    let day = saved[1];
    let (_h, kind) = server.get_exact_kind(day).expect("cold fetch");
    assert_eq!(kind, FetchKind::ColdMap);
    let (_h, kind) = server.get_exact_kind(day).expect("warm fetch");
    assert_eq!(kind, FetchKind::Hit);
    // A herd on a fresh cold day: one leader, the others hit or waited.
    let cold = saved[2];
    let kinds = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..6 {
            scope.spawn(|| {
                let (_h, kind) = server.get_exact_kind(cold).expect("herd fetch");
                kinds.lock().unwrap().push(kind);
            });
        }
    });
    let kinds = kinds.into_inner().unwrap();
    let cold_maps = kinds.iter().filter(|k| **k == FetchKind::ColdMap).count();
    assert_eq!(cold_maps, 1, "exactly one thread pays the map: {kinds:?}");
    // Unknown days stay typed errors, kind or no kind.
    assert!(matches!(
        server.get_exact_kind(day + 1),
        Err(StoreError::DayNotPersisted { .. })
    ));
}
