//! [`SnapshotServer`]: vault-backed, cache-fronted snapshot serving plus
//! the mixed-day query driver.

use crate::cache::ShardedLru;
use crate::flight::{Flight, FlightOutcome, FlightTable};
use crate::metrics::ServeMetrics;
use san_graph::mmap::MappedSnapshot;
use san_graph::store::{SnapshotVault, StoreError};
use san_graph::view::CsrSanView;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sizing knobs for a [`SnapshotServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Upper bound on total mapped bytes the cache keeps resident
    /// (split evenly across shards). Evicted days stay mapped only while
    /// outstanding handles hold them. Default: 512 MiB.
    pub max_resident_bytes: u64,
    /// Number of independently-locked cache shards (clamped to ≥ 1).
    /// Default: 8 — enough that concurrent readers of different days
    /// practically never share a lock.
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_resident_bytes: 512 << 20,
            cache_shards: 8,
        }
    }
}

/// A served snapshot: the resolved day plus a shared handle to its
/// mapping. Cloning is an `Arc` clone; the mapping lives until the last
/// clone (cached or handed out) drops.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    day: u32,
    snap: Arc<MappedSnapshot>,
}

impl SnapshotHandle {
    /// The persisted day this handle serves (for a
    /// [`SnapshotServer::get`], the nearest day at or before the
    /// requested one).
    pub fn day(&self) -> u32 {
        self.day
    }

    /// A zero-copy read view over the mapped snapshot — O(1), no
    /// deserialisation ever.
    pub fn view(&self) -> CsrSanView<'_> {
        self.snap.view()
    }

    /// The underlying shared mapping.
    pub fn mapped(&self) -> &Arc<MappedSnapshot> {
        &self.snap
    }
}

/// How a fetch resolved its snapshot — the cost class a caller actually
/// paid, for per-request trace attribution (`san-obs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// Resident in the cache: one LRU probe, no IO.
    Hit,
    /// This caller led a cold miss: it paid the full map + validate.
    ColdMap,
    /// This caller blocked on another thread's in-flight map and shared
    /// its result (covers waits that resolved to a mapping *or* looped
    /// into a late cache hit after an aborted leader).
    DedupWait,
}

/// How one query of a [`SnapshotServer::for_each_query`] stream ended.
#[derive(Debug)]
pub enum QueryOutcome<R> {
    /// The query ran against the nearest persisted day.
    Served {
        /// The day the query asked for.
        day_requested: u32,
        /// The persisted day that served it (`≤ day_requested`).
        day_served: u32,
        /// What the evaluator returned.
        value: R,
    },
    /// No persisted day exists at or before the requested day.
    NoSnapshot {
        /// The day the query asked for.
        day_requested: u32,
    },
    /// Mapping/validating the snapshot failed.
    Failed {
        /// The day the query asked for.
        day_requested: u32,
        /// The typed store failure.
        error: StoreError,
    },
}

impl<R> QueryOutcome<R> {
    /// The evaluator's result, when the query was served.
    pub fn value(&self) -> Option<&R> {
        match self {
            QueryOutcome::Served { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Consumes the outcome into the evaluator's result.
    pub fn into_value(self) -> Option<R> {
        match self {
            QueryOutcome::Served { value, .. } => Some(value),
            _ => None,
        }
    }
}

/// Serves historical snapshots out of a [`SnapshotVault`] to any number
/// of threads: nearest-at-or-before day resolution, an mmap-backed
/// sharded LRU (cold miss ≈ `mmap` + one validation pass; hit ≈ one
/// atomic increment), per-day **single-flight deduplication** of cold
/// misses (a thundering herd on a cold day pays for exactly one
/// map+validate — the rest briefly block and share the leader's
/// mapping), and full [`ServeMetrics`] metering.
///
/// The server is `Sync`: share it by reference (or `Arc`) across worker
/// threads and call [`get`](SnapshotServer::get) concurrently.
pub struct SnapshotServer {
    vault: SnapshotVault,
    cache: ShardedLru,
    flights: FlightTable,
    metrics: ServeMetrics,
    config: ServeConfig,
}

impl SnapshotServer {
    /// Opens an existing vault directory and fronts it with a cache.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: ServeConfig,
    ) -> Result<SnapshotServer, StoreError> {
        Ok(SnapshotServer::from_vault(
            SnapshotVault::open(dir)?,
            config,
        ))
    }

    /// Fronts an already-open vault with a cache.
    pub fn from_vault(vault: SnapshotVault, config: ServeConfig) -> SnapshotServer {
        SnapshotServer {
            cache: ShardedLru::new(config.cache_shards, config.max_resident_bytes),
            vault,
            flights: FlightTable::new(),
            metrics: ServeMetrics::new(),
            config,
        }
    }

    /// The sizing knobs this server was opened with. Front-ends (e.g.
    /// `san-net`) key admission control on
    /// [`ServeConfig::max_resident_bytes`] without re-plumbing the
    /// number through their own configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// True when `day` (a *persisted* day, e.g. from
    /// [`SnapshotVault::nearest_at_or_before`]) is currently resident in
    /// the cache. A pure probe: it bumps no LRU recency and records no
    /// metric, so admission-control checks don't distort the cache's
    /// view of what is actually hot.
    pub fn is_cached(&self, day: u32) -> bool {
        self.cache.contains(day)
    }

    /// The vault being served.
    pub fn vault(&self) -> &SnapshotVault {
        &self.vault
    }

    /// The serving meters (hits/misses/evictions, mapped bytes,
    /// open/validate latency).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Mapped bytes the cache currently keeps resident.
    pub fn resident_bytes(&self) -> u64 {
        self.cache.resident_bytes()
    }

    /// Days currently cached.
    pub fn cached_days(&self) -> usize {
        self.cache.len()
    }

    /// Serves the nearest persisted snapshot at or before `day`:
    /// `Ok(None)` when the vault holds nothing that early, otherwise a
    /// handle whose [`view`](SnapshotHandle::view) reads the mapped file
    /// in place. Concurrent callers of the same cold day are
    /// single-flighted: the first maps+validates once, the rest block on
    /// its latch and share the result (mapping or typed error) — a
    /// thundering herd never multiplies the open cost or the transient
    /// mapped memory.
    pub fn get(&self, day: u32) -> Result<Option<SnapshotHandle>, StoreError> {
        let Some(persisted) = self.vault.nearest_at_or_before(day) else {
            self.metrics.record_no_snapshot();
            return Ok(None);
        };
        self.fetch(persisted).map(|(handle, _)| Some(handle))
    }

    /// Serves exactly `day`, failing with
    /// [`StoreError::DayNotPersisted`] when the vault has no snapshot for
    /// that precise day.
    pub fn get_exact(&self, day: u32) -> Result<SnapshotHandle, StoreError> {
        self.get_exact_kind(day).map(|(handle, _)| handle)
    }

    /// Like [`get_exact`](SnapshotServer::get_exact), but also reports
    /// the [`FetchKind`] cost class the fetch paid — the hook `san-net`
    /// uses to attribute per-request fetch time to hit / cold-map /
    /// dedup-wait in its slow-query log.
    pub fn get_exact_kind(&self, day: u32) -> Result<(SnapshotHandle, FetchKind), StoreError> {
        if self.vault.nearest_at_or_before(day) != Some(day) {
            return Err(StoreError::DayNotPersisted { day });
        }
        self.fetch(day)
    }

    /// Cache-through, single-flighted fetch of a day known to be
    /// persisted. Every pass through the loop records exactly one of
    /// `hits`, `misses`, or `dedup_waits`; an aborted leader (a sibling
    /// panicked mid-map) sends waiters back around the loop, where one
    /// of them claims the vacated latch.
    ///
    /// The returned [`FetchKind`] classifies what this caller paid:
    /// a leader that mapped reports `ColdMap`; any path that blocked on
    /// another flight reports `DedupWait` (the wait dominates even when
    /// the loop then resolves via the cache); everything else is `Hit`.
    fn fetch(&self, persisted: u32) -> Result<(SnapshotHandle, FetchKind), StoreError> {
        let mut ever_waited = false;
        let kind_of = |waited: bool| {
            if waited {
                FetchKind::DedupWait
            } else {
                FetchKind::Hit
            }
        };
        loop {
            if let Some(snap) = self.cache.get(persisted) {
                self.metrics.record_hit();
                return Ok((
                    SnapshotHandle {
                        day: persisted,
                        snap,
                    },
                    kind_of(ever_waited),
                ));
            }
            let waited = Instant::now();
            match self.flights.join(persisted) {
                Flight::Leader(leader) => {
                    // Double-check before paying the map: a flight that
                    // completed between this thread's cache miss and its
                    // join has already inserted the day (leaders insert
                    // before they publish), so this re-check is what makes
                    // "one map per cold day" hold across back-to-back
                    // flights, not just overlapping ones.
                    if let Some(snap) = self.cache.get(persisted) {
                        self.metrics.record_hit();
                        leader.publish(FlightOutcome::Mapped(Arc::clone(&snap)));
                        return Ok((
                            SnapshotHandle {
                                day: persisted,
                                snap,
                            },
                            kind_of(ever_waited),
                        ));
                    }
                    self.metrics.record_miss();
                    let started = Instant::now();
                    let snap = match self.vault.map_day(persisted) {
                        Ok(snap) => Arc::new(snap),
                        Err(error) => {
                            // Broadcast the typed failure to the herd; the
                            // latch clears, so the day is retried — never
                            // negatively cached — on the next fetch.
                            leader.publish(FlightOutcome::Failed(Arc::new(error.clone())));
                            return Err(error);
                        }
                    };
                    self.metrics
                        .io()
                        .record_read(snap.mapped_bytes() as u64, started.elapsed());
                    let outcome = self.cache.insert(persisted, Arc::clone(&snap));
                    self.metrics.record_evictions(outcome.evicted);
                    if outcome.duplicate {
                        self.metrics.record_duplicate_insert();
                    }
                    leader.publish(FlightOutcome::Mapped(Arc::clone(&snap)));
                    return Ok((
                        SnapshotHandle {
                            day: persisted,
                            snap,
                        },
                        FetchKind::ColdMap,
                    ));
                }
                Flight::Waiter(outcome) => {
                    self.metrics.record_dedup_wait(waited.elapsed());
                    ever_waited = true;
                    match outcome {
                        FlightOutcome::Mapped(snap) => {
                            self.metrics.record_dedup_hit();
                            return Ok((
                                SnapshotHandle {
                                    day: persisted,
                                    snap,
                                },
                                FetchKind::DedupWait,
                            ));
                        }
                        FlightOutcome::Failed(error) => return Err((*error).clone()),
                        FlightOutcome::Aborted => continue,
                    }
                }
            }
        }
    }

    /// Runs a mixed-day query stream on a pool of `threads` scoped
    /// workers: each query `(day, payload)` is resolved through
    /// [`get`](SnapshotServer::get) and evaluated as
    /// `eval(&payload, day_served, &view)`. Results come back **in input
    /// order**, one [`QueryOutcome`] per query; days with no snapshot and
    /// per-query store failures are outcomes, not sweep aborts.
    ///
    /// Any `SanRead`-generic analytic slots straight in as `eval` — the
    /// entire `san-metrics` surface works unchanged on the zero-copy
    /// views.
    ///
    /// # Panics
    /// Panics if `threads == 0`; a panicking `eval` propagates out of the
    /// scope (poisoning nothing — the server remains usable).
    pub fn for_each_query<Q, R, F>(
        &self,
        threads: usize,
        queries: &[(u32, Q)],
        eval: F,
    ) -> Vec<QueryOutcome<R>>
    where
        Q: Sync,
        R: Send,
        F: Fn(&Q, u32, &CsrSanView<'_>) -> R + Sync,
    {
        assert!(threads >= 1, "need at least one thread");
        let next = AtomicUsize::new(0);
        let collected = Mutex::new(Vec::with_capacity(queries.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads.min(queries.len().max(1)) {
                scope.spawn(|| {
                    let mut local: Vec<(usize, QueryOutcome<R>)> = Vec::new();
                    loop {
                        // ORDERING: relaxed work-stealing ticket — the RMW
                        // hands each index out exactly once, and the scope
                        // join below is the only publication point workers
                        // synchronize on.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(day, ref payload)) = queries.get(i) else {
                            break;
                        };
                        self.metrics.record_query();
                        let outcome = match self.get(day) {
                            Ok(Some(handle)) => QueryOutcome::Served {
                                day_requested: day,
                                day_served: handle.day(),
                                value: eval(payload, handle.day(), &handle.view()),
                            },
                            Ok(None) => QueryOutcome::NoSnapshot { day_requested: day },
                            Err(error) => QueryOutcome::Failed {
                                day_requested: day,
                                error,
                            },
                        };
                        local.push((i, outcome));
                    }
                    // Extend keeps the Vec coherent even if a sibling
                    // worker panicked while holding the lock.
                    collected
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local);
                });
            }
        });
        let mut rows = collected
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        rows.sort_unstable_by_key(|&(i, _)| i);
        rows.into_iter().map(|(_, outcome)| outcome).collect()
    }
}

impl std::fmt::Debug for SnapshotServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotServer")
            .field("vault_dir", &self.vault.dir())
            .field("persisted_days", &self.vault.len())
            .field("cached_days", &self.cache.len())
            .field("resident_bytes", &self.cache.resident_bytes())
            .finish_non_exhaustive()
    }
}
