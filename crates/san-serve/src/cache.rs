//! A sharded, byte-bounded LRU of mapped snapshots.
//!
//! Day keys spread across independently-locked shards so concurrent
//! readers of *different* days never contend on one lock, and readers of
//! the *same* day contend only on that day's shard for the duration of a
//! vector scan (cache populations are tens of days, not millions — a
//! vault persists one file per sampled day — so scan-based LRU beats a
//! linked-list + map for both simplicity and locality).
//!
//! The bound is **resident mapped bytes**, not entry count: snapshots
//! grow with the day, so a count bound would let the tail of a long
//! timeline blow the memory budget. Each shard polices an equal slice of
//! [`ServeConfig::max_resident_bytes`](crate::ServeConfig::max_resident_bytes);
//! eviction drops the least-recently-served day's `Arc`, and the mapping
//! itself is unmapped only when the last outstanding reader drops its
//! handle — eviction can never invalidate a view someone is using.
//!
//! The shard locks are [`loom_lite::sync::Mutex`]: plain `std` mutexes
//! in production (one thread-local flag check of overhead per lock), and
//! scheduler-visible locks under the `loom-lite` model checker — the
//! `model_tests` module explores every interleaving of 2–3 threads
//! hitting get/insert/evict on *this exact code*, not a shadow copy.

use loom_lite::sync::Mutex;
use san_graph::mmap::MappedSnapshot;
use std::sync::Arc;

/// Locks a shard, recovering the data on poisoning: a panicking holder
/// leaves shard state coherent (counters and entries are updated in
/// consistent snapshots), so serving continues rather than cascading.
fn lock_shard(shard: &Mutex<CacheShard>) -> loom_lite::sync::MutexGuard<'_, CacheShard> {
    shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One cached day.
struct Entry {
    day: u32,
    snap: Arc<MappedSnapshot>,
    /// Shard-local logical timestamp of the last `get`/`insert`.
    last_used: u64,
}

/// One independently-locked cache shard.
#[derive(Default)]
struct CacheShard {
    entries: Vec<Entry>,
    clock: u64,
    bytes: u64,
}

/// What an insert did, for the metrics layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InsertOutcome {
    /// Days evicted to make room.
    pub evicted: u64,
}

/// The sharded LRU. Keys are persisted days.
pub(crate) struct ShardedLru {
    shards: Vec<Mutex<CacheShard>>,
    per_shard_budget: u64,
}

impl ShardedLru {
    /// A cache of `shards` independent shards splitting `max_bytes`
    /// evenly (both clamped to at least 1 shard / 1 byte so a
    /// zero-budget cache degenerates to "keep only the newest day per
    /// shard" instead of dividing by zero).
    pub(crate) fn new(shards: usize, max_bytes: u64) -> ShardedLru {
        let shards = shards.max(1);
        ShardedLru {
            per_shard_budget: (max_bytes / shards as u64).max(1),
            shards: (0..shards)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
        }
    }

    fn shard(&self, day: u32) -> &Mutex<CacheShard> {
        &self.shards[day as usize % self.shards.len()]
    }

    /// Looks a day up, bumping its recency on hit.
    pub(crate) fn get(&self, day: u32) -> Option<Arc<MappedSnapshot>> {
        // Shard state stays coherent under poisoning (a panicking thread
        // leaves counters and entries in a consistent snapshot), so
        // serving continues instead of cascading the panic.
        let mut shard = lock_shard(self.shard(day));
        shard.clock += 1;
        let clock = shard.clock;
        let entry = shard.entries.iter_mut().find(|e| e.day == day)?;
        entry.last_used = clock;
        Some(Arc::clone(&entry.snap))
    }

    /// Inserts a freshly-mapped day, evicting least-recently-served
    /// entries until the shard is back under budget. The newly-inserted
    /// day is never evicted by its own insert (an over-budget snapshot
    /// still serves; it just caches alone). Racing inserts of the same
    /// day keep the incumbent.
    pub(crate) fn insert(&self, day: u32, snap: Arc<MappedSnapshot>) -> InsertOutcome {
        let bytes = snap.mapped_bytes() as u64;
        let mut shard = lock_shard(self.shard(day));
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(entry) = shard.entries.iter_mut().find(|e| e.day == day) {
            // Another thread won the mapping race; keep its entry.
            entry.last_used = clock;
            return InsertOutcome::default();
        }
        shard.entries.push(Entry {
            day,
            snap,
            last_used: clock,
        });
        shard.bytes += bytes;
        let mut outcome = InsertOutcome::default();
        while shard.bytes > self.per_shard_budget && shard.entries.len() > 1 {
            // len > 1 and one entry is `day`, so a victim exists; stop
            // evicting defensively if that invariant ever breaks.
            let Some(victim) = shard
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.day != day)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            let evicted = shard.entries.swap_remove(victim);
            shard.bytes -= evicted.snap.mapped_bytes() as u64;
            outcome.evicted += 1;
        }
        outcome
    }

    /// Total mapped bytes currently cached (sum over shards; each shard
    /// read is individually consistent).
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| lock_shard(s).bytes).sum()
    }

    /// Number of cached days.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).entries.len())
            .sum()
    }

    /// Asserts every shard's accounting invariants — the properties the
    /// `loom-lite` model check re-verifies in **every** interleaving:
    ///
    /// 1. the shard byte counter equals the sum of its entries' mapped
    ///    bytes (no accounting drift through any get/insert/evict race);
    /// 2. no day is cached twice within a shard (racing inserts keep the
    ///    incumbent);
    /// 3. the shard is within its byte budget, except for the documented
    ///    single-oversized-entry case.
    #[cfg(test)]
    pub(crate) fn assert_accounting(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("cache shard lock");
            let sum: u64 = shard
                .entries
                .iter()
                .map(|e| e.snap.mapped_bytes() as u64)
                .sum();
            assert_eq!(
                shard.bytes, sum,
                "shard {i}: byte counter {} != entry sum {sum}",
                shard.bytes
            );
            let mut days: Vec<u32> = shard.entries.iter().map(|e| e.day).collect();
            days.sort_unstable();
            days.dedup();
            assert_eq!(
                days.len(),
                shard.entries.len(),
                "shard {i}: duplicate day cached"
            );
            assert!(
                shard.bytes <= self.per_shard_budget || shard.entries.len() == 1,
                "shard {i}: over budget ({} > {}) with {} entries",
                shard.bytes,
                self.per_shard_budget,
                shard.entries.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{San, SanRead, TimelineBuilder};
    use std::io::Write as _;
    use std::path::PathBuf;

    fn mapped_sample(tag: &str) -> (Arc<MappedSnapshot>, PathBuf) {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        tb.add_social_link(u0, u1);
        let bytes = tb.finish().1.freeze().to_store_bytes();
        let path =
            std::env::temp_dir().join(format!("san-serve-cache-{tag}-{}.csr", std::process::id()));
        let mut f = std::fs::File::create(&path).expect("temp file");
        f.write_all(&bytes).expect("write");
        (Arc::new(MappedSnapshot::open(&path).expect("map")), path)
    }

    #[test]
    fn lru_evicts_least_recently_served() {
        let (snap, path) = mapped_sample("lru");
        let one = snap.mapped_bytes() as u64;
        // Budget for two entries in one shard.
        let cache = ShardedLru::new(1, 2 * one);
        assert_eq!(cache.insert(0, Arc::clone(&snap)), InsertOutcome::default());
        assert_eq!(cache.insert(7, Arc::clone(&snap)), InsertOutcome::default());
        // Touch day 0 so day 7 is the LRU victim.
        assert!(cache.get(0).is_some());
        let outcome = cache.insert(14, Arc::clone(&snap));
        assert_eq!(outcome.evicted, 1);
        assert!(cache.get(7).is_none(), "LRU day evicted");
        assert!(cache.get(0).is_some());
        assert!(cache.get(14).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.resident_bytes(), 2 * one);
        drop(snap);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn oversized_entry_still_caches_alone() {
        let (snap, path) = mapped_sample("oversize");
        let cache = ShardedLru::new(1, 1); // 1-byte budget
        cache.insert(3, Arc::clone(&snap));
        assert!(cache.get(3).is_some(), "own insert never evicts itself");
        let outcome = cache.insert(9, Arc::clone(&snap));
        assert_eq!(outcome.evicted, 1, "previous day evicted");
        assert!(cache.get(3).is_none());
        assert_eq!(cache.len(), 1);
        drop(snap);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn racing_insert_keeps_incumbent() {
        let (snap, path) = mapped_sample("race");
        let cache = ShardedLru::new(4, u64::MAX);
        cache.insert(5, Arc::clone(&snap));
        let before = Arc::as_ptr(&cache.get(5).expect("cached"));
        cache.insert(5, Arc::new(MappedSnapshot::open(&path).expect("remap")));
        assert_eq!(
            Arc::as_ptr(&cache.get(5).expect("still cached")),
            before,
            "incumbent mapping kept"
        );
        drop(snap);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_graph_snapshot_is_cacheable() {
        let bytes = San::new().freeze().to_store_bytes();
        let path =
            std::env::temp_dir().join(format!("san-serve-cache-empty-{}.csr", std::process::id()));
        std::fs::write(&path, &bytes).expect("write");
        let cache = ShardedLru::new(2, u64::MAX);
        cache.insert(0, Arc::new(MappedSnapshot::open(&path).expect("map")));
        assert_eq!(cache.get(0).expect("cached").view().num_social_nodes(), 0);
        let _ = std::fs::remove_file(path);
    }
}
