//! A sharded, byte-bounded LRU of mapped snapshots.
//!
//! Day keys spread across independently-locked shards so concurrent
//! readers of *different* days never contend on one lock, and readers of
//! the *same* day contend only on that day's shard for the duration of a
//! vector scan (cache populations are tens of days, not millions — a
//! vault persists one file per sampled day — so scan-based LRU beats a
//! linked-list + map for both simplicity and locality).
//!
//! The bound is **resident mapped bytes**, not entry count: snapshots
//! grow with the day, so a count bound would let the tail of a long
//! timeline blow the memory budget. Each shard polices its slice of
//! [`ServeConfig::max_resident_bytes`](crate::ServeConfig::max_resident_bytes)
//! (near-equal split; division remainders go to the lowest-indexed
//! shards so the slices sum to the configured bound exactly);
//! eviction drops the least-recently-served day's `Arc`, and the mapping
//! itself is unmapped only when the last outstanding reader drops its
//! handle — eviction can never invalidate a view someone is using.
//!
//! The shard locks are [`loom_lite::sync::Mutex`]: plain `std` mutexes
//! in production (one thread-local flag check of overhead per lock), and
//! scheduler-visible locks under the `loom-lite` model checker — the
//! `model_tests` module explores every interleaving of 2–3 threads
//! hitting get/insert/evict on *this exact code*, not a shadow copy.

use loom_lite::sync::Mutex;
use san_graph::mmap::MappedSnapshot;
use std::sync::Arc;

/// Locks a shard, recovering the data on poisoning: a panicking holder
/// leaves shard state coherent (counters and entries are updated in
/// consistent snapshots), so serving continues rather than cascading.
fn lock_shard(shard: &Mutex<CacheShard>) -> loom_lite::sync::MutexGuard<'_, CacheShard> {
    shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One cached day.
struct Entry {
    day: u32,
    snap: Arc<MappedSnapshot>,
    /// Shard-local logical timestamp of the last `get`/`insert`.
    last_used: u64,
}

/// One independently-locked cache shard.
#[derive(Default)]
struct CacheShard {
    entries: Vec<Entry>,
    clock: u64,
    bytes: u64,
}

/// What an insert did, for the metrics layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InsertOutcome {
    /// Days evicted to make room.
    pub evicted: u64,
    /// The day was already cached: the incumbent was kept and the
    /// caller's freshly-created mapping was dropped. Before single-flight
    /// this was the silent cost of the cold-miss race; the metrics layer
    /// counts it (`duplicate_inserts`) so the dedup win is observable.
    pub duplicate: bool,
}

/// The sharded LRU. Keys are persisted days.
pub(crate) struct ShardedLru {
    shards: Vec<Mutex<CacheShard>>,
    /// Per-shard byte budgets, indexed like `shards`. They sum to the
    /// configured `max_bytes` exactly: integer division spreads the
    /// remainder over the first `max_bytes % shards` shards instead of
    /// silently discarding up to `shards - 1` bytes of budget.
    budgets: Vec<u64>,
}

impl ShardedLru {
    /// A cache of `shards` independent shards splitting `max_bytes` so
    /// the shard budgets sum to `max_bytes` exactly (shard `i` gets
    /// `max_bytes / shards`, plus one of the `max_bytes % shards`
    /// remainder bytes for the lowest-indexed shards). Both inputs are
    /// clamped to at least 1 shard / 1 total byte so a zero-budget cache
    /// degenerates to "keep only the newest day per shard" instead of
    /// dividing by zero.
    pub(crate) fn new(shards: usize, max_bytes: u64) -> ShardedLru {
        let shards = shards.max(1);
        let max_bytes = max_bytes.max(1);
        let (base, remainder) = (max_bytes / shards as u64, max_bytes % shards as u64);
        ShardedLru {
            budgets: (0..shards as u64)
                .map(|i| base + u64::from(i < remainder))
                .collect(),
            shards: (0..shards)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
        }
    }

    fn shard_index(&self, day: u32) -> usize {
        day as usize % self.shards.len()
    }

    fn shard(&self, day: u32) -> &Mutex<CacheShard> {
        &self.shards[self.shard_index(day)]
    }

    /// Presence probe: true when `day` is resident, without bumping its
    /// recency (an admission-control peek must not make a day look hot).
    pub(crate) fn contains(&self, day: u32) -> bool {
        lock_shard(self.shard(day))
            .entries
            .iter()
            .any(|e| e.day == day)
    }

    /// Looks a day up, bumping its recency on hit.
    pub(crate) fn get(&self, day: u32) -> Option<Arc<MappedSnapshot>> {
        // Shard state stays coherent under poisoning (a panicking thread
        // leaves counters and entries in a consistent snapshot), so
        // serving continues instead of cascading the panic.
        let mut shard = lock_shard(self.shard(day));
        shard.clock += 1;
        let clock = shard.clock;
        let entry = shard.entries.iter_mut().find(|e| e.day == day)?;
        entry.last_used = clock;
        Some(Arc::clone(&entry.snap))
    }

    /// Inserts a freshly-mapped day, evicting least-recently-served
    /// entries until the shard is back under budget. The newly-inserted
    /// day is never evicted by its own insert (an over-budget snapshot
    /// still serves; it just caches alone). Racing inserts of the same
    /// day keep the incumbent.
    pub(crate) fn insert(&self, day: u32, snap: Arc<MappedSnapshot>) -> InsertOutcome {
        let bytes = snap.mapped_bytes() as u64;
        let budget = self.budgets[self.shard_index(day)];
        let mut shard = lock_shard(self.shard(day));
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(entry) = shard.entries.iter_mut().find(|e| e.day == day) {
            // Another thread won the mapping race; keep its entry and
            // report the duplicate so the wasted map is visible.
            entry.last_used = clock;
            return InsertOutcome {
                duplicate: true,
                ..InsertOutcome::default()
            };
        }
        shard.entries.push(Entry {
            day,
            snap,
            last_used: clock,
        });
        shard.bytes += bytes;
        let mut outcome = InsertOutcome::default();
        while shard.bytes > budget && shard.entries.len() > 1 {
            // len > 1 and one entry is `day`, so a victim exists; stop
            // evicting defensively if that invariant ever breaks.
            let Some(victim) = shard
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.day != day)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            let evicted = shard.entries.swap_remove(victim);
            shard.bytes -= evicted.snap.mapped_bytes() as u64;
            outcome.evicted += 1;
        }
        outcome
    }

    /// Total mapped bytes currently cached (sum over shards; each shard
    /// read is individually consistent).
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| lock_shard(s).bytes).sum()
    }

    /// Number of cached days.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).entries.len())
            .sum()
    }

    /// Asserts every shard's accounting invariants — the properties the
    /// `loom-lite` model check re-verifies in **every** interleaving:
    ///
    /// 1. the shard byte counter equals the sum of its entries' mapped
    ///    bytes (no accounting drift through any get/insert/evict race);
    /// 2. no day is cached twice within a shard (racing inserts keep the
    ///    incumbent);
    /// 3. the shard is within its byte budget, except for the documented
    ///    single-oversized-entry case.
    #[cfg(test)]
    pub(crate) fn assert_accounting(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("cache shard lock");
            let sum: u64 = shard
                .entries
                .iter()
                .map(|e| e.snap.mapped_bytes() as u64)
                .sum();
            assert_eq!(
                shard.bytes, sum,
                "shard {i}: byte counter {} != entry sum {sum}",
                shard.bytes
            );
            let mut days: Vec<u32> = shard.entries.iter().map(|e| e.day).collect();
            days.sort_unstable();
            days.dedup();
            assert_eq!(
                days.len(),
                shard.entries.len(),
                "shard {i}: duplicate day cached"
            );
            assert!(
                shard.bytes <= self.budgets[i] || shard.entries.len() == 1,
                "shard {i}: over budget ({} > {}) with {} entries",
                shard.bytes,
                self.budgets[i],
                shard.entries.len()
            );
        }
    }

    /// Per-shard byte budgets, for tests asserting the configured bound
    /// is fully distributed.
    #[cfg(test)]
    pub(crate) fn shard_budgets(&self) -> &[u64] {
        &self.budgets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{San, SanRead, TimelineBuilder};
    use std::io::Write as _;
    use std::path::PathBuf;

    fn mapped_sample(tag: &str) -> (Arc<MappedSnapshot>, PathBuf) {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        tb.add_social_link(u0, u1);
        let bytes = tb.finish().1.freeze().to_store_bytes();
        let path =
            std::env::temp_dir().join(format!("san-serve-cache-{tag}-{}.csr", std::process::id()));
        let mut f = std::fs::File::create(&path).expect("temp file");
        f.write_all(&bytes).expect("write");
        (Arc::new(MappedSnapshot::open(&path).expect("map")), path)
    }

    #[test]
    fn lru_evicts_least_recently_served() {
        let (snap, path) = mapped_sample("lru");
        let one = snap.mapped_bytes() as u64;
        // Budget for two entries in one shard.
        let cache = ShardedLru::new(1, 2 * one);
        assert_eq!(cache.insert(0, Arc::clone(&snap)), InsertOutcome::default());
        assert_eq!(cache.insert(7, Arc::clone(&snap)), InsertOutcome::default());
        // Touch day 0 so day 7 is the LRU victim.
        assert!(cache.get(0).is_some());
        let outcome = cache.insert(14, Arc::clone(&snap));
        assert_eq!(outcome.evicted, 1);
        assert!(cache.get(7).is_none(), "LRU day evicted");
        assert!(cache.get(0).is_some());
        assert!(cache.get(14).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.resident_bytes(), 2 * one);
        drop(snap);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn oversized_entry_still_caches_alone() {
        let (snap, path) = mapped_sample("oversize");
        let cache = ShardedLru::new(1, 1); // 1-byte budget
        cache.insert(3, Arc::clone(&snap));
        assert!(cache.get(3).is_some(), "own insert never evicts itself");
        let outcome = cache.insert(9, Arc::clone(&snap));
        assert_eq!(outcome.evicted, 1, "previous day evicted");
        assert!(cache.get(3).is_none());
        assert_eq!(cache.len(), 1);
        drop(snap);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn racing_insert_keeps_incumbent_and_reports_duplicate() {
        let (snap, path) = mapped_sample("race");
        let cache = ShardedLru::new(4, u64::MAX);
        assert!(
            !cache.insert(5, Arc::clone(&snap)).duplicate,
            "first insert is no duplicate"
        );
        let before = Arc::as_ptr(&cache.get(5).expect("cached"));
        let outcome = cache.insert(5, Arc::new(MappedSnapshot::open(&path).expect("remap")));
        assert!(outcome.duplicate, "losing insert is reported");
        assert_eq!(outcome.evicted, 0);
        assert_eq!(
            Arc::as_ptr(&cache.get(5).expect("still cached")),
            before,
            "incumbent mapping kept"
        );
        drop(snap);
        let _ = std::fs::remove_file(path);
    }

    /// The configured byte budget is distributed without loss: shard
    /// budgets always sum to `max_bytes` (the old integer division threw
    /// away up to `shards - 1` bytes — `max_bytes = 7, shards = 4` used
    /// to yield a total budget of 4).
    #[test]
    fn budget_remainder_is_distributed_not_discarded() {
        let cache = ShardedLru::new(4, 7);
        assert_eq!(cache.shard_budgets(), &[2, 2, 2, 1]);
        for (shards, max_bytes) in [
            (1usize, 1u64),
            (3, 10),
            (4, 7),
            (8, 8),
            (5, 3),
            (7, 1 << 40),
        ] {
            let cache = ShardedLru::new(shards, max_bytes);
            assert_eq!(
                cache.shard_budgets().iter().sum::<u64>(),
                max_bytes,
                "shards {shards} max_bytes {max_bytes}"
            );
            let (lo, hi) = (
                cache.shard_budgets().iter().min().expect("nonempty"),
                cache.shard_budgets().iter().max().expect("nonempty"),
            );
            assert!(hi - lo <= 1, "near-equal split: {lo}..{hi}");
        }
        // Zero budget still clamps to one real byte in total.
        assert_eq!(ShardedLru::new(3, 0).shard_budgets(), &[1, 0, 0]);
    }

    #[test]
    fn empty_graph_snapshot_is_cacheable() {
        let bytes = San::new().freeze().to_store_bytes();
        let path =
            std::env::temp_dir().join(format!("san-serve-cache-empty-{}.csr", std::process::id()));
        std::fs::write(&path, &bytes).expect("write");
        let cache = ShardedLru::new(2, u64::MAX);
        cache.insert(0, Arc::new(MappedSnapshot::open(&path).expect("map")));
        assert_eq!(cache.get(0).expect("cached").view().num_social_nodes(), 0);
        let _ = std::fs::remove_file(path);
    }
}
