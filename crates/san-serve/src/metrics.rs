//! [`ServeMetrics`]: the serving layer's meters — cache behaviour
//! counters plus the same [`VaultMetrics`] IO shape the vault itself
//! uses, so capacity planning reads one format on both sides of the
//! cache.

use san_graph::meter::{LatencyHistogram, VaultMetrics};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters and IO meters for one [`SnapshotServer`](crate::SnapshotServer).
///
/// All counters are relaxed atomics: recording from the hit path costs a
/// couple of uncontended atomic adds. The IO side
/// ([`ServeMetrics::io`]) reuses [`VaultMetrics`]: `read_bytes` is the
/// total bytes of snapshot files mapped+validated by cold misses, and
/// `read_latency` is the open/validate latency histogram (sub-ms for
/// MiB-scale days; a hit never touches it).
///
/// The single-flight path (the SAN-001 fix — see
/// [`flight`](crate::SnapshotServer)) has its own meters: every fetch
/// records exactly one of `hits` (cached), `misses` (led the map), or
/// `dedup_waits` (blocked behind another thread's in-flight map; the
/// wait's duration lands in [`dedup_wait_latency`](ServeMetrics::dedup_wait_latency)).
/// `dedup_hits` counts the waits that resolved into a shared mapping —
/// each one is a whole mmap+validate the herd did *not* pay — and
/// `duplicate_inserts` counts cache inserts that lost to an incumbent
/// (each one a wasted map; single-flight holds this at zero).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    queries: AtomicU64,
    no_snapshot: AtomicU64,
    dedup_waits: AtomicU64,
    dedup_hits: AtomicU64,
    duplicate_inserts: AtomicU64,
    dedup_wait_latency: LatencyHistogram,
    io: VaultMetrics,
}

impl ServeMetrics {
    /// Fresh, zeroed meters.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Cache hits: `get` served an already-mapped day (`Arc` clone).
    pub fn hits(&self) -> u64 {
        // ORDERING: relaxed load of one monotonic counter — nothing
        // synchronizes through the meters (here and in every getter and
        // recorder below; single-variable snapshots need no ordering).
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses: `get` had to map + validate a snapshot file.
    pub fn misses(&self) -> u64 {
        // ORDERING: relaxed; same single-counter argument as hits().
        self.misses.load(Ordering::Relaxed)
    }

    /// Days evicted from the cache to stay under the resident-byte bound.
    pub fn evictions(&self) -> u64 {
        // ORDERING: relaxed; same single-counter argument as hits().
        self.evictions.load(Ordering::Relaxed)
    }

    /// Queries routed through [`for_each_query`](crate::SnapshotServer::for_each_query).
    pub fn queries(&self) -> u64 {
        // ORDERING: relaxed; same single-counter argument as hits().
        self.queries.load(Ordering::Relaxed)
    }

    /// `get` calls for days before the first persisted snapshot (served
    /// as "no snapshot", not an error).
    pub fn no_snapshot(&self) -> u64 {
        // ORDERING: relaxed; same single-counter argument as hits().
        self.no_snapshot.load(Ordering::Relaxed)
    }

    /// Fetches that found their day already being mapped by another
    /// thread and blocked on its single-flight latch instead of mapping
    /// again (every outcome: shared mapping, broadcast failure, or
    /// leader abort).
    pub fn dedup_waits(&self) -> u64 {
        // ORDERING: relaxed; same single-counter argument as hits().
        self.dedup_waits.load(Ordering::Relaxed)
    }

    /// Deduplicated waits that resolved into the leader's shared mapping
    /// — each one an mmap+validate the thundering herd did not pay.
    pub fn dedup_hits(&self) -> u64 {
        // ORDERING: relaxed; same single-counter argument as hits().
        self.dedup_hits.load(Ordering::Relaxed)
    }

    /// Cache inserts that lost to an already-cached incumbent, dropping
    /// the caller's freshly-created mapping. Nonzero means redundant maps
    /// slipped past deduplication; with single-flight it stays zero.
    pub fn duplicate_inserts(&self) -> u64 {
        // ORDERING: relaxed; same single-counter argument as hits().
        self.duplicate_inserts.load(Ordering::Relaxed)
    }

    /// Latency distribution of single-flight waits: how long deduplicated
    /// fetches blocked behind the leading mapper (bounded by the cold
    /// open+validate cost; typically a fraction of it).
    pub fn dedup_wait_latency(&self) -> &LatencyHistogram {
        &self.dedup_wait_latency
    }

    /// The IO meters of the cold-miss path: bytes mapped+validated and
    /// the open/validate latency histogram — the same [`VaultMetrics`]
    /// shape as [`SnapshotVault::metrics`](san_graph::store::SnapshotVault::metrics).
    pub fn io(&self) -> &VaultMetrics {
        &self.io
    }

    pub(crate) fn record_hit(&self) {
        // ORDERING: relaxed fetch-adds, here and in the recorders below —
        // increments are exact by RMW atomicity alone; readers only need
        // eventual values (loom_meter.rs in san-graph models the protocol).
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        // ORDERING: relaxed; same RMW-atomicity argument as record_hit.
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_evictions(&self, n: u64) {
        // ORDERING: relaxed; same RMW-atomicity argument as record_hit.
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_query(&self) {
        // ORDERING: relaxed; same RMW-atomicity argument as record_hit.
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_no_snapshot(&self) {
        // ORDERING: relaxed; same RMW-atomicity argument as record_hit.
        self.no_snapshot.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dedup_wait(&self, waited: Duration) {
        // ORDERING: relaxed; same RMW-atomicity argument as record_hit.
        self.dedup_waits.fetch_add(1, Ordering::Relaxed);
        self.dedup_wait_latency.record(waited);
    }

    pub(crate) fn record_dedup_hit(&self) {
        // ORDERING: relaxed; same RMW-atomicity argument as record_hit.
        self.dedup_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_duplicate_insert(&self) {
        // ORDERING: relaxed; same RMW-atomicity argument as record_hit.
        self.duplicate_inserts.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = assert_send_sync::<ServeMetrics>();

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_hit();
        m.record_hit();
        m.record_miss();
        m.record_evictions(3);
        m.record_query();
        m.record_no_snapshot();
        m.io().record_read(1024, Duration::from_micros(50));
        assert_eq!(m.hits(), 2);
        assert_eq!(m.misses(), 1);
        assert_eq!(m.evictions(), 3);
        assert_eq!(m.queries(), 1);
        assert_eq!(m.no_snapshot(), 1);
        assert_eq!(m.io().read_bytes(), 1024);
        assert_eq!(m.io().read_latency().count(), 1);
    }

    #[test]
    fn dedup_meters_accumulate() {
        let m = ServeMetrics::new();
        m.record_dedup_wait(Duration::from_micros(200));
        m.record_dedup_wait(Duration::from_micros(300));
        m.record_dedup_hit();
        m.record_duplicate_insert();
        assert_eq!(m.dedup_waits(), 2);
        assert_eq!(m.dedup_hits(), 1);
        assert_eq!(m.duplicate_inserts(), 1);
        assert_eq!(m.dedup_wait_latency().count(), 2);
        let p50 = m.dedup_wait_latency().median_nanos();
        assert!((131_072..524_288).contains(&p50), "p50 {p50}");
    }
}
