//! Single-flight deduplication of cold snapshot misses (the SAN-001
//! fix): per-day in-flight latches so that when many threads cold-miss
//! the same day, exactly **one** pays the mmap+validate cost and every
//! other blocks briefly and receives the first mapper's result.
//!
//! # Protocol
//!
//! A [`FlightTable`] holds one entry per day currently being mapped.
//! [`join(day)`](FlightTable::join) either
//!
//! * finds no entry → registers one and returns
//!   [`Flight::Leader`]: *this* caller must map the day and then
//!   [`publish`](FlightLeader::publish) the outcome. (A new leader
//!   should **re-check the cache before mapping**: a flight that
//!   completed between the caller's cache miss and its join has already
//!   inserted the day — leaders insert before they publish — so the
//!   double-check is what makes "one map per cold day" hold across
//!   back-to-back flights, not just overlapping ones. The server's
//!   fetch loop does exactly this.) Or it
//! * finds an entry → blocks on that entry's latch (a
//!   [`loom_lite::sync::Condvar`], so the model checker explores the
//!   production wait/notify code) and returns
//!   [`Flight::Waiter`] with the leader's published [`FlightOutcome`].
//!
//! Publishing removes the day's entry *before* waking waiters, so the
//! table only ever holds in-flight days and the latch always clears —
//! every later fetch starts fresh. The three outcomes:
//!
//! * [`FlightOutcome::Mapped`] — the leader mapped and cached the day;
//!   waiters share the `Arc` directly (they never touch the cache, so
//!   an eviction racing the publish cannot strand them).
//! * [`FlightOutcome::Failed`] — mapping failed with a typed
//!   [`StoreError`]; every waiter receives it, and because the entry is
//!   gone the *next* fetch of that day retries from scratch (a corrupt
//!   file that gets repaired starts serving again; failures are never
//!   negatively cached).
//! * [`FlightOutcome::Aborted`] — the leader unwound (panicked) without
//!   publishing: [`FlightLeader`]'s `Drop` publishes this on its behalf,
//!   so a panicking mapper can neither strand waiters on the latch nor
//!   poison the day forever. Waiters respond by retrying the whole
//!   fetch; one of them becomes the new leader.
//!
//! The table lock and each latch lock are only ever taken sequentially,
//! never nested, so the module cannot introduce lock-order inversions
//! with the cache's shard locks. All primitives are
//! [`loom_lite::sync`] dual-mode: `model_tests` explores every 2–3
//! thread interleaving of *this exact code*, proving `maps == 1` on the
//! cold-miss race in every schedule (SAN-001's exit criterion — see
//! `audit/findings.md`).

use loom_lite::sync::{Condvar, Mutex, MutexGuard};
use san_graph::mmap::MappedSnapshot;
use san_graph::store::StoreError;
use std::sync::Arc;

/// Locks recovering from poisoning: a latch or table whose holder
/// panicked is still structurally coherent (all updates happen in
/// consistent critical sections), and the abort protocol — not lock
/// poisoning — is what communicates leader failure.
fn lock_recovered<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How one in-flight mapping ended, as delivered to its waiters.
#[derive(Debug, Clone)]
pub(crate) enum FlightOutcome {
    /// The leader mapped (and cached) the day; share its mapping.
    Mapped(Arc<MappedSnapshot>),
    /// The leader's map+validate failed; every waiter gets the typed
    /// error.
    Failed(Arc<StoreError>),
    /// The leader unwound without publishing (mapper panic). Retry the
    /// fetch; the latch is already clear.
    Aborted,
}

/// One day's latch: waiters block on `cv` until `outcome` is published.
#[derive(Default)]
struct FlightCell {
    outcome: Mutex<Option<FlightOutcome>>,
    cv: Condvar,
}

/// What [`FlightTable::join`] made of the caller.
pub(crate) enum Flight<'t> {
    /// First cold misser: map the day, then
    /// [`publish`](FlightLeader::publish).
    Leader(FlightLeader<'t>),
    /// A leader was already mapping this day; this is its published
    /// outcome (the caller waited for it).
    Waiter(FlightOutcome),
}

/// The per-day in-flight registry.
#[derive(Default)]
pub(crate) struct FlightTable {
    /// Days currently being mapped, each with its latch. Every entry is
    /// in-flight by construction: publish (and abort) remove the entry
    /// before waking waiters. Populations are "concurrent cold misses",
    /// i.e. a handful, so a scanned `Vec` beats a map.
    inflight: Mutex<Vec<(u32, Arc<FlightCell>)>>,
}

impl FlightTable {
    /// An empty registry.
    pub(crate) fn new() -> FlightTable {
        FlightTable::default()
    }

    /// Claims or joins the in-flight mapping of `day`: the first caller
    /// becomes the [`Flight::Leader`] (and **must** publish, on pain of
    /// its `Drop` broadcasting [`FlightOutcome::Aborted`]); later
    /// callers block until the leader publishes and get the outcome as
    /// [`Flight::Waiter`].
    pub(crate) fn join(&self, day: u32) -> Flight<'_> {
        let cell = {
            let mut table = lock_recovered(&self.inflight);
            match table.iter().find(|(d, _)| *d == day) {
                Some((_, cell)) => Arc::clone(cell),
                None => {
                    let cell = Arc::new(FlightCell::default());
                    table.push((day, Arc::clone(&cell)));
                    return Flight::Leader(FlightLeader {
                        table: self,
                        day,
                        cell,
                        published: false,
                    });
                }
            }
        };
        // Wait on the latch (table lock already released — the two are
        // never held together). The predicate loop tolerates spurious
        // wakeups; the cell keeps the outcome alive for every waiter
        // regardless of wake order, because each holds its own Arc.
        let mut outcome = lock_recovered(&cell.outcome);
        loop {
            if let Some(o) = outcome.as_ref() {
                return Flight::Waiter(o.clone());
            }
            outcome = cell
                .cv
                .wait(outcome)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Days currently in flight (diagnostics; racy by nature).
    #[cfg(test)]
    pub(crate) fn in_flight(&self) -> usize {
        lock_recovered(&self.inflight).len()
    }
}

impl std::fmt::Debug for FlightTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightTable")
            .field("in_flight", &lock_recovered(&self.inflight).len())
            .finish()
    }
}

/// The leadership claim on one day's cold miss. Exactly one exists per
/// in-flight day. Dropping it without [`publish`](FlightLeader::publish)
/// — which only unwinding does — broadcasts
/// [`FlightOutcome::Aborted`] so waiters are never stranded.
pub(crate) struct FlightLeader<'t> {
    table: &'t FlightTable,
    day: u32,
    cell: Arc<FlightCell>,
    published: bool,
}

impl FlightLeader<'_> {
    /// Publishes the mapping's outcome: clears the day's latch from the
    /// table (later fetches start fresh), then delivers the outcome and
    /// wakes every waiter.
    pub(crate) fn publish(mut self, outcome: FlightOutcome) {
        self.published = true;
        self.complete(outcome);
    }

    fn complete(&mut self, outcome: FlightOutcome) {
        {
            let mut table = lock_recovered(&self.table.inflight);
            // Identity-matched removal: only this leader's entry can be
            // present for `day` (entries are removed exclusively here,
            // and leadership is unique), but stay defensive.
            table.retain(|(d, c)| *d != self.day || !Arc::ptr_eq(c, &self.cell));
        }
        *lock_recovered(&self.cell.outcome) = Some(outcome);
        self.cell.cv.notify_all();
    }
}

impl Drop for FlightLeader<'_> {
    fn drop(&mut self) {
        if !self.published {
            // The mapper unwound: clear the latch and wake waiters with
            // Aborted so they retry instead of blocking forever.
            self.complete(FlightOutcome::Aborted);
        }
    }
}

impl std::fmt::Debug for FlightLeader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightLeader")
            .field("day", &self.day)
            .field("published", &self.published)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::TimelineBuilder;
    use std::io::Write as _;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    fn mapped_sample(tag: &str) -> (Arc<MappedSnapshot>, PathBuf) {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        tb.add_social_link(u0, u1);
        let bytes = tb.finish().1.freeze().to_store_bytes();
        let path =
            std::env::temp_dir().join(format!("san-serve-flight-{tag}-{}.csr", std::process::id()));
        let mut f = std::fs::File::create(&path).expect("temp file");
        f.write_all(&bytes).expect("write");
        (Arc::new(MappedSnapshot::open(&path).expect("map")), path)
    }

    #[test]
    fn first_join_leads_later_joins_wait() {
        let (snap, path) = mapped_sample("lead");
        let table = FlightTable::new();
        let Flight::Leader(leader) = table.join(7) else {
            panic!("first join must lead");
        };
        assert_eq!(table.in_flight(), 1);
        std::thread::scope(|scope| {
            let waiters: Vec<_> = (0..3)
                .map(|_| {
                    let table = &table;
                    scope.spawn(move || match table.join(7) {
                        Flight::Leader(_) => panic!("day already in flight"),
                        Flight::Waiter(outcome) => outcome,
                    })
                })
                .collect();
            // Publish only after every waiter holds the cell (each join
            // clones its Arc before blocking), so none can race past the
            // cleared latch and become a second leader.
            while Arc::strong_count(&leader.cell) < 2 + 3 {
                std::thread::yield_now();
            }
            leader.publish(FlightOutcome::Mapped(Arc::clone(&snap)));
            for w in waiters {
                let FlightOutcome::Mapped(shared) = w.join().expect("waiter") else {
                    panic!("waiters get the mapped outcome");
                };
                assert!(Arc::ptr_eq(&shared, &snap), "one mapping shared by all");
            }
        });
        assert_eq!(table.in_flight(), 0, "latch cleared by publish");
        drop(snap);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn failure_reaches_waiters_and_clears_the_latch() {
        let table = FlightTable::new();
        let Flight::Leader(leader) = table.join(3) else {
            panic!("lead");
        };
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| match table.join(3) {
                Flight::Leader(_) => panic!("in flight"),
                Flight::Waiter(o) => o,
            });
            while Arc::strong_count(&leader.cell) < 2 + 1 {
                std::thread::yield_now();
            }
            leader.publish(FlightOutcome::Failed(Arc::new(StoreError::BadChecksum {
                expected: 1,
                found: 2,
            })));
            let FlightOutcome::Failed(err) = waiter.join().expect("waiter") else {
                panic!("waiters get the failure");
            };
            assert!(matches!(*err, StoreError::BadChecksum { .. }));
        });
        // The failure cleared the latch: the next fetch retries fresh.
        assert_eq!(table.in_flight(), 0);
        assert!(matches!(table.join(3), Flight::Leader(_)));
    }

    /// A leader that panics mid-map must wake its waiters with `Aborted`
    /// (via the guard's Drop during unwinding), never strand them.
    #[test]
    fn panicking_leader_aborts_instead_of_stranding_waiters() {
        let table = FlightTable::new();
        let entered = Barrier::new(2);
        let aborted_seen = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let mapper = scope.spawn(|| {
                let Flight::Leader(_leader) = table.join(9) else {
                    panic!("lead");
                };
                entered.wait();
                // Simulated mapper panic; _leader's Drop runs while
                // unwinding and publishes Aborted.
                panic!("mapper exploded");
            });
            let waiter = scope.spawn(|| {
                entered.wait();
                loop {
                    match table.join(9) {
                        Flight::Leader(leader) => {
                            // Took over after the abort: complete the day.
                            let (snap, path) = mapped_sample("abort");
                            leader.publish(FlightOutcome::Mapped(Arc::clone(&snap)));
                            drop(snap);
                            let _ = std::fs::remove_file(path);
                            return;
                        }
                        Flight::Waiter(FlightOutcome::Aborted) => {
                            aborted_seen.fetch_add(1, Ordering::Relaxed);
                            continue; // retry, as the server's fetch does
                        }
                        Flight::Waiter(_) => panic!("nobody published a result"),
                    }
                }
            });
            assert!(mapper.join().is_err(), "mapper panicked by design");
            waiter.join().expect("waiter must not be stranded");
        });
        assert_eq!(table.in_flight(), 0, "abort cleared the latch");
    }

    #[test]
    fn distinct_days_fly_independently() {
        let table = FlightTable::new();
        let Flight::Leader(a) = table.join(1) else {
            panic!("lead 1");
        };
        let Flight::Leader(b) = table.join(2) else {
            panic!("lead 2: distinct days never share a latch");
        };
        assert_eq!(table.in_flight(), 2);
        a.publish(FlightOutcome::Aborted);
        assert_eq!(table.in_flight(), 1);
        b.publish(FlightOutcome::Aborted);
        assert_eq!(table.in_flight(), 0);
    }
}
