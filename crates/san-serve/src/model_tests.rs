//! `loom-lite` model checks of the sharded LRU: every interleaving of
//! 2–3 threads racing get/insert/evict on the **production**
//! [`ShardedLru`](crate::cache::ShardedLru) code (its shard locks are
//! dual-mode `loom_lite::sync::Mutex`es, so the model explores the same
//! compiled paths the server runs).
//!
//! Each scenario asserts, in **every** explored schedule:
//!
//! * byte accounting — shard byte counters equal the sum of resident
//!   entries' mapped bytes, and the budget bound holds (modulo the
//!   documented single-oversized-entry case);
//! * no duplicate days — racing inserts of one day keep the incumbent;
//! * hit/miss-counter consistency — hits + misses equals issued gets,
//!   and every miss maps exactly once.
//!
//! The checks also *reproduce* the known *cold-miss double-map* gap
//! ([`double_map_race_is_reachable`]): two threads missing the same day
//! both pay the map+validate cost before one insert wins. That finding
//! is tracked in `audit/findings.md` and stays reproduced here until the
//! serving layer grows single-flight deduplication (ROADMAP: network
//! front-end work).

// Redundant with the gated `mod` declaration in lib.rs, but makes this
// file self-describing as test-only code (san-audit classifies files
// with a test-gating inner attribute as test code).
#![cfg(test)]

use crate::cache::ShardedLru;
use san_graph::mmap::MappedSnapshot;
use san_graph::{SanRead, TimelineBuilder};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One mapped snapshot fixture, created outside the model and shared
/// (read-only) across every iteration.
fn mapped_fixture(tag: &str) -> (Arc<MappedSnapshot>, PathBuf) {
    let mut tb = TimelineBuilder::new();
    let u0 = tb.add_social_node();
    let u1 = tb.add_social_node();
    tb.add_social_link(u0, u1);
    let bytes = tb.finish().1.freeze().to_store_bytes();
    let path =
        std::env::temp_dir().join(format!("san-serve-model-{tag}-{}.csr", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(&bytes).expect("write");
    (Arc::new(MappedSnapshot::open(&path).expect("map")), path)
}

/// The tracked finding: two threads cold-missing the same day both map
/// it (no single-flight), though only one mapping is cached. The model
/// proves (a) the double map is reachable, (b) the cache still converges
/// to exactly one entry with exact byte accounting, and (c) hit+miss
/// counters stay consistent in every schedule.
#[test]
fn double_map_race_is_reachable() {
    let (snap, path) = mapped_fixture("double-map");
    // Cross-iteration observations (std atomics: invisible to the model).
    let max_maps = Arc::new(AtomicU64::new(0));
    let min_maps = Arc::new(AtomicU64::new(u64::MAX));
    let (snap2, max2, min2) = (
        Arc::clone(&snap),
        Arc::clone(&max_maps),
        Arc::clone(&min_maps),
    );
    let report = loom_lite::model(move || {
        let cache = Arc::new(ShardedLru::new(2, u64::MAX));
        let maps = Arc::new(AtomicU64::new(0));
        let gets = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let snap = Arc::clone(&snap2);
                let (maps, gets, hits) = (Arc::clone(&maps), Arc::clone(&gets), Arc::clone(&hits));
                loom_lite::thread::spawn(move || {
                    // The server's fetch() shape: get-miss → map → insert.
                    gets.fetch_add(1, Ordering::SeqCst);
                    match cache.get(7) {
                        Some(_) => {
                            hits.fetch_add(1, Ordering::SeqCst);
                        }
                        None => {
                            maps.fetch_add(1, Ordering::SeqCst); // the mmap+validate cost
                            cache.insert(7, snap);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        let mapped = maps.load(Ordering::SeqCst);
        let hit = hits.load(Ordering::SeqCst);
        // Counter consistency in this schedule: every get either hit or
        // mapped, and at least one thread mapped (the day started cold).
        assert_eq!(hit + mapped, gets.load(Ordering::SeqCst));
        assert!((1..=2).contains(&mapped), "maps {mapped}");
        // The cache converges: exactly one cached copy, exact accounting.
        assert_eq!(cache.len(), 1);
        cache.assert_accounting();
        max2.fetch_max(mapped, Ordering::SeqCst);
        min2.fetch_min(mapped, Ordering::SeqCst);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    assert_eq!(
        max_maps.load(Ordering::SeqCst),
        2,
        "the double-map race must be reachable — if this starts failing, \
         single-flight deduplication has landed: close the finding in \
         audit/findings.md and flip this test to assert maps == 1"
    );
    assert_eq!(
        min_maps.load(Ordering::SeqCst),
        1,
        "the hit-after-insert schedule must also be reachable"
    );
    drop(snap);
    let _ = std::fs::remove_file(path);
}

/// Three threads, one shard, budget for two snapshots: inserts of three
/// distinct days race, forcing eviction in some schedules. Byte
/// accounting, the budget bound and no-duplicate-days must hold in every
/// interleaving; the survivor set depends on the schedule but its size
/// never exceeds the budget.
#[test]
fn eviction_races_keep_byte_accounting_exact() {
    let (snap, path) = mapped_fixture("evict");
    let one = snap.mapped_bytes() as u64;
    let snap2 = Arc::clone(&snap);
    let report = loom_lite::model(move || {
        let cache = Arc::new(ShardedLru::new(1, 2 * one));
        let handles: Vec<_> = [0u32, 1, 2]
            .into_iter()
            .map(|day| {
                let cache = Arc::clone(&cache);
                let snap = Arc::clone(&snap2);
                loom_lite::thread::spawn(move || {
                    let outcome = cache.insert(day, snap);
                    // An insert can evict at most the number of already-
                    // resident days.
                    assert!(outcome.evicted <= 2, "evicted {}", outcome.evicted);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        cache.assert_accounting();
        assert_eq!(cache.len(), 2, "budget holds two snapshots");
        assert_eq!(cache.resident_bytes(), 2 * one);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    drop(snap);
    let _ = std::fs::remove_file(path);
}

/// Mixed get/insert/evict with 3 threads across 2 shards: a reader
/// races an inserter of the same day and an inserter of a day that
/// hashes to the same shard. Whatever the schedule, the reader sees
/// either a miss or the incumbent mapping (never a torn entry), and the
/// accounting invariants hold.
#[test]
fn get_insert_evict_mix_is_linearizable() {
    let (snap, path) = mapped_fixture("mix");
    let one = snap.mapped_bytes() as u64;
    let snap2 = Arc::clone(&snap);
    let report = loom_lite::model(move || {
        let cache = Arc::new(ShardedLru::new(2, 2 * one));
        let c1 = Arc::clone(&cache);
        let s1 = Arc::clone(&snap2);
        // Day 0 and day 2 share shard 0 (2 shards, day % shards).
        let t1 = loom_lite::thread::spawn(move || {
            c1.insert(0, s1);
        });
        let c2 = Arc::clone(&cache);
        let s2 = Arc::clone(&snap2);
        let t2 = loom_lite::thread::spawn(move || {
            c2.insert(2, s2);
        });
        let c3 = Arc::clone(&cache);
        let t3 = loom_lite::thread::spawn(move || {
            if let Some(hit) = c3.get(0) {
                // A hit must be the incumbent fixture mapping, readable.
                assert_eq!(hit.view().num_social_nodes(), 2);
            }
        });
        for t in [t1, t2, t3] {
            t.join().expect("model thread");
        }
        cache.assert_accounting();
        // Shard 0 holds days {0, 2} — per-shard budget is one snapshot
        // (2×one split over 2 shards), so exactly one survives.
        assert_eq!(cache.len(), 1);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    drop(snap);
    let _ = std::fs::remove_file(path);
}

/// Racing inserts of the *same* day from three threads: the incumbent
/// always wins, the day is cached exactly once and bytes are counted
/// exactly once, in every schedule.
#[test]
fn racing_same_day_inserts_keep_one_copy() {
    let (snap, path) = mapped_fixture("same-day");
    let one = snap.mapped_bytes() as u64;
    let snap2 = Arc::clone(&snap);
    let report = loom_lite::model(move || {
        let cache = Arc::new(ShardedLru::new(1, u64::MAX));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let snap = Arc::clone(&snap2);
                loom_lite::thread::spawn(move || {
                    cache.insert(5, snap);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), one);
        cache.assert_accounting();
        assert!(cache.get(5).is_some());
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    drop(snap);
    let _ = std::fs::remove_file(path);
}
