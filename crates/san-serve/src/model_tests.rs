//! `loom-lite` model checks of the serving layer's concurrency: every
//! interleaving of 2–3 threads racing the **production**
//! [`ShardedLru`](crate::cache::ShardedLru) and
//! [`FlightTable`](crate::flight::FlightTable) code (shard locks, latch
//! locks and latch condvars are all dual-mode `loom_lite::sync`
//! primitives, so the model explores the same compiled paths the server
//! runs).
//!
//! Each scenario asserts, in **every** explored schedule:
//!
//! * byte accounting — shard byte counters equal the sum of resident
//!   entries' mapped bytes, and the budget bound holds (modulo the
//!   documented single-oversized-entry case);
//! * no duplicate days — racing inserts of one day keep the incumbent,
//!   and the loser is counted as a duplicate;
//! * single-flight — threads cold-missing one day map it **exactly
//!   once** ([`cold_miss_maps_exactly_once`]; this flips the former
//!   `double_map_race_is_reachable` reproduction of finding SAN-001,
//!   now closed in `audit/findings.md`), failures broadcast to every
//!   waiter and clear the latch
//!   ([`failed_map_wakes_waiters_and_clears_latch`]), an aborting
//!   leader never strands waiters
//!   ([`aborted_leader_unblocks_waiters`]), and eviction racing a
//!   publish keeps accounting exact
//!   ([`eviction_racing_publish_keeps_accounting_exact`]).

// Redundant with the gated `mod` declaration in lib.rs, but makes this
// file self-describing as test-only code (san-audit classifies files
// with a test-gating inner attribute as test code).
#![cfg(test)]

use crate::cache::ShardedLru;
use crate::flight::{Flight, FlightOutcome, FlightTable};
use san_graph::mmap::MappedSnapshot;
use san_graph::store::StoreError;
use san_graph::{SanRead, TimelineBuilder};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One mapped snapshot fixture, created outside the model and shared
/// (read-only) across every iteration.
fn mapped_fixture(tag: &str) -> (Arc<MappedSnapshot>, PathBuf) {
    let mut tb = TimelineBuilder::new();
    let u0 = tb.add_social_node();
    let u1 = tb.add_social_node();
    tb.add_social_link(u0, u1);
    let bytes = tb.finish().1.freeze().to_store_bytes();
    let path =
        std::env::temp_dir().join(format!("san-serve-model-{tag}-{}.csr", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(&bytes).expect("write");
    (Arc::new(MappedSnapshot::open(&path).expect("map")), path)
}

/// The server's single-flighted fetch shape, run against the production
/// cache + flight table inside the model: cache check → join → leader
/// maps/inserts/publishes, waiter consumes the outcome, abort retries.
/// Counts each map (the mmap+validate cost stand-in) into `maps`.
fn model_fetch(
    table: &FlightTable,
    cache: &ShardedLru,
    day: u32,
    snap: &Arc<MappedSnapshot>,
    maps: &AtomicU64,
) -> FetchPath {
    loop {
        if cache.get(day).is_some() {
            return FetchPath::Hit;
        }
        match table.join(day) {
            Flight::Leader(leader) => {
                // The server's double-check: a flight that completed
                // between the cache miss and this join already inserted
                // the day — publish the cached copy instead of remapping.
                if let Some(cached) = cache.get(day) {
                    leader.publish(FlightOutcome::Mapped(cached));
                    return FetchPath::Hit;
                }
                maps.fetch_add(1, Ordering::SeqCst);
                cache.insert(day, Arc::clone(snap));
                leader.publish(FlightOutcome::Mapped(Arc::clone(snap)));
                return FetchPath::Led;
            }
            Flight::Waiter(FlightOutcome::Mapped(_)) => return FetchPath::Waited,
            Flight::Waiter(FlightOutcome::Failed(_)) => panic!("nobody published a failure"),
            Flight::Waiter(FlightOutcome::Aborted) => continue,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum FetchPath {
    Hit,
    Led,
    Waited,
}

/// SAN-001, closed: two threads cold-missing the same day map it
/// **exactly once in every schedule** — the loser either waits on the
/// leader's latch or hits the already-populated cache, never maps. This
/// flips the former `double_map_race_is_reachable` reproduction (which
/// asserted `maps == 2` was reachable pre-fix) into the fix's exit
/// criterion.
#[test]
fn cold_miss_maps_exactly_once() {
    let (snap, path) = mapped_fixture("single-flight");
    // Cross-iteration observations (std atomics: invisible to the model).
    let waited_schedules = Arc::new(AtomicU64::new(0));
    let hit_schedules = Arc::new(AtomicU64::new(0));
    let (snap2, waited2, hit2) = (
        Arc::clone(&snap),
        Arc::clone(&waited_schedules),
        Arc::clone(&hit_schedules),
    );
    let report = loom_lite::model(move || {
        let cache = Arc::new(ShardedLru::new(2, u64::MAX));
        let table = Arc::new(FlightTable::new());
        let maps = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let table = Arc::clone(&table);
                let snap = Arc::clone(&snap2);
                let maps = Arc::clone(&maps);
                loom_lite::thread::spawn(move || model_fetch(&table, &cache, 7, &snap, &maps))
            })
            .collect();
        let paths: Vec<FetchPath> = handles
            .into_iter()
            .map(|h| h.join().expect("model thread"))
            .collect();
        // The SAN-001 exit criterion: one map, in EVERY schedule.
        assert_eq!(maps.load(Ordering::SeqCst), 1, "exactly one map per herd");
        assert_eq!(
            paths.iter().filter(|p| **p == FetchPath::Led).count(),
            1,
            "exactly one leader"
        );
        // Convergence: one cached copy, exact accounting, latch cleared.
        assert_eq!(cache.len(), 1);
        cache.assert_accounting();
        assert_eq!(table.in_flight(), 0);
        if paths.contains(&FetchPath::Waited) {
            waited2.fetch_add(1, Ordering::SeqCst);
        }
        if paths.contains(&FetchPath::Hit) {
            hit2.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    // Exploration sanity: both contended shapes were exercised — some
    // schedule parked the loser on the latch, some schedule let it hit
    // the cache the leader had already populated.
    assert!(
        waited_schedules.load(Ordering::SeqCst) > 0,
        "no schedule made the loser wait on the latch"
    );
    assert!(
        hit_schedules.load(Ordering::SeqCst) > 0,
        "no schedule let the loser hit the populated cache"
    );
    drop(snap);
    let _ = std::fs::remove_file(path);
}

/// A leader whose map fails broadcasts the typed error to every waiter
/// and clears the latch, in every schedule: a thread that joined while
/// the flight was up gets [`FlightOutcome::Failed`]; one that arrived
/// after the clear leads a fresh flight itself (no negative caching).
#[test]
fn failed_map_wakes_waiters_and_clears_latch() {
    let waited_schedules = Arc::new(AtomicU64::new(0));
    let waited2 = Arc::clone(&waited_schedules);
    let report = loom_lite::model(move || {
        let table = Arc::new(FlightTable::new());
        let t_lead = {
            let table = Arc::clone(&table);
            loom_lite::thread::spawn(move || loop {
                match table.join(3) {
                    Flight::Leader(leader) => {
                        leader.publish(FlightOutcome::Failed(Arc::new(StoreError::BadChecksum {
                            expected: 1,
                            found: 2,
                        })));
                        return;
                    }
                    // The sibling won the race to lead and aborted; retry
                    // until this thread gets to publish its failure.
                    Flight::Waiter(FlightOutcome::Aborted) => continue,
                    Flight::Waiter(_) => panic!("the sibling only publishes aborts"),
                }
            })
        };
        let t_wait = {
            let table = Arc::clone(&table);
            loom_lite::thread::spawn(move || match table.join(3) {
                // Joined before the failing flight existed, or after its
                // failure cleared the latch: this thread would retry the
                // map itself — errors are never cached.
                Flight::Leader(leader) => {
                    leader.publish(FlightOutcome::Aborted);
                    false
                }
                Flight::Waiter(FlightOutcome::Failed(err)) => {
                    assert!(matches!(*err, StoreError::BadChecksum { .. }));
                    true
                }
                Flight::Waiter(_) => panic!("only a failure was published"),
            })
        };
        t_lead.join().expect("leader thread");
        let waited = t_wait.join().expect("waiter thread");
        assert_eq!(table.in_flight(), 0, "failure cleared the latch");
        if waited {
            waited2.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    assert!(
        waited_schedules.load(Ordering::SeqCst) > 0,
        "no schedule delivered the failure through the latch"
    );
}

/// A leader that unwinds without publishing (mapper panic — modelled as
/// an explicit drop, since the model propagates panics) broadcasts
/// `Aborted` from its drop guard: waiters retry, one claims the vacated
/// latch, and the day completes. No schedule strands a waiter or leaks
/// a latch.
#[test]
fn aborted_leader_unblocks_waiters() {
    let (snap, path) = mapped_fixture("abort");
    let retried_schedules = Arc::new(AtomicU64::new(0));
    let (snap2, retried2) = (Arc::clone(&snap), Arc::clone(&retried_schedules));
    let report = loom_lite::model(move || {
        let table = Arc::new(FlightTable::new());
        let t_abort = {
            let table = Arc::clone(&table);
            loom_lite::thread::spawn(move || match table.join(9) {
                // The mapper "panics": drop without publish; the guard
                // broadcasts Aborted.
                Flight::Leader(leader) => drop(leader),
                // The recoverer won the race to lead and already
                // completed the day; nothing left to abort.
                Flight::Waiter(FlightOutcome::Mapped(_)) => {}
                Flight::Waiter(_) => panic!("the sibling only publishes mappings"),
            })
        };
        let t_recover = {
            let table = Arc::clone(&table);
            let snap = Arc::clone(&snap2);
            loom_lite::thread::spawn(move || {
                let mut retried = false;
                loop {
                    match table.join(9) {
                        Flight::Leader(leader) => {
                            leader.publish(FlightOutcome::Mapped(Arc::clone(&snap)));
                            return retried;
                        }
                        Flight::Waiter(FlightOutcome::Aborted) => {
                            retried = true; // as the server's fetch loop does
                        }
                        Flight::Waiter(_) => panic!("nobody published a result"),
                    }
                }
            })
        };
        t_abort.join().expect("aborting leader thread");
        let retried = t_recover.join().expect("recovering thread");
        assert_eq!(table.in_flight(), 0, "abort cleared the latch");
        if retried {
            retried2.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    assert!(
        retried_schedules.load(Ordering::SeqCst) > 0,
        "no schedule parked the recoverer behind the aborting leader"
    );
    drop(snap);
    let _ = std::fs::remove_file(path);
}

/// Eviction racing a publish: one thread runs the full single-flighted
/// fetch of day 0 while another inserts day 2 into the same shard with
/// budget for only one snapshot — in some schedules day 0 is evicted
/// between the leader's insert and its publish. Byte accounting stays
/// exact and the budget holds in every schedule; the fetch still
/// returns a usable mapping because waiters share the leader's `Arc`,
/// never the cache's.
#[test]
fn eviction_racing_publish_keeps_accounting_exact() {
    let (snap, path) = mapped_fixture("evict-publish");
    let one = snap.mapped_bytes() as u64;
    let snap2 = Arc::clone(&snap);
    let report = loom_lite::model(move || {
        let cache = Arc::new(ShardedLru::new(1, one));
        let table = Arc::new(FlightTable::new());
        let maps = Arc::new(AtomicU64::new(0));
        let t_fetch = {
            let (cache, table, snap) = (Arc::clone(&cache), Arc::clone(&table), Arc::clone(&snap2));
            let maps = Arc::clone(&maps);
            loom_lite::thread::spawn(move || model_fetch(&table, &cache, 0, &snap, &maps))
        };
        let t_evict = {
            let (cache, snap) = (Arc::clone(&cache), Arc::clone(&snap2));
            loom_lite::thread::spawn(move || {
                cache.insert(2, snap);
            })
        };
        t_fetch.join().expect("fetch thread");
        t_evict.join().expect("evictor thread");
        assert_eq!(maps.load(Ordering::SeqCst), 1, "single flight held");
        cache.assert_accounting();
        assert_eq!(cache.len(), 1, "budget holds one snapshot");
        assert_eq!(cache.resident_bytes(), one);
        assert_eq!(table.in_flight(), 0);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    drop(snap);
    let _ = std::fs::remove_file(path);
}

/// Three threads, one shard, budget for two snapshots: inserts of three
/// distinct days race, forcing eviction in some schedules. Byte
/// accounting, the budget bound and no-duplicate-days must hold in every
/// interleaving; the survivor set depends on the schedule but its size
/// never exceeds the budget.
#[test]
fn eviction_races_keep_byte_accounting_exact() {
    let (snap, path) = mapped_fixture("evict");
    let one = snap.mapped_bytes() as u64;
    let snap2 = Arc::clone(&snap);
    let report = loom_lite::model(move || {
        let cache = Arc::new(ShardedLru::new(1, 2 * one));
        let handles: Vec<_> = [0u32, 1, 2]
            .into_iter()
            .map(|day| {
                let cache = Arc::clone(&cache);
                let snap = Arc::clone(&snap2);
                loom_lite::thread::spawn(move || {
                    let outcome = cache.insert(day, snap);
                    // An insert can evict at most the number of already-
                    // resident days.
                    assert!(outcome.evicted <= 2, "evicted {}", outcome.evicted);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        cache.assert_accounting();
        assert_eq!(cache.len(), 2, "budget holds two snapshots");
        assert_eq!(cache.resident_bytes(), 2 * one);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    drop(snap);
    let _ = std::fs::remove_file(path);
}

/// Mixed get/insert/evict with 3 threads across 2 shards: a reader
/// races an inserter of the same day and an inserter of a day that
/// hashes to the same shard. Whatever the schedule, the reader sees
/// either a miss or the incumbent mapping (never a torn entry), and the
/// accounting invariants hold.
#[test]
fn get_insert_evict_mix_is_linearizable() {
    let (snap, path) = mapped_fixture("mix");
    let one = snap.mapped_bytes() as u64;
    let snap2 = Arc::clone(&snap);
    let report = loom_lite::model(move || {
        let cache = Arc::new(ShardedLru::new(2, 2 * one));
        let c1 = Arc::clone(&cache);
        let s1 = Arc::clone(&snap2);
        // Day 0 and day 2 share shard 0 (2 shards, day % shards).
        let t1 = loom_lite::thread::spawn(move || {
            c1.insert(0, s1);
        });
        let c2 = Arc::clone(&cache);
        let s2 = Arc::clone(&snap2);
        let t2 = loom_lite::thread::spawn(move || {
            c2.insert(2, s2);
        });
        let c3 = Arc::clone(&cache);
        let t3 = loom_lite::thread::spawn(move || {
            if let Some(hit) = c3.get(0) {
                // A hit must be the incumbent fixture mapping, readable.
                assert_eq!(hit.view().num_social_nodes(), 2);
            }
        });
        for t in [t1, t2, t3] {
            t.join().expect("model thread");
        }
        cache.assert_accounting();
        // Shard 0 holds days {0, 2} — per-shard budget is one snapshot
        // (2×one split over 2 shards), so exactly one survives.
        assert_eq!(cache.len(), 1);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    drop(snap);
    let _ = std::fs::remove_file(path);
}

/// Racing inserts of the *same* day from three threads: the incumbent
/// always wins, the day is cached exactly once, bytes are counted
/// exactly once, and both losers are reported as duplicates — in every
/// schedule. (The server holds `duplicate_inserts` at zero by routing
/// cold misses through single-flight; this checks the cache-level
/// counter those metrics are built on.)
#[test]
fn racing_same_day_inserts_keep_one_copy() {
    let (snap, path) = mapped_fixture("same-day");
    let one = snap.mapped_bytes() as u64;
    let snap2 = Arc::clone(&snap);
    let report = loom_lite::model(move || {
        let cache = Arc::new(ShardedLru::new(1, u64::MAX));
        let duplicates = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let snap = Arc::clone(&snap2);
                let duplicates = Arc::clone(&duplicates);
                loom_lite::thread::spawn(move || {
                    if cache.insert(5, snap).duplicate {
                        duplicates.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), one);
        cache.assert_accounting();
        assert!(cache.get(5).is_some());
        // One incumbent, two dropped mappings — each loss is visible to
        // the metrics layer, never silent.
        assert_eq!(duplicates.load(Ordering::SeqCst), 2);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    drop(snap);
    let _ = std::fs::remove_file(path);
}
