//! # san-serve — the concurrent snapshot-serving layer
//!
//! The Google+ SAN measurement pipeline is write-once, read-many at every
//! scale: one writer persists day-indexed snapshots
//! ([`SnapshotVault`](san_graph::store::SnapshotVault)), then **many
//! concurrent readers query historical days** — per-day analytics,
//! dashboards, model-validation jobs, all hitting "give me the network as
//! of day *t*". This crate is that read side:
//!
//! * [`SnapshotServer`] opens a vault and serves
//!   [`get(day)`](SnapshotServer::get) → the nearest persisted snapshot
//!   at or before `day`, as a [`SnapshotHandle`] whose
//!   [`view()`](SnapshotHandle::view) is a zero-copy
//!   [`CsrSanView`](san_graph::view::CsrSanView) over an
//!   `mmap(2)`-backed file — **no column is ever deserialised**; a cold
//!   miss costs one `mmap` + one validation pass, a hit is an `Arc`
//!   clone (one atomic increment).
//! * A **sharded, capacity-bounded LRU** keeps hot days mapped: day keys
//!   spread across independently-locked shards (no global cache lock on
//!   the hit path), and total resident mapped bytes are bounded by
//!   [`ServeConfig::max_resident_bytes`] with least-recently-served
//!   eviction (the byte budget is split near-evenly across shards, the
//!   division remainder going to the lowest-indexed ones so the shard
//!   budgets always sum to the configured bound). Evicted days merely
//!   drop an `Arc`; readers still holding the handle keep the mapping
//!   alive until they finish.
//! * **Per-day single-flight deduplication** of cold misses (the fix for
//!   finding SAN-001): the first thread to miss a day claims that day's
//!   in-flight latch, maps + validates once, and publishes the shared
//!   mapping — or the typed [`StoreError`](san_graph::store::StoreError)
//!   — to every thread that piled up behind it. The latch protocol
//!   (`flight` module) guarantees three things under all interleavings,
//!   model-checked by `loom-lite` in `model_tests.rs`:
//!   1. *one map per herd* — N threads racing one cold day perform
//!      exactly one `mmap` + validation pass;
//!   2. *failures broadcast, never cache* — a failing map hands every
//!      waiter the same typed error and clears the latch, so the next
//!      fetch (after the file is repaired) retries from scratch;
//!   3. *no stranded waiters* — a leader that panics mid-map broadcasts
//!      an abort from its drop guard; waiters loop back and one of them
//!      claims the vacated latch.
//!
//!   Eviction racing a publish stays exact: the cache's byte accounting
//!   is updated under the shard lock, independent of the latch.
//! * [`ServeMetrics`] meters the whole path — hit/miss/eviction
//!   counters, single-flight `dedup_waits`/`dedup_hits` with a
//!   wait-latency histogram, `duplicate_inserts` (redundant maps that
//!   slipped past dedup; held at zero by single-flight), per-vault read
//!   bytes and an open/validate latency histogram (reusing
//!   [`VaultMetrics`](san_graph::meter::VaultMetrics), the same shape
//!   the vault itself meters with).
//! * [`SnapshotServer::for_each_query`] is the thread-pool driver for
//!   mixed-day query streams: any `SanRead`-generic analytic (all of
//!   `san-metrics` qualifies) runs against whichever day each query
//!   names, with results returned in input order.
//!
//! Because everything downstream is generic over
//! [`SanRead`](san_graph::SanRead), serving mapped views changes no
//! analytic code and no analytic result: the `mapped_equivalence` suite
//! in `san-metrics` locks mapped-vs-loaded bit-identity down.
//!
//! Unix-only (the mmap substrate lives in `san_graph::mmap`): on other
//! targets this crate compiles to an empty shell so the workspace still
//! builds, and the eager
//! `SnapshotVault::load_day`
//! path remains the portable fallback.

#[cfg(unix)]
pub mod cache;
#[cfg(unix)]
mod flight;
#[cfg(unix)]
pub mod metrics;
#[cfg(all(unix, test))]
mod model_tests;
#[cfg(unix)]
pub mod server;

#[cfg(unix)]
pub use metrics::ServeMetrics;
#[cfg(unix)]
pub use server::{FetchKind, QueryOutcome, ServeConfig, SnapshotHandle, SnapshotServer};
