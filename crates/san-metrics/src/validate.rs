//! Subsampling validation (§4.3, Fig. 9b).
//!
//! Only ~22 % of Google+ users declared attributes. The paper validates
//! that this subset is representative by removing each declared attribute
//! with probability 0.5 and checking that attribute metrics — e.g. the
//! attribute clustering coefficient distribution — barely move.
//! [`subsampling_validation`] packages that comparison for any metric
//! expressed as a per-degree series.

use crate::clustering::{clustering_by_degree, NodeSet};
use san_graph::subsample::subsample_attributes;
use san_graph::SanRead;
use san_stats::SplitRng;
use serde::{Deserialize, Serialize};

/// Result of one subsampling comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubsampleComparison {
    /// Per-degree series on the original SAN.
    pub original: Vec<(u64, f64)>,
    /// Per-degree series on the subsampled SAN.
    pub subsampled: Vec<(u64, f64)>,
    /// Mean absolute difference over degrees present in both series.
    pub mean_abs_diff: f64,
    /// Number of degrees the two series share.
    pub common_degrees: usize,
}

/// Mean absolute difference of two per-degree series over their common
/// support.
pub fn series_gap(a: &[(u64, f64)], b: &[(u64, f64)]) -> (f64, usize) {
    let mut diff = 0.0;
    let mut n = 0;
    for &(d, va) in a {
        if let Some(&(_, vb)) = b.iter().find(|(db, _)| *db == d) {
            diff += (va - vb).abs();
            n += 1;
        }
    }
    if n == 0 {
        (0.0, 0)
    } else {
        (diff / n as f64, n)
    }
}

/// Runs the §4.3 validation on the attribute clustering-vs-degree
/// distribution: subsample attribute links with `keep_prob` (the paper uses
/// 0.5) and compare the per-degree attribute clustering coefficients.
pub fn subsampling_validation(
    san: &impl SanRead,
    keep_prob: f64,
    rng: &mut SplitRng,
) -> SubsampleComparison {
    let original = clustering_by_degree(san, NodeSet::Attr);
    let sub = subsample_attributes(san, keep_prob, rng);
    let subsampled = clustering_by_degree(&sub, NodeSet::Attr);
    let (mean_abs_diff, common_degrees) = series_gap(&original, &subsampled);
    SubsampleComparison {
        original,
        subsampled,
        mean_abs_diff,
        common_degrees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{AttrType, San};

    /// A SAN with many same-size attribute communities, so the per-degree
    /// clustering curve is robust to 50% subsampling.
    fn community_san(groups: usize, group_size: usize) -> San {
        let mut san = San::new();
        let mut users = Vec::new();
        for _ in 0..groups * group_size {
            users.push(san.add_social_node());
        }
        for g in 0..groups {
            let a = san.add_attr_node(AttrType::Employer);
            let members = &users[g * group_size..(g + 1) * group_size];
            for &u in members {
                san.add_attr_link(u, a);
            }
            // Dense intra-community links.
            for &u in members {
                for &v in members {
                    if u != v {
                        san.add_social_link(u, v);
                    }
                }
            }
        }
        san
    }

    #[test]
    fn identity_subsample_has_zero_gap() {
        let san = community_san(10, 4);
        let mut rng = SplitRng::new(1);
        let cmp = subsampling_validation(&san, 1.0, &mut rng);
        assert_eq!(cmp.mean_abs_diff, 0.0);
        assert!(cmp.common_degrees > 0);
        assert_eq!(cmp.original, cmp.subsampled);
    }

    #[test]
    fn half_subsample_small_gap_on_cliques() {
        // Communities are cliques: clustering = 1 at every degree, so the
        // subsampled curve must agree wherever it is defined.
        let san = community_san(30, 5);
        let mut rng = SplitRng::new(2);
        let cmp = subsampling_validation(&san, 0.5, &mut rng);
        assert!(cmp.mean_abs_diff < 1e-9, "gap={}", cmp.mean_abs_diff);
    }

    #[test]
    fn series_gap_disjoint_support() {
        let a = vec![(1u64, 0.5)];
        let b = vec![(2u64, 0.7)];
        let (gap, n) = series_gap(&a, &b);
        assert_eq!(gap, 0.0);
        assert_eq!(n, 0);
    }

    #[test]
    fn series_gap_partial_overlap() {
        let a = vec![(1u64, 0.5), (2, 0.8)];
        let b = vec![(2u64, 0.6), (3, 0.9)];
        let (gap, n) = series_gap(&a, &b);
        assert_eq!(n, 1);
        assert!((gap - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_keep_removes_support() {
        let san = community_san(5, 4);
        let mut rng = SplitRng::new(3);
        let cmp = subsampling_validation(&san, 0.0, &mut rng);
        assert!(cmp.subsampled.is_empty());
        assert_eq!(cmp.common_degrees, 0);
    }

    #[test]
    fn declaration_rate_comparison() {
        // Sanity: subsampling halves the number of attribute links but the
        // clustering of surviving communities stays meaningful.
        let san = community_san(40, 6);
        let mut rng = SplitRng::new(4);
        let sub = subsample_attributes(&san, 0.5, &mut rng);
        let frac = sub.num_attr_links() as f64 / san.num_attr_links() as f64;
        assert!((frac - 0.5).abs() < 0.1, "frac={frac}");
    }
}
