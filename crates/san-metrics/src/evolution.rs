//! Metric evolution over a SAN timeline, with the paper's three-phase
//! annotation.
//!
//! Google+ grew through three regimes (§2.2): **Phase I** (days 1–20,
//! explosive early growth), **Phase II** (days 21–75, stabilised
//! invitation-only growth) and **Phase III** (days 76+, public release).
//! Nearly every metric the paper measures shows a visible regime change at
//! those boundaries; [`PhaseBounds`] captures the boundaries and
//! [`evolve_metric`] produces the day-indexed series that the evolution
//! figures (4, 6, 7b, 8, 11, 12b) plot.
//!
//! All sweeps ride the **snapshot pipeline**: every sampled day's
//! [`CsrSan`] is produced by delta-freezing — patching the previous day's
//! CSR arrays with that day's events
//! ([`SanTimeline::for_each_snapshot`] /
//! [`SanTimeline::snapshot_stream`]) — so a full-resolution sweep is
//! near-linear in events, not quadratic. The parallel variant
//! [`evolve_metric_parallel`] streams `Arc`-shared snapshots to workers
//! through a bounded channel (no flat-array clone per day), so peak memory
//! is O(threads × E) however long the timeline is;
//! [`evolve_metric_sharded`] adds the second axis — each worker
//! range-partitions its day into a
//! [`ShardedCsrSan`](san_graph::ShardedCsrSan) so one expensive snapshot
//! can saturate the machine (days × shards). Metrics that only read
//! aggregate counters should use [`evolve_metric_counts`], which never
//! freezes at all.

use san_graph::evolve::DayCounts;
use san_graph::evolve::SnapshotStream;
use san_graph::store::{SnapshotVault, StoreError};
use san_graph::view::CsrSanView;
use san_graph::{CsrSan, SanTimeline, ShardedCsrSan};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks recovering from poisoning: the sweep's shared state (result
/// rows, the caught-panic slot, the channel receiver) stays coherent
/// under a panicking holder, and the caught panic is re-thrown after the
/// join anyway — cascading a second panic would only mask the first.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Mutex::into_inner`] with the same poisoning recovery as [`lock_ok`].
fn into_inner_ok<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// The three evolution phases of Google+.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Early days: dramatic size increase.
    I,
    /// Invitation-only steady growth.
    II,
    /// Public release: growth spike again.
    III,
}

/// Day boundaries separating the phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBounds {
    /// Last day (inclusive) of Phase I.
    pub phase1_end: u32,
    /// Last day (inclusive) of Phase II.
    pub phase2_end: u32,
}

impl PhaseBounds {
    /// The paper's boundaries: Phase I ends day 20, Phase II ends day 75.
    pub const PAPER: PhaseBounds = PhaseBounds {
        phase1_end: 20,
        phase2_end: 75,
    };

    /// Which phase a day belongs to.
    pub fn phase_of(&self, day: u32) -> Phase {
        if day <= self.phase1_end {
            Phase::I
        } else if day <= self.phase2_end {
            Phase::II
        } else {
            Phase::III
        }
    }
}

/// A day-indexed metric series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricSeries {
    /// Metric name (used by the experiment harness output).
    pub name: String,
    /// Sampled days.
    pub days: Vec<u32>,
    /// Metric value at each sampled day.
    pub values: Vec<f64>,
}

impl MetricSeries {
    /// Value on the last sampled day (`None` if empty).
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Mean of the values sampled within the given phase.
    pub fn phase_mean(&self, bounds: PhaseBounds, phase: Phase) -> Option<f64> {
        let vals: Vec<f64> = self
            .days
            .iter()
            .zip(&self.values)
            .filter(|(d, _)| bounds.phase_of(**d) == phase)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(san_stats::mean(&vals))
        }
    }

    /// Net change of the metric across the sampled days of a phase
    /// (`last − first`), used by tests asserting "increases in Phase II".
    pub fn phase_trend(&self, bounds: PhaseBounds, phase: Phase) -> Option<f64> {
        let vals: Vec<f64> = self
            .days
            .iter()
            .zip(&self.values)
            .filter(|(d, _)| bounds.phase_of(**d) == phase)
            .map(|(_, v)| *v)
            .collect();
        if vals.len() < 2 {
            None
        } else {
            Some(vals[vals.len() - 1] - vals[0])
        }
    }
}

/// Evaluates `metric` on the frozen end-of-day snapshot of every
/// `step`-th day (always including the final day) in a single incremental
/// delta-freeze pass ([`SanTimeline::for_each_snapshot`]).
///
/// The metric sees an immutable [`CsrSan`] — the cache-friendly read form
/// every analytic in this crate accepts. Each sampled snapshot is a patch
/// of the previous day's CSR arrays, never a from-scratch freeze, and is
/// borrowed straight from the freezer (no per-day clone). Metrics that
/// only read aggregate counters (node/link totals, density) should use
/// [`evolve_metric_counts`] instead, which never builds a CSR at all.
pub fn evolve_metric<F>(
    timeline: &SanTimeline,
    name: &str,
    step: u32,
    mut metric: F,
) -> MetricSeries
where
    F: FnMut(u32, &CsrSan) -> f64,
{
    let mut series = MetricSeries {
        name: name.to_string(),
        ..MetricSeries::default()
    };
    timeline.for_each_snapshot(step, |day, snap| {
        series.days.push(day);
        series.values.push(metric(day, snap));
    });
    series
}

/// [`evolve_metric`] over any [`SnapshotSource`]: sequential sweep that
/// can warm-start from a persisted vault day. A vault-backed sweep over
/// `start..=max_day` is bit-identical to the `day ≥ start` suffix of the
/// full replay sweep — the series is a resumable computation.
pub fn evolve_metric_from<F>(
    source: SnapshotSource<'_>,
    name: &str,
    step: u32,
    mut metric: F,
) -> Result<MetricSeries, StoreError>
where
    F: FnMut(u32, &CsrSan) -> f64,
{
    // The replay arm keeps the borrowing zero-clone sweep; the vault arm
    // pays one Arc hand-off per sampled day (reclaimed between days).
    if let SnapshotSource::Replay(tl) = source {
        return Ok(evolve_metric(tl, name, step, metric));
    }
    let mut series = MetricSeries {
        name: name.to_string(),
        ..MetricSeries::default()
    };
    for (day, snap) in source.stream(step)? {
        series.days.push(day);
        series.values.push(metric(day, &snap));
    }
    Ok(series)
}

/// Evaluates a counter-only metric over the timeline without freezing a
/// single snapshot.
///
/// The metric sees the end-of-day [`DayCounts`] (cumulative node/link
/// totals) for every sampled day — enough for growth curves (Figs. 2–3),
/// density, and average degree. One incremental replay, no CSR builds, no
/// allocations per day; use this instead of [`evolve_metric`] whenever the
/// metric never inspects neighbourhoods.
pub fn evolve_metric_counts<F>(
    timeline: &SanTimeline,
    name: &str,
    step: u32,
    mut metric: F,
) -> MetricSeries
where
    F: FnMut(&DayCounts) -> f64,
{
    assert!(step >= 1, "step must be at least 1");
    let mut series = MetricSeries {
        name: name.to_string(),
        ..MetricSeries::default()
    };
    let max_day = timeline.max_day();
    timeline.for_each_day(|day, san| {
        if day % step == 0 || Some(day) == max_day {
            series.days.push(day);
            series.values.push(metric(&DayCounts::measure(day, san)));
        }
    });
    series
}

/// Where an evolution sweep gets its snapshots: a full delta-freeze
/// replay from day 0, a [`SnapshotVault`] warm start, or a zero-copy
/// mapped snapshot seed.
///
/// Every `evolve_metric*_from` driver accepts this, so the same metric
/// sweep can run cold (event log only) or hot (persisted days on disk)
/// without changing the metric code. The vault-backed stream yields the
/// same `step` grid as the full sweep restricted to `day ≥ start`, with
/// bit-identical snapshots (`vault_equivalence` locks this down).
#[derive(Debug, Clone, Copy)]
pub enum SnapshotSource<'a> {
    /// Delta-freeze the whole timeline from day 0 (what the plain
    /// [`evolve_metric`] family does).
    Replay(&'a SanTimeline),
    /// Load the nearest persisted day `≤ start` from the vault and
    /// delta-patch forward, sweeping only days `start..=max_day`.
    Vault {
        /// The event log (still needed to patch forward from the
        /// persisted day).
        timeline: &'a SanTimeline,
        /// Where persisted days live.
        vault: &'a SnapshotVault,
        /// First day the sweep should report.
        start: u32,
    },
    /// Seed from a **zero-copy mapped snapshot** — the view a
    /// [`MappedSnapshot`](san_graph::mmap::MappedSnapshot) (e.g. one
    /// served out of the `san-serve` cache) hands out — materialise it
    /// once ([`CsrSanView::to_owned_csr`]), and delta-patch forward,
    /// sweeping only days `start..=max_day`. This is the vault warm
    /// start without the eager column deserialisation: the seed comes
    /// straight off the mapped pages.
    ///
    /// The drivers panic if `day > start` (the seed must be at or before
    /// the first reported day), mirroring
    /// [`SanTimeline::resume_from_snapshot`].
    Mapped {
        /// The event log (still needed to patch forward from the
        /// mapped day).
        timeline: &'a SanTimeline,
        /// A validated zero-copy view holding the end-of-`day` snapshot
        /// of this timeline.
        view: CsrSanView<'a>,
        /// The day the mapped snapshot freezes.
        day: u32,
        /// First day the sweep should report.
        start: u32,
    },
}

impl<'a> SnapshotSource<'a> {
    /// Opens the snapshot stream for this source. Only the vault arm can
    /// fail (disk / validation errors).
    fn stream(&self, step: u32) -> Result<SnapshotStream<'a>, StoreError> {
        match *self {
            SnapshotSource::Replay(tl) => Ok(tl.snapshot_stream(step)),
            SnapshotSource::Vault {
                timeline,
                vault,
                start,
            } => timeline.resume_from_vault(vault, start, step),
            SnapshotSource::Mapped {
                timeline,
                view,
                day,
                start,
            } => Ok(timeline.resume_from_snapshot(Arc::new(view.to_owned_csr()), day, start, step)),
        }
    }
}

/// The shared streamed-parallel driver behind the `evolve_metric_parallel`
/// and `evolve_metric_sharded` families: delta-frozen `Arc<CsrSan>` days
/// fan out through a bounded channel to `threads` scoped workers running
/// `eval`. The stream may be a full replay or a vault warm start — the
/// driver does not care.
fn stream_metric_parallel<F>(
    stream: SnapshotStream<'_>,
    name: &str,
    threads: usize,
    eval: F,
) -> MetricSeries
where
    F: Fn(u32, Arc<CsrSan>) -> f64 + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    let mut series = MetricSeries {
        name: name.to_string(),
        ..MetricSeries::default()
    };
    // Bounded hand-off: producer blocks once 2×threads snapshots are in
    // flight. Workers share the receiver behind a mutex (dropped before
    // the metric runs, so consumption itself is concurrent). Each item is
    // an Arc hand-off, not a flat-array clone; the freezer only allocates
    // a fresh buffer for days whose Arc a worker still holds.
    let (tx, rx) = sync_channel::<(u32, Arc<CsrSan>)>(2 * threads);
    let rx = Mutex::new(rx);
    let results = Mutex::new(Vec::<(u32, f64)>::new());
    // A panicking metric must not wedge the producer against a full
    // channel: workers catch the panic, keep draining without computing,
    // and the payload is re-thrown after the scope joins.
    let panicked = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let received = lock_ok(&rx).recv();
                let Ok((day, snap)) = received else {
                    break; // channel closed and drained: sweep done
                };
                if lock_ok(&panicked).is_some() {
                    continue;
                }
                match catch_unwind(AssertUnwindSafe(|| eval(day, snap))) {
                    Ok(value) => lock_ok(&results).push((day, value)),
                    Err(payload) => *lock_ok(&panicked) = Some(payload),
                }
            });
        }
        for item in stream {
            // Stop patching the remaining days once a worker has caught a
            // metric panic — the sweep is dead either way.
            if lock_ok(&panicked).is_some() {
                break;
            }
            if tx.send(item).is_err() {
                break; // unreachable while workers hold the receiver
            }
        }
        drop(tx); // close the channel so workers exit their recv loops
    });
    if let Some(payload) = into_inner_ok(panicked) {
        resume_unwind(payload);
    }
    let mut rows = into_inner_ok(results);
    rows.sort_unstable_by_key(|&(day, _)| day);
    for (day, value) in rows {
        series.days.push(day);
        series.values.push(value);
    }
    series
}

/// Parallel variant of [`evolve_metric`] for expensive per-day metrics —
/// **snapshot-level** parallelism (one day per worker).
///
/// The producer (caller thread) streams delta-frozen `(day, Arc<CsrSan>)`
/// snapshots through a **bounded channel** of capacity `2 × threads` to
/// `threads` scoped workers evaluating `metric` — the read/write split in
/// action: a single writer patches snapshots forward, many readers measure
/// them concurrently. When workers fall behind, the producer blocks on the
/// full channel, so peak memory is O(threads × E) — independent of
/// timeline length and of `step` — instead of the O(days/step × E) of
/// materialising every sampled snapshot up front. Worth it when the metric
/// dominates the patch cost (diameter, exact clustering); for cheap
/// metrics prefer the single-pass [`evolve_metric`], for counter-only
/// metrics [`evolve_metric_counts`], and when a *single* day should
/// saturate the machine, [`evolve_metric_sharded`].
///
/// The returned series is in day order regardless of which worker finished
/// first, and is identical to the sequential [`evolve_metric`] result for
/// any pure `metric`.
pub fn evolve_metric_parallel<F>(
    timeline: &SanTimeline,
    name: &str,
    step: u32,
    threads: usize,
    metric: F,
) -> MetricSeries
where
    F: Fn(u32, &CsrSan) -> f64 + Sync,
{
    evolve_metric_parallel_from(
        SnapshotSource::Replay(timeline),
        name,
        step,
        threads,
        metric,
    )
    .expect("replay source cannot fail")
}

/// [`evolve_metric_parallel`] over any [`SnapshotSource`]: the same
/// bounded-channel fan-out, but the producer can warm-start from a
/// persisted vault day instead of replaying the whole timeline. Fails only
/// when the vault-backed source cannot load its snapshot.
pub fn evolve_metric_parallel_from<F>(
    source: SnapshotSource<'_>,
    name: &str,
    step: u32,
    threads: usize,
    metric: F,
) -> Result<MetricSeries, StoreError>
where
    F: Fn(u32, &CsrSan) -> f64 + Sync,
{
    assert!(step >= 1, "step must be at least 1");
    let stream = source.stream(step)?;
    Ok(stream_metric_parallel(
        stream,
        name,
        threads,
        |day, snap| metric(day, &snap),
    ))
}

/// Evolution sweep with **days × shards** parallelism: `threads` workers
/// each take one sampled day at a time (as in [`evolve_metric_parallel`])
/// and range-partition it into a `shards`-way [`ShardedCsrSan`] for the
/// metric to sweep with intra-snapshot parallelism
/// ([`ShardedCsrSan::map_shards`] / `fold_shards`).
///
/// Pick the split to match the workload: long timelines with cheap days
/// want `threads > 1, shards = 1`; short timelines with expensive days
/// (effective diameter, exact clustering on the final snapshot) want
/// `threads = 1, shards = cores`; in between, `threads × shards ≈ cores`.
/// The hand-off is `Arc`-shared end to end — the freezer's day goes to the
/// worker and into the sharded view without ever cloning a flat array.
pub fn evolve_metric_sharded<F>(
    timeline: &SanTimeline,
    name: &str,
    step: u32,
    threads: usize,
    shards: usize,
    metric: F,
) -> MetricSeries
where
    F: Fn(u32, &ShardedCsrSan) -> f64 + Sync,
{
    evolve_metric_sharded_from(
        SnapshotSource::Replay(timeline),
        name,
        step,
        threads,
        shards,
        metric,
    )
    .expect("replay source cannot fail")
}

/// [`evolve_metric_sharded`] over any [`SnapshotSource`]: days × shards
/// parallelism with an optional vault warm start.
pub fn evolve_metric_sharded_from<F>(
    source: SnapshotSource<'_>,
    name: &str,
    step: u32,
    threads: usize,
    shards: usize,
    metric: F,
) -> Result<MetricSeries, StoreError>
where
    F: Fn(u32, &ShardedCsrSan) -> f64 + Sync,
{
    assert!(step >= 1, "step must be at least 1");
    assert!(shards >= 1, "need at least one shard");
    let stream = source.stream(step)?;
    Ok(stream_metric_parallel(
        stream,
        name,
        threads,
        |day, snap| metric(day, &ShardedCsrSan::new(snap, shards)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{SanRead, SocialId, TimelineBuilder};

    fn growing_timeline(days: u32) -> SanTimeline {
        let mut tb = TimelineBuilder::new();
        let mut users: Vec<SocialId> = Vec::new();
        for day in 0..=days {
            tb.advance_to_day(day);
            let u = tb.add_social_node();
            if let Some(&prev) = users.last() {
                tb.add_social_link(u, prev);
            }
            users.push(u);
        }
        tb.finish().0
    }

    #[test]
    fn phase_boundaries() {
        let b = PhaseBounds::PAPER;
        assert_eq!(b.phase_of(0), Phase::I);
        assert_eq!(b.phase_of(20), Phase::I);
        assert_eq!(b.phase_of(21), Phase::II);
        assert_eq!(b.phase_of(75), Phase::II);
        assert_eq!(b.phase_of(76), Phase::III);
        assert_eq!(b.phase_of(98), Phase::III);
    }

    #[test]
    fn evolve_metric_samples_steps_and_last_day() {
        let tl = growing_timeline(10);
        let series = evolve_metric(&tl, "nodes", 3, |_, san| san.num_social_nodes() as f64);
        assert_eq!(series.days, vec![0, 3, 6, 9, 10]);
        assert_eq!(series.values, vec![1.0, 4.0, 7.0, 10.0, 11.0]);
        assert_eq!(series.last(), Some(11.0));
        assert_eq!(series.name, "nodes");
    }

    #[test]
    fn evolve_metric_step_one_covers_all_days() {
        let tl = growing_timeline(5);
        let series = evolve_metric(&tl, "links", 1, |_, san| san.num_social_links() as f64);
        assert_eq!(series.days.len(), 6);
        // Links grow by one per day after day 0.
        assert_eq!(series.values, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn phase_statistics() {
        let tl = growing_timeline(98);
        let series = evolve_metric(&tl, "nodes", 1, |_, san| san.num_social_nodes() as f64);
        let b = PhaseBounds::PAPER;
        let m1 = series.phase_mean(b, Phase::I).unwrap();
        let m3 = series.phase_mean(b, Phase::III).unwrap();
        assert!(m3 > m1);
        let t2 = series.phase_trend(b, Phase::II).unwrap();
        assert!((t2 - 54.0).abs() < 1e-12); // days 21..=75 add 54 nodes
    }

    #[test]
    fn phase_stats_empty_phase() {
        let tl = growing_timeline(5);
        let series = evolve_metric(&tl, "x", 1, |_, _| 1.0);
        assert_eq!(series.phase_mean(PhaseBounds::PAPER, Phase::III), None);
        assert_eq!(series.phase_trend(PhaseBounds::PAPER, Phase::III), None);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn zero_step_rejected() {
        let tl = growing_timeline(3);
        evolve_metric(&tl, "x", 0, |_, _| 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let tl = growing_timeline(40);
        let seq = evolve_metric(&tl, "links", 3, |_, san| san.num_social_links() as f64);
        for threads in [1, 2, 4] {
            let par = evolve_metric_parallel(&tl, "links", 3, threads, |_, san| {
                san.num_social_links() as f64
            });
            assert_eq!(par.days, seq.days, "threads={threads}");
            assert_eq!(par.values, seq.values, "threads={threads}");
        }
    }

    #[test]
    fn sharded_sweep_matches_sequential_over_threads_and_shards() {
        let tl = growing_timeline(30);
        let seq = evolve_metric(&tl, "links", 3, |_, s| s.num_social_links() as f64);
        for threads in [1usize, 2] {
            for shards in [1usize, 2, 4] {
                // Per-shard link counters summed across shards must equal
                // the whole-day counter on every sampled day.
                let par = evolve_metric_sharded(&tl, "links", 3, threads, shards, |_, g| {
                    g.fold_shards(|s| s.num_social_links(), 0usize, |a, p| a + p) as f64
                });
                assert_eq!(par.days, seq.days, "threads={threads} shards={shards}");
                assert_eq!(par.values, seq.values, "threads={threads} shards={shards}");
            }
        }
    }

    #[test]
    fn sharded_sweep_empty_timeline() {
        let tl = SanTimeline::default();
        let s = evolve_metric_sharded(&tl, "x", 1, 2, 4, |_, _| 0.0);
        assert!(s.days.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn sharded_sweep_rejects_zero_shards() {
        let tl = growing_timeline(3);
        evolve_metric_sharded(&tl, "x", 1, 1, 0, |_, _| 0.0);
    }

    #[test]
    fn parallel_empty_timeline() {
        let tl = SanTimeline::default();
        let s = evolve_metric_parallel(&tl, "x", 1, 4, |_, _| 0.0);
        assert!(s.days.is_empty());
    }

    #[test]
    fn parallel_more_threads_than_samples() {
        let tl = growing_timeline(2);
        let s = evolve_metric_parallel(&tl, "n", 1, 8, |_, san| san.num_social_nodes() as f64);
        assert_eq!(s.days, vec![0, 1, 2]);
        assert_eq!(s.values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn parallel_propagates_metric_panic() {
        let tl = growing_timeline(12);
        let result = std::panic::catch_unwind(|| {
            evolve_metric_parallel(&tl, "boom", 1, 3, |day, _| {
                assert!(day != 5, "metric exploded");
                0.0
            })
        });
        assert!(result.is_err(), "panic must propagate, not deadlock");
    }

    #[test]
    fn counts_path_matches_freezing_path() {
        let tl = growing_timeline(17);
        for step in [1, 3, 7] {
            let frozen = evolve_metric(&tl, "links", step, |_, s| s.num_social_links() as f64);
            let counted = evolve_metric_counts(&tl, "links", step, |c| c.social_links as f64);
            assert_eq!(counted.days, frozen.days, "step={step}");
            assert_eq!(counted.values, frozen.values, "step={step}");
        }
    }

    #[test]
    fn counts_path_empty_timeline() {
        let tl = SanTimeline::default();
        let s = evolve_metric_counts(&tl, "x", 1, |_| 1.0);
        assert!(s.days.is_empty());
    }

    #[test]
    fn counts_path_day_counts_fields() {
        let tl = growing_timeline(6);
        let s = evolve_metric_counts(&tl, "nodes", 2, |c| c.social_nodes as f64);
        assert_eq!(s.days, vec![0, 2, 4, 6]);
        assert_eq!(s.values, vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn day_passed_to_metric() {
        let tl = growing_timeline(4);
        let series = evolve_metric(&tl, "day", 2, |day, _| day as f64);
        assert_eq!(
            series.days,
            series.values.iter().map(|&v| v as u32).collect::<Vec<_>>()
        );
    }
}
