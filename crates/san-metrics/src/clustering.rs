//! Clustering coefficients: exact (§3.4) and the constant-time sampling
//! estimator of Appendix A (Algorithm 2, Theorem 3).
//!
//! For a node `u` with social neighbourhood `Γs(u)` (undirected union of in-
//! and out-neighbours for social nodes; members for attribute nodes), the
//! directed clustering coefficient is
//!
//! ```text
//! c(u) = L(u) / (|Γs(u)|·(|Γs(u)|−1))
//! ```
//!
//! where `L(u)` counts the **directed** links among `Γs(u)` (a reciprocal
//! pair contributes 2). Nodes with fewer than two neighbours have `c(u)=0`.
//!
//! Algorithm 2 estimates the average over a node set `Ω` by sampling `K`
//! uniform centres and a uniform neighbour pair each, averaging the triple
//! map `F ∈ {0,1,2}`, and dividing by `2^I` (`I = 1` for directed SANs).
//! With `K = ⌈ln(2ν)/(2ε²)⌉` the error is at most `ε` with probability
//! `1 − 1/ν` (Theorem 3).

use san_graph::{AttrId, AttrType, SanRead, ShardedCsrSan, SocialId};
use san_stats::{hoeffding_samples, SplitRng};
use std::collections::{BTreeMap, HashSet};

/// Which node set `Ω` a clustering aggregate ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSet {
    /// All social nodes (`Ω = Vs`): the *social* clustering coefficient.
    Social,
    /// All attribute nodes (`Ω = Va`): the *attribute* clustering
    /// coefficient.
    Attr,
}

/// Counts directed links among a set of social nodes.
fn directed_links_among(san: &impl SanRead, nodes: &[SocialId]) -> usize {
    if nodes.len() < 2 {
        return 0;
    }
    let set: HashSet<SocialId> = nodes.iter().copied().collect();
    let mut count = 0;
    for &w in nodes {
        for &x in san.out_neighbors(w) {
            if x != w && set.contains(&x) {
                count += 1;
            }
        }
    }
    count
}

/// Exact clustering coefficient of a social node.
pub fn local_clustering_social(san: &impl SanRead, u: SocialId) -> f64 {
    let nbrs = san.social_neighbors(u);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    directed_links_among(san, &nbrs) as f64 / (d * (d - 1)) as f64
}

/// Exact clustering coefficient of an attribute node (community cohesion of
/// the users sharing the attribute).
pub fn local_clustering_attr(san: &impl SanRead, a: AttrId) -> f64 {
    let members = san.members_of(a);
    let d = members.len();
    if d < 2 {
        return 0.0;
    }
    directed_links_among(san, members) as f64 / (d * (d - 1)) as f64
}

/// Exact average clustering coefficient over `Ω` (O(Σ deg²); use
/// [`approx_average_clustering`] for large networks).
pub fn average_clustering_exact(san: &impl SanRead, which: NodeSet) -> f64 {
    match which {
        NodeSet::Social => {
            let n = san.num_social_nodes();
            if n == 0 {
                return 0.0;
            }
            san.social_nodes()
                .map(|u| local_clustering_social(san, u))
                .sum::<f64>()
                / n as f64
        }
        NodeSet::Attr => {
            let n = san.num_attr_nodes();
            if n == 0 {
                return 0.0;
            }
            san.attr_nodes()
                .map(|a| local_clustering_attr(san, a))
                .sum::<f64>()
                / n as f64
        }
    }
}

/// Shard-parallel exact average clustering over `Ω`.
///
/// Decomposition: each shard sums the exact `c(u)` of the nodes it owns —
/// the shard view answers neighbourhood queries globally, so triangles
/// whose corners live in *other* shards are counted exactly as in the
/// sequential sweep — and the per-shard sums merge by addition in shard
/// order before the single division by `|Ω|`. The result matches
/// [`average_clustering_exact`] up to float-summation regrouping (the
/// shard-equivalence suite pins ≤ 1e-12).
pub fn average_clustering_sharded(g: &ShardedCsrSan, which: NodeSet) -> f64 {
    let n = match which {
        NodeSet::Social => g.csr().num_social_nodes(),
        NodeSet::Attr => g.csr().num_attr_nodes(),
    };
    if n == 0 {
        return 0.0;
    }
    let sum = g.fold_shards(
        |shard| match which {
            NodeSet::Social => shard
                .social_nodes()
                .map(|u| local_clustering_social(&shard, u))
                .sum::<f64>(),
            NodeSet::Attr => shard
                .attr_nodes()
                .map(|a| local_clustering_attr(&shard, a))
                .sum::<f64>(),
        },
        0.0f64,
        |acc, part| acc + part,
    );
    sum / n as f64
}

/// Samples `F(v, u, w)` for a uniform neighbour pair of centre `u`
/// (Algorithm 2 lines 6–8). Returns 0 for centres with fewer than two
/// neighbours (their triple set is empty and their `c(u)` is 0).
fn sample_f(san: &impl SanRead, nbrs: &[SocialId], rng: &mut SplitRng) -> u8 {
    let d = nbrs.len();
    if d < 2 {
        return 0;
    }
    let i = rng.below(d as u64) as usize;
    let mut j = rng.below((d - 1) as u64) as usize;
    if j >= i {
        j += 1;
    }
    let (v, w) = (nbrs[i], nbrs[j]);
    let mut f = 0u8;
    if san.has_social_link(v, w) {
        f += 1;
    }
    if san.has_social_link(w, v) {
        f += 1;
    }
    f
}

/// Algorithm 2 with an explicit sample budget `k`.
pub fn approx_average_clustering_k(
    san: &impl SanRead,
    which: NodeSet,
    k: usize,
    rng: &mut SplitRng,
) -> f64 {
    let n = match which {
        NodeSet::Social => san.num_social_nodes(),
        NodeSet::Attr => san.num_attr_nodes(),
    };
    if n == 0 || k == 0 {
        return 0.0;
    }
    let mut total: u64 = 0;
    for _ in 0..k {
        let f = match which {
            NodeSet::Social => {
                let u = SocialId(rng.below(n as u64) as u32);
                let nbrs = san.social_neighbors(u);
                sample_f(san, &nbrs, rng)
            }
            NodeSet::Attr => {
                let a = AttrId(rng.below(n as u64) as u32);
                sample_f(san, san.members_of(a), rng)
            }
        };
        total += u64::from(f);
    }
    // I = 1 (directed), so divide by 2^I · K.
    total as f64 / (2.0 * k as f64)
}

/// Algorithm 2 at the `(ε, ν)` operating point; the paper uses
/// `ε = 0.002`, `ν = 100`.
pub fn approx_average_clustering(
    san: &impl SanRead,
    which: NodeSet,
    epsilon: f64,
    nu: f64,
    rng: &mut SplitRng,
) -> f64 {
    approx_average_clustering_k(san, which, hoeffding_samples(epsilon, nu), rng)
}

/// Exact per-degree clustering distribution (Fig. 9a): for each degree `d`
/// (of `|Γs(u)|` for social nodes / social degree for attribute nodes),
/// the mean clustering coefficient of the nodes with that degree.
pub fn clustering_by_degree(san: &impl SanRead, which: NodeSet) -> Vec<(u64, f64)> {
    let mut acc: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
    match which {
        NodeSet::Social => {
            for u in san.social_nodes() {
                let d = san.social_neighbors(u).len() as u64;
                if d >= 1 {
                    let e = acc.entry(d).or_insert((0.0, 0));
                    e.0 += local_clustering_social(san, u);
                    e.1 += 1;
                }
            }
        }
        NodeSet::Attr => {
            for a in san.attr_nodes() {
                let d = san.social_degree_of_attr(a) as u64;
                if d >= 1 {
                    let e = acc.entry(d).or_insert((0.0, 0));
                    e.0 += local_clustering_attr(san, a);
                    e.1 += 1;
                }
            }
        }
    }
    acc.into_iter()
        .map(|(d, (sum, n))| (d, sum / n as f64))
        .collect()
}

/// Sampled per-degree clustering for large networks: computes exact `c(u)`
/// for at most `max_nodes` uniformly sampled nodes and aggregates by degree.
pub fn clustering_by_degree_sampled(
    san: &impl SanRead,
    which: NodeSet,
    max_nodes: usize,
    rng: &mut SplitRng,
) -> Vec<(u64, f64)> {
    let n = match which {
        NodeSet::Social => san.num_social_nodes(),
        NodeSet::Attr => san.num_attr_nodes(),
    };
    if n == 0 {
        return Vec::new();
    }
    let mut acc: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
    let samples = max_nodes.min(n);
    for _ in 0..samples {
        match which {
            NodeSet::Social => {
                let u = SocialId(rng.below(n as u64) as u32);
                let d = san.social_neighbors(u).len() as u64;
                if d >= 1 {
                    let e = acc.entry(d).or_insert((0.0, 0));
                    e.0 += local_clustering_social(san, u);
                    e.1 += 1;
                }
            }
            NodeSet::Attr => {
                let a = AttrId(rng.below(n as u64) as u32);
                let d = san.social_degree_of_attr(a) as u64;
                if d >= 1 {
                    let e = acc.entry(d).or_insert((0.0, 0));
                    e.0 += local_clustering_attr(san, a);
                    e.1 += 1;
                }
            }
        }
    }
    acc.into_iter()
        .map(|(d, (sum, n))| (d, sum / n as f64))
        .collect()
}

/// Average attribute clustering coefficient per attribute type (Fig. 13b:
/// Employer ≫ School > Major > City on Google+). Returns
/// `(type, average, node count)` for every type present.
pub fn attr_clustering_by_type(san: &impl SanRead) -> Vec<(AttrType, f64, usize)> {
    let mut acc: BTreeMap<AttrType, (f64, usize)> = BTreeMap::new();
    for a in san.attr_nodes() {
        let e = acc.entry(san.attr_type(a)).or_insert((0.0, 0));
        e.0 += local_clustering_attr(san, a);
        e.1 += 1;
    }
    acc.into_iter()
        .map(|(ty, (sum, n))| (ty, sum / n as f64, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::fixtures::figure1;
    use san_graph::San;

    /// A directed triangle plus a pendant: u0<->u1, u1->u2, u2->u0, u3->u0.
    fn triangle() -> San {
        let mut san = San::new();
        let u: Vec<SocialId> = (0..4).map(|_| san.add_social_node()).collect();
        san.add_social_link(u[0], u[1]);
        san.add_social_link(u[1], u[0]);
        san.add_social_link(u[1], u[2]);
        san.add_social_link(u[2], u[0]);
        san.add_social_link(u[3], u[0]);
        san
    }

    #[test]
    fn local_clustering_exact_values() {
        let san = triangle();
        // u2: Γs = {u0, u1}; links among them: u0->u1 and u1->u0 => L=2,
        // denominator 2*1=2 => c=1.
        assert!((local_clustering_social(&san, SocialId(2)) - 1.0).abs() < 1e-12);
        // u0: Γs = {u1, u2, u3}; links among them: u1->u2 => L=1, denom 6.
        assert!((local_clustering_social(&san, SocialId(0)) - 1.0 / 6.0).abs() < 1e-12);
        // u3: single neighbour -> 0.
        assert_eq!(local_clustering_social(&san, SocialId(3)), 0.0);
    }

    #[test]
    fn attr_clustering_exact() {
        let fx = figure1();
        // Google members {u5, u6}: no social link between them -> 0.
        assert_eq!(local_clustering_attr(&fx.san, fx.google), 0.0);
        // CS members {u3, u4}: u4->u3 => L=1, denom 2 => 0.5.
        assert!((local_clustering_attr(&fx.san, fx.computer_science) - 0.5).abs() < 1e-12);
        // UC Berkeley members {u1, u2}: no social link between them -> 0.
        assert_eq!(local_clustering_attr(&fx.san, fx.uc_berkeley), 0.0);
    }

    #[test]
    fn average_exact_social() {
        let san = triangle();
        let avg = average_clustering_exact(&san, NodeSet::Social);
        // u0: 1/6, u1: Γs={u0,u2}, links u2->u0 => 1/2; u2: 1; u3: 0.
        let expect = (1.0 / 6.0 + 0.5 + 1.0 + 0.0) / 4.0;
        assert!((avg - expect).abs() < 1e-12, "avg={avg} expect={expect}");
    }

    #[test]
    fn average_exact_empty() {
        let san = San::new();
        assert_eq!(average_clustering_exact(&san, NodeSet::Social), 0.0);
        assert_eq!(average_clustering_exact(&san, NodeSet::Attr), 0.0);
    }

    #[test]
    fn approx_matches_exact_within_epsilon() {
        let san = triangle();
        let exact = average_clustering_exact(&san, NodeSet::Social);
        let mut rng = SplitRng::new(1);
        let approx = approx_average_clustering(&san, NodeSet::Social, 0.01, 100.0, &mut rng);
        assert!(
            (approx - exact).abs() <= 0.01 + 1e-9,
            "approx={approx} exact={exact}"
        );
    }

    #[test]
    fn approx_attr_matches_exact() {
        let fx = figure1();
        let exact = average_clustering_exact(&fx.san, NodeSet::Attr);
        let mut rng = SplitRng::new(2);
        let approx = approx_average_clustering(&fx.san, NodeSet::Attr, 0.01, 100.0, &mut rng);
        assert!(
            (approx - exact).abs() <= 0.01 + 1e-9,
            "approx={approx} exact={exact}"
        );
    }

    #[test]
    fn approx_zero_budget() {
        let san = triangle();
        let mut rng = SplitRng::new(3);
        assert_eq!(
            approx_average_clustering_k(&san, NodeSet::Social, 0, &mut rng),
            0.0
        );
    }

    #[test]
    fn by_degree_distribution() {
        let san = triangle();
        let dist = clustering_by_degree(&san, NodeSet::Social);
        // Degrees: u0 has Γs={u1,u2,u3} (3), u1 {u0,u2} (2), u2 {u0,u1} (2),
        // u3 {u0} (1).
        let d3 = dist.iter().find(|(d, _)| *d == 3).unwrap();
        assert!((d3.1 - 1.0 / 6.0).abs() < 1e-12);
        let d2 = dist.iter().find(|(d, _)| *d == 2).unwrap();
        assert!((d2.1 - 0.75).abs() < 1e-12); // mean of 0.5 and 1.0
        let d1 = dist.iter().find(|(d, _)| *d == 1).unwrap();
        assert_eq!(d1.1, 0.0);
    }

    #[test]
    fn sampled_by_degree_subset_of_exact_support() {
        let fx = figure1();
        let mut rng = SplitRng::new(4);
        let sampled = clustering_by_degree_sampled(&fx.san, NodeSet::Attr, 100, &mut rng);
        let exact = clustering_by_degree(&fx.san, NodeSet::Attr);
        let exact_degrees: Vec<u64> = exact.iter().map(|(d, _)| *d).collect();
        for (d, _) in sampled {
            assert!(exact_degrees.contains(&d));
        }
    }

    #[test]
    fn by_type_breakdown() {
        let fx = figure1();
        let per_type = attr_clustering_by_type(&fx.san);
        assert_eq!(per_type.len(), 4);
        let major = per_type
            .iter()
            .find(|(ty, _, _)| *ty == AttrType::Major)
            .unwrap();
        assert!((major.1 - 0.5).abs() < 1e-12); // CS is the only Major.
        assert_eq!(major.2, 1);
        let city = per_type
            .iter()
            .find(|(ty, _, _)| *ty == AttrType::City)
            .unwrap();
        assert_eq!(city.1, 0.0); // SF members {u2, u5}: no links.
    }

    #[test]
    fn sharded_average_matches_exact_for_every_k() {
        let fx = figure1();
        let csr = fx.san.freeze();
        for which in [NodeSet::Social, NodeSet::Attr] {
            let exact = average_clustering_exact(&csr, which);
            for k in [1usize, 2, 3, 7, 16] {
                let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
                let got = average_clustering_sharded(&sharded, which);
                assert!(
                    (got - exact).abs() < 1e-12,
                    "which={which:?} k={k} got={got} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn sharded_average_empty_graph() {
        let sharded = ShardedCsrSan::from_csr(San::new().freeze(), 4);
        assert_eq!(average_clustering_sharded(&sharded, NodeSet::Social), 0.0);
        assert_eq!(average_clustering_sharded(&sharded, NodeSet::Attr), 0.0);
    }

    #[test]
    fn hoeffding_bound_holds_statistically() {
        // Build a graph with known average clustering; run the estimator
        // many times with small K and check the empirical error rate is
        // within the Theorem 3 guarantee.
        let san = triangle();
        let exact = average_clustering_exact(&san, NodeSet::Social);
        let nu = 10.0;
        let epsilon = 0.1;
        let k = hoeffding_samples(epsilon, nu);
        let mut failures = 0;
        let trials = 200;
        let mut rng = SplitRng::new(5);
        for _ in 0..trials {
            let est = approx_average_clustering_k(&san, NodeSet::Social, k, &mut rng);
            if (est - exact).abs() > epsilon {
                failures += 1;
            }
        }
        // Allowed failure probability 1/nu = 10%; give 2x slack for noise.
        assert!(
            (failures as f64) < trials as f64 * 0.2,
            "failures={failures}/{trials}"
        );
    }
}
