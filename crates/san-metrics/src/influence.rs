//! Attribute influence on the social structure (§4.2) and the closure-event
//! taxonomy of §5.2.
//!
//! * [`degree_percentiles_by_attr`] — the Fig. 14 analysis: median and
//!   quartiles of members' social out-degrees for selected attribute values
//!   (on Google+, `Employer=Google` and `Major=Computer Science` members
//!   have visibly higher degrees).
//! * [`classify_closures`] — classifies new links as **triadic** (common
//!   friend), **focal** (common attribute), both, or neither; the paper
//!   observes 84 % triadic / 18 % focal / 15 % both among Google+ friend
//!   requests.
//! * [`top_attrs_by_type`] — most popular attribute values per category
//!   (used to pick the Fig. 14 columns).

use san_graph::{AttrId, AttrType, SanRead, SocialId};
use serde::{Deserialize, Serialize};

/// Degree quartiles of the members of one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttrDegreeStats {
    /// The attribute node.
    pub attr: AttrId,
    /// Number of members.
    pub members: usize,
    /// 25th percentile of members' out-degrees.
    pub p25: f64,
    /// Median out-degree.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
}

/// Computes out-degree quartiles of each attribute's members (Fig. 14).
pub fn degree_percentiles_by_attr(san: &impl SanRead, attrs: &[AttrId]) -> Vec<AttrDegreeStats> {
    attrs
        .iter()
        .map(|&a| {
            let mut degrees: Vec<f64> = san
                .members_of(a)
                .iter()
                .map(|&u| san.out_degree(u) as f64)
                .collect();
            degrees.sort_by(f64::total_cmp);
            AttrDegreeStats {
                attr: a,
                members: degrees.len(),
                p25: san_stats::summary::percentile_sorted(&degrees, 25.0),
                p50: san_stats::summary::percentile_sorted(&degrees, 50.0),
                p75: san_stats::summary::percentile_sorted(&degrees, 75.0),
            }
        })
        .collect()
}

/// The closure mix of a batch of new links (§5.2). Categories overlap the
/// way the paper reports them: `triadic` counts every link whose endpoints
/// share a friend (including those that also share an attribute), `focal`
/// counts every link whose endpoints share an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ClosureMix {
    /// Total classified links.
    pub total: usize,
    /// Links with ≥1 common social neighbour.
    pub triadic: usize,
    /// Links with ≥1 common attribute.
    pub focal: usize,
    /// Links with both.
    pub both: usize,
    /// Links with neither.
    pub neither: usize,
}

impl ClosureMix {
    /// Fraction of links that are triadic closures.
    pub fn triadic_frac(&self) -> f64 {
        self.frac(self.triadic)
    }

    /// Fraction of links that are focal closures.
    pub fn focal_frac(&self) -> f64 {
        self.frac(self.focal)
    }

    /// Fraction closing both a triangle and a focus.
    pub fn both_frac(&self) -> f64 {
        self.frac(self.both)
    }

    /// Fraction with neither a common friend nor a common attribute.
    pub fn neither_frac(&self) -> f64 {
        self.frac(self.neither)
    }

    fn frac(&self, x: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            x as f64 / self.total as f64
        }
    }
}

/// Classifies each `(src, dst)` link against the state of `san` (which must
/// *not* yet contain the links — the classification is about the network
/// the requester saw).
pub fn classify_closures(san: &impl SanRead, links: &[(SocialId, SocialId)]) -> ClosureMix {
    let mut mix = ClosureMix::default();
    for &(u, v) in links {
        mix.total += 1;
        let triadic = san.common_social_neighbors(u, v) > 0;
        let focal = san.common_attrs(u, v) > 0;
        if triadic {
            mix.triadic += 1;
        }
        if focal {
            mix.focal += 1;
        }
        if triadic && focal {
            mix.both += 1;
        }
        if !triadic && !focal {
            mix.neither += 1;
        }
    }
    mix
}

/// The `n` most popular attribute values of a given type, by member count
/// (descending, ties by id).
pub fn top_attrs_by_type(san: &impl SanRead, ty: AttrType, n: usize) -> Vec<AttrId> {
    let mut attrs: Vec<AttrId> = san
        .attr_nodes()
        .filter(|&a| san.attr_type(a) == ty)
        .collect();
    attrs.sort_by_key(|&a| (std::cmp::Reverse(san.social_degree_of_attr(a)), a));
    attrs.truncate(n);
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::fixtures::{figure1, figure1_closures};

    #[test]
    fn figure1_closure_taxonomy() {
        let fx = figure1();
        let closures = figure1_closures(&fx);
        let mix = classify_closures(&fx.san, &closures);
        assert_eq!(mix.total, 3);
        // u4->u2 triadic only; u1->u2 focal only; u6->u5 both.
        assert_eq!(mix.triadic, 2);
        assert_eq!(mix.focal, 2);
        assert_eq!(mix.both, 1);
        assert_eq!(mix.neither, 0);
        assert!((mix.triadic_frac() - 2.0 / 3.0).abs() < 1e-12);
        assert!((mix.both_frac() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn closure_mix_empty() {
        let fx = figure1();
        let mix = classify_closures(&fx.san, &[]);
        assert_eq!(mix.total, 0);
        assert_eq!(mix.triadic_frac(), 0.0);
        assert_eq!(mix.neither_frac(), 0.0);
    }

    #[test]
    fn neither_category_detected() {
        let fx = figure1();
        // u1 -> u4: no common friend, no common attribute.
        let mix = classify_closures(&fx.san, &[(fx.users[0], fx.users[3])]);
        assert_eq!(mix.neither, 1);
        assert_eq!(mix.neither_frac(), 1.0);
    }

    #[test]
    fn degree_percentiles_fig14_style() {
        let fx = figure1();
        let stats = degree_percentiles_by_attr(&fx.san, &[fx.google, fx.uc_berkeley]);
        assert_eq!(stats.len(), 2);
        // Google members: u5 (out 0), u6 (out 1).
        let g = &stats[0];
        assert_eq!(g.members, 2);
        assert!((g.p50 - 0.5).abs() < 1e-12);
        assert!(g.p25 <= g.p50 && g.p50 <= g.p75);
    }

    #[test]
    fn degree_percentiles_empty_attr() {
        let mut san = san_graph::San::new();
        let a = san.add_attr_node(AttrType::City);
        let stats = degree_percentiles_by_attr(&san, &[a]);
        assert_eq!(stats[0].members, 0);
        assert_eq!(stats[0].p50, 0.0);
    }

    #[test]
    fn top_attrs_ranked_by_membership() {
        let fx = figure1();
        // City: SF has 2 members; it is the only city.
        let top_city = top_attrs_by_type(&fx.san, AttrType::City, 5);
        assert_eq!(top_city, vec![fx.san_francisco]);
        // Employer: Google (2 members).
        let top_emp = top_attrs_by_type(&fx.san, AttrType::Employer, 1);
        assert_eq!(top_emp, vec![fx.google]);
        // Unknown type yields nothing.
        assert!(top_attrs_by_type(&fx.san, AttrType::Other, 3).is_empty());
    }
}
