//! # san-metrics — every measurement of the Google+ SAN paper
//!
//! This crate implements the full measurement toolkit of
//! *"Evolution of Social-Attribute Networks"* (Gong et al., IMC 2012),
//! sections 3, 4 and Appendix A:
//!
//! | Paper § | Metric | Module |
//! |---------|--------|--------|
//! | 3.1 / 4.2 | global + fine-grained reciprocity `r_{s,a}` | [`reciprocity`] |
//! | 3.2 / 4.1 | social + attribute density | [`density`] |
//! | 3.3 / 4.1 | effective social + attribute diameter (HyperANF) | [`hyperanf`] |
//! | 3.4 / 4.1 / App. A | clustering coefficients, exact and the constant-time Algorithm 2 | [`clustering`] |
//! | 3.5 / 4.1 | four degree distributions + lognormal/power-law best fits | [`degree_dist`] |
//! | 3.6 / 4.1 | `knn` degree correlation + assortativity (social & attribute) | [`jdd`] |
//! | 4.2 | attribute influence on degree / closure mix | [`influence`] |
//! | 4.3 | subsampling validation | [`validate`] |
//! | §2 figs 2–4 etc. | per-day metric evolution over a timeline | [`evolution`] |
//!
//! Beyond the paper's figures, [`community`] provides classical and
//! attribute-augmented label propagation (the §3.4 "dynamic community
//! detection" direction). Per-day sweeps ride the incremental snapshot
//! pipeline: [`evolution::evolve_metric`] patches each sampled day's CSR
//! forward from the previous day (no replay-per-day), and
//! [`evolution::evolve_metric_parallel`] streams those snapshots through a
//! bounded channel to worker threads with O(threads × E) peak memory.
//!
//! The hot per-node sweeps also come in **shard-parallel** form over a
//! range-partitioned [`san_graph::ShardedCsrSan`], so a *single* snapshot
//! can saturate the machine: [`clustering::average_clustering_sharded`],
//! [`reciprocity::global_reciprocity_sharded`],
//! [`degree_dist::degree_vectors_sharded`], [`jdd::social_knn_sharded`] /
//! [`jdd::social_assortativity_sharded`], and
//! [`hyperanf::social_effective_diameter_sharded`]; each decomposes into
//! per-shard partials plus an explicit associative merge, proven
//! equivalent to the sequential answer by the `shard_equivalence` suite.
//! [`evolution::evolve_metric_sharded`] combines both axes (days ×
//! shards) with `Arc<CsrSan>` hand-off.
//!
//! All heavy metrics take an explicit RNG so runs are deterministic, and all
//! approximation knobs (`ε`, `ν`, HyperANF register width) default to the
//! paper's operating points.

pub mod clustering;
pub mod community;
pub mod degree_dist;
pub mod density;
pub mod evolution;
pub mod hyperanf;
pub mod influence;
pub mod jdd;
pub mod reciprocity;
pub mod validate;

pub use clustering::{
    approx_average_clustering, average_clustering_exact, average_clustering_sharded,
    clustering_by_degree, local_clustering_attr, local_clustering_social, NodeSet,
};
pub use degree_dist::{
    degree_vectors_sharded, fit_san_degrees, fit_san_degrees_sharded, SanDegreeFits,
};
pub use density::{attr_density, social_density};
pub use evolution::{
    evolve_metric, evolve_metric_counts, evolve_metric_parallel, evolve_metric_sharded,
    MetricSeries, Phase, PhaseBounds,
};
pub use hyperanf::{
    attribute_effective_diameter, effective_diameter_from_nf, neighborhood_function_sharded,
    social_effective_diameter, social_effective_diameter_sharded, HyperLogLog,
};
pub use jdd::{
    attribute_assortativity, attribute_knn, attribute_knn_sharded, social_assortativity,
    social_assortativity_sharded, social_knn, social_knn_sharded,
};
pub use reciprocity::{
    fine_grained_reciprocity, global_reciprocity, global_reciprocity_sharded, ReciprocityCell,
};
