//! HyperANF: approximate neighbourhood function and effective diameter
//! (§3.3), from scratch.
//!
//! Computing all-pairs distances is infeasible at Google+ scale, so the
//! paper uses the HyperANF algorithm of Boldi, Rosa & Vigna: every node
//! carries a **HyperLogLog** counter of the nodes it can reach within `t`
//! hops; one synchronous round of
//!
//! ```text
//! c_u(t+1) = c_u(t) ∪ ⋃_{u→v} c_v(t)
//! ```
//!
//! advances the horizon by one hop, and the estimated neighbourhood
//! function `N(t) = Σ_u |c_u(t)|` counts ordered pairs within distance `t`.
//! The **effective diameter** is the interpolated 90th-percentile distance
//! among connected pairs.
//!
//! The paper's **attribute distance** (§4.1) between attribute nodes `a, b`
//! is `min{dist(u,v) | u ∈ Γs(a), v ∈ Γs(b)} + 1`. We compute it on a
//! *lifted* graph (attribute nodes wired to their members in both
//! directions): lifted distances equal attribute distances plus one, so the
//! attribute diameter falls out of the same machinery.

use san_graph::{SanRead, ShardedCsrSan, SocialId};
use san_stats::SplitRng;

/// A HyperLogLog cardinality counter with `2^b` registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    b: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates an empty counter; `b` must be in `4..=16`.
    pub fn new(b: u8) -> Self {
        assert!(
            (4..=16).contains(&b),
            "register exponent b={b} out of range"
        );
        HyperLogLog {
            b,
            registers: vec![0; 1 << b],
        }
    }

    /// Inserts a pre-hashed 64-bit value.
    pub fn insert_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.b)) as usize;
        let rest = hash << self.b;
        // Rank = position of the leftmost 1 bit in the remaining bits, 1-based.
        let rank = (rest.leading_zeros() as u8).min(64 - self.b) + 1;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Unions another counter into this one; returns `true` when any
    /// register changed (HyperANF's convergence signal).
    pub fn union_with(&mut self, other: &HyperLogLog) -> bool {
        debug_assert_eq!(self.b, other.b, "incompatible register widths");
        let mut changed = false;
        for (r, &o) in self.registers.iter_mut().zip(&other.registers) {
            if o > *r {
                *r = o;
                changed = true;
            }
        }
        changed
    }

    /// Estimated cardinality (with the standard small-range linear-counting
    /// correction).
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

/// Stable 64-bit mix of a node id with a seed (SplitMix64 finaliser).
#[inline]
fn hash_node(id: u64, seed: u64) -> u64 {
    let mut z = id
        .wrapping_add(seed)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x1234_5678_9ABC_DEF1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// HyperANF over an arbitrary successor structure.
///
/// * `adj[u]` — successors of node `u`;
/// * `init[u]` — whether `u`'s counter starts containing `u` itself;
/// * `count[u]` — whether `u`'s counter contributes to `N(t)`.
///
/// Returns the series `N(0), N(1), …` until convergence (no counter
/// changes) or `max_iters` rounds.
pub fn neighborhood_function(
    adj: &[Vec<u32>],
    init: &[bool],
    count: &[bool],
    b: u8,
    max_iters: usize,
    seed: u64,
) -> Vec<f64> {
    let n = adj.len();
    assert_eq!(init.len(), n);
    assert_eq!(count.len(), n);
    if n == 0 {
        return vec![0.0];
    }
    let mut counters: Vec<HyperLogLog> = (0..n)
        .map(|u| {
            let mut c = HyperLogLog::new(b);
            if init[u] {
                c.insert_hash(hash_node(u as u64, seed));
            }
            c
        })
        .collect();
    let estimate_total = |cs: &[HyperLogLog]| -> f64 {
        cs.iter()
            .zip(count)
            .filter(|(_, &keep)| keep)
            .map(|(c, _)| c.estimate())
            .sum()
    };
    let mut series = vec![estimate_total(&counters)];
    for _ in 0..max_iters {
        let mut next = counters.clone();
        let mut any_changed = false;
        for (u, outs) in adj.iter().enumerate() {
            for &v in outs {
                if next[u].union_with(&counters[v as usize]) {
                    any_changed = true;
                }
            }
        }
        counters = next;
        if !any_changed {
            break;
        }
        series.push(estimate_total(&counters));
    }
    series
}

/// Carves `buf` into disjoint mutable chunks matching contiguous `ranges`
/// (which must cover `0..buf.len()` exactly — what
/// [`ShardedCsrSan::social_ranges`] yields), so scoped shard workers can
/// write their own node range without locks.
fn split_chunks<'a, T>(
    mut buf: &'a mut [T],
    ranges: &[std::ops::Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    for r in ranges {
        let (head, tail) = buf.split_at_mut(r.len());
        out.push(head);
        buf = tail;
    }
    debug_assert!(buf.is_empty(), "ranges must cover the buffer exactly");
    out
}

/// Shard-parallel HyperANF over the directed social graph.
///
/// Decomposition: every synchronous round writes `c_u(t+1)` for the nodes
/// a shard owns into that shard's disjoint chunk of the double buffer,
/// reading the previous round's counters globally (`c_v(t)` of an
/// out-neighbour in another shard is just a shared read) — so the register
/// evolution is **bit-for-bit identical** to [`neighborhood_function`]
/// over the same adjacency. Per-node estimates are likewise filled into a
/// shard-chunked buffer and then summed sequentially in node order, which
/// keeps the reported series (and therefore the interpolated diameter)
/// bit-identical too, not merely close.
pub fn neighborhood_function_sharded(
    g: &ShardedCsrSan,
    b: u8,
    max_iters: usize,
    seed: u64,
) -> Vec<f64> {
    let csr = g.csr();
    let n = csr.num_social_nodes();
    if n == 0 {
        return vec![0.0];
    }
    let ranges = g.social_ranges();
    let mut counters: Vec<HyperLogLog> = (0..n)
        .map(|u| {
            let mut c = HyperLogLog::new(b);
            c.insert_hash(hash_node(u as u64, seed));
            c
        })
        .collect();
    let mut next = counters.clone();
    let mut estimates = vec![0.0f64; n];

    // One hop for the nodes of one chunk: copy each node's own counter
    // (reusing the slot's register buffer — no per-round allocation),
    // union the out-neighbours' previous-round counters. Returns the
    // chunk's convergence flag.
    let union_chunk =
        |chunk: &mut [HyperLogLog], range: std::ops::Range<usize>, cur: &[HyperLogLog]| -> bool {
            let mut changed = false;
            for (slot, u) in chunk.iter_mut().zip(range) {
                slot.registers.copy_from_slice(&cur[u].registers);
                for &v in csr.out_neighbors(SocialId(u as u32)) {
                    if slot.union_with(&cur[v.index()]) {
                        changed = true;
                    }
                }
            }
            changed
        };
    let estimate_chunk = |chunk: &mut [f64], range: std::ops::Range<usize>, cur: &[HyperLogLog]| {
        for (slot, u) in chunk.iter_mut().zip(range) {
            *slot = cur[u].estimate();
        }
    };

    // One hop for every owned node. Returns the convergence flag (any
    // register changed anywhere). A single non-empty chunk (K = 1, or
    // every other shard empty) runs inline — no hand-off worth paying for.
    let run_round = |cur: &[HyperLogLog], next: &mut Vec<HyperLogLog>| -> bool {
        let chunks = split_chunks(&mut next[..], &ranges);
        if chunks.iter().filter(|c| !c.is_empty()).count() <= 1 {
            return chunks
                .into_iter()
                .zip(&ranges)
                .map(|(chunk, range)| union_chunk(chunk, range.clone(), cur))
                .fold(false, |acc, changed| acc | changed);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .zip(&ranges)
                .filter(|(chunk, _)| !chunk.is_empty())
                .map(|(chunk, range)| scope.spawn(|| union_chunk(chunk, range.clone(), cur)))
                .collect();
            handles.into_iter().fold(false, |acc, h| {
                acc | match h.join() {
                    Ok(v) => v,
                    // Forward the worker's panic payload unchanged.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            })
        })
    };

    // N(t) = Σ_u |c_u(t)|: per-node estimates in parallel, one sequential
    // node-order sum (so the float result matches the sequential code).
    let estimate_total = |cur: &[HyperLogLog], est: &mut Vec<f64>| -> f64 {
        let chunks = split_chunks(&mut est[..], &ranges);
        if chunks.iter().filter(|c| !c.is_empty()).count() <= 1 {
            for (chunk, range) in chunks.into_iter().zip(&ranges) {
                estimate_chunk(chunk, range.clone(), cur);
            }
        } else {
            std::thread::scope(|scope| {
                for (chunk, range) in chunks
                    .into_iter()
                    .zip(&ranges)
                    .filter(|(chunk, _)| !chunk.is_empty())
                {
                    scope.spawn(|| estimate_chunk(chunk, range.clone(), cur));
                }
            });
        }
        est.iter().sum()
    };

    let mut series = vec![estimate_total(&counters, &mut estimates)];
    for _ in 0..max_iters {
        let any_changed = run_round(&counters, &mut next);
        std::mem::swap(&mut counters, &mut next);
        if !any_changed {
            break;
        }
        series.push(estimate_total(&counters, &mut estimates));
    }
    series
}

/// Shard-parallel effective social diameter: [`neighborhood_function_sharded`]
/// plus the same interpolation as [`social_effective_diameter`] — identical
/// output, one snapshot saturating `K` cores.
pub fn social_effective_diameter_sharded(g: &ShardedCsrSan, q: f64, b: u8, seed: u64) -> f64 {
    let nf = neighborhood_function_sharded(g, b, 256, seed);
    effective_diameter_from_nf(&nf, q)
}

/// Interpolated effective diameter at quantile `q` from a neighbourhood
/// function series.
///
/// Self-pairs (`N(0)`) are excluded: the quantile ranges over ordered
/// connected pairs at distance ≥ 1, matching the paper's "distance between
/// every pair of connected nodes".
pub fn effective_diameter_from_nf(nf: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if nf.len() < 2 {
        return 0.0;
    }
    let base = nf[0];
    let total = nf[nf.len() - 1] - base;
    if total <= 0.0 {
        return 0.0;
    }
    let target = q * total;
    for t in 1..nf.len() {
        let below = nf[t - 1] - base;
        let at = nf[t] - base;
        if at >= target {
            if at <= below {
                return t as f64;
            }
            // Linear interpolation within the step [t-1, t].
            return (t - 1) as f64 + (target - below) / (at - below);
        }
    }
    (nf.len() - 1) as f64
}

/// Effective social diameter (90th percentile by default in the paper).
///
/// `b` controls HyperLogLog accuracy (the paper's tool uses comparable
/// register budgets); `seed` fixes the hash salt.
pub fn social_effective_diameter(san: &impl SanRead, q: f64, b: u8, seed: u64) -> f64 {
    let adj: Vec<Vec<u32>> = san
        .social_nodes()
        .map(|u| san.out_neighbors(u).iter().map(|v| v.0).collect())
        .collect();
    let init = vec![true; adj.len()];
    let nf = neighborhood_function(&adj, &init, &init, b, 256, seed);
    effective_diameter_from_nf(&nf, q)
}

/// Effective **attribute** diameter (§4.1): the 90th-percentile attribute
/// distance `min dist between members + 1`, computed on the lifted graph
/// and shifted back by one.
pub fn attribute_effective_diameter(san: &impl SanRead, q: f64, b: u8, seed: u64) -> f64 {
    let n = san.num_social_nodes();
    let m = san.num_attr_nodes();
    if m == 0 {
        return 0.0;
    }
    // Lifted graph: social nodes 0..n, attribute nodes n..n+m.
    let mut adj: Vec<Vec<u32>> = Vec::with_capacity(n + m);
    for u in san.social_nodes() {
        let mut outs: Vec<u32> = san.out_neighbors(u).iter().map(|v| v.0).collect();
        // u -> its attributes (so a path …→v→b terminates at b).
        outs.extend(san.attrs_of(u).iter().map(|a| n as u32 + a.0));
        adj.push(outs);
    }
    for a in san.attr_nodes() {
        // a -> its members (so a path a→u→… starts at a).
        adj.push(san.members_of(a).iter().map(|u| u.0).collect());
    }
    let mut init = vec![false; n + m];
    let mut count = vec![false; n + m];
    for i in n..n + m {
        init[i] = true;
        count[i] = true;
    }
    let nf = neighborhood_function(&adj, &init, &count, b, 256, seed);
    // Lifted distances between distinct attribute nodes = attribute distance + 1.
    let lifted = effective_diameter_from_nf(&nf, q);
    (lifted - 1.0).max(0.0)
}

/// Exact distance distribution by multi-source directed BFS over `sources`
/// sampled uniformly (used to validate HyperANF and to report the paper's
/// "mode at distance six" histogram on small graphs).
///
/// Returns `hist[d] = number of (sampled source, target) pairs at distance
/// d ≥ 1`.
pub fn sampled_distance_histogram(
    san: &impl SanRead,
    num_sources: usize,
    rng: &mut SplitRng,
) -> Vec<u64> {
    let n = san.num_social_nodes();
    if n == 0 || num_sources == 0 {
        return Vec::new();
    }
    let mut hist: Vec<u64> = Vec::new();
    for _ in 0..num_sources.min(n) {
        let src = san_graph::SocialId(rng.below(n as u64) as u32);
        let dist = san_graph::traverse::bfs_directed(san, src);
        for d in dist.into_iter().flatten() {
            if d >= 1 {
                let d = d as usize;
                if hist.len() <= d {
                    hist.resize(d + 1, 0);
                }
                hist[d] += 1;
            }
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{San, SocialId};

    fn path_graph(n: usize) -> San {
        let mut san = San::new();
        let u: Vec<SocialId> = (0..n).map(|_| san.add_social_node()).collect();
        for i in 0..n - 1 {
            san.add_social_link(u[i], u[i + 1]);
        }
        san
    }

    #[test]
    fn hll_estimates_cardinalities() {
        for &n in &[100u64, 1_000, 50_000] {
            let mut hll = HyperLogLog::new(10);
            for i in 0..n {
                hll.insert_hash(hash_node(i, 7));
            }
            let est = hll.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 0.1, "n={n} est={est} rel={rel}");
        }
    }

    #[test]
    fn hll_duplicate_insertions_idempotent() {
        let mut a = HyperLogLog::new(8);
        for i in 0..100u64 {
            a.insert_hash(hash_node(i, 3));
        }
        let before = a.estimate();
        for i in 0..100u64 {
            a.insert_hash(hash_node(i, 3));
        }
        assert_eq!(a.estimate(), before);
    }

    #[test]
    fn hll_union_is_max() {
        let mut a = HyperLogLog::new(8);
        let mut b = HyperLogLog::new(8);
        for i in 0..500u64 {
            a.insert_hash(hash_node(i, 1));
        }
        for i in 250..750u64 {
            b.insert_hash(hash_node(i, 1));
        }
        assert!(a.union_with(&b));
        let est = a.estimate();
        assert!((est - 750.0).abs() / 750.0 < 0.15, "est={est}");
        // Second union is a no-op.
        assert!(!a.union_with(&b));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hll_rejects_bad_b() {
        HyperLogLog::new(2);
    }

    #[test]
    fn nf_exact_on_small_path() {
        // Directed path of 4: pairs within t:
        // N(0)=4, N(1)=4+3, N(2)=4+3+2, N(3)=4+3+2+1.
        let san = path_graph(4);
        let adj: Vec<Vec<u32>> = san
            .social_nodes()
            .map(|u| san.out_neighbors(u).iter().map(|v| v.0).collect())
            .collect();
        let init = vec![true; 4];
        let nf = neighborhood_function(&adj, &init, &init, 10, 64, 42);
        assert_eq!(nf.len(), 4);
        let expect = [4.0, 7.0, 9.0, 10.0];
        for (t, &e) in expect.iter().enumerate() {
            assert!(
                (nf[t] - e).abs() / e < 0.12,
                "t={t} nf={} expect={e}",
                nf[t]
            );
        }
    }

    #[test]
    fn effective_diameter_path() {
        // Undirected-style double path to have symmetric distances.
        let mut san = path_graph(11);
        let ids: Vec<SocialId> = san.social_nodes().collect();
        for i in 0..10 {
            san.add_social_link(ids[i + 1], ids[i]);
        }
        let d = social_effective_diameter(&san, 1.0, 10, 1);
        // Max distance is 10; q=1.0 should approach it.
        assert!((8.0..=10.5).contains(&d), "d={d}");
        let d90 = social_effective_diameter(&san, 0.9, 10, 1);
        assert!(d90 <= d, "d90={d90} d={d}");
        assert!(d90 >= 5.0, "d90={d90}");
    }

    #[test]
    fn effective_diameter_from_nf_interpolates() {
        // Hand-made NF: base 10 self-pairs, then 10 pairs at distance 1,
        // 10 more at distance 2.
        let nf = [10.0, 20.0, 30.0];
        assert!((effective_diameter_from_nf(&nf, 0.5) - 1.0).abs() < 1e-12);
        assert!((effective_diameter_from_nf(&nf, 0.75) - 1.5).abs() < 1e-12);
        assert!((effective_diameter_from_nf(&nf, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn effective_diameter_degenerate_inputs() {
        assert_eq!(effective_diameter_from_nf(&[5.0], 0.9), 0.0);
        assert_eq!(effective_diameter_from_nf(&[5.0, 5.0], 0.9), 0.0);
    }

    #[test]
    fn clique_diameter_is_one() {
        let mut san = San::new();
        let ids: Vec<SocialId> = (0..6).map(|_| san.add_social_node()).collect();
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    san.add_social_link(a, b);
                }
            }
        }
        let d = social_effective_diameter(&san, 0.9, 10, 5);
        assert!((d - 1.0).abs() < 0.25, "d={d}");
    }

    #[test]
    fn attribute_diameter_two_attrs_shared_member() {
        // a and b share member u: attribute distance should be ~1
        // (min dist(u,u)=0, +1).
        let mut san = San::new();
        let u = san.add_social_node();
        let v = san.add_social_node();
        san.add_social_link(u, v);
        let a = san.add_attr_node(san_graph::AttrType::City);
        let b = san.add_attr_node(san_graph::AttrType::School);
        san.add_attr_link(u, a);
        san.add_attr_link(u, b);
        let d = attribute_effective_diameter(&san, 1.0, 10, 9);
        assert!((d - 1.0).abs() < 0.3, "d={d}");
    }

    #[test]
    fn attribute_diameter_follows_social_distance() {
        // Chain u0->u1->u2->u3; attr a on u0, attr b on u3:
        // attribute distance = dist(u0,u3)+1 = 4.
        let mut san = path_graph(4);
        let a = san.add_attr_node(san_graph::AttrType::City);
        let b = san.add_attr_node(san_graph::AttrType::School);
        san.add_attr_link(SocialId(0), a);
        san.add_attr_link(SocialId(3), b);
        let d = attribute_effective_diameter(&san, 1.0, 10, 11);
        assert!(d > 2.5 && d < 4.5, "d={d}");
    }

    #[test]
    fn attribute_diameter_no_attrs() {
        let san = path_graph(3);
        assert_eq!(attribute_effective_diameter(&san, 0.9, 8, 1), 0.0);
    }

    #[test]
    fn sharded_nf_and_diameter_bit_identical() {
        // A random-ish graph with reciprocal edges and a few components.
        let mut san = San::new();
        let ids: Vec<SocialId> = (0..60).map(|_| san.add_social_node()).collect();
        for i in 0..59 {
            san.add_social_link(ids[i], ids[i + 1]);
            if i % 3 == 0 {
                san.add_social_link(ids[i + 1], ids[i]);
            }
            if i % 7 == 0 && i + 5 < 60 {
                san.add_social_link(ids[i], ids[i + 5]);
            }
        }
        let csr = san.freeze();
        let seq_d = social_effective_diameter(&csr, 0.9, 8, 42);
        let adj: Vec<Vec<u32>> = (0..60u32)
            .map(|u| {
                san_graph::SanRead::out_neighbors(&csr, SocialId(u))
                    .iter()
                    .map(|v| v.0)
                    .collect()
            })
            .collect();
        let init = vec![true; 60];
        let seq_nf = neighborhood_function(&adj, &init, &init, 8, 256, 42);
        for k in [1usize, 2, 3, 7] {
            let sharded = san_graph::ShardedCsrSan::from_csr(csr.clone(), k);
            let nf = neighborhood_function_sharded(&sharded, 8, 256, 42);
            assert_eq!(nf, seq_nf, "k={k}");
            let d = social_effective_diameter_sharded(&sharded, 0.9, 8, 42);
            assert_eq!(d, seq_d, "k={k}");
        }
    }

    #[test]
    fn sharded_nf_empty_graph() {
        let sharded = san_graph::ShardedCsrSan::from_csr(San::new().freeze(), 4);
        assert_eq!(neighborhood_function_sharded(&sharded, 8, 64, 1), vec![0.0]);
        assert_eq!(social_effective_diameter_sharded(&sharded, 0.9, 8, 1), 0.0);
    }

    #[test]
    fn sampled_histogram_matches_path() {
        let san = path_graph(5);
        let mut rng = SplitRng::new(13);
        // Sample all nodes (num_sources = n) -> exact directed histogram.
        let hist = sampled_distance_histogram(&san, 5, &mut rng);
        // Directed path of 5: distances 1:4, 2:3, 3:2, 4:1 (sampling with
        // replacement may repeat sources, so check support only).
        assert!(hist.len() <= 5);
        assert!(hist.iter().skip(1).any(|&c| c > 0));
    }

    #[test]
    fn nf_disconnected_pairs_never_counted() {
        // Two disconnected cliques of 3: N(inf) = 2 * (3 + 3*2) = 18.
        let mut san = San::new();
        let ids: Vec<SocialId> = (0..6).map(|_| san.add_social_node()).collect();
        for group in [&ids[..3], &ids[3..]] {
            for &a in group {
                for &b in group {
                    if a != b {
                        san.add_social_link(a, b);
                    }
                }
            }
        }
        let adj: Vec<Vec<u32>> = san
            .social_nodes()
            .map(|u| san.out_neighbors(u).iter().map(|v| v.0).collect())
            .collect();
        let init = vec![true; 6];
        let nf = neighborhood_function(&adj, &init, &init, 10, 64, 3);
        let last = *nf.last().unwrap();
        assert!((last - 18.0).abs() / 18.0 < 0.12, "last={last}");
    }
}
