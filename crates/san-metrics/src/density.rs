//! Social and attribute density (§3.2, §4.1).
//!
//! Density here is the links-to-nodes ratio `|Es|/|Vs|` (the paper follows
//! Kumar et al.'s terminology rather than graph-theoretic edge fraction so
//! the values are comparable with prior OSN studies). The attribute analogue
//! is `|Ea|/|Va|`.

use san_graph::SanRead;

/// Social density `|Es| / |Vs|`; `0.0` for an empty network.
pub fn social_density(san: &impl SanRead) -> f64 {
    if san.num_social_nodes() == 0 {
        return 0.0;
    }
    san.num_social_links() as f64 / san.num_social_nodes() as f64
}

/// Attribute density `|Ea| / |Va|`; `0.0` when there are no attribute nodes.
pub fn attr_density(san: &impl SanRead) -> f64 {
    if san.num_attr_nodes() == 0 {
        return 0.0;
    }
    san.num_attr_links() as f64 / san.num_attr_nodes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::fixtures::figure1;
    use san_graph::San;

    #[test]
    fn figure1_densities() {
        let fx = figure1();
        assert!((social_density(&fx.san) - 5.0 / 6.0).abs() < 1e-12);
        assert!((attr_density(&fx.san) - 8.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_network() {
        let san = San::new();
        assert_eq!(social_density(&san), 0.0);
        assert_eq!(attr_density(&san), 0.0);
    }

    #[test]
    fn density_grows_with_links() {
        let mut san = San::new();
        let u0 = san.add_social_node();
        let u1 = san.add_social_node();
        assert_eq!(social_density(&san), 0.0);
        san.add_social_link(u0, u1);
        assert!((social_density(&san) - 0.5).abs() < 1e-12);
        san.add_social_link(u1, u0);
        assert!((social_density(&san) - 1.0).abs() < 1e-12);
    }
}
