//! Joint degree distribution: the `knn` correlation function and the
//! assortativity coefficient, social (§3.6) and attribute (§4.1) variants.
//!
//! * **Social `knn`** maps an out-degree `k` to the average in-degree of all
//!   nodes that nodes of out-degree `k` point to (Fig. 7a, following
//!   Pastor-Satorras et al. / Mislove et al.).
//! * **Social assortativity** `r` is the Pearson correlation of
//!   `(out-degree(u), in-degree(v))` over directed links `u → v`; Google+
//!   is neutral (`r ≈ 0`) where Flickr/LiveJournal/Orkut are positive.
//! * **Attribute `knn`** maps an attribute node's social degree `k` to the
//!   average attribute degree of its member users (Fig. 12a).
//! * **Attribute assortativity** is the Pearson correlation of
//!   `(social degree of a, attribute degree of u)` over attribute links.

use san_graph::{SanRead, ShardedCsrSan};
use std::collections::BTreeMap;

/// The `out-degree k → (Σ in-degree, count)` accumulator over whatever
/// node range the view iterates — shared by the sequential and sharded
/// `knn` so their definitions cannot drift apart.
fn social_knn_acc(san: &impl SanRead) -> BTreeMap<u64, (f64, u64)> {
    let mut acc: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    for u in san.social_nodes() {
        let k = san.out_degree(u) as u64;
        if k == 0 {
            continue;
        }
        let e = acc.entry(k).or_insert((0.0, 0));
        for &v in san.out_neighbors(u) {
            e.0 += san.in_degree(v) as f64;
            e.1 += 1;
        }
    }
    acc
}

/// Social degree-correlation function `knn` (Fig. 7a).
///
/// Returns `(out-degree k, mean in-degree of the out-neighbours of nodes
/// with out-degree k)`, pooled over all such links, sorted by `k`.
pub fn social_knn(san: &impl SanRead) -> Vec<(u64, f64)> {
    knn_acc_to_vec(social_knn_acc(san))
}

/// The `(source out-degree, destination in-degree)` sample pairs of
/// whatever link range the view iterates — shared by the sequential and
/// sharded assortativity.
fn social_assortativity_samples(san: &impl SanRead) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::with_capacity(san.num_social_links());
    let mut ys = Vec::with_capacity(san.num_social_links());
    for (u, v) in san.social_links() {
        xs.push(san.out_degree(u) as f64);
        ys.push(san.in_degree(v) as f64);
    }
    (xs, ys)
}

/// Social assortativity coefficient `r ∈ [−1, 1]` (Fig. 7b): Pearson
/// correlation of source out-degree and destination in-degree over all
/// directed links. `0.0` for degenerate networks.
pub fn social_assortativity(san: &impl SanRead) -> f64 {
    let (xs, ys) = social_assortativity_samples(san);
    san_stats::pearson(&xs, &ys)
}

/// The `social degree k → (Σ attribute degree, count)` accumulator over
/// whatever attribute range the view iterates — shared by the sequential
/// and sharded attribute `knn`.
fn attribute_knn_acc(san: &impl SanRead) -> BTreeMap<u64, (f64, u64)> {
    let mut acc: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    for a in san.attr_nodes() {
        let k = san.social_degree_of_attr(a) as u64;
        if k == 0 {
            continue;
        }
        let e = acc.entry(k).or_insert((0.0, 0));
        for &u in san.members_of(a) {
            e.0 += san.attr_degree(u) as f64;
            e.1 += 1;
        }
    }
    acc
}

/// Attribute `knn` (Fig. 12a): for each social degree `k` of attribute
/// nodes, the average attribute degree of the social members, pooled over
/// all membership links of attributes with that degree.
pub fn attribute_knn(san: &impl SanRead) -> Vec<(u64, f64)> {
    knn_acc_to_vec(attribute_knn_acc(san))
}

/// Attribute assortativity coefficient (Fig. 12b): Pearson correlation of
/// `(social degree of attribute, attribute degree of member)` over all
/// attribute links.
pub fn attribute_assortativity(san: &impl SanRead) -> f64 {
    let mut xs = Vec::with_capacity(san.num_attr_links());
    let mut ys = Vec::with_capacity(san.num_attr_links());
    for (u, a) in san.attr_links() {
        xs.push(san.social_degree_of_attr(a) as f64);
        ys.push(san.attr_degree(u) as f64);
    }
    san_stats::pearson(&xs, &ys)
}

// ---------------------------------------------------------------------------
// Shard-parallel variants.
// ---------------------------------------------------------------------------

/// Merges per-shard `knn` accumulators: same-degree buckets add their
/// `(sum, count)` pairs. Counts merge exactly; sums regroup, so the final
/// means match the sequential ones to ≤ 1e-12.
fn merge_knn_acc(
    mut acc: BTreeMap<u64, (f64, u64)>,
    part: BTreeMap<u64, (f64, u64)>,
) -> BTreeMap<u64, (f64, u64)> {
    for (k, (sum, n)) in part {
        let e = acc.entry(k).or_insert((0.0, 0));
        e.0 += sum;
        e.1 += n;
    }
    acc
}

fn knn_acc_to_vec(acc: BTreeMap<u64, (f64, u64)>) -> Vec<(u64, f64)> {
    acc.into_iter()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(k, (sum, n))| (k, sum / n as f64))
        .collect()
}

/// Shard-parallel social `knn`.
///
/// Decomposition: each shard runs the shared accumulator over the nodes
/// it owns — in-degrees of out-neighbours are global O(1) row reads —
/// and buckets merge by addition across shards.
pub fn social_knn_sharded(g: &ShardedCsrSan) -> Vec<(u64, f64)> {
    knn_acc_to_vec(g.fold_shards(
        |shard| social_knn_acc(&shard),
        BTreeMap::new(),
        merge_knn_acc,
    ))
}

/// Shard-parallel attribute `knn`: as [`social_knn_sharded`], pooling over
/// the attribute nodes each shard owns.
pub fn attribute_knn_sharded(g: &ShardedCsrSan) -> Vec<(u64, f64)> {
    knn_acc_to_vec(g.fold_shards(
        |shard| attribute_knn_acc(&shard),
        BTreeMap::new(),
        merge_knn_acc,
    ))
}

/// Shard-parallel social assortativity.
///
/// Decomposition: each shard extracts the sample pairs of the links it
/// owns via the shared extractor; shard-order concatenation reproduces
/// the sequential link order exactly, so the Pearson coefficient is
/// **bit-for-bit identical** to [`social_assortativity`].
pub fn social_assortativity_sharded(g: &ShardedCsrSan) -> f64 {
    let (xs, ys) = g.fold_shards(
        |shard| social_assortativity_samples(&shard),
        (Vec::new(), Vec::new()),
        |(mut xs, mut ys), (px, py)| {
            xs.extend(px);
            ys.extend(py);
            (xs, ys)
        },
    );
    san_stats::pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{AttrType, San, SocialId};
    use san_stats::SplitRng;

    #[test]
    fn social_knn_small_example() {
        // u0 -> u1, u0 -> u2, u3 -> u2.
        // out-degree 2: u0; neighbours u1 (in 1), u2 (in 2) -> knn(2) = 1.5.
        // out-degree 1: u3; neighbour u2 (in 2) -> knn(1) = 2.
        let mut san = San::new();
        let u: Vec<SocialId> = (0..4).map(|_| san.add_social_node()).collect();
        san.add_social_link(u[0], u[1]);
        san.add_social_link(u[0], u[2]);
        san.add_social_link(u[3], u[2]);
        let knn = social_knn(&san);
        assert_eq!(knn, vec![(1, 2.0), (2, 1.5)]);
    }

    #[test]
    fn social_knn_empty() {
        assert!(social_knn(&San::new()).is_empty());
    }

    #[test]
    fn assortativity_star_is_negative() {
        // Star: hub points at leaves and leaves point back.
        // Hub has high out-degree pointing at low-in-degree leaves, and
        // leaves (out-degree 1) point at the high-in-degree hub: strongly
        // disassortative.
        let mut san = San::new();
        let hub = san.add_social_node();
        for _ in 0..10 {
            let leaf = san.add_social_node();
            san.add_social_link(hub, leaf);
            san.add_social_link(leaf, hub);
        }
        let r = social_assortativity(&san);
        assert!(r < -0.9, "r={r}");
    }

    #[test]
    fn assortativity_degree_matched_is_positive() {
        // Two groups: a 4-clique (high degree) and disjoint 2-cycles
        // (low degree). High-degree nodes link to high-degree nodes.
        let mut san = San::new();
        let clique: Vec<SocialId> = (0..4).map(|_| san.add_social_node()).collect();
        for &a in &clique {
            for &b in &clique {
                if a != b {
                    san.add_social_link(a, b);
                }
            }
        }
        for _ in 0..4 {
            let a = san.add_social_node();
            let b = san.add_social_node();
            san.add_social_link(a, b);
            san.add_social_link(b, a);
        }
        let r = social_assortativity(&san);
        assert!(r > 0.9, "r={r}");
    }

    #[test]
    fn assortativity_degenerate_zero() {
        let mut san = San::new();
        san.add_social_node();
        assert_eq!(social_assortativity(&san), 0.0);
        // Regular ring: all degrees equal -> zero variance -> 0.
        let mut ring = San::new();
        let u: Vec<SocialId> = (0..5).map(|_| ring.add_social_node()).collect();
        for i in 0..5 {
            ring.add_social_link(u[i], u[(i + 1) % 5]);
        }
        assert_eq!(social_assortativity(&ring), 0.0);
    }

    #[test]
    fn attribute_knn_small_example() {
        // Attr A members {u0, u1}; attr B members {u0}.
        // u0 attr-degree 2, u1 attr-degree 1.
        // knn for social degree 2 (A): mean(2, 1) = 1.5.
        // knn for social degree 1 (B): mean(2) = 2.
        let mut san = San::new();
        let u0 = san.add_social_node();
        let u1 = san.add_social_node();
        let a = san.add_attr_node(AttrType::City);
        let b = san.add_attr_node(AttrType::School);
        san.add_attr_link(u0, a);
        san.add_attr_link(u1, a);
        san.add_attr_link(u0, b);
        let knn = attribute_knn(&san);
        assert_eq!(knn, vec![(1, 2.0), (2, 1.5)]);
    }

    #[test]
    fn attribute_assortativity_neutral_for_random_memberships() {
        // Random bipartite memberships: no correlation expected.
        let mut rng = SplitRng::new(5);
        let mut san = San::new();
        let users: Vec<SocialId> = (0..500).map(|_| san.add_social_node()).collect();
        let attrs: Vec<_> = (0..50)
            .map(|_| san.add_attr_node(AttrType::Other))
            .collect();
        for &u in &users {
            let k = 1 + rng.below(4);
            for _ in 0..k {
                let a = attrs[rng.below(50) as usize];
                san.add_attr_link(u, a);
            }
        }
        let r = attribute_assortativity(&san);
        assert!(r.abs() < 0.15, "r={r}");
    }

    #[test]
    fn attribute_assortativity_empty() {
        assert_eq!(attribute_assortativity(&San::new()), 0.0);
    }

    fn random_csr(seed: u64) -> san_graph::CsrSan {
        let mut rng = SplitRng::new(seed);
        let mut san = San::new();
        let users: Vec<SocialId> = (0..200).map(|_| san.add_social_node()).collect();
        let attrs: Vec<_> = (0..20)
            .map(|_| san.add_attr_node(AttrType::Other))
            .collect();
        for &u in &users {
            for _ in 0..1 + rng.below(6) {
                let v = users[rng.below(200) as usize];
                if u != v {
                    san.add_social_link(u, v);
                }
            }
            if rng.chance(0.5) {
                san.add_attr_link(u, attrs[rng.below(20) as usize]);
            }
        }
        san.freeze()
    }

    #[test]
    fn sharded_knn_matches_sequential() {
        let csr = random_csr(17);
        let seq_social = social_knn(&csr);
        let seq_attr = attribute_knn(&csr);
        for k in [1usize, 2, 3, 7] {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            let got = social_knn_sharded(&sharded);
            assert_eq!(got.len(), seq_social.len(), "k={k}");
            for ((dk, dv), (sk, sv)) in got.iter().zip(&seq_social) {
                assert_eq!(dk, sk, "k={k}");
                assert!((dv - sv).abs() < 1e-12, "k={k} degree={dk}");
            }
            let got = attribute_knn_sharded(&sharded);
            assert_eq!(got.len(), seq_attr.len(), "k={k}");
            for ((dk, dv), (sk, sv)) in got.iter().zip(&seq_attr) {
                assert_eq!(dk, sk, "k={k}");
                assert!((dv - sv).abs() < 1e-12, "k={k} degree={dk}");
            }
        }
    }

    #[test]
    fn sharded_assortativity_is_bit_identical() {
        let csr = random_csr(23);
        let seq = social_assortativity(&csr);
        for k in [1usize, 2, 3, 7] {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            assert_eq!(social_assortativity_sharded(&sharded), seq, "k={k}");
        }
    }
}
