//! Reciprocity: global (§3.1) and fine-grained `r_{s,a}` (§4.2).
//!
//! Global reciprocity is the fraction of directed social links whose reverse
//! link also exists. The paper measured ~0.44 dropping over time on Google+
//! (vs 0.62 Flickr, 0.79 YouTube, 0.22 Twitter) and attributed the decline
//! to the hybrid friend/publisher-subscriber nature of Google+.
//!
//! The fine-grained analysis (Fig. 13a) takes the one-directional links of a
//! *halfway* snapshot, asks which became bidirectional by the *last*
//! snapshot, and buckets the answer by the endpoints' number of common
//! social neighbours `s` and common attribute neighbours `a`; the headline
//! result is that any shared attribute roughly doubles reciprocation.

use san_graph::{SanRead, ShardedCsrSan};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The `(links, mutual)` tally over whatever link range the view
/// iterates: the whole network for `San`/`CsrSan`, an owned node range
/// for a [`san_graph::CsrShard`] — the one loop both the sequential and
/// sharded reciprocity share, so their definitions cannot drift apart.
fn reciprocity_tally(san: &impl SanRead) -> (usize, usize) {
    let mut total = 0usize;
    let mut mutual = 0usize;
    for (u, v) in san.social_links() {
        total += 1;
        if san.has_social_link(v, u) {
            mutual += 1;
        }
    }
    (total, mutual)
}

/// Fraction of directed links `u → v` for which `v → u` also exists.
/// Returns `0.0` for a network without social links.
pub fn global_reciprocity(san: &impl SanRead) -> f64 {
    let (total, mutual) = reciprocity_tally(san);
    if total == 0 {
        0.0
    } else {
        mutual as f64 / total as f64
    }
}

/// Shard-parallel global reciprocity.
///
/// Decomposition: each shard tallies `(links, mutual)` over the directed
/// links *originating* in its node range (the reverse-link probe is a
/// global binary search, so cross-shard reciprocal pairs resolve exactly);
/// the integer tallies merge by addition, making the result **bit-for-bit
/// identical** to [`global_reciprocity`] on the underlying snapshot.
pub fn global_reciprocity_sharded(g: &ShardedCsrSan) -> f64 {
    let (total, mutual) = g.fold_shards(
        |shard| reciprocity_tally(&shard),
        (0usize, 0usize),
        |acc, part| (acc.0 + part.0, acc.1 + part.1),
    );
    if total == 0 {
        0.0
    } else {
        mutual as f64 / total as f64
    }
}

/// One `(s, a)` cell of the fine-grained reciprocity analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReciprocityCell {
    /// Number of common social neighbours of the link endpoints (at the
    /// earlier snapshot).
    pub common_social: usize,
    /// Number of common attribute neighbours, clamped into the paper's
    /// classes 0, 1, ≥2 (stored as 2).
    pub common_attrs: usize,
    /// One-directional links observed in this cell.
    pub links: usize,
    /// How many of them became bidirectional by the later snapshot.
    pub reciprocated: usize,
}

impl ReciprocityCell {
    /// The reciprocation rate `r_{s,a}` of the cell.
    pub fn rate(&self) -> f64 {
        if self.links == 0 {
            0.0
        } else {
            self.reciprocated as f64 / self.links as f64
        }
    }
}

/// Fine-grained two-snapshot reciprocity (Fig. 13a).
///
/// `earlier` and `later` must share the social id space (later is a
/// superset — exactly what [`san_graph::SanTimeline`] snapshots provide).
/// For every link `u → v` present in `earlier` **without** its reverse, the
/// pair's common social neighbours `s` and common attributes `a` are
/// measured *in the earlier snapshot*; the link counts as reciprocated when
/// `v → u` exists in `later`.
///
/// Returns cells keyed by `(s, min(a, 2))`, mirroring the paper's
/// `0 / 1 / ≥2 common attribute` curves.
///
/// # Panics
/// Panics if `later` has fewer social nodes than `earlier`.
pub fn fine_grained_reciprocity(
    earlier: &impl SanRead,
    later: &impl SanRead,
) -> Vec<ReciprocityCell> {
    assert!(
        later.num_social_nodes() >= earlier.num_social_nodes(),
        "later snapshot must contain the earlier one"
    );
    let mut cells: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
    for (u, v) in earlier.social_links() {
        if earlier.has_social_link(v, u) {
            continue; // already bidirectional: not a candidate.
        }
        let s = earlier.common_social_neighbors(u, v);
        let a = earlier.common_attrs(u, v).min(2);
        let entry = cells.entry((s, a)).or_insert((0, 0));
        entry.0 += 1;
        if later.has_social_link(v, u) {
            entry.1 += 1;
        }
    }
    cells
        .into_iter()
        .map(|((s, a), (links, reciprocated))| ReciprocityCell {
            common_social: s,
            common_attrs: a,
            links,
            reciprocated,
        })
        .collect()
}

/// Aggregates fine-grained cells into the three attribute classes of
/// Fig. 13a, returning `(rate for a=0, rate for a=1, rate for a>=2)`
/// over all links regardless of common-social count.
pub fn reciprocity_by_attr_class(cells: &[ReciprocityCell]) -> (f64, f64, f64) {
    let mut acc = [(0usize, 0usize); 3];
    for c in cells {
        let idx = c.common_attrs.min(2);
        acc[idx].0 += c.links;
        acc[idx].1 += c.reciprocated;
    }
    let rate = |(l, r): (usize, usize)| if l == 0 { 0.0 } else { r as f64 / l as f64 };
    (rate(acc[0]), rate(acc[1]), rate(acc[2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::fixtures::figure1;
    use san_graph::{AttrType, San, SocialId};

    #[test]
    fn global_reciprocity_figure1() {
        // Figure 1 has 5 links, only u2<->u3 mutual => 2/5.
        let fx = figure1();
        assert!((global_reciprocity(&fx.san) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn global_reciprocity_empty_and_full() {
        let mut san = San::new();
        assert_eq!(global_reciprocity(&san), 0.0);
        let u0 = san.add_social_node();
        let u1 = san.add_social_node();
        san.add_social_link(u0, u1);
        assert_eq!(global_reciprocity(&san), 0.0);
        san.add_social_link(u1, u0);
        assert_eq!(global_reciprocity(&san), 1.0);
    }

    #[test]
    fn sharded_global_reciprocity_is_bit_identical() {
        let fx = figure1();
        let csr = fx.san.freeze();
        let seq = global_reciprocity(&csr);
        for k in [1usize, 2, 3, 7] {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            assert_eq!(global_reciprocity_sharded(&sharded), seq, "k={k}");
        }
        // Empty graph: 0/0 convention preserved.
        let empty = ShardedCsrSan::from_csr(San::new().freeze(), 3);
        assert_eq!(global_reciprocity_sharded(&empty), 0.0);
    }

    fn two_snapshot_fixture() -> (San, San) {
        // earlier: u0->u1 (no common anything), u2->u3 (common attr),
        //          u4->u5 (common friend u6).
        let mut san = San::new();
        let u: Vec<SocialId> = (0..7).map(|_| san.add_social_node()).collect();
        let a = san.add_attr_node(AttrType::Employer);
        san.add_social_link(u[0], u[1]);
        san.add_social_link(u[2], u[3]);
        san.add_attr_link(u[2], a);
        san.add_attr_link(u[3], a);
        san.add_social_link(u[4], u[5]);
        san.add_social_link(u[4], u[6]);
        san.add_social_link(u[6], u[5]);
        let earlier = san.clone();
        // later: u3->u2 reciprocates (the common-attr pair).
        san.add_social_link(u[3], u[2]);
        (earlier, san)
    }

    #[test]
    fn fine_grained_buckets_and_rates() {
        let (earlier, later) = two_snapshot_fixture();
        let cells = fine_grained_reciprocity(&earlier, &later);
        // Candidates: u0->u1 (s=0,a=0), u2->u3 (s=0,a=1), u4->u5 (s=1,a=0),
        // u4->u6 (s=0,a=0), u6->u5 (s=1,a=0).
        let total_links: usize = cells.iter().map(|c| c.links).sum();
        assert_eq!(total_links, 5);
        let cell_a1 = cells
            .iter()
            .find(|c| c.common_attrs == 1)
            .expect("a=1 cell exists");
        assert_eq!(cell_a1.links, 1);
        assert_eq!(cell_a1.reciprocated, 1);
        assert_eq!(cell_a1.rate(), 1.0);
        let (r0, r1, r2) = reciprocity_by_attr_class(&cells);
        assert_eq!(r0, 0.0);
        assert_eq!(r1, 1.0);
        assert_eq!(r2, 0.0);
    }

    #[test]
    fn already_mutual_links_excluded() {
        let mut san = San::new();
        let u0 = san.add_social_node();
        let u1 = san.add_social_node();
        san.add_social_link(u0, u1);
        san.add_social_link(u1, u0);
        let cells = fine_grained_reciprocity(&san, &san);
        assert!(cells.is_empty());
    }

    #[test]
    fn common_attrs_clamped_at_two() {
        let mut san = San::new();
        let u0 = san.add_social_node();
        let u1 = san.add_social_node();
        for _ in 0..5 {
            let a = san.add_attr_node(AttrType::Other);
            san.add_attr_link(u0, a);
            san.add_attr_link(u1, a);
        }
        san.add_social_link(u0, u1);
        let cells = fine_grained_reciprocity(&san, &san);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].common_attrs, 2);
    }

    #[test]
    #[should_panic(expected = "later snapshot")]
    fn snapshot_order_enforced() {
        let mut big = San::new();
        big.add_social_node();
        big.add_social_node();
        let small = San::new();
        fine_grained_reciprocity(&big, &small);
    }

    #[test]
    fn cell_rate_zero_links() {
        let c = ReciprocityCell {
            common_social: 0,
            common_attrs: 0,
            links: 0,
            reciprocated: 0,
        };
        assert_eq!(c.rate(), 0.0);
    }
}
