//! Community detection on SANs — the direction §3.4 motivates ("the
//! community structure among users' friends is highly dynamic, which
//! inspires us to do dynamic community detection") and §7 lists among the
//! heterogeneous-network applications.
//!
//! Two variants of synchronous-free **label propagation** are provided:
//!
//! * [`label_propagation`] — classical: each node repeatedly adopts the
//!   majority label among its (undirected) social neighbours;
//! * [`label_propagation_san`] — attribute-augmented: attribute co-members
//!   also vote, with weight `attr_weight` per shared attribute. This is
//!   the community-detection analogue of RR-SAN: shared foci pull users
//!   into the same community even without direct links.
//!
//! Both are deterministic given the RNG (node order is shuffled each
//! round) and return dense community ids.

use san_graph::{SanRead, SocialId};
use san_stats::SplitRng;
use std::collections::HashMap;

/// Result of a label-propagation run.
#[derive(Debug, Clone)]
pub struct Communities {
    /// Dense community id per social node.
    pub assignment: Vec<usize>,
    /// Community sizes (indexed by community id).
    pub sizes: Vec<usize>,
    /// Rounds until convergence (or the cap).
    pub rounds: usize,
}

impl Communities {
    /// Number of communities.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// True when `u` and `v` ended up in the same community.
    pub fn together(&self, u: SocialId, v: SocialId) -> bool {
        self.assignment[u.index()] == self.assignment[v.index()]
    }
}

/// Classical label propagation over the undirected social structure.
pub fn label_propagation(san: &impl SanRead, max_rounds: usize, rng: &mut SplitRng) -> Communities {
    propagate(san, 0.0, max_rounds, rng)
}

/// Attribute-augmented label propagation: attribute co-members vote with
/// `attr_weight` per shared attribute (0 recovers the classical variant).
pub fn label_propagation_san(
    san: &impl SanRead,
    attr_weight: f64,
    max_rounds: usize,
    rng: &mut SplitRng,
) -> Communities {
    assert!(attr_weight >= 0.0, "attr_weight must be non-negative");
    propagate(san, attr_weight, max_rounds, rng)
}

fn propagate(
    san: &impl SanRead,
    attr_weight: f64,
    max_rounds: usize,
    rng: &mut SplitRng,
) -> Communities {
    let n = san.num_social_nodes();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0;
    for round in 0..max_rounds {
        rounds = round + 1;
        // Fisher-Yates shuffle of the update order.
        for i in (1..order.len()).rev() {
            let j = rng.below((i + 1) as u64) as usize;
            order.swap(i, j);
        }
        let mut changed = false;
        for &ui in &order {
            let u = SocialId(ui);
            let mut votes: HashMap<u32, f64> = HashMap::new();
            for &w in san.social_neighbors(u).iter() {
                *votes.entry(label[w.index()]).or_insert(0.0) += 1.0;
            }
            if attr_weight > 0.0 {
                for &a in san.attrs_of(u) {
                    for &w in san.members_of(a) {
                        if w != u {
                            *votes.entry(label[w.index()]).or_insert(0.0) += attr_weight;
                        }
                    }
                }
            }
            if let Some((&best, _)) = votes.iter().max_by(|a, b| {
                // Modularity gains are finite; order NaN (impossible) low.
                a.1.partial_cmp(b.1)
                    .unwrap_or(std::cmp::Ordering::Less)
                    .then(b.0.cmp(a.0))
            }) {
                if best != label[u.index()] {
                    label[u.index()] = best;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Densify ids.
    let mut dense: HashMap<u32, usize> = HashMap::new();
    let mut assignment = vec![0usize; n];
    let mut sizes = Vec::new();
    for (i, &l) in label.iter().enumerate() {
        let next_id = dense.len();
        let id = *dense.entry(l).or_insert(next_id);
        if id == sizes.len() {
            sizes.push(0);
        }
        assignment[i] = id;
        sizes[id] += 1;
    }
    Communities {
        assignment,
        sizes,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{AttrType, San};

    /// Two 6-cliques joined by a single bridge edge.
    fn two_cliques() -> (San, Vec<SocialId>) {
        let mut san = San::new();
        let users: Vec<SocialId> = (0..12).map(|_| san.add_social_node()).collect();
        for group in [&users[..6], &users[6..]] {
            for &a in group {
                for &b in group {
                    if a != b {
                        san.add_social_link(a, b);
                    }
                }
            }
        }
        san.add_social_link(users[0], users[6]);
        (san, users)
    }

    #[test]
    fn separates_two_cliques() {
        let (san, users) = two_cliques();
        let mut rng = SplitRng::new(1);
        let c = label_propagation(&san, 50, &mut rng);
        assert!(c.together(users[0], users[5]));
        assert!(c.together(users[6], users[11]));
        assert!(
            !c.together(users[0], users[6]),
            "bridge must not merge cliques"
        );
        assert_eq!(c.count(), 2);
        assert_eq!(c.sizes.iter().sum::<usize>(), 12);
    }

    #[test]
    fn attribute_votes_merge_link_free_groups() {
        // Users with no social links but one shared attribute: classical
        // LP leaves them singletons; the SAN variant groups them.
        let mut san = San::new();
        let users: Vec<SocialId> = (0..5).map(|_| san.add_social_node()).collect();
        let a = san.add_attr_node(AttrType::Employer);
        for &u in &users {
            san.add_attr_link(u, a);
        }
        let mut rng = SplitRng::new(2);
        let classical = label_propagation(&san, 20, &mut rng);
        assert_eq!(classical.count(), 5);
        let mut rng = SplitRng::new(2);
        let san_lp = label_propagation_san(&san, 1.0, 20, &mut rng);
        assert_eq!(san_lp.count(), 1, "shared focus must merge the group");
    }

    #[test]
    fn zero_attr_weight_equals_classical() {
        let (san, _) = two_cliques();
        let mut rng1 = SplitRng::new(3);
        let mut rng2 = SplitRng::new(3);
        let a = label_propagation(&san, 30, &mut rng1);
        let b = label_propagation_san(&san, 0.0, 30, &mut rng2);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn converges_and_reports_rounds() {
        let (san, _) = two_cliques();
        let mut rng = SplitRng::new(4);
        let c = label_propagation(&san, 100, &mut rng);
        assert!(c.rounds < 100, "cliques converge fast, rounds={}", c.rounds);
    }

    #[test]
    fn empty_graph() {
        let san = San::new();
        let mut rng = SplitRng::new(5);
        let c = label_propagation(&san, 10, &mut rng);
        assert_eq!(c.count(), 0);
        assert!(c.assignment.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let (san, _) = two_cliques();
        let mut rng = SplitRng::new(6);
        label_propagation_san(&san, -1.0, 10, &mut rng);
    }
}
