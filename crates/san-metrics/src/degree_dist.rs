//! The four degree distributions of a SAN and their best fits (§3.5, §4.1).
//!
//! On Google+ the paper finds:
//!
//! * social **out-degree** and **in-degree** of social nodes: best fit by a
//!   **discrete lognormal** (Fig. 5),
//! * **attribute degree** of social nodes: **lognormal** (Fig. 10a),
//! * **social degree** of attribute nodes: **power law** (Fig. 10b).
//!
//! [`fit_san_degrees`] runs the lognormal-vs-power-law model selection of
//! [`san_stats::fit`] over all four vectors; zero-degree nodes are excluded
//! from fitting (the paper plots `k ≥ 1`).

use san_graph::degree::{degree_vectors, DegreeVectors};
use san_graph::{SanRead, ShardedCsrSan};
use san_stats::fit::{fit_degree_distribution, DegreeFit};
use san_stats::StatsError;
use serde::{Deserialize, Serialize};

/// The fitted models of the four SAN degree distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SanDegreeFits {
    /// Social out-degree of social nodes.
    pub out_degree: DegreeFit,
    /// Social in-degree of social nodes.
    pub in_degree: DegreeFit,
    /// Attribute degree of social nodes.
    pub attr_degree: DegreeFit,
    /// Social degree of attribute nodes.
    pub attr_social_degree: DegreeFit,
}

/// Fits all four degree distributions of a SAN.
///
/// Fails when any vector has fewer than two positive entries (tiny test
/// graphs should call [`san_stats::fit::fit_degree_distribution`] on the
/// vectors they care about instead).
pub fn fit_san_degrees(san: &impl SanRead) -> Result<SanDegreeFits, StatsError> {
    let dv = degree_vectors(san);
    Ok(SanDegreeFits {
        out_degree: fit_degree_distribution(&dv.out)?,
        in_degree: fit_degree_distribution(&dv.inc)?,
        attr_degree: fit_degree_distribution(&dv.attr_of_social)?,
        attr_social_degree: fit_degree_distribution(&dv.social_of_attr)?,
    })
}

/// Shard-parallel extraction of the four degree vectors.
///
/// Decomposition: each shard extracts the vectors for the social and
/// attribute nodes it owns (degrees are O(1) row-length reads); because
/// shards are node-contiguous and merged in shard order, concatenation
/// reproduces the global node order exactly, so the result is
/// **element-for-element identical** to
/// [`san_graph::degree::degree_vectors`].
pub fn degree_vectors_sharded(g: &ShardedCsrSan) -> DegreeVectors {
    g.fold_shards(
        |shard| {
            // `degree_vectors` is generic over SanRead, and the shard view
            // iterates exactly its owned ranges: the sequential extractor
            // *is* the per-shard partial.
            degree_vectors(&shard)
        },
        DegreeVectors::default(),
        |mut acc, part| {
            acc.out.extend(part.out);
            acc.inc.extend(part.inc);
            acc.attr_of_social.extend(part.attr_of_social);
            acc.social_of_attr.extend(part.social_of_attr);
            acc
        },
    )
}

/// Shard-parallel variant of [`fit_san_degrees`]: extracts the degree
/// vectors across shards, then fits. The vectors are identical to the
/// sequential extraction, so the fits are too.
pub fn fit_san_degrees_sharded(g: &ShardedCsrSan) -> Result<SanDegreeFits, StatsError> {
    let dv = degree_vectors_sharded(g);
    Ok(SanDegreeFits {
        out_degree: fit_degree_distribution(&dv.out)?,
        in_degree: fit_degree_distribution(&dv.inc)?,
        attr_degree: fit_degree_distribution(&dv.attr_of_social)?,
        attr_social_degree: fit_degree_distribution(&dv.social_of_attr)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{AttrType, San, SocialId};
    use san_stats::fit::FitFamily;
    use san_stats::{DiscreteLognormal, DiscretePowerLaw, SplitRng};

    /// Builds a SAN whose out-degrees are drawn from a lognormal and whose
    /// attribute memberships are drawn from a power law — the Google+
    /// shape.
    fn synthetic_google_like(n: usize, seed: u64) -> San {
        let mut rng = SplitRng::new(seed);
        let ln = DiscreteLognormal::new(1.2, 0.9).unwrap();
        let pl = DiscretePowerLaw::new(2.2, 1).unwrap();
        let mut san = San::new();
        let users: Vec<SocialId> = (0..n).map(|_| san.add_social_node()).collect();
        for &u in &users {
            let d = ln.sample(&mut rng).min(n as u64 / 2);
            for _ in 0..d {
                let v = users[rng.below(n as u64) as usize];
                san.add_social_link(u, v);
            }
        }
        // Attribute memberships: attribute node sizes ~ power law.
        let mut remaining = n * 2;
        while remaining > 0 {
            let a = san.add_attr_node(AttrType::Other);
            let size = pl.sample(&mut rng).min(remaining as u64) as usize;
            for _ in 0..size {
                let u = users[rng.below(n as u64) as usize];
                san.add_attr_link(u, a);
            }
            remaining = remaining.saturating_sub(size.max(1));
        }
        san
    }

    #[test]
    fn fits_google_like_families() {
        let san = synthetic_google_like(3000, 7);
        let fits = fit_san_degrees(&san).unwrap();
        assert_eq!(fits.out_degree.family, FitFamily::Lognormal);
        assert!(
            (fits.out_degree.mu - 1.2).abs() < 0.3,
            "mu={}",
            fits.out_degree.mu
        );
        assert_eq!(fits.attr_social_degree.family, FitFamily::PowerLaw);
        assert!(
            (fits.attr_social_degree.alpha - 2.2).abs() < 0.4,
            "alpha={}",
            fits.attr_social_degree.alpha
        );
    }

    #[test]
    fn sharded_degree_vectors_identical() {
        let san = synthetic_google_like(400, 3);
        let csr = san.freeze();
        let seq = degree_vectors(&csr);
        for k in [1usize, 2, 3, 7] {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            let dv = degree_vectors_sharded(&sharded);
            assert_eq!(dv.out, seq.out, "k={k}");
            assert_eq!(dv.inc, seq.inc, "k={k}");
            assert_eq!(dv.attr_of_social, seq.attr_of_social, "k={k}");
            assert_eq!(dv.social_of_attr, seq.social_of_attr, "k={k}");
        }
    }

    #[test]
    fn sharded_fits_match_sequential() {
        let san = synthetic_google_like(800, 5);
        let csr = san.freeze();
        let seq = fit_san_degrees(&csr).unwrap();
        let sharded = ShardedCsrSan::from_csr(csr, 4);
        let fits = fit_san_degrees_sharded(&sharded).unwrap();
        assert_eq!(fits.out_degree.family, seq.out_degree.family);
        assert_eq!(fits.out_degree.mu, seq.out_degree.mu);
        assert_eq!(fits.attr_social_degree.alpha, seq.attr_social_degree.alpha);
    }

    #[test]
    fn fit_fails_on_tiny_graph() {
        let mut san = San::new();
        san.add_social_node();
        assert!(fit_san_degrees(&san).is_err());
    }

    #[test]
    fn fit_serializes() {
        let san = synthetic_google_like(500, 9);
        let fits = fit_san_degrees(&san).unwrap();
        let json = serde_json::to_string(&fits).unwrap();
        assert!(json.contains("out_degree"));
    }
}
