//! The equivalence proof for the sharding layer: for arbitrary timelines
//! and every shard count K ∈ {1, 2, 3, 7} — including K greater than the
//! node count, which forces empty shards — each shard-parallel metric
//! equals its single-threaded `CsrSan` result: **bit-for-bit** for
//! counter-backed metrics (reciprocity, degree vectors, assortativity,
//! HyperANF's register evolution and therefore its series and diameter),
//! and within 1e-12 for float aggregates whose per-shard partial sums
//! regroup the additions (clustering, knn means).

use proptest::prelude::*;
use san_graph::prelude::*;
use san_metrics::clustering::{average_clustering_exact, average_clustering_sharded, NodeSet};
use san_metrics::degree_dist::degree_vectors_sharded;
use san_metrics::hyperanf::{
    neighborhood_function, neighborhood_function_sharded, social_effective_diameter,
    social_effective_diameter_sharded,
};
use san_metrics::jdd::{
    attribute_knn, attribute_knn_sharded, social_assortativity, social_assortativity_sharded,
    social_knn, social_knn_sharded,
};
use san_metrics::reciprocity::{global_reciprocity, global_reciprocity_sharded};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// Strategy: an arbitrary day-ordered timeline (same op mix as the
/// delta-equivalence suite) whose final-day snapshot is the graph under
/// test. Tiny timelines (fewer nodes than shards) and attribute-free
/// timelines occur naturally.
fn arb_timeline(max_ops: usize) -> impl Strategy<Value = SanTimeline> {
    prop::collection::vec((0u8..6, any::<u32>(), any::<u32>()), 1..max_ops).prop_map(|ops| {
        let mut tb = TimelineBuilder::new();
        for (op, x, y) in ops {
            match op {
                0 => {
                    tb.add_social_node();
                }
                1 => {
                    let ty = match x % 4 {
                        0 => AttrType::School,
                        1 => AttrType::Major,
                        2 => AttrType::Employer,
                        _ => AttrType::City,
                    };
                    tb.add_attr_node(ty);
                }
                2 | 3 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    if ns >= 2 {
                        tb.add_social_link(SocialId(x % ns), SocialId(y % ns));
                    }
                }
                4 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    let na = tb.san().num_attr_nodes() as u32;
                    if ns >= 1 && na >= 1 {
                        tb.add_attr_link(SocialId(x % ns), AttrId(y % na));
                    }
                }
                _ => {
                    tb.advance_to_day(tb.day() + 1 + (x % 3));
                }
            }
        }
        tb.finish().0
    })
}

fn final_csr(tl: &SanTimeline) -> CsrSan {
    match tl.max_day() {
        Some(d) => tl.snapshot_csr(d),
        None => San::new().freeze(),
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clustering (both node sets): per-shard sums of exact `c(u)` merge
    /// to the sequential average within float-regrouping error.
    #[test]
    fn sharded_clustering_equals_sequential(tl in arb_timeline(100)) {
        let csr = final_csr(&tl);
        for which in [NodeSet::Social, NodeSet::Attr] {
            let seq = average_clustering_exact(&csr, which);
            for &k in &SHARD_COUNTS {
                let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
                let got = average_clustering_sharded(&sharded, which);
                prop_assert!(
                    close(got, seq),
                    "which={:?} k={} got={} seq={}", which, k, got, seq
                );
            }
        }
    }

    /// Reciprocity: integer tallies merge exactly — bit-for-bit.
    #[test]
    fn sharded_reciprocity_equals_sequential(tl in arb_timeline(100)) {
        let csr = final_csr(&tl);
        let seq = global_reciprocity(&csr);
        for &k in &SHARD_COUNTS {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            let got = global_reciprocity_sharded(&sharded);
            prop_assert_eq!(got, seq, "k={}", k);
        }
    }

    /// Degree vectors: shard-order concatenation reproduces the global
    /// node order — element-for-element identical.
    #[test]
    fn sharded_degree_vectors_equal_sequential(tl in arb_timeline(100)) {
        let csr = final_csr(&tl);
        let seq = san_graph::degree::degree_vectors(&csr);
        for &k in &SHARD_COUNTS {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            let got = degree_vectors_sharded(&sharded);
            prop_assert_eq!(&got.out, &seq.out, "k={}", k);
            prop_assert_eq!(&got.inc, &seq.inc, "k={}", k);
            prop_assert_eq!(&got.attr_of_social, &seq.attr_of_social, "k={}", k);
            prop_assert_eq!(&got.social_of_attr, &seq.social_of_attr, "k={}", k);
        }
    }

    /// JDD: knn buckets merge exactly in degree and count, means within
    /// regrouping error; assortativity samples concatenate in sequential
    /// order — bit-for-bit.
    #[test]
    fn sharded_jdd_equals_sequential(tl in arb_timeline(100)) {
        let csr = final_csr(&tl);
        let seq_knn = social_knn(&csr);
        let seq_aknn = attribute_knn(&csr);
        let seq_r = social_assortativity(&csr);
        for &k in &SHARD_COUNTS {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            let got = social_knn_sharded(&sharded);
            prop_assert_eq!(got.len(), seq_knn.len(), "k={}", k);
            for (g, s) in got.iter().zip(&seq_knn) {
                prop_assert_eq!(g.0, s.0, "k={}", k);
                prop_assert!(close(g.1, s.1), "k={} degree={} got={} seq={}", k, g.0, g.1, s.1);
            }
            let got = attribute_knn_sharded(&sharded);
            prop_assert_eq!(got.len(), seq_aknn.len(), "k={}", k);
            for (g, s) in got.iter().zip(&seq_aknn) {
                prop_assert_eq!(g.0, s.0, "k={}", k);
                prop_assert!(close(g.1, s.1), "k={} degree={} got={} seq={}", k, g.0, g.1, s.1);
            }
            prop_assert_eq!(social_assortativity_sharded(&sharded), seq_r, "k={}", k);
        }
    }

    /// HyperANF: per-shard rounds write disjoint counter ranges reading
    /// the previous round globally, so the register evolution — and hence
    /// the series and the interpolated diameter — is bit-for-bit
    /// identical to the sequential algorithm.
    #[test]
    fn sharded_hyperanf_equals_sequential(tl in arb_timeline(80), seed in any::<u64>()) {
        let csr = final_csr(&tl);
        let n = san_graph::SanRead::num_social_nodes(&csr);
        let adj: Vec<Vec<u32>> = (0..n as u32)
            .map(|u| {
                san_graph::SanRead::out_neighbors(&csr, SocialId(u))
                    .iter()
                    .map(|v| v.0)
                    .collect()
            })
            .collect();
        let init = vec![true; n];
        let seq_nf = neighborhood_function(&adj, &init, &init, 6, 256, seed);
        let seq_d = social_effective_diameter(&csr, 0.9, 6, seed);
        for &k in &SHARD_COUNTS {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            let nf = neighborhood_function_sharded(&sharded, 6, 256, seed);
            prop_assert_eq!(&nf, &seq_nf, "k={}", k);
            prop_assert_eq!(
                social_effective_diameter_sharded(&sharded, 0.9, 6, seed),
                seq_d,
                "k={}", k
            );
        }
    }
}

/// Degenerate shapes the strategies may not hit hard enough: the empty
/// snapshot and K far above the node count, for every sharded metric.
#[test]
fn sharded_metrics_on_empty_and_oversharded_snapshots() {
    let empty = San::new().freeze();
    let mut tiny = San::new();
    let u0 = tiny.add_social_node();
    let u1 = tiny.add_social_node();
    tiny.add_social_link(u0, u1);
    tiny.add_social_link(u1, u0);
    let a = tiny.add_attr_node(AttrType::City);
    tiny.add_attr_link(u0, a);
    let tiny = tiny.freeze();

    for csr in [empty, tiny] {
        for k in [1usize, 7, 32] {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            assert!(close(
                average_clustering_sharded(&sharded, NodeSet::Social),
                average_clustering_exact(&csr, NodeSet::Social)
            ));
            assert_eq!(
                global_reciprocity_sharded(&sharded),
                global_reciprocity(&csr)
            );
            let dv = degree_vectors_sharded(&sharded);
            let seq = san_graph::degree::degree_vectors(&csr);
            assert_eq!(dv.out, seq.out);
            assert_eq!(dv.social_of_attr, seq.social_of_attr);
            assert_eq!(social_knn_sharded(&sharded), social_knn(&csr));
            assert_eq!(
                social_assortativity_sharded(&sharded),
                social_assortativity(&csr)
            );
            assert_eq!(
                social_effective_diameter_sharded(&sharded, 0.9, 6, 3),
                social_effective_diameter(&csr, 0.9, 6, 3)
            );
        }
    }
}
