//! Equivalence lockdown for vault-resumed sweeps: a sweep warm-started
//! from a persisted day ([`SnapshotSource::Vault`]) must be **bit
//! identical** to the `day ≥ start` suffix of the full replay-from-day-0
//! sweep — for clustering and reciprocity, over step ∈ {1, 3, 7} ×
//! persisted-day grids, across the sequential, parallel and sharded
//! drivers, including resume-from-day-0 and resume-past-the-last-
//! persisted-day edges.

use san_graph::store::SnapshotVault;
use san_graph::{AttrType, SanTimeline, SocialId, TimelineBuilder};
use san_metrics::clustering::{average_clustering_exact, average_clustering_sharded, NodeSet};
use san_metrics::evolution::{
    evolve_metric, evolve_metric_from, evolve_metric_parallel_from, evolve_metric_sharded_from,
    MetricSeries, SnapshotSource,
};
use san_metrics::reciprocity::{global_reciprocity, global_reciprocity_sharded};
use san_stats::SplitRng;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "san-vaulteq-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Same rich fixture family as `streaming_equivalence`: reciprocal links,
/// triangles and attribute links so both metrics are non-trivial on most
/// days; `max_day` not a multiple of any tested step.
fn rich_timeline(days: u32, seed: u64) -> SanTimeline {
    let mut rng = SplitRng::new(seed);
    let mut tb = TimelineBuilder::new();
    let mut users: Vec<SocialId> = Vec::new();
    let attr = {
        let first = tb.add_social_node();
        users.push(first);
        tb.add_attr_node(AttrType::Employer)
    };
    for day in 1..=days {
        tb.advance_to_day(day);
        for _ in 0..1 + (day % 3) {
            let u = tb.add_social_node();
            for _ in 0..2 {
                let v = users[rng.below(users.len() as u64) as usize];
                if tb.add_social_link(u, v) && rng.chance(0.5) {
                    tb.add_social_link(v, u);
                }
            }
            if rng.chance(0.3) {
                tb.add_attr_link(u, attr);
            }
            users.push(u);
        }
        if users.len() >= 3 && rng.chance(0.6) {
            let a = users[rng.below(users.len() as u64) as usize];
            let b = users[rng.below(users.len() as u64) as usize];
            if a != b {
                tb.add_social_link(a, b);
            }
        }
    }
    tb.finish().0
}

/// The full series restricted to sampled days `≥ start` — what any
/// resumed sweep must reproduce exactly.
fn suffix(full: &MetricSeries, start: u32) -> MetricSeries {
    let mut out = MetricSeries {
        name: full.name.clone(),
        ..MetricSeries::default()
    };
    for (&day, &value) in full.days.iter().zip(&full.values) {
        if day >= start {
            out.days.push(day);
            out.values.push(value);
        }
    }
    out
}

/// The core matrix: persisted-day grids {4, 10} × step ∈ {1, 3, 7} ×
/// resume points covering day 0, persisted days, off-grid days, and past
/// the last persisted day — clustering and reciprocity both bit-identical
/// to the full sweep's suffix, through the sequential driver.
#[test]
fn resumed_sequential_matches_full_suffix() {
    let tl = rich_timeline(45, 101);
    for vault_step in [4u32, 10] {
        let tmp = TempDir::new("seq");
        let mut vault = SnapshotVault::create(&tmp.0).unwrap();
        let saved = vault.save_timeline(&tl, vault_step).unwrap();
        let last_persisted = *saved.last().unwrap();
        for step in [1u32, 3, 7] {
            let full_recip = evolve_metric(&tl, "recip", step, |_, s| global_reciprocity(s));
            let full_clus = evolve_metric(&tl, "clus", step, |_, s| {
                average_clustering_exact(s, NodeSet::Social)
            });
            // Resume points: day 0, a persisted day, just after one,
            // between persisted days, past the last persisted day, and
            // the final day itself.
            for start in [0u32, vault_step, vault_step + 1, 13, last_persisted + 2, 45] {
                let src = SnapshotSource::Vault {
                    timeline: &tl,
                    vault: &vault,
                    start,
                };
                let recip = evolve_metric_from(src, "recip", step, |_, s| global_reciprocity(s))
                    .expect("vault sweep");
                assert_eq!(
                    recip,
                    suffix(&full_recip, start),
                    "reciprocity vault_step={vault_step} step={step} start={start}"
                );
                let clus = evolve_metric_from(src, "clus", step, |_, s| {
                    average_clustering_exact(s, NodeSet::Social)
                })
                .expect("vault sweep");
                assert_eq!(
                    clus,
                    suffix(&full_clus, start),
                    "clustering vault_step={vault_step} step={step} start={start}"
                );
            }
        }
    }
}

/// The parallel driver over the same matrix (threads ∈ {1, 2, 8}).
#[test]
fn resumed_parallel_matches_full_suffix() {
    let tl = rich_timeline(45, 211);
    let tmp = TempDir::new("par");
    let mut vault = SnapshotVault::create(&tmp.0).unwrap();
    vault.save_timeline(&tl, 7).unwrap();
    for step in [1u32, 3, 7] {
        let full = evolve_metric(&tl, "recip", step, |_, s| global_reciprocity(s));
        for threads in [1usize, 2, 8] {
            for start in [0u32, 14, 20, 44] {
                let src = SnapshotSource::Vault {
                    timeline: &tl,
                    vault: &vault,
                    start,
                };
                let par = evolve_metric_parallel_from(src, "recip", step, threads, |_, s| {
                    global_reciprocity(s)
                })
                .expect("vault sweep");
                assert_eq!(
                    par,
                    suffix(&full, start),
                    "step={step} threads={threads} start={start}"
                );
            }
        }
    }
}

/// The sharded driver: days × shards on a vault warm start, reciprocity
/// bit-identical, clustering within float-regrouping tolerance of the
/// sequential full sweep.
#[test]
fn resumed_sharded_matches_full_suffix() {
    let tl = rich_timeline(45, 307);
    let tmp = TempDir::new("shard");
    let mut vault = SnapshotVault::create(&tmp.0).unwrap();
    vault.save_timeline(&tl, 10).unwrap();
    for step in [1u32, 3, 7] {
        let full_recip = evolve_metric(&tl, "recip", step, |_, s| global_reciprocity(s));
        let full_clus = evolve_metric(&tl, "clus", step, |_, s| {
            average_clustering_exact(s, NodeSet::Social)
        });
        for shards in [1usize, 2, 4] {
            let src = SnapshotSource::Vault {
                timeline: &tl,
                vault: &vault,
                start: 21,
            };
            let recip = evolve_metric_sharded_from(src, "recip", step, 2, shards, |_, g| {
                global_reciprocity_sharded(g)
            })
            .expect("vault sweep");
            assert_eq!(
                recip,
                suffix(&full_recip, 21),
                "reciprocity step={step} shards={shards}"
            );
            let clus = evolve_metric_sharded_from(src, "clus", step, 2, shards, |_, g| {
                average_clustering_sharded(g, NodeSet::Social)
            })
            .expect("vault sweep");
            let expect = suffix(&full_clus, 21);
            assert_eq!(clus.days, expect.days, "step={step} shards={shards}");
            for (day, (a, b)) in clus.days.iter().zip(clus.values.iter().zip(&expect.values)) {
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "clustering day={day} step={step} shards={shards}: {a} vs {b}"
                );
            }
        }
    }
}

/// Resume edges: an empty vault falls back to replay (still exact); a
/// start past the final day yields an empty series; resuming exactly at
/// the last persisted day emits it without patching anything.
#[test]
fn resume_edge_cases() {
    let tl = rich_timeline(30, 401);
    let tmp = TempDir::new("edges");

    // Empty vault: nothing persisted, sweep falls back to full replay.
    let empty_vault = SnapshotVault::create(tmp.0.join("empty")).unwrap();
    let full = evolve_metric(&tl, "recip", 3, |_, s| global_reciprocity(s));
    for start in [0u32, 11] {
        let src = SnapshotSource::Vault {
            timeline: &tl,
            vault: &empty_vault,
            start,
        };
        let series =
            evolve_metric_from(src, "recip", 3, |_, s| global_reciprocity(s)).expect("sweep");
        assert_eq!(series, suffix(&full, start), "empty vault start={start}");
    }

    // Start past the final day: empty series, not an error.
    let mut vault = SnapshotVault::create(tmp.0.join("v")).unwrap();
    vault.save_timeline(&tl, 10).unwrap();
    let src = SnapshotSource::Vault {
        timeline: &tl,
        vault: &vault,
        start: 31,
    };
    let series = evolve_metric_from(src, "x", 1, |_, s| global_reciprocity(s)).expect("sweep");
    assert!(series.days.is_empty());
    assert!(series.values.is_empty());

    // Resume exactly at the final (and persisted) day: one sample, the
    // loaded snapshot itself.
    let src = SnapshotSource::Vault {
        timeline: &tl,
        vault: &vault,
        start: 30,
    };
    let series = evolve_metric_from(src, "recip", 7, |_, s| global_reciprocity(s)).expect("sweep");
    assert_eq!(series.days, vec![30]);
    assert_eq!(series.values, suffix(&full_series_step7(&tl), 30).values);

    // Empty timeline: vault resume yields an empty series.
    let empty_tl = SanTimeline::default();
    let src = SnapshotSource::Vault {
        timeline: &empty_tl,
        vault: &vault,
        start: 0,
    };
    let series = evolve_metric_from(src, "x", 1, |_, s| global_reciprocity(s)).expect("sweep");
    assert!(series.days.is_empty());
}

fn full_series_step7(tl: &SanTimeline) -> MetricSeries {
    evolve_metric(tl, "recip", 7, |_, s| global_reciprocity(s))
}

/// A vault persisted on a coarse grid accelerates a fine-grained resume:
/// the warm start must not re-apply the days before the persisted day
/// (the freezer's day counter proves it).
#[test]
fn resume_skips_prefix_days() {
    let tl = rich_timeline(40, 503);
    let tmp = TempDir::new("budget");
    let mut vault = SnapshotVault::create(&tmp.0).unwrap();
    vault.save_timeline(&tl, 10).unwrap();
    let mut stream = tl.resume_from_vault(&vault, 25, 1).expect("resume");
    let mut sampled = Vec::new();
    for (day, _) in stream.by_ref() {
        sampled.push(day);
    }
    assert_eq!(sampled, (25u32..=40).collect::<Vec<_>>());
    // Persisted day 20 was loaded, so only days 21..=40 were patched.
    assert_eq!(stream.days_applied(), 20);
}
