//! Mapped-vs-loaded equivalence: every metric result computed on a
//! zero-copy [`CsrSanView`] over a mapped snapshot file is **bit-identical**
//! to the same metric on the eagerly-loaded [`CsrSan`] — and evolution
//! sweeps seeded from a mapped day (`SnapshotSource::Mapped`) are
//! bit-identical to the `day ≥ start` suffix of a full replay sweep,
//! across the sequential, bounded-channel parallel, and days × shards
//! drivers.

#![cfg(unix)]

use san_graph::mmap::MappedSnapshot;
use san_graph::store::SnapshotVault;
use san_graph::view::CsrSanView;
use san_graph::{CsrSan, SanRead, SanTimeline, SocialId, TimelineBuilder};
use san_metrics::clustering::{average_clustering_exact, NodeSet};
use san_metrics::evolution::{
    evolve_metric, evolve_metric_from, evolve_metric_parallel_from, evolve_metric_sharded_from,
    MetricSeries, SnapshotSource,
};
use san_metrics::hyperanf::{neighborhood_function, social_effective_diameter};
use san_metrics::reciprocity::global_reciprocity;
use san_stats::SplitRng;
use std::path::PathBuf;

/// A fresh scratch directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "san-mapped-eq-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes a snapshot to a file and maps it back.
fn map_snapshot(tmp: &TempDir, name: &str, snap: &CsrSan) -> MappedSnapshot {
    let path = tmp.file(name);
    std::fs::write(&path, snap.to_store_bytes()).expect("write snapshot file");
    MappedSnapshot::open(&path).expect("map snapshot")
}

/// A growing timeline with reciprocal links and attributes every day.
fn growing_timeline(days: u32, per_day: usize, seed: u64) -> SanTimeline {
    let mut rng = SplitRng::new(seed);
    let mut tb = TimelineBuilder::new();
    let mut users = vec![tb.add_social_node()];
    let attrs: Vec<_> = (0..8)
        .map(|i| tb.add_attr_node(san_graph::AttrType::PAPER_TYPES[i % 4]))
        .collect();
    for day in 1..=days {
        tb.advance_to_day(day);
        for _ in 0..per_day {
            let u = tb.add_social_node();
            for _ in 0..2 {
                let v = users[rng.below(users.len() as u64) as usize];
                tb.add_social_link(u, v);
                if rng.chance(0.4) {
                    tb.add_social_link(v, u);
                }
            }
            if rng.chance(0.5) {
                tb.add_attr_link(u, attrs[rng.below(attrs.len() as u64) as usize]);
            }
            users.push(u);
        }
    }
    tb.finish().0
}

/// The HyperANF series through the generic adjacency extraction — the
/// same path `social_effective_diameter` uses, exposed here so the whole
/// series (not just the quantile) can be compared bit-for-bit.
fn hyperanf_series(g: &impl SanRead) -> Vec<u64> {
    let adj: Vec<Vec<u32>> = g
        .social_nodes()
        .map(|u| g.out_neighbors(u).iter().map(|v| v.0).collect())
        .collect();
    let init = vec![true; adj.len()];
    neighborhood_function(&adj, &init, &init, 7, 256, 11)
        .into_iter()
        .map(f64::to_bits)
        .collect()
}

#[test]
fn mapped_metrics_bit_identical_to_loaded() {
    let tmp = TempDir::new("metrics");
    let tl = growing_timeline(30, 6, 3);
    for day in [0u32, 7, 19, 30] {
        let owned = tl.snapshot_csr(day);
        let mapped = map_snapshot(&tmp, &format!("day-{day}.csr"), &owned);
        let view = mapped.view();
        assert_eq!(
            average_clustering_exact(&view, NodeSet::Social).to_bits(),
            average_clustering_exact(&owned, NodeSet::Social).to_bits(),
            "clustering day {day}"
        );
        assert_eq!(
            average_clustering_exact(&view, NodeSet::Attr).to_bits(),
            average_clustering_exact(&owned, NodeSet::Attr).to_bits(),
            "attr clustering day {day}"
        );
        assert_eq!(
            global_reciprocity(&view).to_bits(),
            global_reciprocity(&owned).to_bits(),
            "reciprocity day {day}"
        );
        assert_eq!(
            hyperanf_series(&view),
            hyperanf_series(&owned),
            "hyperanf series day {day}"
        );
        assert_eq!(
            social_effective_diameter(&view, 0.9, 7, 11).to_bits(),
            social_effective_diameter(&owned, 0.9, 7, 11).to_bits(),
            "effective diameter day {day}"
        );
    }
}

/// The suffix of a series at days `>= start`.
fn suffix(series: &MetricSeries, start: u32) -> (Vec<u32>, Vec<u64>) {
    let mut days = Vec::new();
    let mut values = Vec::new();
    for (&d, &v) in series.days.iter().zip(&series.values) {
        if d >= start {
            days.push(d);
            values.push(v.to_bits());
        }
    }
    (days, values)
}

#[test]
fn mapped_seeded_sweeps_match_replay_suffix_across_drivers() {
    let tmp = TempDir::new("sweeps");
    let tl = growing_timeline(24, 4, 9);
    let metric = |_: u32, s: &CsrSan| average_clustering_exact(s, NodeSet::Social);
    for step in [1u32, 3, 7] {
        let full = evolve_metric(&tl, "clust", step, metric);
        for (seed_day, start) in [(0u32, 0u32), (5, 5), (5, 9), (11, 24), (24, 24), (0, 17)] {
            let seed = tl.snapshot_csr(seed_day);
            let mapped = map_snapshot(&tmp, &format!("seed-{step}-{seed_day}-{start}.csr"), &seed);
            let source = || SnapshotSource::Mapped {
                timeline: &tl,
                view: mapped.view(),
                day: seed_day,
                start,
            };
            let expect = suffix(&full, start);
            let seq = evolve_metric_from(source(), "clust", step, metric).expect("mapped seq");
            assert_eq!(
                suffix(&seq, 0),
                expect,
                "seq step={step} seed={seed_day} start={start}"
            );
            for threads in [1usize, 4] {
                let par = evolve_metric_parallel_from(source(), "clust", step, threads, metric)
                    .expect("mapped par");
                assert_eq!(
                    suffix(&par, 0),
                    expect,
                    "par step={step} seed={seed_day} start={start} threads={threads}"
                );
            }
            let sharded = evolve_metric_sharded_from(source(), "clust", step, 2, 3, |_, g| {
                san_metrics::clustering::average_clustering_sharded(g, NodeSet::Social)
            })
            .expect("mapped sharded");
            // Sharded clustering regroups float sums: compare within 1e-12
            // (the shard-equivalence contract), days exactly.
            assert_eq!(sharded.days, expect.0);
            for (a, &b) in sharded.values.iter().zip(&expect.1) {
                assert!(
                    (a - f64::from_bits(b)).abs() <= 1e-12,
                    "sharded step={step} seed={seed_day} start={start}"
                );
            }
        }
    }
}

#[test]
fn mapped_source_matches_vault_source_bit_for_bit() {
    // The two warm-start paths (eager vault load vs mapped view) must be
    // indistinguishable downstream: same days, bit-identical values.
    let tmp = TempDir::new("vault-vs-mapped");
    let tl = growing_timeline(21, 5, 13);
    let vault_dir = tmp.file("vault");
    let mut vault = SnapshotVault::create(&vault_dir).expect("create vault");
    vault.save_timeline(&tl, 7).expect("persist");
    let metric = |_: u32, s: &CsrSan| global_reciprocity(s);
    for (start, nearest) in [(7u32, 7u32), (9, 7), (20, 14), (21, 21)] {
        let mapped = vault.map_day(nearest).expect("map persisted day");
        let from_vault = evolve_metric_from(
            SnapshotSource::Vault {
                timeline: &tl,
                vault: &vault,
                start,
            },
            "recip",
            1,
            metric,
        )
        .expect("vault sweep");
        let from_mapped = evolve_metric_from(
            SnapshotSource::Mapped {
                timeline: &tl,
                view: mapped.view(),
                day: nearest,
                start,
            },
            "recip",
            1,
            metric,
        )
        .expect("mapped sweep");
        assert_eq!(from_mapped.days, from_vault.days, "start={start}");
        let a: Vec<u64> = from_mapped.values.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = from_vault.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "start={start}");
    }
}

#[test]
fn mapped_source_edge_cases() {
    let tmp = TempDir::new("edges");
    let tl = growing_timeline(10, 3, 5);
    let metric = |_: u32, s: &CsrSan| s.num_social_links() as f64;
    // Start past the final day: nothing to emit.
    let seed = tl.snapshot_csr(4);
    let mapped = map_snapshot(&tmp, "seed-4.csr", &seed);
    let series = evolve_metric_from(
        SnapshotSource::Mapped {
            timeline: &tl,
            view: mapped.view(),
            day: 4,
            start: 99,
        },
        "links",
        1,
        metric,
    )
    .expect("past-the-end sweep");
    assert!(series.days.is_empty());
    // Empty timeline: nothing to emit either.
    let empty = SanTimeline::default();
    let empty_seed = empty.snapshot_csr(0);
    let empty_mapped = map_snapshot(&tmp, "seed-empty.csr", &empty_seed);
    let series = evolve_metric_from(
        SnapshotSource::Mapped {
            timeline: &empty,
            view: empty_mapped.view(),
            day: 0,
            start: 0,
        },
        "links",
        1,
        metric,
    )
    .expect("empty sweep");
    assert!(series.days.is_empty());
}

#[test]
#[should_panic(expected = "must not exceed")]
fn mapped_seed_after_start_panics() {
    let tmp = TempDir::new("bad-seed");
    let tl = growing_timeline(8, 3, 7);
    let seed = tl.snapshot_csr(6);
    let mapped = map_snapshot(&tmp, "seed-6.csr", &seed);
    let _ = evolve_metric_from(
        SnapshotSource::Mapped {
            timeline: &tl,
            view: mapped.view(),
            day: 6,
            start: 2,
        },
        "x",
        1,
        |_, _| 0.0,
    );
}

#[test]
fn ten_k_fixture_mapped_final_day_is_bit_identical() {
    // The 10k-node/98-day scale: the mapped view must agree with the
    // owned snapshot on an expensive exact metric and on raw structure.
    let tmp = TempDir::new("tenk");
    let mut rng = SplitRng::new(42);
    let mut tb = TimelineBuilder::new();
    let mut users = vec![tb.add_social_node()];
    let attrs: Vec<_> = (0..64)
        .map(|i| tb.add_attr_node(san_graph::AttrType::PAPER_TYPES[i % 4]))
        .collect();
    for day in 1..=98u32 {
        tb.advance_to_day(day);
        for _ in 0..102 {
            let u = tb.add_social_node();
            for _ in 0..3 {
                let v = users[rng.below(users.len() as u64) as usize];
                tb.add_social_link(u, v);
                if rng.chance(0.3) {
                    tb.add_social_link(v, u);
                }
            }
            if rng.chance(0.4) {
                tb.add_attr_link(u, attrs[rng.below(64) as usize]);
            }
            users.push(u);
        }
    }
    let (_, san) = tb.finish();
    assert!(san.num_social_nodes() >= 9_000);
    let owned = san.freeze();
    let mapped = map_snapshot(&tmp, "tenk.csr", &owned);
    let view: CsrSanView<'_> = mapped.view();
    assert_eq!(view.num_social_nodes(), owned.num_social_nodes());
    assert_eq!(
        average_clustering_exact(&view, NodeSet::Social).to_bits(),
        average_clustering_exact(&owned, NodeSet::Social).to_bits()
    );
    assert_eq!(
        global_reciprocity(&view).to_bits(),
        global_reciprocity(&owned).to_bits()
    );
    // Structural spot checks across the id range.
    let mut rng = SplitRng::new(7);
    for _ in 0..2_000 {
        let u = SocialId(rng.below(owned.num_social_nodes() as u64) as u32);
        assert_eq!(view.out_neighbors(u), SanRead::out_neighbors(&owned, u));
        assert_eq!(view.undirected_neighbors(u), owned.undirected_neighbors(u));
    }
}
