//! Integration lockdown for the streamed snapshot pipeline: the
//! bounded-channel [`evolve_metric_parallel`] must return *exactly* the
//! same [`MetricSeries`] as the sequential [`evolve_metric`] for real
//! metrics (clustering, reciprocity) across every `threads × step`
//! combination, including the always-sample-final-day edge case and the
//! empty timeline. Run it with `--test-threads` > 1 in CI so several
//! bounded channels contend for cores at once.

use san_graph::{AttrType, SanTimeline, SocialId, TimelineBuilder};
use san_metrics::clustering::{average_clustering_exact, average_clustering_sharded, NodeSet};
use san_metrics::evolution::{
    evolve_metric, evolve_metric_counts, evolve_metric_parallel, evolve_metric_sharded,
};
use san_metrics::reciprocity::{global_reciprocity, global_reciprocity_sharded};
use san_stats::SplitRng;

/// A 45-day timeline with reciprocal links, triangles and attribute links,
/// so clustering and reciprocity are non-trivial on most sampled days.
/// `max_day` is deliberately not a multiple of any tested step.
fn rich_timeline(days: u32, seed: u64) -> SanTimeline {
    let mut rng = SplitRng::new(seed);
    let mut tb = TimelineBuilder::new();
    let mut users: Vec<SocialId> = Vec::new();
    let attr = {
        let first = tb.add_social_node();
        users.push(first);
        tb.add_attr_node(AttrType::Employer)
    };
    for day in 1..=days {
        tb.advance_to_day(day);
        for _ in 0..1 + (day % 3) {
            let u = tb.add_social_node();
            // Attach to a few random earlier users; reciprocate half.
            for _ in 0..2 {
                let v = users[rng.below(users.len() as u64) as usize];
                if tb.add_social_link(u, v) && rng.chance(0.5) {
                    tb.add_social_link(v, u);
                }
            }
            if rng.chance(0.3) {
                tb.add_attr_link(u, attr);
            }
            users.push(u);
        }
        // Occasionally close a triangle among existing users.
        if users.len() >= 3 && rng.chance(0.6) {
            let a = users[rng.below(users.len() as u64) as usize];
            let b = users[rng.below(users.len() as u64) as usize];
            if a != b {
                tb.add_social_link(a, b);
            }
        }
    }
    tb.finish().0
}

#[test]
fn streamed_parallel_matches_sequential_clustering() {
    let tl = rich_timeline(45, 11);
    for step in [1u32, 3, 7] {
        let seq = evolve_metric(&tl, "clustering", step, |_, snap| {
            average_clustering_exact(snap, NodeSet::Social)
        });
        for threads in [1usize, 2, 8] {
            let par = evolve_metric_parallel(&tl, "clustering", step, threads, |_, snap| {
                average_clustering_exact(snap, NodeSet::Social)
            });
            assert_eq!(par, seq, "clustering step={step} threads={threads}");
        }
    }
}

#[test]
fn streamed_parallel_matches_sequential_reciprocity() {
    let tl = rich_timeline(45, 23);
    for step in [1u32, 3, 7] {
        let seq = evolve_metric(&tl, "reciprocity", step, |_, snap| global_reciprocity(snap));
        for threads in [1usize, 2, 8] {
            let par = evolve_metric_parallel(&tl, "reciprocity", step, threads, |_, snap| {
                global_reciprocity(snap)
            });
            assert_eq!(par, seq, "reciprocity step={step} threads={threads}");
        }
    }
}

/// Shard mode over the same matrix: `evolve_metric_sharded` running the
/// shard-parallel metrics must reproduce the sequential whole-snapshot
/// sweep for every `threads × shards × step` combination. Reciprocity is
/// integer-tallied (exact equality); clustering merges float partials
/// (1e-12).
#[test]
fn sharded_sweep_matches_sequential_metrics() {
    let tl = rich_timeline(45, 37);
    for step in [1u32, 3, 7] {
        let seq_recip = evolve_metric(&tl, "recip", step, |_, s| global_reciprocity(s));
        let seq_clus = evolve_metric(&tl, "clus", step, |_, s| {
            average_clustering_exact(s, NodeSet::Social)
        });
        for threads in [1usize, 2] {
            for shards in [1usize, 2, 4] {
                let recip = evolve_metric_sharded(&tl, "recip", step, threads, shards, |_, g| {
                    global_reciprocity_sharded(g)
                });
                assert_eq!(
                    recip, seq_recip,
                    "reciprocity step={step} threads={threads} shards={shards}"
                );
                let clus = evolve_metric_sharded(&tl, "clus", step, threads, shards, |_, g| {
                    average_clustering_sharded(g, NodeSet::Social)
                });
                assert_eq!(clus.days, seq_clus.days);
                for (day, (a, b)) in clus
                    .days
                    .iter()
                    .zip(clus.values.iter().zip(&seq_clus.values))
                {
                    assert!(
                        (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                        "clustering day={day} step={step} threads={threads} shards={shards}: \
                         {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn final_day_always_sampled() {
    // max_day = 45: not a multiple of 7, so the final sample is the forced
    // one; both variants must include it (and only once).
    let tl = rich_timeline(45, 31);
    for threads in [1usize, 2, 8] {
        let par = evolve_metric_parallel(&tl, "recip", 7, threads, |_, s| global_reciprocity(s));
        assert_eq!(par.days.last(), Some(&45), "threads={threads}");
        assert_eq!(
            par.days.iter().filter(|&&d| d == 45).count(),
            1,
            "final day sampled exactly once (threads={threads})"
        );
        assert_eq!(par.days, vec![0, 7, 14, 21, 28, 35, 42, 45]);
    }
}

#[test]
fn empty_timeline_yields_empty_series() {
    let tl = SanTimeline::default();
    for threads in [1usize, 2, 8] {
        let par = evolve_metric_parallel(&tl, "x", 1, threads, |_, s| global_reciprocity(s));
        assert!(par.days.is_empty(), "threads={threads}");
        assert!(par.values.is_empty(), "threads={threads}");
    }
    let seq = evolve_metric(&tl, "x", 1, |_, s| global_reciprocity(s));
    assert!(seq.days.is_empty());
}

/// Regression: the sweep's freeze budget. Replay-per-day used to freeze on
/// every *sampled* day from scratch after an O(prefix) replay; the stream
/// must invoke the metric exactly once per sampled day, and the count-only
/// path must produce the same series for counter metrics while never
/// building a CSR at all.
#[test]
fn freeze_budget_one_metric_call_per_sampled_day() {
    let tl = rich_timeline(30, 7);
    let mut calls = 0u32;
    let series = evolve_metric(&tl, "links", 7, |_, snap| {
        calls += 1;
        san_graph::SanRead::num_social_links(snap) as f64
    });
    // Days 0, 7, 14, 21, 28 + forced final day 30.
    assert_eq!(series.days, vec![0, 7, 14, 21, 28, 30]);
    assert_eq!(calls, 6, "one freeze-backed metric call per sampled day");

    // The stream API itself reports the same budget.
    let mut stream = tl.snapshot_stream(7);
    while stream.next().is_some() {}
    assert_eq!(stream.snapshots_taken(), 6);
    assert_eq!(stream.days_applied(), 31);

    // Counter metrics step off the freezing path entirely and agree.
    let counted = evolve_metric_counts(&tl, "links", 7, |c| c.social_links as f64);
    assert_eq!(counted.days, series.days);
    assert_eq!(counted.values, series.values);
}
