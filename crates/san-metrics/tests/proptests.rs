//! Property-based tests for the measurement library.

use proptest::prelude::*;
use san_graph::prelude::*;
use san_metrics::clustering::{
    approx_average_clustering_k, average_clustering_exact, local_clustering_social, NodeSet,
};
use san_metrics::hyperanf::{effective_diameter_from_nf, neighborhood_function};
use san_metrics::jdd::{attribute_assortativity, social_assortativity};
use san_metrics::reciprocity::{fine_grained_reciprocity, global_reciprocity};
use san_stats::SplitRng;

fn arb_san(max_social: u32, max_attr: u32) -> impl Strategy<Value = San> {
    (
        2..=max_social,
        0..=max_attr,
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..250),
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..120),
    )
        .prop_map(|(ns, na, social, attr)| {
            let mut san = San::new();
            for _ in 0..ns {
                san.add_social_node();
            }
            for _ in 0..na {
                san.add_attr_node(AttrType::Other);
            }
            for (u, v) in social {
                if u % ns != v % ns {
                    san.add_social_link(SocialId(u % ns), SocialId(v % ns));
                }
            }
            if na > 0 {
                for (u, a) in attr {
                    san.add_attr_link(SocialId(u % ns), AttrId(a % na));
                }
            }
            san
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Reciprocity is a proper fraction.
    #[test]
    fn reciprocity_in_unit_interval(san in arb_san(40, 0)) {
        let r = global_reciprocity(&san);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// Making every link mutual drives reciprocity to exactly 1.
    #[test]
    fn mutualised_network_fully_reciprocal(san in arb_san(25, 0)) {
        let mut m = san.clone();
        let links: Vec<_> = san.social_links().collect();
        for (u, v) in links {
            m.add_social_link(v, u);
        }
        if m.num_social_links() > 0 {
            prop_assert_eq!(global_reciprocity(&m), 1.0);
        }
    }

    /// Local clustering coefficients are in [0, 1] (denominator counts
    /// ordered pairs, L counts directed links).
    #[test]
    fn clustering_in_unit_interval(san in arb_san(30, 0)) {
        for u in san.social_nodes() {
            let c = local_clustering_social(&san, u);
            prop_assert!((0.0..=1.0).contains(&c), "c={} at {}", c, u);
        }
    }

    /// The Algorithm 2 estimator is unbiased enough: with a large budget it
    /// lands within 0.05 of the exact average.
    #[test]
    fn algorithm2_close_to_exact(san in arb_san(25, 6), seed in 0u64..50) {
        let exact = average_clustering_exact(&san, NodeSet::Social);
        let mut rng = SplitRng::new(seed);
        let approx = approx_average_clustering_k(&san, NodeSet::Social, 20_000, &mut rng);
        prop_assert!((approx - exact).abs() < 0.05,
            "exact={} approx={}", exact, approx);
    }

    /// Assortativity coefficients stay within [-1, 1].
    #[test]
    fn assortativity_bounded(san in arb_san(40, 8)) {
        let r = social_assortativity(&san);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        let ra = attribute_assortativity(&san);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ra));
    }

    /// Fine-grained reciprocity cells partition the one-directional links
    /// and rates are proper fractions.
    #[test]
    fn fine_grained_cells_consistent(san in arb_san(25, 5)) {
        let one_directional = san
            .social_links()
            .filter(|&(u, v)| !san.has_social_link(v, u))
            .count();
        let cells = fine_grained_reciprocity(&san, &san);
        let total: usize = cells.iter().map(|c| c.links).sum();
        prop_assert_eq!(total, one_directional);
        for c in &cells {
            prop_assert!(c.reciprocated <= c.links);
            prop_assert!(c.common_attrs <= 2);
            prop_assert!((0.0..=1.0).contains(&c.rate()));
        }
    }

    /// The neighbourhood function is monotone non-decreasing in t.
    #[test]
    fn nf_monotone(san in arb_san(30, 0), seed in 0u64..20) {
        let adj: Vec<Vec<u32>> = san
            .social_nodes()
            .map(|u| san.out_neighbors(u).iter().map(|v| v.0).collect())
            .collect();
        let init = vec![true; adj.len()];
        let nf = neighborhood_function(&adj, &init, &init, 6, 64, seed);
        for w in nf.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9);
        }
    }

    /// Effective diameter is monotone in the quantile.
    #[test]
    fn diameter_monotone_in_q(san in arb_san(30, 0), seed in 0u64..20) {
        let adj: Vec<Vec<u32>> = san
            .social_nodes()
            .map(|u| san.out_neighbors(u).iter().map(|v| v.0).collect())
            .collect();
        let init = vec![true; adj.len()];
        let nf = neighborhood_function(&adj, &init, &init, 6, 64, seed);
        let d50 = effective_diameter_from_nf(&nf, 0.5);
        let d90 = effective_diameter_from_nf(&nf, 0.9);
        prop_assert!(d50 <= d90 + 1e-9);
    }
}
