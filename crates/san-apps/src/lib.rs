//! # san-apps — application fidelity benchmarks on SANs
//!
//! The paper validates its generative model not only on network metrics but
//! on **applications** that consume the social structure (§6.2), plus two
//! "implications" applications sketched in §4.4/§7. All four live here:
//!
//! * [`sybil`] — **SybilLimit** (Yu et al., Oakland 2008): how many Sybil
//!   identities an adversary with `c` compromised nodes can insert, under
//!   the paper's protocol settings (node degree bound 100, `w = 10`) —
//!   Fig. 19a;
//! * [`anonymity`] — **Drac-style anonymous communication** (Danezis et
//!   al., PETS 2010): probability that a random-walk circuit over social
//!   links has both its first and last hop compromised (end-to-end timing
//!   analysis) — Fig. 19b;
//! * [`mod@recommend`] — friend recommendation driven by common friends and
//!   common attributes (the §7 implication that employer-sharing should
//!   power recommenders);
//! * [`reciprocity_predict`] — the §4.4 implication that "any reciprocity
//!   predictor should incorporate node attributes", as a measurable
//!   comparison between attribute-aware and structure-only predictors;
//! * [`attr_infer`] — attribute inference from friends' profiles (the
//!   companion task of the paper's SAN framework reference \[17\]).
//!
//! Every entry point is generic over [`san_graph::SanRead`], so the same
//! code evaluates the real (simulated) Google+, the paper's model output,
//! the Zhel baseline — the Fig. 19 comparison — and runs equally against
//! mutable [`san_graph::San`] values or frozen [`san_graph::CsrSan`]
//! snapshots.

pub mod anonymity;
pub mod attr_infer;
pub mod reciprocity_predict;
pub mod recommend;
pub mod sybil;

pub use anonymity::{timing_analysis_probability, AnonymityConfig};
pub use recommend::{recommend, RecommenderWeights};
pub use sybil::{sybil_curve, sybil_identities, SybilLimitConfig, SybilResult};
