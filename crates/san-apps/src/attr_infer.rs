//! Attribute inference over the SAN — the companion application of the
//! paper's own SNA-KDD reference (\[17\]: "Jointly predicting links and
//! inferring attributes using a social-attribute network").
//!
//! Task: a user hides an attribute (city, employer…); infer it from the
//! network. Two predictors are compared:
//!
//! * **friend vote** — the most common attribute (of the requested type)
//!   among the user's social neighbours; homophily makes this strong
//!   exactly when LAPA/focal-closure effects are present;
//! * **global prior** — the most popular attribute of that type overall
//!   (the baseline any inference must beat).
//!
//! [`evaluate_inference`] performs leave-one-out evaluation over users that
//! declare an attribute of the requested type.

use san_graph::{AttrId, AttrType, SanRead, SocialId};
use san_stats::SplitRng;
use std::collections::HashMap;

/// Predicts a hidden attribute of `user` of the given type from its social
/// neighbours' declared attributes (majority vote; ties broken by id).
/// `hidden` is excluded from the vote (leave-one-out). Returns `None` when
/// no neighbour declares an attribute of that type.
pub fn infer_by_friend_vote(
    san: &impl SanRead,
    user: SocialId,
    ty: AttrType,
    hidden: Option<AttrId>,
) -> Option<AttrId> {
    let mut votes: HashMap<AttrId, usize> = HashMap::new();
    for &w in san.social_neighbors(user).iter() {
        for &a in san.attrs_of(w) {
            if san.attr_type(a) == ty && Some(a) != hidden.filter(|_| w == user) {
                *votes.entry(a).or_insert(0) += 1;
            }
        }
    }
    votes
        .into_iter()
        .max_by_key(|&(a, c)| (c, std::cmp::Reverse(a)))
        .map(|(a, _)| a)
}

/// The globally most popular attribute of a type (the prior baseline).
pub fn global_prior(san: &impl SanRead, ty: AttrType) -> Option<AttrId> {
    san.attr_nodes()
        .filter(|&a| san.attr_type(a) == ty)
        .max_by_key(|&a| (san.social_degree_of_attr(a), std::cmp::Reverse(a)))
}

/// Leave-one-out inference accuracy over up to `sample_users` users that
/// declare at least one attribute of type `ty`.
///
/// Returns `(friend_vote_accuracy, global_prior_accuracy, evaluated)`.
pub fn evaluate_inference(
    san: &impl SanRead,
    ty: AttrType,
    sample_users: usize,
    rng: &mut SplitRng,
) -> (f64, f64, usize) {
    let candidates: Vec<(SocialId, AttrId)> = san
        .social_nodes()
        .filter_map(|u| {
            san.attrs_of(u)
                .iter()
                .copied()
                .find(|&a| san.attr_type(a) == ty)
                .map(|a| (u, a))
        })
        .collect();
    if candidates.is_empty() {
        return (0.0, 0.0, 0);
    }
    let prior = global_prior(san, ty);
    let mut vote_hits = 0usize;
    let mut prior_hits = 0usize;
    let n = sample_users.min(candidates.len());
    for _ in 0..n {
        let (u, truth) = candidates[rng.below(candidates.len() as u64) as usize];
        if infer_by_friend_vote(san, u, ty, Some(truth)) == Some(truth) {
            vote_hits += 1;
        }
        if prior == Some(truth) {
            prior_hits += 1;
        }
    }
    (vote_hits as f64 / n as f64, prior_hits as f64 / n as f64, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::San;

    /// Two homophilous communities: everyone in group g works at employer
    /// g and is densely linked within the group.
    #[allow(clippy::needless_range_loop)]
    fn homophilous_world() -> San {
        let mut san = San::new();
        let mut users = Vec::new();
        for _ in 0..20 {
            users.push(san.add_social_node());
        }
        let e0 = san.add_attr_node(AttrType::Employer);
        let e1 = san.add_attr_node(AttrType::Employer);
        for (i, &u) in users.iter().enumerate() {
            let group = i / 10;
            san.add_attr_link(u, if group == 0 { e0 } else { e1 });
            // Link to the previous few users in the same group.
            for j in i.saturating_sub(3)..i {
                if j / 10 == group {
                    san.add_social_link(u, users[j]);
                }
            }
        }
        san
    }

    #[test]
    fn friend_vote_recovers_community_attribute() {
        let san = homophilous_world();
        let mut rng = SplitRng::new(1);
        let (vote_acc, prior_acc, n) = evaluate_inference(&san, AttrType::Employer, 100, &mut rng);
        assert!(n > 0);
        assert!(vote_acc > 0.9, "vote_acc={vote_acc}");
        // The prior can only ever name one employer: ~50% here.
        assert!(prior_acc < 0.7, "prior_acc={prior_acc}");
        assert!(vote_acc > prior_acc);
    }

    #[test]
    fn vote_returns_none_without_signal() {
        let mut san = San::new();
        let u = san.add_social_node();
        let _a = san.add_attr_node(AttrType::City);
        assert_eq!(infer_by_friend_vote(&san, u, AttrType::City, None), None);
    }

    #[test]
    fn global_prior_is_most_popular() {
        let san = homophilous_world();
        let p = global_prior(&san, AttrType::Employer).unwrap();
        // Both employers have 10 members; tie broken by id -> the larger id
        // loses under Reverse, so AttrId(0) wins.
        assert_eq!(p, AttrId(0));
        assert_eq!(global_prior(&san, AttrType::City), None);
    }

    #[test]
    fn type_filter_respected() {
        let mut san = San::new();
        let u = san.add_social_node();
        let v = san.add_social_node();
        san.add_social_link(u, v);
        let city = san.add_attr_node(AttrType::City);
        san.add_attr_link(v, city);
        // Asking for Employer must not return the city.
        assert_eq!(
            infer_by_friend_vote(&san, u, AttrType::Employer, None),
            None
        );
        assert_eq!(
            infer_by_friend_vote(&san, u, AttrType::City, None),
            Some(city)
        );
    }

    #[test]
    fn empty_evaluation() {
        let san = San::new();
        let mut rng = SplitRng::new(2);
        let (a, b, n) = evaluate_inference(&san, AttrType::City, 10, &mut rng);
        assert_eq!((a, b, n), (0.0, 0.0, 0));
    }
}
