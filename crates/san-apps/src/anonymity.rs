//! Social-network anonymous communication (§6.2, Fig. 19b).
//!
//! Drac-style systems build onion-routing circuits by **random walks over
//! the social graph**: a user forwards through friends, friends of
//! friends, … If both the *first* and the *last* relay of a circuit are
//! compromised, the adversary correlates entry and exit traffic
//! (end-to-end timing analysis) and anonymity is broken. The paper
//! evaluates that probability with uniformly compromised nodes and the same
//! degree bound (100) as the Sybil experiment.
//!
//! [`timing_analysis_probability`] estimates the attack probability by
//! Monte-Carlo circuit construction on the degree-bounded undirected graph.

use san_graph::degree::{bound_degrees, to_undirected};
use san_graph::SanRead;
use san_stats::SplitRng;
use serde::{Deserialize, Serialize};

/// Anonymity experiment settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnonymityConfig {
    /// Node degree bound (paper: 100).
    pub degree_bound: usize,
    /// Circuit length in hops (first relay = hop 1, last = hop `length`).
    pub circuit_length: usize,
    /// Monte-Carlo circuits to sample.
    pub samples: usize,
}

impl Default for AnonymityConfig {
    fn default() -> Self {
        AnonymityConfig {
            degree_bound: 100,
            circuit_length: 6,
            samples: 200_000,
        }
    }
}

/// Estimates `P(first and last relay compromised)` for random-walk
/// circuits started at uniformly random honest users.
///
/// Walks that hit a dead end (isolated initiator or zero-degree
/// intermediate after bounding) are counted as failed circuit builds and
/// contribute no attack — matching a client that simply rebuilds.
pub fn timing_analysis_probability(
    san: &impl SanRead,
    cfg: AnonymityConfig,
    compromised: &[bool],
    rng: &mut SplitRng,
) -> f64 {
    assert_eq!(
        compromised.len(),
        san.num_social_nodes(),
        "compromise vector must cover all users"
    );
    let n = san.num_social_nodes();
    if n == 0 || cfg.samples == 0 {
        return 0.0;
    }
    let adj = to_undirected(san);
    let bounded = bound_degrees(&adj, cfg.degree_bound, rng);
    let mut attacks = 0usize;
    for _ in 0..cfg.samples {
        // Uniform honest initiator (retry a few times; if everything is
        // compromised the walk is trivially broken anyway).
        let mut initiator = rng.below(n as u64) as usize;
        let mut tries = 0;
        while compromised[initiator] && tries < 32 {
            initiator = rng.below(n as u64) as usize;
            tries += 1;
        }
        // Walk.
        let mut current = initiator;
        let mut first_relay: Option<usize> = None;
        let mut broken = false;
        for hop in 1..=cfg.circuit_length {
            let nbrs = &bounded[current];
            if nbrs.is_empty() {
                broken = true;
                break;
            }
            current = nbrs[rng.below(nbrs.len() as u64) as usize] as usize;
            if hop == 1 {
                first_relay = Some(current);
            }
        }
        if broken {
            continue;
        }
        let first = first_relay.expect("circuit_length >= 1 sets the first relay");
        if compromised[first] && compromised[current] {
            attacks += 1;
        }
    }
    attacks as f64 / cfg.samples as f64
}

/// The Fig. 19b curve: attack probability per compromise count.
pub fn timing_analysis_curve(
    san: &impl SanRead,
    cfg: AnonymityConfig,
    counts: &[usize],
    rng: &mut SplitRng,
) -> Vec<(usize, f64)> {
    counts
        .iter()
        .map(|&c| {
            let compromised = crate::sybil::compromise_uniform(san, c, rng);
            (c, timing_analysis_probability(san, cfg, &compromised, rng))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{San, SocialId};

    fn clique(n: usize) -> San {
        let mut san = San::new();
        let ids: Vec<SocialId> = (0..n).map(|_| san.add_social_node()).collect();
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    san.add_social_link(a, b);
                }
            }
        }
        san
    }

    #[test]
    fn no_compromise_no_attack() {
        let san = clique(20);
        let mut rng = SplitRng::new(1);
        let cfg = AnonymityConfig {
            samples: 5_000,
            ..AnonymityConfig::default()
        };
        let p = timing_analysis_probability(&san, cfg, &[false; 20], &mut rng);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn full_compromise_always_attacks() {
        let san = clique(10);
        let mut rng = SplitRng::new(2);
        let cfg = AnonymityConfig {
            samples: 2_000,
            ..AnonymityConfig::default()
        };
        let p = timing_analysis_probability(&san, cfg, &[true; 10], &mut rng);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn clique_probability_close_to_fraction_squared() {
        // On a clique, relays are ~uniform, so P ≈ (c/n)².
        let n = 40;
        let san = clique(n);
        let mut rng = SplitRng::new(3);
        let mut compromised = vec![false; n];
        for c in compromised.iter_mut().take(10) {
            *c = true;
        }
        let cfg = AnonymityConfig {
            degree_bound: 100,
            circuit_length: 4,
            samples: 100_000,
        };
        let p = timing_analysis_probability(&san, cfg, &compromised, &mut rng);
        let expect = (10.0 / 40.0) * (10.0 / 40.0);
        assert!((p - expect).abs() < 0.02, "p={p} expect={expect}");
    }

    #[test]
    fn isolated_nodes_break_circuits_safely() {
        let mut san = San::new();
        for _ in 0..5 {
            san.add_social_node();
        }
        let mut rng = SplitRng::new(4);
        let cfg = AnonymityConfig {
            samples: 1_000,
            ..AnonymityConfig::default()
        };
        let p = timing_analysis_probability(&san, cfg, &[true; 5], &mut rng);
        assert_eq!(p, 0.0, "no edges, no circuits, no attacks");
    }

    #[test]
    fn curve_increases_with_compromise() {
        let san = clique(60);
        let mut rng = SplitRng::new(5);
        let cfg = AnonymityConfig {
            degree_bound: 100,
            circuit_length: 3,
            samples: 60_000,
        };
        let curve = timing_analysis_curve(&san, cfg, &[5, 30], &mut rng);
        assert!(curve[1].1 > curve[0].1, "{curve:?}");
    }

    #[test]
    #[should_panic(expected = "compromise vector")]
    fn compromise_length_checked() {
        let san = clique(5);
        let mut rng = SplitRng::new(6);
        timing_analysis_probability(&san, AnonymityConfig::default(), &[true], &mut rng);
    }

    #[test]
    fn zero_samples_zero() {
        let san = clique(5);
        let mut rng = SplitRng::new(7);
        let cfg = AnonymityConfig {
            samples: 0,
            ..AnonymityConfig::default()
        };
        assert_eq!(
            timing_analysis_probability(&san, cfg, &[true; 5], &mut rng),
            0.0
        );
    }
}
