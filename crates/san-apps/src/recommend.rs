//! Friend recommendation over the SAN (§7: "users sharing common employer
//! attributes are more likely to be linked … can help design a better
//! friend recommendation system").
//!
//! Candidates are the 2-hop social neighbourhood plus attribute co-members;
//! each candidate `v` for user `u` is scored
//!
//! ```text
//! score(u, v) = common_friends(u, v) + w_attr · common_attrs(u, v)
//!             (+ w_employer · [shared employer])
//! ```
//!
//! The employer bonus operationalises the Fig. 13b finding that Employer is
//! the most community-forming attribute type. [`evaluate_precision`]
//! replays real link arrivals between two snapshots to measure
//! precision@k — the comparison that shows attribute features help.

use san_graph::{AttrType, SanRead, SocialId};
use san_stats::SplitRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Scoring weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecommenderWeights {
    /// Weight of each common attribute.
    pub attr: f64,
    /// Extra weight when the shared attribute is an Employer.
    pub employer_bonus: f64,
}

impl RecommenderWeights {
    /// Structure-only baseline (common friends, no attribute signal).
    pub fn structure_only() -> Self {
        RecommenderWeights {
            attr: 0.0,
            employer_bonus: 0.0,
        }
    }

    /// Attribute-aware default.
    pub fn attribute_aware() -> Self {
        RecommenderWeights {
            attr: 1.0,
            employer_bonus: 2.0,
        }
    }
}

/// Scores all candidates for `u` and returns the top `k`, best first.
///
/// Candidates: 2-hop social neighbours and co-members of `u`'s attributes,
/// excluding `u` and existing `u →` targets. Ties break by id for
/// determinism.
pub fn recommend(
    san: &impl SanRead,
    u: SocialId,
    k: usize,
    weights: RecommenderWeights,
) -> Vec<(SocialId, f64)> {
    let mut common_friends: HashMap<SocialId, f64> = HashMap::new();
    for &w in san.social_neighbors(u).iter() {
        for &v in san.social_neighbors(w).iter() {
            if v != u && !san.has_social_link(u, v) {
                *common_friends.entry(v).or_insert(0.0) += 1.0;
            }
        }
    }
    let mut scores = common_friends;
    if weights.attr != 0.0 || weights.employer_bonus != 0.0 {
        for &a in san.attrs_of(u) {
            let bonus = if san.attr_type(a) == AttrType::Employer {
                weights.attr + weights.employer_bonus
            } else {
                weights.attr
            };
            for &v in san.members_of(a) {
                if v != u && !san.has_social_link(u, v) {
                    *scores.entry(v).or_insert(0.0) += bonus;
                }
            }
        }
    }
    let mut ranked: Vec<(SocialId, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then(a.0.cmp(&b.0))
    });
    ranked.truncate(k);
    ranked
}

/// Precision@k of a recommender against observed future links.
///
/// For up to `sample_users` users (uniform with a fixed rng) that created
/// at least one new outgoing link between `earlier` and `later`, recommend
/// `k` targets from `earlier` and count the fraction that materialised in
/// `later`. Returns `(precision, evaluated_users)`.
pub fn evaluate_precision(
    earlier: &impl SanRead,
    later: &impl SanRead,
    k: usize,
    weights: RecommenderWeights,
    sample_users: usize,
    rng: &mut SplitRng,
) -> (f64, usize) {
    assert!(
        later.num_social_nodes() >= earlier.num_social_nodes(),
        "later snapshot must contain the earlier one"
    );
    let n = earlier.num_social_nodes();
    if n == 0 {
        return (0.0, 0);
    }
    let mut hits = 0usize;
    let mut recommended = 0usize;
    let mut evaluated = 0usize;
    let mut attempts = 0usize;
    while evaluated < sample_users && attempts < sample_users * 20 {
        attempts += 1;
        let u = SocialId(rng.below(n as u64) as u32);
        // Did u add links after `earlier`?
        if later.out_degree(u) <= earlier.out_degree(u) {
            continue;
        }
        let recs = recommend(earlier, u, k, weights);
        if recs.is_empty() {
            continue;
        }
        evaluated += 1;
        for (v, _) in recs {
            recommended += 1;
            if later.has_social_link(u, v) && !earlier.has_social_link(u, v) {
                hits += 1;
            }
        }
    }
    if recommended == 0 {
        (0.0, evaluated)
    } else {
        (hits as f64 / recommended as f64, evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::fixtures::figure1;
    use san_graph::San;

    #[test]
    fn recommends_two_hop_neighbours() {
        let fx = figure1();
        let [_u1, u2, _u3, u4, ..] = fx.users;
        let recs = recommend(&fx.san, u4, 3, RecommenderWeights::structure_only());
        // u2 is the only valid 2-hop candidate for u4 (via u3).
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, u2);
        assert!(recs[0].1 >= 1.0);
    }

    #[test]
    fn attribute_weights_surface_focal_candidates() {
        let fx = figure1();
        let [u1, u2, ..] = fx.users;
        // u1 has no social neighbours: structure-only finds nothing.
        assert!(recommend(&fx.san, u1, 3, RecommenderWeights::structure_only()).is_empty());
        // Attribute-aware finds u2 (shared UC Berkeley).
        let recs = recommend(&fx.san, u1, 3, RecommenderWeights::attribute_aware());
        assert_eq!(recs[0].0, u2);
    }

    #[test]
    fn employer_bonus_reranks() {
        let mut san = San::new();
        let u = san.add_social_node();
        let city_mate = san.add_social_node();
        let colleague = san.add_social_node();
        let city = san.add_attr_node(AttrType::City);
        let employer = san.add_attr_node(AttrType::Employer);
        san.add_attr_link(u, city);
        san.add_attr_link(city_mate, city);
        san.add_attr_link(u, employer);
        san.add_attr_link(colleague, employer);
        let recs = recommend(&san, u, 2, RecommenderWeights::attribute_aware());
        assert_eq!(recs[0].0, colleague, "employer match must outrank city");
        assert_eq!(recs[1].0, city_mate);
        // Without the bonus they tie (id order breaks the tie).
        let flat = recommend(
            &san,
            u,
            2,
            RecommenderWeights {
                attr: 1.0,
                employer_bonus: 0.0,
            },
        );
        assert_eq!(flat[0].0, city_mate);
    }

    #[test]
    fn never_recommends_self_or_existing() {
        let fx = figure1();
        for &u in &fx.users {
            for (v, _) in recommend(&fx.san, u, 10, RecommenderWeights::attribute_aware()) {
                assert_ne!(v, u);
                assert!(!fx.san.has_social_link(u, v));
            }
        }
    }

    #[test]
    fn precision_counts_materialised_links() {
        // earlier: u0-u1 both linked to u2 (common friend), u0 also shares
        // an attribute with u3. later: u0 -> u1 appears.
        let mut san = San::new();
        let u0 = san.add_social_node();
        let u1 = san.add_social_node();
        let u2 = san.add_social_node();
        let _u3 = san.add_social_node();
        san.add_social_link(u0, u2);
        san.add_social_link(u1, u2);
        let earlier = san.clone();
        san.add_social_link(u0, u1);
        let mut rng = SplitRng::new(1);
        let (prec, evaluated) = evaluate_precision(
            &earlier,
            &san,
            1,
            RecommenderWeights::structure_only(),
            50,
            &mut rng,
        );
        assert!(evaluated >= 1);
        assert!(prec > 0.9, "prec={prec}");
    }

    #[test]
    fn precision_empty_network() {
        let san = San::new();
        let mut rng = SplitRng::new(2);
        let (p, n) = evaluate_precision(
            &san,
            &san,
            3,
            RecommenderWeights::attribute_aware(),
            10,
            &mut rng,
        );
        assert_eq!(p, 0.0);
        assert_eq!(n, 0);
    }
}
