//! Reciprocity prediction (§4.4: "any reciprocity predictor should
//! incorporate node attributes instead of pure social structure metrics").
//!
//! Task: given a one-directional link `u → v` at time `t₁`, predict whether
//! `v → u` will exist by `t₂`. Two histogram predictors are compared:
//!
//! * **structure-only** — `P(reciprocate | common social neighbours)`;
//! * **attribute-aware** — `P(reciprocate | common social neighbours,
//!   common attributes)` (the paper's `r_{s,a}` table, Fig. 13a, used as a
//!   predictor).
//!
//! Both are trained on one snapshot pair and evaluated on another by
//! **Brier score** (mean squared error of the predicted probability; lower
//! is better). Fig. 13a's ~2× reciprocity boost for attribute-sharing
//! pairs translates directly into a Brier improvement for the
//! attribute-aware model.

use san_graph::SanRead;
use san_metrics::reciprocity::{fine_grained_reciprocity, ReciprocityCell};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A trained histogram predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReciprocityPredictor {
    /// Whether the attribute feature is used.
    pub attribute_aware: bool,
    /// `(s, a) → rate`; `a` is always 0 when `attribute_aware` is false.
    table: HashMap<(usize, usize), f64>,
    /// Global fallback rate for unseen feature combinations.
    global_rate: f64,
    /// Cap on the common-social-neighbour feature (smooths sparse tails).
    s_cap: usize,
}

impl ReciprocityPredictor {
    /// Trains from two snapshots (same id space, `later ⊇ earlier`).
    pub fn train(earlier: &impl SanRead, later: &impl SanRead, attribute_aware: bool) -> Self {
        let cells = fine_grained_reciprocity(earlier, later);
        Self::from_cells(&cells, attribute_aware)
    }

    /// Trains from precomputed fine-grained cells.
    pub fn from_cells(cells: &[ReciprocityCell], attribute_aware: bool) -> Self {
        const S_CAP: usize = 10; // diminishing returns beyond ~10 (Fig. 13a)
        let mut table: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        let mut total = (0usize, 0usize);
        for c in cells {
            let s = c.common_social.min(S_CAP);
            let a = if attribute_aware { c.common_attrs } else { 0 };
            let e = table.entry((s, a)).or_insert((0, 0));
            e.0 += c.links;
            e.1 += c.reciprocated;
            total.0 += c.links;
            total.1 += c.reciprocated;
        }
        let global_rate = if total.0 == 0 {
            0.0
        } else {
            total.1 as f64 / total.0 as f64
        };
        let table = table
            .into_iter()
            .map(|(k, (l, r))| {
                (
                    k,
                    if l == 0 {
                        global_rate
                    } else {
                        r as f64 / l as f64
                    },
                )
            })
            .collect();
        ReciprocityPredictor {
            attribute_aware,
            table,
            global_rate,
            s_cap: S_CAP,
        }
    }

    /// Predicted probability that `u → v` (one-directional in `san`) gets
    /// reciprocated.
    pub fn predict(
        &self,
        san: &impl SanRead,
        u: san_graph::SocialId,
        v: san_graph::SocialId,
    ) -> f64 {
        let s = san.common_social_neighbors(u, v).min(self.s_cap);
        let a = if self.attribute_aware {
            san.common_attrs(u, v).min(2)
        } else {
            0
        };
        *self.table.get(&(s, a)).unwrap_or(&self.global_rate)
    }

    /// Brier score over the one-directional links of `earlier` with ground
    /// truth in `later` (lower is better). Returns `(score, n_links)`.
    pub fn brier_score(&self, earlier: &impl SanRead, later: &impl SanRead) -> (f64, usize) {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (u, v) in earlier.social_links() {
            if earlier.has_social_link(v, u) {
                continue;
            }
            let p = self.predict(earlier, u, v);
            let y = if later.has_social_link(v, u) {
                1.0
            } else {
                0.0
            };
            sum += (p - y) * (p - y);
            n += 1;
        }
        if n == 0 {
            (0.0, 0)
        } else {
            (sum / n as f64, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{AttrType, San, SocialId};
    use san_stats::SplitRng;

    /// World where attribute-sharing pairs reciprocate with high
    /// probability and others rarely — the Fig. 13a effect, amplified.
    fn attribute_driven_world(seed: u64) -> (San, San) {
        let mut rng = SplitRng::new(seed);
        let mut san = San::new();
        let n = 400u32;
        let users: Vec<SocialId> = (0..n).map(|_| san.add_social_node()).collect();
        let attrs: Vec<_> = (0..10)
            .map(|_| san.add_attr_node(AttrType::Employer))
            .collect();
        for &u in &users {
            let a = attrs[rng.below(10) as usize];
            san.add_attr_link(u, a);
        }
        // One-directional links.
        for _ in 0..1500 {
            let u = users[rng.below(n as u64) as usize];
            let v = users[rng.below(n as u64) as usize];
            if u != v && !san.has_social_link(v, u) {
                san.add_social_link(u, v);
            }
        }
        let earlier = san.clone();
        // Reciprocate: 80% when sharing an attribute, 15% otherwise.
        let links: Vec<_> = earlier.social_links().collect();
        for (u, v) in links {
            let p = if earlier.common_attrs(u, v) > 0 {
                0.8
            } else {
                0.15
            };
            if rng.chance(p) {
                san.add_social_link(v, u);
            }
        }
        (earlier, san)
    }

    #[test]
    fn attribute_aware_beats_structure_only() {
        let (train_a, train_b) = attribute_driven_world(1);
        let (test_a, test_b) = attribute_driven_world(2);
        let aware = ReciprocityPredictor::train(&train_a, &train_b, true);
        let blind = ReciprocityPredictor::train(&train_a, &train_b, false);
        let (brier_aware, n1) = aware.brier_score(&test_a, &test_b);
        let (brier_blind, n2) = blind.brier_score(&test_a, &test_b);
        assert_eq!(n1, n2);
        assert!(n1 > 500);
        assert!(
            brier_aware < brier_blind - 0.01,
            "aware={brier_aware} blind={brier_blind}"
        );
    }

    #[test]
    fn predictions_are_probabilities() {
        let (a, b) = attribute_driven_world(3);
        let model = ReciprocityPredictor::train(&a, &b, true);
        for (u, v) in a.social_links().take(200) {
            let p = model.predict(&a, u, v);
            assert!((0.0..=1.0).contains(&p), "p={p}");
        }
    }

    #[test]
    fn empty_training_falls_back_gracefully() {
        let san = San::new();
        let model = ReciprocityPredictor::train(&san, &san, true);
        assert_eq!(model.global_rate, 0.0);
        let (score, n) = model.brier_score(&san, &san);
        assert_eq!(score, 0.0);
        assert_eq!(n, 0);
    }

    #[test]
    fn perfect_predictor_on_training_world_has_low_brier() {
        let (a, b) = attribute_driven_world(4);
        let model = ReciprocityPredictor::train(&a, &b, true);
        let (brier, _) = model.brier_score(&a, &b);
        // Base rates are 0.8/0.15: Bayes-optimal Brier ≈ mean p(1-p) ≈ 0.15.
        assert!(brier < 0.2, "brier={brier}");
    }
}
