//! SybilLimit evaluation (§6.2, Fig. 19a).
//!
//! SybilLimit lets honest nodes accept at most `O(log n)` Sybil identities
//! **per attack edge** — an edge between a compromised and an honest node.
//! To keep adversaries from accumulating attack edges through hub nodes,
//! the protocol bounds the effective node degree; the paper follows the
//! SybilLimit guidelines with a bound of 100 and sets the walk-length
//! parameter `w = 10`, compromising nodes uniformly at random.
//!
//! The evaluation statistic is therefore
//!
//! ```text
//! sybil identities ≈ w · |attack edges in the degree-bounded graph|
//! ```
//!
//! which reproduces the paper's scale: ~200 k compromised nodes on a
//! 10 M-user Google+ yield ~2.5 M bounded attack edges and ~25.3 M accepted
//! Sybil identities.
//!
//! §7 sketches an attribute-aware hardening ("limit the influence of a
//! compromised edge by checking the attribute structure");
//! [`attribute_discounted_attack_edges`] implements that check: attack
//! edges whose endpoints share no attribute are discounted, shrinking the
//! adversary's effective edge budget.

use san_graph::degree::{bound_degrees, to_undirected};
use san_graph::{SanRead, SocialId};
use san_stats::SplitRng;
use serde::{Deserialize, Serialize};

/// SybilLimit protocol settings (paper defaults: bound 100, `w = 10`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SybilLimitConfig {
    /// Node degree bound applied before counting attack edges.
    pub degree_bound: usize,
    /// Random-route length parameter `w`.
    pub w: usize,
}

impl Default for SybilLimitConfig {
    fn default() -> Self {
        SybilLimitConfig {
            degree_bound: 100,
            w: 10,
        }
    }
}

/// Outcome of one SybilLimit evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SybilResult {
    /// Number of compromised nodes.
    pub compromised: usize,
    /// Attack edges in the degree-bounded graph.
    pub attack_edges: usize,
    /// Accepted Sybil identities (`w · attack_edges`).
    pub sybil_identities: u64,
}

/// Samples `count` distinct compromised nodes uniformly at random.
pub fn compromise_uniform(san: &impl SanRead, count: usize, rng: &mut SplitRng) -> Vec<bool> {
    let n = san.num_social_nodes();
    let count = count.min(n);
    let mut compromised = vec![false; n];
    let mut ids: Vec<u32> = (0..n as u32).collect();
    // Partial Fisher-Yates.
    for i in 0..count {
        let j = i + rng.below((n - i) as u64) as usize;
        ids.swap(i, j);
        compromised[ids[i] as usize] = true;
    }
    compromised
}

/// Counts attack edges (compromised ↔ honest) in a bounded undirected
/// adjacency structure.
pub fn count_attack_edges(adj: &[Vec<u32>], compromised: &[bool]) -> usize {
    let mut edges = 0;
    for (u, list) in adj.iter().enumerate() {
        if !compromised[u] {
            continue;
        }
        for &v in list {
            if !compromised[v as usize] {
                edges += 1;
            }
        }
    }
    edges
}

/// Runs one SybilLimit evaluation with uniformly compromised nodes.
pub fn sybil_identities(
    san: &impl SanRead,
    cfg: SybilLimitConfig,
    num_compromised: usize,
    rng: &mut SplitRng,
) -> SybilResult {
    let adj = to_undirected(san);
    let bounded = bound_degrees(&adj, cfg.degree_bound, rng);
    let compromised = compromise_uniform(san, num_compromised, rng);
    let attack_edges = count_attack_edges(&bounded, &compromised);
    SybilResult {
        compromised: num_compromised,
        attack_edges,
        sybil_identities: (attack_edges * cfg.w) as u64,
    }
}

/// The Fig. 19a curve: Sybil identities for each compromise count.
///
/// The degree-bounded graph is computed once; each point gets a fresh
/// uniform compromise set.
pub fn sybil_curve(
    san: &impl SanRead,
    cfg: SybilLimitConfig,
    counts: &[usize],
    rng: &mut SplitRng,
) -> Vec<SybilResult> {
    let adj = to_undirected(san);
    let bounded = bound_degrees(&adj, cfg.degree_bound, rng);
    counts
        .iter()
        .map(|&c| {
            let compromised = compromise_uniform(san, c, rng);
            let attack_edges = count_attack_edges(&bounded, &compromised);
            SybilResult {
                compromised: c,
                attack_edges,
                sybil_identities: (attack_edges * cfg.w) as u64,
            }
        })
        .collect()
}

/// §7 extension: effective attack edges when every attack edge whose
/// endpoints share **no** attribute only counts `no_attr_weight` (< 1).
/// Returns the (fractional) effective edge count.
pub fn attribute_discounted_attack_edges(
    san: &impl SanRead,
    adj: &[Vec<u32>],
    compromised: &[bool],
    no_attr_weight: f64,
) -> f64 {
    assert!(
        (0.0..=1.0).contains(&no_attr_weight),
        "weight must be a probability-like factor"
    );
    let mut total = 0.0;
    for (u, list) in adj.iter().enumerate() {
        if !compromised[u] {
            continue;
        }
        for &v in list {
            if !compromised[v as usize] {
                let shares = san.common_attrs(SocialId(u as u32), SocialId(v)) > 0;
                total += if shares { 1.0 } else { no_attr_weight };
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{AttrType, San};

    /// A 3-regular-ish ring of n nodes (undirected degree ~2).
    fn ring(n: usize) -> San {
        let mut san = San::new();
        let ids: Vec<SocialId> = (0..n).map(|_| san.add_social_node()).collect();
        for i in 0..n {
            san.add_social_link(ids[i], ids[(i + 1) % n]);
        }
        san
    }

    #[test]
    fn compromise_uniform_counts() {
        let san = ring(100);
        let mut rng = SplitRng::new(1);
        let c = compromise_uniform(&san, 30, &mut rng);
        assert_eq!(c.iter().filter(|&&x| x).count(), 30);
        // Over-asking clamps.
        let c = compromise_uniform(&san, 1000, &mut rng);
        assert_eq!(c.iter().filter(|&&x| x).count(), 100);
    }

    #[test]
    fn attack_edges_ring_exact() {
        // Compromise one node in a ring: exactly 2 attack edges.
        let san = ring(10);
        let adj = to_undirected(&san);
        let mut compromised = vec![false; 10];
        compromised[3] = true;
        assert_eq!(count_attack_edges(&adj, &compromised), 2);
        // Two adjacent compromised nodes: 2 attack edges (internal edge
        // doesn't count).
        compromised[4] = true;
        assert_eq!(count_attack_edges(&adj, &compromised), 2);
    }

    #[test]
    fn sybil_identities_scale_with_w() {
        let san = ring(50);
        let mut rng = SplitRng::new(2);
        let r1 = sybil_identities(
            &san,
            SybilLimitConfig {
                degree_bound: 100,
                w: 10,
            },
            5,
            &mut rng,
        );
        assert_eq!(r1.sybil_identities, (r1.attack_edges * 10) as u64);
    }

    #[test]
    fn curve_monotone_in_expectation() {
        // More compromised nodes -> more attack edges (statistically; use
        // a graph large enough that noise cannot flip the ordering of
        // widely separated counts).
        let san = ring(2000);
        let mut rng = SplitRng::new(3);
        let curve = sybil_curve(&san, SybilLimitConfig::default(), &[20, 400], &mut rng);
        assert!(curve[1].attack_edges > curve[0].attack_edges);
        assert_eq!(curve[0].compromised, 20);
    }

    #[test]
    fn degree_bound_limits_hub_attack_edges() {
        // Star graph: hub compromised. Without bounding, attack edges =
        // #spokes; with bound 5, at most 5.
        let mut san = San::new();
        let hub = san.add_social_node();
        for _ in 0..50 {
            let s = san.add_social_node();
            san.add_social_link(s, hub);
        }
        let mut rng = SplitRng::new(4);
        let cfg = SybilLimitConfig {
            degree_bound: 5,
            w: 10,
        };
        let adj = to_undirected(&san);
        let bounded = bound_degrees(&adj, cfg.degree_bound, &mut rng);
        let mut compromised = vec![false; san.num_social_nodes()];
        compromised[hub.index()] = true;
        assert_eq!(count_attack_edges(&bounded, &compromised), 5);
    }

    #[test]
    fn attribute_discount_reduces_attack_edges() {
        // Two compromised nodes attack; one shares an attribute with its
        // honest neighbour, the other does not.
        let mut san = San::new();
        let a = san.add_social_node();
        let b = san.add_social_node();
        let c = san.add_social_node();
        let d = san.add_social_node();
        san.add_social_link(a, b); // a-b share attribute
        san.add_social_link(c, d); // c-d share nothing
        let attr = san.add_attr_node(AttrType::Employer);
        san.add_attr_link(a, attr);
        san.add_attr_link(b, attr);
        let adj = to_undirected(&san);
        let compromised = vec![true, false, true, false];
        let full = attribute_discounted_attack_edges(&san, &adj, &compromised, 1.0);
        assert!((full - 2.0).abs() < 1e-12);
        let discounted = attribute_discounted_attack_edges(&san, &adj, &compromised, 0.25);
        assert!((discounted - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability-like")]
    fn discount_weight_validated() {
        let san = ring(4);
        let adj = to_undirected(&san);
        attribute_discounted_attack_edges(&san, &adj, &[false; 4], 1.5);
    }
}
