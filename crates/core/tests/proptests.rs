//! Property-based tests for the generative models.

use proptest::prelude::*;
use san_core::attach::AttachModel;
use san_core::closing::ClosingModel;
use san_core::model::{AttrAssign, LifetimeDist, SanModel, SanModelParams};
use san_core::theory::{predicted_attr_exponent, predicted_outdegree_lognormal};
use san_graph::prelude::*;
use san_stats::SplitRng;

fn small_san(seed: u64) -> San {
    let mut rng = SplitRng::new(seed);
    let mut san = San::new();
    let n = 8 + rng.below(12) as u32;
    for _ in 0..n {
        san.add_social_node();
    }
    let na = 2 + rng.below(4) as u32;
    for _ in 0..na {
        san.add_attr_node(AttrType::Other);
    }
    for _ in 0..(n * 2) {
        let u = SocialId(rng.below(n as u64) as u32);
        let v = SocialId(rng.below(n as u64) as u32);
        if u != v {
            san.add_social_link(u, v);
        }
    }
    for _ in 0..n {
        let u = SocialId(rng.below(n as u64) as u32);
        let a = AttrId(rng.below(na as u64) as u32);
        san.add_attr_link(u, a);
    }
    san
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Attachment weights are positive and monotone in degree and
    /// attribute overlap for positive exponents.
    #[test]
    fn attach_weights_monotone(
        alpha in 0.1f64..2.0,
        beta in 0.0f64..50.0,
        d in 0u64..1000,
        a in 0usize..10,
    ) {
        let lapa = AttachModel::Lapa { alpha, beta };
        prop_assert!(lapa.weight(d, a) > 0.0);
        prop_assert!(lapa.weight(d + 1, a) >= lapa.weight(d, a));
        prop_assert!(lapa.weight(d, a + 1) >= lapa.weight(d, a));
        let papa = AttachModel::Papa { alpha, beta };
        prop_assert!(papa.weight(d, a) > 0.0);
        prop_assert!(papa.weight(d + 1, a) >= papa.weight(d, a));
    }

    /// Closure probabilities over all targets sum to at most 1
    /// (strictly less when some walk mass lands on invalid targets).
    #[test]
    fn closure_probabilities_subnormalised(seed in 0u64..200, fc in 0.0f64..2.0) {
        let san = small_san(seed);
        for model in [ClosingModel::Baseline, ClosingModel::Rr, ClosingModel::RrSan { fc }] {
            for u in san.social_nodes() {
                let total: f64 = san
                    .social_nodes()
                    .filter(|&v| v != u)
                    .map(|v| model.closure_probability(&san, u, v))
                    .sum();
                prop_assert!(total <= 1.0 + 1e-9, "{model:?} at {u}: total={total}");
            }
        }
    }

    /// Closure samples are always valid new targets.
    #[test]
    fn closure_samples_valid(seed in 0u64..100, fc in 0.0f64..2.0) {
        let san = small_san(seed);
        let mut rng = SplitRng::new(seed ^ 0xABCD);
        for model in [ClosingModel::Baseline, ClosingModel::Rr, ClosingModel::RrSan { fc }] {
            for u in san.social_nodes() {
                for _ in 0..20 {
                    if let Some(v) = model.sample(&san, u, &mut rng) {
                        prop_assert!(v != u);
                        prop_assert!(!san.has_social_link(u, v));
                    }
                }
            }
        }
    }

    /// Generated SANs are internally consistent and deterministic for any
    /// parameter corner.
    #[test]
    fn generator_consistent(
        seed in 0u64..50,
        days in 3u32..15,
        per_day in 1u32..8,
        beta in 0.0f64..40.0,
        fc in 0.0f64..1.5,
        recip in 0.0f64..1.0,
        p_new in 0.0f64..0.9,
    ) {
        let mut params = SanModelParams::paper_default(days, per_day);
        params.first_link = san_core::model::FirstLink::Lapa { beta };
        params.closing = ClosingModel::RrSan { fc };
        params.reciprocate_prob = recip;
        params.attr_assign = AttrAssign::Lognormal { mu: 0.5, sigma: 0.8, p_new };
        let model = SanModel::new(params).unwrap();
        let (tl, san) = model.generate(seed);
        prop_assert!(san.check_consistency().is_ok());
        let (_, san2) = model.generate(seed);
        prop_assert_eq!(san.num_social_links(), san2.num_social_links());
        prop_assert_eq!(san.num_attr_links(), san2.num_attr_links());
        // Replay equivalence.
        let replay = tl.final_snapshot();
        prop_assert_eq!(replay.num_social_links(), san.num_social_links());
    }

    /// `San::freeze()` round-trips on model-generated SANs: the frozen
    /// `CsrSan` agrees with the mutable `San` on every `SanRead` query
    /// (counts, neighbourhoods, membership, common-neighbour features),
    /// and closure-model proposal probabilities are identical through
    /// either representation.
    #[test]
    fn freeze_roundtrip_on_generated_sans(
        seed in 0u64..30,
        days in 3u32..12,
        per_day in 1u32..6,
        exponential in proptest::any::<bool>(),
    ) {
        use san_graph::SanRead;
        use std::collections::BTreeSet;
        let mut params = SanModelParams::paper_default(days, per_day);
        if exponential {
            params.lifetime = LifetimeDist::Exponential { mean: 6.0 };
        }
        params.reciprocate_prob = 0.4;
        let (_, san) = SanModel::new(params).unwrap().generate(seed);
        let csr = san.freeze();
        prop_assert_eq!(SanRead::num_social_nodes(&csr), san.num_social_nodes());
        prop_assert_eq!(SanRead::num_attr_nodes(&csr), san.num_attr_nodes());
        prop_assert_eq!(SanRead::num_social_links(&csr), san.num_social_links());
        prop_assert_eq!(SanRead::num_attr_links(&csr), san.num_attr_links());
        for u in san.social_nodes() {
            prop_assert_eq!(
                SanRead::out_neighbors(&csr, u).iter().collect::<BTreeSet<_>>(),
                san.out_neighbors(u).iter().collect::<BTreeSet<_>>()
            );
            prop_assert_eq!(
                SanRead::social_neighbors(&csr, u).as_ref(),
                san.social_neighbors(u).as_slice()
            );
            prop_assert_eq!(
                SanRead::attrs_of(&csr, u).iter().collect::<BTreeSet<_>>(),
                san.attrs_of(u).iter().collect::<BTreeSet<_>>()
            );
        }
        for a in san.attr_nodes() {
            prop_assert_eq!(SanRead::attr_type(&csr, a), san.attr_type(a));
            prop_assert_eq!(
                SanRead::social_degree_of_attr(&csr, a),
                san.social_degree_of_attr(a)
            );
        }
        // Spot-check pairwise queries on a bounded grid.
        let n = san.num_social_nodes().min(20) as u32;
        for ui in 0..n {
            for vi in 0..n {
                let (u, v) = (SocialId(ui), SocialId(vi));
                prop_assert_eq!(
                    SanRead::has_social_link(&csr, u, v),
                    san.has_social_link(u, v)
                );
                prop_assert_eq!(SanRead::common_attrs(&csr, u, v), san.common_attrs(u, v));
                prop_assert_eq!(
                    SanRead::common_social_neighbors(&csr, u, v),
                    san.common_social_neighbors(u, v)
                );
                if ui != vi {
                    let p_san = ClosingModel::RrSan { fc: 0.7 }.closure_probability(&san, u, v);
                    let p_csr = ClosingModel::RrSan { fc: 0.7 }.closure_probability(&csr, u, v);
                    prop_assert!(
                        (p_san - p_csr).abs() < 1e-12,
                        "closure prob diverges at {}->{}: {} vs {}", u, v, p_san, p_csr
                    );
                }
            }
        }
    }

    /// Theorem formulas behave sanely across their domains.
    #[test]
    fn theory_formula_domains(mu in -5.0f64..20.0, sigma in 0.2f64..10.0, ms in 0.5f64..20.0) {
        let (mu_o, sigma_o) = predicted_outdegree_lognormal(mu, sigma, ms).unwrap();
        prop_assert!(mu_o.is_finite());
        prop_assert!(sigma_o.is_finite() && sigma_o >= 0.0);
        // Truncated mean is >= untruncated mean, so mu_o >= mu/ms.
        prop_assert!(mu_o >= mu / ms - 1e-9);
    }

    /// Theorem 2 exponent is monotone increasing in p.
    #[test]
    fn theorem2_monotone(p1 in 0.0f64..0.9, p2 in 0.0f64..0.9) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a_lo = predicted_attr_exponent(lo).unwrap();
        let a_hi = predicted_attr_exponent(hi).unwrap();
        prop_assert!(a_hi >= a_lo - 1e-12);
        prop_assert!(a_lo >= 2.0 - 1e-12);
    }

    /// Uniform and PA likelihoods never beat the saturated bound of 0 and
    /// are finite on random traces.
    #[test]
    fn likelihoods_finite(seed in 0u64..40) {
        let mut params = SanModelParams::paper_default(6, 4);
        params.reciprocate_prob = 0.3;
        let (tl, _) = SanModel::new(params).unwrap().generate(seed);
        for model in [
            AttachModel::Uniform,
            AttachModel::Pa { alpha: 1.0 },
            AttachModel::Lapa { alpha: 1.0, beta: 5.0 },
            AttachModel::Papa { alpha: 1.0, beta: 1.0 },
        ] {
            let ll = model.log_likelihood(&tl).unwrap();
            prop_assert!(ll.is_finite());
            prop_assert!(ll < 0.0);
        }
    }
}
