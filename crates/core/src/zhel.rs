//! The Zhel baseline: Zheleva et al.'s social/affiliation co-evolution
//! model \[61\], extended to directed networks (§6 of the paper).
//!
//! The paper's evaluation needs a baseline that jointly generates social
//! and attribute structure; the closest prior work is Zheleva, Sharara &
//! Getoor (KDD 2009), whose model
//!
//! * grows the social graph with preferential attachment + triadic
//!   (random-random) closing — **power-law** social degrees,
//! * grows group (attribute) membership *from* the social structure: users
//!   copy groups from their friends (social → attribute influence — the
//!   reverse causality of the paper's model),
//! * uses the exponential lifetime / power-law-with-cutoff sleep machinery
//!   of Leskovec et al. for activity.
//!
//! The paper extends it to directed networks "straightforwardly": an
//! undirected link becomes a directed outgoing link (§6, footnote 5).
//!
//! In this workspace the Zhel model is a **preset** of the shared
//! generative engine ([`SanModelParams::zhel_baseline`]): exponential
//! lifetimes (which provably flip the out-degree family from lognormal to
//! power law — see [`crate::theory`]), PA first links (`β = 0`), RR closing
//! (no focal hops), and friend-copy attribute assignment. This module adds
//! the convenience constructor and the family-level checks used by the
//! Fig. 16/17 comparisons.

use crate::error::ModelError;
use crate::model::{SanModel, SanModelParams};
use san_graph::{San, SanTimeline};

/// Builds the directed Zhel baseline model.
pub fn zhel_model(days: u32, arrivals_per_day: u32) -> Result<SanModel, ModelError> {
    SanModel::new(SanModelParams::zhel_baseline(days, arrivals_per_day))
}

/// Generates a Zhel SAN (convenience wrapper).
pub fn generate_zhel(days: u32, arrivals_per_day: u32, seed: u64) -> (SanTimeline, San) {
    zhel_model(days, arrivals_per_day)
        .expect("zhel defaults are valid")
        .generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_stats::fit::{fit_degree_distribution, FitFamily};

    #[test]
    fn zhel_generates_and_is_consistent() {
        let (tl, san) = generate_zhel(40, 10, 5);
        assert!(san.num_social_nodes() > 400);
        san.check_consistency().unwrap();
        assert_eq!(
            tl.final_snapshot().num_social_links(),
            san.num_social_links()
        );
    }

    #[test]
    fn zhel_outdegree_powerlaw_indegree_less_lognormal_than_paper() {
        // Fig. 16 e/f vs a/b. Out-degree: the Zhel baseline is a clean
        // power law (exponential lifetimes; llr ~ 0, tiny power-law KS).
        // In-degree: at laptop scale the directed extension's in-degree
        // sits between families, so the reproducible claim is comparative —
        // the paper model's in-degree is decisively more lognormal.
        let (_, zhel) = generate_zhel(120, 25, 6);
        let deg = |san: &san_graph::San, inward: bool| -> Vec<u64> {
            san.social_nodes()
                .skip(5)
                .map(|u| if inward { san.in_degree(u) } else { san.out_degree(u) } as u64)
                .collect()
        };
        let zhel_out = fit_degree_distribution(&deg(&zhel, false)).unwrap();
        assert!(zhel_out.ks_powerlaw < 0.06, "{zhel_out:?}");
        assert!(
            zhel_out.llr_per_sample() < 0.02,
            "zhel out-degree must not be clearly lognormal: {zhel_out:?}"
        );

        let paper =
            crate::model::SanModel::new(crate::model::SanModelParams::paper_default(120, 25))
                .unwrap()
                .generate(6)
                .1;
        let paper_in = fit_degree_distribution(&deg(&paper, true)).unwrap();
        let zhel_in = fit_degree_distribution(&deg(&zhel, true)).unwrap();
        assert_eq!(paper_in.family, FitFamily::Lognormal);
        assert!(
            paper_in.ks_lognormal < zhel_in.ks_powerlaw,
            "paper model should match its family better than zhel matches a power law: {} vs {}",
            paper_in.ks_lognormal,
            zhel_in.ks_powerlaw
        );
    }

    #[test]
    fn zhel_attr_degree_not_lognormal_shaped() {
        // Fig. 16g: Zhel's attribute degrees are not lognormal; our
        // friend-copy process produces a geometric-family (monotone
        // decaying) distribution, so the mode is at the minimum degree.
        let (_, zhel) = generate_zhel(80, 20, 7);
        let attr_deg: Vec<u64> = zhel
            .social_nodes()
            .skip(5)
            .map(|u| zhel.attr_degree(u) as u64)
            .filter(|&d| d >= 1)
            .collect();
        assert!(!attr_deg.is_empty());
        // Monotone head: P(1) >= P(2) >= P(3).
        let pmf = san_stats::empirical_pmf(&attr_deg);
        let p = |k: u64| {
            pmf.iter()
                .find(|(v, _)| *v == k)
                .map(|(_, p)| *p)
                .unwrap_or(0.0)
        };
        assert!(p(1) >= p(2) && p(2) >= p(3), "head not monotone: {pmf:?}");
    }
}
