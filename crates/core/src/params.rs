//! Guided greedy parameter search (§6: "we run a guided greedy search to
//! estimate appropriate parameters for our model and Zhel to generate
//! synthetic SAN that best match the Google+").
//!
//! The calibration target is a vector of cheap summary statistics of the
//! reference SAN; the search proposes multiplicative/additive moves on the
//! generative knobs, regenerates at reduced scale, and keeps any move that
//! lowers the loss. Deliberately simple — the paper flags maximum-
//! likelihood parameter inference as future work (§7).

use crate::model::{AttrAssign, LifetimeDist, SanModel, SanModelParams, SleepMode};
use san_graph::degree::degree_vectors;
use san_graph::SanRead;
use san_metrics::reciprocity::global_reciprocity;
use san_stats::Lognormal;
use serde::{Deserialize, Serialize};

/// Summary statistics a calibration run tries to match.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationTarget {
    /// Lognormal `µ` of positive out-degrees.
    pub mu_out: f64,
    /// Lognormal `σ` of positive out-degrees.
    pub sigma_out: f64,
    /// Lognormal `µ` of positive attribute degrees.
    pub attr_mu: f64,
    /// Lognormal `σ` of positive attribute degrees.
    pub attr_sigma: f64,
    /// Mean social out-degree (density proxy).
    pub mean_out_degree: f64,
    /// Global reciprocity.
    pub reciprocity: f64,
}

/// Measures the calibration statistics of a SAN.
pub fn measure_target(san: &impl SanRead) -> CalibrationTarget {
    let dv = degree_vectors(san);
    let fit_ln = |xs: &[u64]| -> (f64, f64) {
        let pos: Vec<f64> = xs.iter().filter(|&&d| d > 0).map(|&d| d as f64).collect();
        match Lognormal::fit(&pos) {
            Ok(f) => (f.mu, f.sigma),
            Err(_) => (0.0, 1.0),
        }
    };
    let (mu_out, sigma_out) = fit_ln(&dv.out);
    let (attr_mu, attr_sigma) = fit_ln(&dv.attr_of_social);
    let mean_out_degree = if san.num_social_nodes() == 0 {
        0.0
    } else {
        san.num_social_links() as f64 / san.num_social_nodes() as f64
    };
    CalibrationTarget {
        mu_out,
        sigma_out,
        attr_mu,
        attr_sigma,
        mean_out_degree,
        reciprocity: global_reciprocity(san),
    }
}

/// Weighted squared relative error between two stat vectors.
pub fn calibration_loss(target: &CalibrationTarget, got: &CalibrationTarget) -> f64 {
    fn rel(t: f64, g: f64) -> f64 {
        let denom = t.abs().max(0.1);
        let d = (t - g) / denom;
        d * d
    }
    rel(target.mu_out, got.mu_out)
        + rel(target.sigma_out, got.sigma_out)
        + rel(target.attr_mu, got.attr_mu)
        + rel(target.attr_sigma, got.attr_sigma)
        + rel(target.mean_out_degree, got.mean_out_degree)
        + rel(target.reciprocity, got.reciprocity)
}

/// Configuration of the greedy search.
#[derive(Debug, Clone, Copy)]
pub struct GreedySearch {
    /// Maximum number of accepted-move sweeps.
    pub sweeps: usize,
    /// Days per trial generation (smaller = faster, noisier).
    pub trial_days: u32,
    /// Arrivals per day in trial generations.
    pub trial_arrivals: u32,
}

impl Default for GreedySearch {
    fn default() -> Self {
        GreedySearch {
            sweeps: 3,
            trial_days: 40,
            trial_arrivals: 15,
        }
    }
}

impl GreedySearch {
    /// Evaluates one parameter set.
    fn eval(&self, params: &SanModelParams, target: &CalibrationTarget, seed: u64) -> f64 {
        let mut trial = params.clone();
        trial.days = self.trial_days;
        trial.arrivals_per_day = vec![self.trial_arrivals];
        match SanModel::new(trial) {
            Ok(model) => {
                let (_, san) = model.generate(seed);
                calibration_loss(target, &measure_target(&san))
            }
            Err(_) => f64::INFINITY,
        }
    }

    /// Runs the guided greedy search from `start`, returning the best
    /// parameters and their loss. Deterministic in `seed`.
    pub fn run(
        &self,
        target: &CalibrationTarget,
        start: SanModelParams,
        seed: u64,
    ) -> (SanModelParams, f64) {
        let mut best = start;
        let mut best_loss = self.eval(&best, target, seed);
        for sweep in 0..self.sweeps {
            let mut improved = false;
            for move_idx in 0..MOVES {
                for &dir in &[1usize, 0] {
                    let cand = apply_move(&best, move_idx, dir == 1);
                    if cand.validate().is_err() {
                        continue;
                    }
                    let loss = self.eval(&cand, target, seed + sweep as u64 + 1);
                    if loss < best_loss {
                        best_loss = loss;
                        best = cand;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        (best, best_loss)
    }
}

const MOVES: usize = 7;

/// Applies the `idx`-th search move in the up (`true`) or down direction.
fn apply_move(params: &SanModelParams, idx: usize, up: bool) -> SanModelParams {
    let mut p = params.clone();
    let f = if up { 1.3 } else { 1.0 / 1.3 };
    match idx {
        0 => {
            if let LifetimeDist::TruncNormal { mu, sigma } = p.lifetime {
                p.lifetime = LifetimeDist::TruncNormal { mu: mu * f, sigma };
            } else if let LifetimeDist::Exponential { mean } = p.lifetime {
                p.lifetime = LifetimeDist::Exponential { mean: mean * f };
            }
        }
        1 => {
            if let LifetimeDist::TruncNormal { mu, sigma } = p.lifetime {
                p.lifetime = LifetimeDist::TruncNormal {
                    mu,
                    sigma: sigma * f,
                };
            }
        }
        2 => match p.sleep {
            SleepMode::InverseOutDegree { mean } => {
                p.sleep = SleepMode::InverseOutDegree { mean: mean * f };
            }
            SleepMode::Constant { mean } => {
                p.sleep = SleepMode::Constant { mean: mean * f };
            }
        },
        3 => {
            if let AttrAssign::Lognormal { mu, sigma, p_new } = p.attr_assign {
                p.attr_assign = AttrAssign::Lognormal {
                    mu: mu + if up { 0.2 } else { -0.2 },
                    sigma,
                    p_new,
                };
            }
        }
        4 => {
            if let AttrAssign::Lognormal { mu, sigma, p_new } = p.attr_assign {
                p.attr_assign = AttrAssign::Lognormal {
                    mu,
                    sigma: (sigma * f).max(0.05),
                    p_new,
                };
            }
        }
        5 => {
            if let AttrAssign::Lognormal { mu, sigma, p_new } = p.attr_assign {
                p.attr_assign = AttrAssign::Lognormal {
                    mu,
                    sigma,
                    p_new: (p_new + if up { 0.1 } else { -0.1 }).clamp(0.0, 0.9),
                };
            }
        }
        _ => {
            p.reciprocate_prob =
                (p.reciprocate_prob + if up { 0.15 } else { -0.15 }).clamp(0.0, 1.0);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_target_roundtrip_shape() {
        let model = SanModel::new(SanModelParams::paper_default(40, 15)).unwrap();
        let (_, san) = model.generate(3);
        let t = measure_target(&san);
        assert!(t.mean_out_degree > 0.5);
        assert!(t.sigma_out > 0.0);
        assert!((0.0..=1.0).contains(&t.reciprocity));
    }

    #[test]
    fn loss_zero_for_identical_targets() {
        let t = CalibrationTarget {
            mu_out: 1.0,
            sigma_out: 0.5,
            attr_mu: 0.7,
            attr_sigma: 0.9,
            mean_out_degree: 3.0,
            reciprocity: 0.4,
        };
        assert_eq!(calibration_loss(&t, &t), 0.0);
        let mut other = t;
        other.mu_out = 2.0;
        assert!(calibration_loss(&t, &other) > 0.0);
    }

    #[test]
    fn moves_preserve_validity_mostly() {
        let base = SanModelParams::paper_default(10, 5);
        for idx in 0..MOVES {
            for up in [true, false] {
                let cand = apply_move(&base, idx, up);
                assert!(
                    cand.validate().is_ok(),
                    "move {idx} up={up} produced invalid params"
                );
            }
        }
    }

    #[test]
    fn greedy_search_improves_toward_target() {
        // Target measured from a run with a *different* lifetime mean; the
        // search must reduce the loss relative to the unmodified start.
        let mut truth_params = SanModelParams::paper_default(40, 15);
        truth_params.lifetime = LifetimeDist::TruncNormal {
            mu: 16.0,
            sigma: 6.0,
        };
        let (_, truth) = SanModel::new(truth_params).unwrap().generate(11);
        let target = measure_target(&truth);

        let start = SanModelParams::paper_default(40, 15);
        let search = GreedySearch {
            sweeps: 2,
            trial_days: 40,
            trial_arrivals: 15,
        };
        let start_loss = search.eval(&start, &target, 50);
        let (_best, best_loss) = search.run(&target, start, 50);
        assert!(
            best_loss <= start_loss,
            "search must not worsen: {best_loss} vs {start_loss}"
        );
    }
}
