//! Building Block 1: attribute-augmented preferential attachment (§5.1).
//!
//! When a social node `u` issues a link, the probability of choosing target
//! `v` is proportional to `f(u, v)`:
//!
//! | Model | `f(u, v)` |
//! |-------|-----------|
//! | Uniform | `1` |
//! | PA | `d_in(v)^α` |
//! | PAPA | `d_in(v)^α · (1 + a(u,v)^β)` |
//! | LAPA | `d_in(v)^α · (1 + β·a(u,v))` |
//!
//! where `a(u, v)` is the number of common attributes. We apply standard
//! add-one smoothing to the degree term (`(d_in(v)+1)^α`): real traces
//! contain links to zero-in-degree targets, which would otherwise have
//! probability zero and force the log-likelihood of every model to `−∞`.
//! At `α = 1, β = 0` every family reduces to PA and at `α = β = 0` to the
//! uniform model, exactly as in the paper.
//!
//! Two performance-critical pieces live here:
//!
//! * [`AttachModel::log_likelihood`] replays a link-arrival trace and
//!   computes the exact log-likelihood of the observed targets (the Fig. 15
//!   grid). For LAPA the partition function decomposes as
//!   `Σ_v (d+1)^α + β·Σ_{x∈Γa(u)} S_x` with one accumulator `S_x` per
//!   attribute, turning the paper's "costly linear step" (§7) into an
//!   `O(|Γa(u)|)` update;
//! * [`LapaSampler`] draws exact LAPA(α = 1) targets in `O(|Γa(u)|)` via a
//!   mixture-of-multisets representation — the practical heuristic the
//!   paper sketches in §7, implemented exactly.

use crate::error::ModelError;
use san_graph::{San, SanRead, SanTimeline, SocialId};
use san_stats::SplitRng;
use std::collections::HashMap;

/// An attachment kernel `f(u, v)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AttachModel {
    /// Uniform target choice.
    Uniform,
    /// Preferential attachment with exponent `alpha`.
    Pa {
        /// Degree exponent `α`.
        alpha: f64,
    },
    /// Power Attribute Preferential Attachment.
    Papa {
        /// Degree exponent `α`.
        alpha: f64,
        /// Attribute exponent `β`.
        beta: f64,
    },
    /// Linear Attribute Preferential Attachment (the paper's winner).
    Lapa {
        /// Degree exponent `α`.
        alpha: f64,
        /// Linear attribute weight `β`.
        beta: f64,
    },
}

impl AttachModel {
    /// The kernel value `f(u, v)` given the target's in-degree and the
    /// common-attribute count (degree smoothed by +1; see module docs).
    pub fn weight(&self, in_degree: u64, common_attrs: usize) -> f64 {
        let d = (in_degree + 1) as f64;
        let a = common_attrs as f64;
        match *self {
            AttachModel::Uniform => 1.0,
            AttachModel::Pa { alpha } => d.powf(alpha),
            AttachModel::Papa { alpha, beta } => d.powf(alpha) * (1.0 + a.powf(beta)),
            AttachModel::Lapa { alpha, beta } => d.powf(alpha) * (1.0 + beta * a),
        }
    }

    /// The `α` exponent of the kernel (0 for the uniform model).
    pub fn alpha(&self) -> f64 {
        match *self {
            AttachModel::Uniform => 0.0,
            AttachModel::Pa { alpha }
            | AttachModel::Papa { alpha, .. }
            | AttachModel::Lapa { alpha, .. } => alpha,
        }
    }

    /// Exact log-likelihood of the social-link arrivals in `timeline` under
    /// this kernel.
    ///
    /// The trace is replayed event by event; for each observed link
    /// `u → v` the term `ln f(u,v) − ln Σ_{v'≠u} f(u,v')` is accumulated
    /// against the network state *before* the link. Node/attribute events
    /// update the partition-function accumulators incrementally.
    pub fn log_likelihood(&self, timeline: &SanTimeline) -> Result<f64, ModelError> {
        use san_graph::SanEvent;
        if timeline.social_link_arrivals().next().is_none() {
            return Err(ModelError::EmptyTrace);
        }
        let alpha = self.alpha();
        let mut san = San::new();
        // S_global = Σ_v (d_in(v)+1)^α ; s_attr[x] = Σ_{v ∈ members(x)} (d_in(v)+1)^α.
        let mut s_global = 0.0f64;
        let mut s_attr: Vec<f64> = Vec::new();
        let mut ll = 0.0f64;

        for ev in timeline.events() {
            match *ev {
                SanEvent::SocialNode { .. } => {
                    san.add_social_node();
                    s_global += 1.0; // (0+1)^alpha = 1
                }
                SanEvent::AttrNode { ty, .. } => {
                    san.add_attr_node(ty);
                    s_attr.push(0.0);
                }
                SanEvent::AttrLink { user, attr, .. } => {
                    let w = ((san.in_degree(user) + 1) as f64).powf(alpha);
                    san.add_attr_link(user, attr);
                    s_attr[attr.index()] += w;
                }
                SanEvent::SocialLink { src, dst, .. } => {
                    // Numerator.
                    let a_uv = san.common_attrs(src, dst);
                    let w_num = self.weight(san.in_degree(dst) as u64, a_uv);
                    // Denominator over all v != src.
                    let denom = self.partition(&san, src, s_global, &s_attr);
                    debug_assert!(denom > 0.0);
                    ll += w_num.ln() - denom.ln();
                    // Apply the link and update accumulators.
                    let old_d = san.in_degree(dst) as f64;
                    san.add_social_link(src, dst);
                    let delta = (old_d + 2.0).powf(alpha) - (old_d + 1.0).powf(alpha);
                    s_global += delta;
                    for &x in san.attrs_of(dst) {
                        s_attr[x.index()] += delta;
                    }
                }
            }
        }
        Ok(ll)
    }

    /// Partition function `Σ_{v ≠ u} f(u, v)` given the maintained
    /// accumulators.
    fn partition(&self, san: &San, u: SocialId, s_global: f64, s_attr: &[f64]) -> f64 {
        let self_w = |base: f64| base; // readability below
        match *self {
            AttachModel::Uniform => (san.num_social_nodes() - 1) as f64,
            AttachModel::Pa { alpha } => {
                s_global - self_w(((san.in_degree(u) + 1) as f64).powf(alpha))
            }
            AttachModel::Lapa { alpha, beta } => {
                // Σ (d+1)^α + β Σ_{x ∈ Γa(u)} S_x, minus u's own term
                // (u shares all of its attr_degree(u) attributes with itself).
                let mut total = s_global;
                for &x in san.attrs_of(u) {
                    total += beta * s_attr[x.index()];
                }
                let du = ((san.in_degree(u) + 1) as f64).powf(alpha);
                total - du * (1.0 + beta * san.attr_degree(u) as f64)
            }
            AttachModel::Papa { alpha, beta } => {
                if beta == 0.0 {
                    // 1 + a^0 = 2 for every pair.
                    let du = ((san.in_degree(u) + 1) as f64).powf(alpha);
                    return 2.0 * (s_global - du);
                }
                // Enumerate candidates sharing >= 1 attribute with u.
                let mut shared: HashMap<SocialId, usize> = HashMap::new();
                for &x in san.attrs_of(u) {
                    for &v in san.members_of(x) {
                        if v != u {
                            *shared.entry(v).or_insert(0) += 1;
                        }
                    }
                }
                let du = ((san.in_degree(u) + 1) as f64).powf(alpha);
                let mut total = s_global - du; // the Σ (d+1)^α · 1 part
                for (&v, &a) in &shared {
                    let dv = ((san.in_degree(v) + 1) as f64).powf(alpha);
                    total += dv * (a as f64).powf(beta);
                }
                total
            }
        }
    }

    /// Exact target sampling by linear scan over all nodes — O(n), used for
    /// tests and small networks. Returns `None` when no valid target
    /// exists. Targets already linked from `u` are excluded.
    pub fn sample_exact(
        &self,
        san: &impl SanRead,
        u: SocialId,
        rng: &mut SplitRng,
    ) -> Option<SocialId> {
        let mut weights = Vec::with_capacity(san.num_social_nodes());
        let mut ids = Vec::with_capacity(san.num_social_nodes());
        for v in san.social_nodes() {
            if v == u || san.has_social_link(u, v) {
                continue;
            }
            ids.push(v);
            weights.push(self.weight(san.in_degree(v) as u64, san.common_attrs(u, v)));
        }
        let idx = rng.weighted_index(&weights)?;
        Some(ids[idx])
    }
}

/// The paper's relative-improvement metric (Fig. 15):
/// `(l_ref − l) / l_ref`, positive when `l` is better (less negative) than
/// the reference log-likelihood.
pub fn relative_improvement(l_ref: f64, l: f64) -> f64 {
    (l_ref - l) / l_ref
}

/// Exact O(|Γa(u)|) sampler for LAPA with `α = 1`.
///
/// Represents the kernel as a mixture of uniform draws over multisets:
/// the *global* multiset holds each node once plus once per incoming link
/// (so a uniform draw is exactly ∝ `d_in+1`), and one multiset per
/// attribute `x` holds each member `v` with multiplicity `d_in(v)+1`
/// restricted to links arriving after the membership (kept exact because
/// every in-degree increment appends the target to the multisets of all its
/// attributes). Sampling picks the global component with weight
/// `|global|` or attribute `x ∈ Γa(u)` with weight `β·|multiset(x)|`,
/// then draws uniformly inside the component.
#[derive(Debug, Clone)]
pub struct LapaSampler {
    beta: f64,
    global: Vec<SocialId>,
    per_attr: Vec<Vec<SocialId>>,
}

impl LapaSampler {
    /// Creates an empty sampler with the given `β`.
    pub fn new(beta: f64) -> Result<Self, ModelError> {
        if beta < 0.0 || !beta.is_finite() {
            return Err(ModelError::InvalidParameter {
                name: "beta",
                value: beta,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(LapaSampler {
            beta,
            global: Vec::new(),
            per_attr: Vec::new(),
        })
    }

    /// Registers a new social node.
    pub fn on_social_node(&mut self, u: SocialId) {
        self.global.push(u);
    }

    /// Registers a new attribute node.
    pub fn on_attr_node(&mut self) {
        self.per_attr.push(Vec::new());
    }

    /// Registers a new attribute link `user — attr`; must be called *after*
    /// the link is inserted into `san`.
    pub fn on_attr_link(&mut self, san: &impl SanRead, user: SocialId, attr: san_graph::AttrId) {
        // The user enters the attribute multiset with weight d_in+1.
        let copies = san.in_degree(user) + 1;
        for _ in 0..copies {
            self.per_attr[attr.index()].push(user);
        }
    }

    /// Registers a new social link; must be called *after* the link is
    /// inserted into `san`.
    pub fn on_social_link(&mut self, san: &impl SanRead, dst: SocialId) {
        self.global.push(dst);
        for &x in san.attrs_of(dst) {
            self.per_attr[x.index()].push(dst);
        }
    }

    /// Draws a LAPA(α=1, β) target for source `u`, excluding `u` itself and
    /// existing `u →` targets (rejection with bounded retries; falls back
    /// to any unlinked node, returning `None` only when the graph offers no
    /// valid target).
    pub fn sample(&self, san: &impl SanRead, u: SocialId, rng: &mut SplitRng) -> Option<SocialId> {
        if san.num_social_nodes() < 2 {
            return None;
        }
        const RETRIES: usize = 64;
        // Component weights: global = |global|, attr x = beta * |multiset_x|.
        let attrs = san.attrs_of(u);
        let w_global = self.global.len() as f64;
        let mut w_total = w_global;
        for &x in attrs {
            w_total += self.beta * self.per_attr[x.index()].len() as f64;
        }
        for _ in 0..RETRIES {
            let mut pick = rng.f64() * w_total;
            let cand = if pick < w_global || attrs.is_empty() {
                self.global[rng.below(self.global.len() as u64) as usize]
            } else {
                pick -= w_global;
                let mut chosen = None;
                for &x in attrs {
                    let w = self.beta * self.per_attr[x.index()].len() as f64;
                    if pick < w {
                        let list = &self.per_attr[x.index()];
                        chosen = Some(list[rng.below(list.len() as u64) as usize]);
                        break;
                    }
                    pick -= w;
                }
                match chosen {
                    Some(c) => c,
                    // Floating point slack: fall back to the global list.
                    None => self.global[rng.below(self.global.len() as u64) as usize],
                }
            };
            if cand != u && !san.has_social_link(u, cand) {
                return Some(cand);
            }
        }
        // Dense corner (u already links almost everyone): fall back to a
        // uniform scan for any valid target.
        let remaining: Vec<SocialId> = san
            .social_nodes()
            .filter(|&v| v != u && !san.has_social_link(u, v))
            .collect();
        if remaining.is_empty() {
            None
        } else {
            Some(remaining[rng.below(remaining.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{AttrType, TimelineBuilder};

    #[test]
    fn weights_reduce_as_claimed() {
        // alpha=1, beta=0: every family equals PA.
        let pa = AttachModel::Pa { alpha: 1.0 };
        let papa = AttachModel::Papa {
            alpha: 1.0,
            beta: 0.0,
        };
        let lapa = AttachModel::Lapa {
            alpha: 1.0,
            beta: 0.0,
        };
        for d in [0u64, 1, 5, 100] {
            for a in [0usize, 1, 3] {
                // PAPA at beta=0 doubles the weight (1 + a^0 = 2): same
                // distribution after normalisation.
                assert!((papa.weight(d, a) - 2.0 * pa.weight(d, a)).abs() < 1e-12);
                assert!((lapa.weight(d, a) - pa.weight(d, a)).abs() < 1e-12);
            }
        }
        // alpha=0, beta=0: uniform (up to constant factor).
        let uni = AttachModel::Pa { alpha: 0.0 };
        assert_eq!(uni.weight(0, 0), uni.weight(1000, 5));
    }

    #[test]
    fn lapa_weight_linear_in_attrs() {
        let lapa = AttachModel::Lapa {
            alpha: 1.0,
            beta: 2.0,
        };
        let w0 = lapa.weight(3, 0);
        let w1 = lapa.weight(3, 1);
        let w2 = lapa.weight(3, 2);
        assert!((w1 - w0 * 3.0).abs() < 1e-12); // (1+2)/(1)
        assert!(((w2 - w1) - (w1 - w0)).abs() < 1e-12); // linear increments
    }

    /// Builds a small trace where targets share attributes with sources.
    fn attribute_trace() -> SanTimeline {
        let mut tb = TimelineBuilder::new();
        let mut rng = SplitRng::new(99);
        let a0 = {
            let u0 = tb.add_social_node();
            let a0 = tb.add_attr_node(AttrType::Employer);
            tb.add_attr_link(u0, a0);
            a0
        };
        let a1 = tb.add_attr_node(AttrType::City);
        let mut users = vec![SocialId(0)];
        for i in 1..60u32 {
            let u = tb.add_social_node();
            // Half the users share attribute a0, the rest a1.
            let my_attr = if i % 2 == 0 { a0 } else { a1 };
            tb.add_attr_link(u, my_attr);
            // Strongly attribute-assortative linking: link to a previous
            // user with the same attribute 90% of the time.
            let same: Vec<SocialId> = users
                .iter()
                .copied()
                .filter(|&v| tb.san().common_attrs(u, v) > 0)
                .collect();
            let tgt = if !same.is_empty() && rng.chance(0.9) {
                same[rng.below(same.len() as u64) as usize]
            } else {
                users[rng.below(users.len() as u64) as usize]
            };
            tb.add_social_link(u, tgt);
            users.push(u);
        }
        tb.finish().0
    }

    #[test]
    fn lapa_beats_pa_on_attribute_assortative_trace() {
        let tl = attribute_trace();
        let l_pa = AttachModel::Pa { alpha: 1.0 }.log_likelihood(&tl).unwrap();
        let l_lapa = AttachModel::Lapa {
            alpha: 1.0,
            beta: 10.0,
        }
        .log_likelihood(&tl)
        .unwrap();
        assert!(
            l_lapa > l_pa,
            "LAPA should beat PA on attribute-driven data: {l_lapa} vs {l_pa}"
        );
        assert!(relative_improvement(l_pa, l_lapa) > 0.0);
    }

    #[test]
    fn pa_beats_uniform_on_preferential_trace() {
        // Build a rich-get-richer trace.
        let mut tb = TimelineBuilder::new();
        let mut rng = SplitRng::new(5);
        let mut dst_pool: Vec<SocialId> = Vec::new();
        let u0 = tb.add_social_node();
        dst_pool.push(u0);
        for _ in 1..200u32 {
            let u = tb.add_social_node();
            let tgt = dst_pool[rng.below(dst_pool.len() as u64) as usize];
            if tb.add_social_link(u, tgt) {
                dst_pool.push(tgt);
            }
            dst_pool.push(u);
        }
        let tl = tb.finish().0;
        let l_uni = AttachModel::Uniform.log_likelihood(&tl).unwrap();
        let l_pa = AttachModel::Pa { alpha: 1.0 }.log_likelihood(&tl).unwrap();
        assert!(l_pa > l_uni, "PA should beat uniform: {l_pa} vs {l_uni}");
    }

    #[test]
    fn likelihood_matches_bruteforce() {
        // Cross-check the incremental partition function against a naive
        // O(n) recomputation on a small trace, for all kernel families.
        let tl = attribute_trace();
        for model in [
            AttachModel::Uniform,
            AttachModel::Pa { alpha: 1.3 },
            AttachModel::Lapa {
                alpha: 0.7,
                beta: 4.0,
            },
            AttachModel::Papa {
                alpha: 1.0,
                beta: 2.0,
            },
        ] {
            let fast = model.log_likelihood(&tl).unwrap();
            let slow = bruteforce_ll(&model, &tl);
            assert!(
                (fast - slow).abs() < 1e-6,
                "{model:?}: fast={fast} slow={slow}"
            );
        }
    }

    fn bruteforce_ll(model: &AttachModel, tl: &SanTimeline) -> f64 {
        use san_graph::SanEvent;
        let mut san = San::new();
        let mut ll = 0.0;
        for ev in tl.events() {
            match *ev {
                SanEvent::SocialNode { .. } => {
                    san.add_social_node();
                }
                SanEvent::AttrNode { ty, .. } => {
                    san.add_attr_node(ty);
                }
                SanEvent::AttrLink { user, attr, .. } => {
                    san.add_attr_link(user, attr);
                }
                SanEvent::SocialLink { src, dst, .. } => {
                    let num = model.weight(san.in_degree(dst) as u64, san.common_attrs(src, dst));
                    let denom: f64 = san
                        .social_nodes()
                        .filter(|&v| v != src)
                        .map(|v| model.weight(san.in_degree(v) as u64, san.common_attrs(src, v)))
                        .sum();
                    ll += num.ln() - denom.ln();
                    san.add_social_link(src, dst);
                }
            }
        }
        ll
    }

    #[test]
    fn empty_trace_rejected() {
        let mut tb = TimelineBuilder::new();
        tb.add_social_node();
        let tl = tb.finish().0;
        assert_eq!(
            AttachModel::Uniform.log_likelihood(&tl).unwrap_err(),
            ModelError::EmptyTrace
        );
    }

    #[test]
    fn relative_improvement_signs() {
        // Better model (less negative LL) => positive improvement.
        assert!(relative_improvement(-100.0, -94.0) > 0.0);
        assert!(relative_improvement(-100.0, -110.0) < 0.0);
        assert_eq!(relative_improvement(-100.0, -100.0), 0.0);
    }

    #[test]
    fn lapa_sampler_rejects_bad_beta() {
        assert!(LapaSampler::new(-1.0).is_err());
        assert!(LapaSampler::new(f64::NAN).is_err());
        assert!(LapaSampler::new(0.0).is_ok());
    }

    /// Feeds a SAN into a sampler, mirroring generator usage.
    fn sampler_for(san: &San, beta: f64) -> LapaSampler {
        // Rebuild incrementally in event order: nodes, attr nodes, attr
        // links, then social links (attribute links precede in-links for
        // every node in generator flows; here we replay in a compatible
        // order).
        let mut s = LapaSampler::new(beta).unwrap();
        let mut shadow = San::new();
        for u in san.social_nodes() {
            shadow.add_social_node();
            s.on_social_node(u);
        }
        for a in san.attr_nodes() {
            shadow.add_attr_node(san.attr_type(a));
            s.on_attr_node();
        }
        for (u, a) in san.attr_links() {
            shadow.add_attr_link(u, a);
            s.on_attr_link(&shadow, u, a);
        }
        for (u, v) in san.social_links() {
            shadow.add_social_link(u, v);
            s.on_social_link(&shadow, v);
        }
        s
    }

    #[test]
    fn sampler_matches_exact_distribution() {
        // Small SAN; compare empirical frequencies of the fast sampler with
        // the exact kernel probabilities.
        let mut san = San::new();
        let users: Vec<SocialId> = (0..6).map(|_| san.add_social_node()).collect();
        let a0 = san.add_attr_node(AttrType::Employer);
        san.add_attr_link(users[1], a0);
        san.add_attr_link(users[5], a0);
        san.add_social_link(users[2], users[3]);
        san.add_social_link(users[4], users[3]);
        // Source u1 shares attribute with u5.
        let src = users[1];
        let beta = 5.0;
        let sampler = sampler_for(&san, beta);
        let model = AttachModel::Lapa { alpha: 1.0, beta };
        // Exact probabilities over valid targets.
        let targets: Vec<SocialId> = san
            .social_nodes()
            .filter(|&v| v != src && !san.has_social_link(src, v))
            .collect();
        let weights: Vec<f64> = targets
            .iter()
            .map(|&v| model.weight(san.in_degree(v) as u64, san.common_attrs(src, v)))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut rng = SplitRng::new(77);
        let n = 200_000;
        let mut counts: HashMap<SocialId, usize> = HashMap::new();
        for _ in 0..n {
            let v = sampler.sample(&san, src, &mut rng).unwrap();
            *counts.entry(v).or_insert(0) += 1;
        }
        for (i, &v) in targets.iter().enumerate() {
            let expect = weights[i] / total;
            let got = *counts.get(&v).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "target {v}: got {got} expect {expect}"
            );
        }
    }

    #[test]
    fn sampler_excludes_self_and_existing() {
        let mut san = San::new();
        let u0 = san.add_social_node();
        let u1 = san.add_social_node();
        let u2 = san.add_social_node();
        san.add_social_link(u0, u1);
        let sampler = sampler_for(&san, 1.0);
        let mut rng = SplitRng::new(3);
        for _ in 0..500 {
            let v = sampler.sample(&san, u0, &mut rng).unwrap();
            assert_eq!(v, u2, "only u2 is a valid target");
        }
    }

    #[test]
    fn sampler_none_when_saturated() {
        let mut san = San::new();
        let u0 = san.add_social_node();
        let u1 = san.add_social_node();
        san.add_social_link(u0, u1);
        let sampler = sampler_for(&san, 1.0);
        let mut rng = SplitRng::new(4);
        assert_eq!(sampler.sample(&san, u0, &mut rng), None);
    }

    #[test]
    fn sample_exact_respects_weights() {
        let mut san = San::new();
        let users: Vec<SocialId> = (0..4).map(|_| san.add_social_node()).collect();
        // u3 has in-degree 2, others 0.
        san.add_social_link(users[0], users[3]);
        san.add_social_link(users[1], users[3]);
        let model = AttachModel::Pa { alpha: 1.0 };
        let mut rng = SplitRng::new(8);
        let mut hits = 0;
        let n = 20_000;
        for _ in 0..n {
            if model.sample_exact(&san, users[2], &mut rng) == Some(users[3]) {
                hits += 1;
            }
        }
        // Weights: u0:1, u1:1, u3:3 -> p(u3) = 3/5.
        let p = hits as f64 / n as f64;
        assert!((p - 0.6).abs() < 0.02, "p={p}");
    }
}
