//! The full SAN generative model — Algorithm 1 of the paper — as a
//! parameterised stochastic process.
//!
//! ```text
//! for 1 ≤ t ≤ T:
//!   sample new social nodes V_t,new
//!   for v_new ∈ V_t,new:
//!     sample attribute degree  n_a(v_new) ~ Lognormal(µ_a, σ_a)
//!     link each attribute      (new node w.p. p, else ∝ social degree)
//!     first outgoing link      (LAPA)
//!     sample lifetime          l ~ TruncNormal(µ_l, σ_l)   [key lever]
//!     sample sleep time        mean m_s / d_out
//!   for v_woken ∈ V_t,woken:
//!     outgoing link            (RR-SAN triangle closing)
//!     resample sleep time
//! ```
//!
//! Every box in that sketch is a swappable parameter, which makes the
//! paper's ablations and baselines one-line presets:
//!
//! * Fig. 18a (*"w/o LAPA"*): [`FirstLink::Pa`] instead of
//!   [`FirstLink::Lapa`] — social in-degree reverts to a power law;
//! * Fig. 18b (*"w/o focal closure"*): [`ClosingModel::Rr`] instead of
//!   RR-SAN — attribute clustering collapses;
//! * the **Zhel baseline** (§6): exponential lifetimes + PA + RR + friend-
//!   copy group membership ([`SanModelParams::zhel_baseline`]); the
//!   exponential lifetime is exactly what flips the out-degree family from
//!   lognormal to power law (Theorem 1 vs prior work).
//!
//! One extension beyond Algorithm 1: `reciprocate_prob` lets link targets
//! immediately reciprocate. The paper's model does not model reciprocity;
//! the Google+ *simulator* (crate `san-sim`) needs it to reproduce the
//! hybrid friend/pub-sub reciprocity decay of Fig. 4a. The paper presets
//! keep it at 0.

use crate::attach::LapaSampler;
use crate::closing::ClosingModel;
use crate::error::ModelError;
use san_graph::{AttrId, AttrType, San, SanEvent, SanTimeline, SocialId, TimelineBuilder};
use san_stats::{DiscreteLognormal, Exponential, Geometric, SplitRng, TruncatedNormal};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Node lifetime distribution (§5.3 "lifetime sampling").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LifetimeDist {
    /// The paper's choice: normal truncated to `l ≥ 0` — Theorem 1 shows
    /// this yields lognormal social out-degrees.
    TruncNormal {
        /// Location `µ_l` (days).
        mu: f64,
        /// Scale `σ_l` (days).
        sigma: f64,
    },
    /// Prior work's choice (Leskovec et al., Zheleva et al.): exponential —
    /// yields power-law out-degrees.
    Exponential {
        /// Mean lifetime (days).
        mean: f64,
    },
}

/// Sleep-time regime between consecutive outgoing links.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SleepMode {
    /// The paper's choice: exponential sleep with mean `m_s / d_out` — the
    /// busier a node, the more often it wakes.
    InverseOutDegree {
        /// The constant `m_s` (days).
        mean: f64,
    },
    /// Ablation: constant-mean exponential sleep regardless of degree.
    Constant {
        /// Mean sleep (days).
        mean: f64,
    },
}

/// First-outgoing-link kernel for newborn nodes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FirstLink {
    /// LAPA with `α = 1` (exact fast sampler) — the paper's model.
    Lapa {
        /// Attribute weight `β`.
        beta: f64,
    },
    /// Plain preferential attachment (the Fig. 18a ablation, `β = 0`).
    Pa,
    /// Uniformly random target.
    Uniform,
}

/// How newborn nodes acquire attributes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AttrAssign {
    /// The paper's model: attribute degree ~ discrete lognormal; each
    /// attribute is a brand-new node w.p. `p_new`, otherwise an existing
    /// node chosen proportionally to its social degree.
    Lognormal {
        /// Lognormal `µ_a` of the attribute degree.
        mu: f64,
        /// Lognormal `σ_a`.
        sigma: f64,
        /// Probability of minting a new attribute node (`p` in Theorem 2).
        p_new: f64,
    },
    /// Zhel-style dynamic membership: geometric count; with `copy_prob` a
    /// random friend's attribute is copied (social structure influences
    /// attributes — the *reverse* causality of the paper's model),
    /// otherwise new w.p. `p_new` / existing ∝ degree.
    FriendCopy {
        /// Mean number of attributes per node (may be < 1).
        mean: f64,
        /// Probability of copying a friend's attribute.
        copy_prob: f64,
        /// Probability of minting a new attribute node otherwise.
        p_new: f64,
    },
}

/// Full parameter set of the generative process.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SanModelParams {
    /// Number of simulated days `T`.
    pub days: u32,
    /// Arrivals per day. A single-element vector means a constant rate;
    /// otherwise it must have exactly `days` entries (the three-phase
    /// Google+ schedule lives in `san-sim`).
    pub arrivals_per_day: Vec<u32>,
    /// Attribute acquisition scheme.
    pub attr_assign: AttrAssign,
    /// Mix over the four paper attribute types for newly minted attribute
    /// nodes (School, Major, Employer, City); need not be normalised.
    pub attr_type_mix: [f64; 4],
    /// First-link kernel.
    pub first_link: FirstLink,
    /// Number of first links each arrival issues at birth (1 in the
    /// paper's model; exposed for ablation studies on the PA/closure link
    /// mix).
    pub first_link_count: u32,
    /// Wake-up triangle-closing kernel.
    pub closing: ClosingModel,
    /// Lifetime distribution.
    pub lifetime: LifetimeDist,
    /// Sleep-time regime.
    pub sleep: SleepMode,
    /// Probability a link target immediately reciprocates (0 in the paper's
    /// model; used by the Google+ simulator).
    pub reciprocate_prob: f64,
    /// Optional per-day override of `reciprocate_prob` (1 or `days`
    /// entries); lets the simulator decay reciprocity across the three
    /// phases (Fig. 4a).
    pub reciprocate_schedule: Option<Vec<f64>>,
    /// Multiplier applied to the reciprocation probability when the link
    /// endpoints share at least one attribute (1.0 in the paper's model;
    /// the Google+ simulator uses ~2.2 to reproduce the Fig. 13a finding
    /// that common attributes roughly double reciprocity). The effective
    /// probability is clamped to 1.
    pub reciprocate_attr_boost: f64,
    /// Mean of the exponential delay before a reciprocation fires
    /// (days). 0 means immediate reciprocation; the simulator uses ~15 so
    /// one-directional links at a snapshot can still become bidirectional
    /// later — the raw material of the Fig. 13a analysis.
    pub reciprocate_delay_mean: f64,
    /// Probability that an arriving user declares any attributes at all
    /// (1.0 in the paper's model; the Google+ simulator uses the measured
    /// 22 % declaration rate, §2.2).
    pub attr_declare_prob: f64,
    /// Seed network size: a complete SAN of this many social nodes…
    pub seed_social: usize,
    /// …and this many attribute nodes (the paper initialises with 5 + 5).
    pub seed_attrs: usize,
}

impl SanModelParams {
    /// The paper's model with its default knobs, at a constant arrival
    /// rate. Lifetime/sleep defaults are chosen so Theorem 1 predicts
    /// `µ_o ≈ 1.14`, `σ_o ≈ 0.64` — the lognormal regime of Fig. 16a/b.
    pub fn paper_default(days: u32, arrivals_per_day: u32) -> Self {
        SanModelParams {
            days,
            arrivals_per_day: vec![arrivals_per_day],
            attr_assign: AttrAssign::Lognormal {
                mu: 0.7,
                sigma: 0.9,
                p_new: 0.2,
            },
            attr_type_mix: [0.25, 0.2, 0.25, 0.3],
            first_link: FirstLink::Lapa { beta: 20.0 },
            first_link_count: 1,
            closing: ClosingModel::RrSan { fc: 0.5 },
            lifetime: LifetimeDist::TruncNormal {
                mu: 8.0,
                sigma: 6.0,
            },
            sleep: SleepMode::InverseOutDegree { mean: 8.0 },
            reciprocate_prob: 0.0,
            reciprocate_schedule: None,
            reciprocate_attr_boost: 1.0,
            reciprocate_delay_mean: 0.0,
            attr_declare_prob: 1.0,
            seed_social: 5,
            seed_attrs: 5,
        }
    }

    /// The Zhel baseline (§6): Zheleva et al.'s co-evolution model extended
    /// to directed networks — exponential lifetimes (⇒ power-law
    /// out-degree), PA first links, RR closing (no focal closure), and
    /// friend-copied group memberships (social → attribute influence).
    pub fn zhel_baseline(days: u32, arrivals_per_day: u32) -> Self {
        SanModelParams {
            days,
            arrivals_per_day: vec![arrivals_per_day],
            attr_assign: AttrAssign::FriendCopy {
                mean: 2.0,
                copy_prob: 0.5,
                p_new: 0.15,
            },
            attr_type_mix: [0.25, 0.25, 0.25, 0.25],
            first_link: FirstLink::Pa,
            first_link_count: 1,
            closing: ClosingModel::Rr,
            lifetime: LifetimeDist::Exponential { mean: 8.0 },
            sleep: SleepMode::InverseOutDegree { mean: 8.0 },
            reciprocate_prob: 0.0,
            reciprocate_schedule: None,
            reciprocate_attr_boost: 1.0,
            reciprocate_delay_mean: 0.0,
            attr_declare_prob: 1.0,
            seed_social: 5,
            seed_attrs: 5,
        }
    }

    /// Fig. 18a ablation: the paper's model with PA instead of LAPA.
    pub fn without_lapa(mut self) -> Self {
        self.first_link = FirstLink::Pa;
        self
    }

    /// Fig. 18b ablation: the paper's model with RR instead of RR-SAN.
    pub fn without_focal_closure(mut self) -> Self {
        self.closing = ClosingModel::Rr;
        self
    }

    /// Validates all parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        fn check(name: &'static str, v: f64, ok: bool) -> Result<(), ModelError> {
            if ok {
                Ok(())
            } else {
                Err(ModelError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "out of domain",
                })
            }
        }
        if self.days == 0 {
            return Err(ModelError::InvalidParameter {
                name: "days",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        if self.arrivals_per_day.is_empty()
            || (self.arrivals_per_day.len() != 1
                && self.arrivals_per_day.len() != self.days as usize)
        {
            return Err(ModelError::InvalidParameter {
                name: "arrivals_per_day",
                value: self.arrivals_per_day.len() as f64,
                constraint: "must have 1 or `days` entries",
            });
        }
        match self.attr_assign {
            AttrAssign::Lognormal { sigma, p_new, .. } => {
                check("attr_sigma", sigma, sigma > 0.0)?;
                check("p_new", p_new, (0.0..=1.0).contains(&p_new))?;
            }
            AttrAssign::FriendCopy {
                mean,
                copy_prob,
                p_new,
            } => {
                check("attr_mean", mean, mean >= 0.0)?;
                check("copy_prob", copy_prob, (0.0..=1.0).contains(&copy_prob))?;
                check("p_new", p_new, (0.0..=1.0).contains(&p_new))?;
            }
        }
        if let FirstLink::Lapa { beta } = self.first_link {
            check("beta", beta, beta >= 0.0 && beta.is_finite())?;
        }
        if self.first_link_count == 0 {
            return Err(ModelError::InvalidParameter {
                name: "first_link_count",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        self.closing.validate()?;
        match self.lifetime {
            LifetimeDist::TruncNormal { sigma, .. } => check("lifetime_sigma", sigma, sigma > 0.0)?,
            LifetimeDist::Exponential { mean } => check("lifetime_mean", mean, mean > 0.0)?,
        }
        match self.sleep {
            SleepMode::InverseOutDegree { mean } | SleepMode::Constant { mean } => {
                check("sleep_mean", mean, mean > 0.0)?
            }
        }
        check(
            "reciprocate_prob",
            self.reciprocate_prob,
            (0.0..=1.0).contains(&self.reciprocate_prob),
        )?;
        if let Some(sched) = &self.reciprocate_schedule {
            if sched.is_empty() || (sched.len() != 1 && sched.len() != self.days as usize) {
                return Err(ModelError::InvalidParameter {
                    name: "reciprocate_schedule",
                    value: sched.len() as f64,
                    constraint: "must have 1 or `days` entries",
                });
            }
            for &r in sched {
                check("reciprocate_schedule entry", r, (0.0..=1.0).contains(&r))?;
            }
        }
        check(
            "attr_declare_prob",
            self.attr_declare_prob,
            (0.0..=1.0).contains(&self.attr_declare_prob),
        )?;
        check(
            "reciprocate_attr_boost",
            self.reciprocate_attr_boost,
            self.reciprocate_attr_boost >= 0.0 && self.reciprocate_attr_boost.is_finite(),
        )?;
        check(
            "reciprocate_delay_mean",
            self.reciprocate_delay_mean,
            self.reciprocate_delay_mean >= 0.0 && self.reciprocate_delay_mean.is_finite(),
        )?;
        if self.seed_social < 2 {
            return Err(ModelError::InvalidParameter {
                name: "seed_social",
                value: self.seed_social as f64,
                constraint: "must be >= 2",
            });
        }
        Ok(())
    }

    /// Reciprocation probability on (1-based) day `t`.
    fn reciprocation_on(&self, t: u32) -> f64 {
        match &self.reciprocate_schedule {
            Some(s) if s.len() == 1 => s[0],
            Some(s) => s[(t - 1) as usize],
            None => self.reciprocate_prob,
        }
    }

    /// Arrivals on (1-based) day `t`.
    fn arrivals_on(&self, t: u32) -> u32 {
        if self.arrivals_per_day.len() == 1 {
            self.arrivals_per_day[0]
        } else {
            self.arrivals_per_day[(t - 1) as usize]
        }
    }

    /// Total number of social nodes the run will create (seeds + arrivals).
    pub fn total_social_nodes(&self) -> usize {
        let arrivals: u64 = (1..=self.days)
            .map(|t| u64::from(self.arrivals_on(t)))
            .sum();
        self.seed_social + arrivals as usize
    }
}

/// Wake-queue entry ordered by time (min-heap via reversed comparison),
/// ties broken by node id for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Wake {
    time: f64,
    node: u32,
}

impl Eq for Wake {}

impl Ord for Wake {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time = greatest priority.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Wake {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A delayed link creation (used for reciprocations), ordered like
/// [`Wake`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingLink {
    time: f64,
    src: u32,
    dst: u32,
}

impl Eq for PendingLink {}

impl Ord for PendingLink {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.src.cmp(&self.src))
            .then_with(|| other.dst.cmp(&self.dst))
    }
}

impl PartialOrd for PendingLink {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The generative process, ready to run.
#[derive(Debug, Clone)]
pub struct SanModel {
    params: SanModelParams,
}

impl SanModel {
    /// Validates parameters and wraps them.
    pub fn new(params: SanModelParams) -> Result<Self, ModelError> {
        params.validate()?;
        Ok(SanModel { params })
    }

    /// The parameters.
    pub fn params(&self) -> &SanModelParams {
        &self.params
    }

    /// Runs the process, producing the full event timeline and the final
    /// network. Deterministic in `seed`.
    ///
    /// This is the collecting wrapper over
    /// [`generate_with`](SanModel::generate_with); runs that only need the
    /// per-day event stream (e.g. to feed a
    /// [`StreamingVaultWriter`](san_graph::store::StreamingVaultWriter))
    /// should call that directly and skip the O(total events) log.
    pub fn generate(&self, seed: u64) -> (SanTimeline, San) {
        let mut events = Vec::new();
        let san = self.generate_with(seed, |_, day_events| {
            events.extend_from_slice(day_events);
        });
        (SanTimeline::from_events(events), san)
    }

    /// Streaming form of [`generate`](SanModel::generate): runs the exact
    /// same process (bit-identical for the same `seed`) but hands each
    /// day's events to `sink(day, events)` as soon as the day completes,
    /// instead of accumulating them into a [`SanTimeline`]. `sink` is
    /// called exactly once per day `0..=days` (day 0 carries the seed
    /// network), in order, and the events are dropped afterwards — peak
    /// memory is the live network plus one day of events, which is what
    /// makes million-node synthesize-and-persist runs feasible.
    pub fn generate_with<F: FnMut(u32, &[SanEvent])>(&self, seed: u64, mut sink: F) -> San {
        let p = &self.params;
        let mut rng = SplitRng::new(seed);
        let mut tb = TimelineBuilder::new();

        // Distributions (validated in `new`).
        let lapa_beta = match p.first_link {
            FirstLink::Lapa { beta } => beta,
            _ => 0.0,
        };
        let mut sampler = LapaSampler::new(lapa_beta).expect("validated beta");
        let attr_count_lognormal = match p.attr_assign {
            AttrAssign::Lognormal { mu, sigma, .. } => {
                Some(DiscreteLognormal::new(mu, sigma).expect("validated"))
            }
            AttrAssign::FriendCopy { .. } => None,
        };
        let lifetime_tn = match p.lifetime {
            LifetimeDist::TruncNormal { mu, sigma } => {
                Some(TruncatedNormal::new(mu, sigma).expect("validated"))
            }
            LifetimeDist::Exponential { .. } => None,
        };
        let lifetime_exp = match p.lifetime {
            LifetimeDist::Exponential { mean } => Some(Exponential::new(mean).expect("validated")),
            LifetimeDist::TruncNormal { .. } => None,
        };

        // Degree-proportional multiset over attribute nodes.
        let mut attr_multiset: Vec<AttrId> = Vec::new();
        // Death day per social node.
        let mut death: Vec<f64> = Vec::new();
        let mut queue: BinaryHeap<Wake> = BinaryHeap::new();
        // Pending delayed reciprocations: (fire time, src, dst) meaning the
        // link src -> dst will be created when the time arrives.
        let mut pending_recip: BinaryHeap<PendingLink> = BinaryHeap::new();

        // --- Initialization: complete seed SAN (§5.3) -------------------
        let seeds: Vec<SocialId> = (0..p.seed_social)
            .map(|_| {
                let u = tb.add_social_node();
                sampler.on_social_node(u);
                death.push(f64::INFINITY); // seeds never act; inert anchor
                u
            })
            .collect();
        let seed_attrs: Vec<AttrId> = (0..p.seed_attrs)
            .map(|_| {
                let a = tb.add_attr_node(self.sample_attr_type(&mut rng));
                sampler.on_attr_node();
                a
            })
            .collect();
        for &u in &seeds {
            for &v in &seeds {
                if u != v && tb.add_social_link(u, v) {
                    sampler.on_social_link(tb.san(), v);
                }
            }
            for &a in &seed_attrs {
                if tb.add_attr_link(u, a) {
                    sampler.on_attr_link(tb.san(), u, a);
                    attr_multiset.push(a);
                }
            }
        }

        // --- Day loop ----------------------------------------------------
        for t in 1..=p.days {
            // Day t-1 is complete (day 0 = the seed network): flush its
            // events before the clock moves.
            sink(t - 1, &tb.drain_events());
            tb.advance_to_day(t);
            let recip = p.reciprocation_on(t);
            // Fire due reciprocations first: they respond to links from
            // earlier days.
            while pending_recip.peek().is_some_and(|e| e.time <= f64::from(t)) {
                let e = pending_recip.pop().expect("peeked");
                let (src, dst) = (SocialId(e.src), SocialId(e.dst));
                if tb.add_social_link(src, dst) {
                    sampler.on_social_link(tb.san(), dst);
                }
            }
            // Social node arrival.
            for _ in 0..p.arrivals_on(t) {
                let u = tb.add_social_node();
                sampler.on_social_node(u);
                death.push(0.0); // placeholder, set below

                let friend_copy_first = matches!(p.attr_assign, AttrAssign::FriendCopy { .. });
                let declares = rng.chance(p.attr_declare_prob);
                if friend_copy_first {
                    for _ in 0..p.first_link_count {
                        self.first_link(
                            &mut tb,
                            &mut sampler,
                            &mut pending_recip,
                            u,
                            recip,
                            f64::from(t),
                            &mut rng,
                        );
                    }
                    if declares {
                        self.assign_attrs(
                            &mut tb,
                            &mut sampler,
                            &mut attr_multiset,
                            u,
                            attr_count_lognormal.as_ref(),
                            &mut rng,
                        );
                    }
                } else {
                    if declares {
                        self.assign_attrs(
                            &mut tb,
                            &mut sampler,
                            &mut attr_multiset,
                            u,
                            attr_count_lognormal.as_ref(),
                            &mut rng,
                        );
                    }
                    for _ in 0..p.first_link_count {
                        self.first_link(
                            &mut tb,
                            &mut sampler,
                            &mut pending_recip,
                            u,
                            recip,
                            f64::from(t),
                            &mut rng,
                        );
                    }
                }

                // Lifetime sampling.
                let lifetime = match p.lifetime {
                    LifetimeDist::TruncNormal { .. } => {
                        lifetime_tn.expect("tn set").sample(&mut rng)
                    }
                    LifetimeDist::Exponential { .. } => {
                        lifetime_exp.expect("exp set").sample(&mut rng)
                    }
                };
                death[u.index()] = f64::from(t) + lifetime;

                // Sleep time sampling.
                let s = self.sample_sleep(tb.san().out_degree(u), &mut rng);
                queue.push(Wake {
                    time: f64::from(t) + s,
                    node: u.0,
                });
            }

            // Collect woken social nodes.
            while queue.peek().is_some_and(|w| w.time <= f64::from(t)) {
                let wake = queue.pop().expect("peeked");
                let u = SocialId(wake.node);
                if wake.time > death[u.index()] {
                    continue; // lifetime over: retire the node.
                }
                // Outgoing linking via triangle closing.
                if let Some(v) = p.closing.sample(tb.san(), u, &mut rng) {
                    if tb.add_social_link(u, v) {
                        sampler.on_social_link(tb.san(), v);
                        self.maybe_reciprocate(
                            &mut tb,
                            &mut sampler,
                            &mut pending_recip,
                            u,
                            v,
                            recip,
                            wake.time,
                            &mut rng,
                        );
                    }
                }
                // Sleep time re-sampling.
                let s = self.sample_sleep(tb.san().out_degree(u), &mut rng);
                queue.push(Wake {
                    time: wake.time + s,
                    node: u.0,
                });
            }
        }
        sink(p.days, &tb.drain_events());
        tb.finish().1
    }

    fn sample_attr_type(&self, rng: &mut SplitRng) -> AttrType {
        let idx = rng.weighted_index(&self.params.attr_type_mix).unwrap_or(0);
        AttrType::PAPER_TYPES[idx]
    }

    fn sample_sleep(&self, out_degree: usize, rng: &mut SplitRng) -> f64 {
        let mean = match self.params.sleep {
            SleepMode::InverseOutDegree { mean } => mean / out_degree.max(1) as f64,
            SleepMode::Constant { mean } => mean,
        };
        Exponential::new(mean.max(1e-9))
            .expect("positive mean")
            .sample(rng)
    }

    #[allow(clippy::too_many_arguments)]
    fn first_link(
        &self,
        tb: &mut TimelineBuilder,
        sampler: &mut LapaSampler,
        pending_recip: &mut BinaryHeap<PendingLink>,
        u: SocialId,
        recip: f64,
        now: f64,
        rng: &mut SplitRng,
    ) {
        let target = match self.params.first_link {
            FirstLink::Lapa { .. } | FirstLink::Pa => sampler.sample(tb.san(), u, rng),
            FirstLink::Uniform => {
                let n = tb.san().num_social_nodes() as u64;
                let mut pick = None;
                for _ in 0..32 {
                    let v = SocialId(rng.below(n) as u32);
                    if v != u && !tb.san().has_social_link(u, v) {
                        pick = Some(v);
                        break;
                    }
                }
                pick
            }
        };
        if let Some(v) = target {
            if tb.add_social_link(u, v) {
                sampler.on_social_link(tb.san(), v);
                self.maybe_reciprocate(tb, sampler, pending_recip, u, v, recip, now, rng);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn maybe_reciprocate(
        &self,
        tb: &mut TimelineBuilder,
        sampler: &mut LapaSampler,
        pending_recip: &mut BinaryHeap<PendingLink>,
        u: SocialId,
        v: SocialId,
        recip: f64,
        now: f64,
        rng: &mut SplitRng,
    ) {
        if recip <= 0.0 {
            return;
        }
        let boosted =
            if self.params.reciprocate_attr_boost != 1.0 && tb.san().common_attrs(u, v) > 0 {
                (recip * self.params.reciprocate_attr_boost).min(1.0)
            } else {
                recip
            };
        if !rng.chance(boosted) {
            return;
        }
        if self.params.reciprocate_delay_mean <= 0.0 {
            if tb.add_social_link(v, u) {
                sampler.on_social_link(tb.san(), u);
            }
            return;
        }
        let delay = Exponential::new(self.params.reciprocate_delay_mean)
            .expect("validated mean")
            .sample(rng);
        pending_recip.push(PendingLink {
            time: now + delay,
            src: v.0,
            dst: u.0,
        });
    }

    fn assign_attrs(
        &self,
        tb: &mut TimelineBuilder,
        sampler: &mut LapaSampler,
        attr_multiset: &mut Vec<AttrId>,
        u: SocialId,
        count_dist: Option<&DiscreteLognormal>,
        rng: &mut SplitRng,
    ) {
        let (count, p_new) = match self.params.attr_assign {
            AttrAssign::Lognormal { p_new, .. } => {
                let c = count_dist.expect("lognormal dist set").sample(rng);
                (c, p_new)
            }
            AttrAssign::FriendCopy { mean, p_new, .. } => {
                // Geometric on {1,2,…} shifted to allow zero, mean = `mean`.
                let g = Geometric::new(1.0 / (mean + 1.0)).expect("valid p");
                (g.sample(rng) - 1, p_new)
            }
        };
        for _ in 0..count {
            let attr = self.pick_attr(tb, sampler, attr_multiset, u, p_new, rng);
            if let Some(a) = attr {
                if tb.add_attr_link(u, a) {
                    sampler.on_attr_link(tb.san(), u, a);
                    attr_multiset.push(a);
                }
            }
        }
    }

    fn pick_attr(
        &self,
        tb: &mut TimelineBuilder,
        sampler: &mut LapaSampler,
        attr_multiset: &[AttrId],
        u: SocialId,
        p_new: f64,
        rng: &mut SplitRng,
    ) -> Option<AttrId> {
        // Zhel-style friend copying first, when configured.
        if let AttrAssign::FriendCopy { copy_prob, .. } = self.params.attr_assign {
            if rng.chance(copy_prob) {
                let friends = tb.san().social_neighbors(u);
                if !friends.is_empty() {
                    let w = friends[rng.below(friends.len() as u64) as usize];
                    let w_attrs = tb.san().attrs_of(w);
                    if !w_attrs.is_empty() {
                        return Some(w_attrs[rng.below(w_attrs.len() as u64) as usize]);
                    }
                }
                // No copyable attribute: fall through to the base process.
            }
        }
        if attr_multiset.is_empty() || rng.chance(p_new) {
            let a = tb.add_attr_node(self.sample_attr_type(rng));
            sampler.on_attr_node();
            // The caller links u—a, putting the node into the multiset.
            return Some(a);
        }
        Some(attr_multiset[rng.below(attr_multiset.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_stats::fit::{fit_degree_distribution, FitFamily};

    fn generate(params: SanModelParams, seed: u64) -> (SanTimeline, San) {
        SanModel::new(params).unwrap().generate(seed)
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = SanModelParams::paper_default(10, 5);
        p.days = 0;
        assert!(SanModel::new(p).is_err());

        let mut p = SanModelParams::paper_default(10, 5);
        p.arrivals_per_day = vec![1, 2, 3]; // neither 1 nor `days` entries
        assert!(SanModel::new(p).is_err());

        let mut p = SanModelParams::paper_default(10, 5);
        p.reciprocate_prob = 1.5;
        assert!(SanModel::new(p).is_err());

        let mut p = SanModelParams::paper_default(10, 5);
        p.lifetime = LifetimeDist::TruncNormal {
            mu: 1.0,
            sigma: 0.0,
        };
        assert!(SanModel::new(p).is_err());

        let mut p = SanModelParams::paper_default(10, 5);
        p.seed_social = 1;
        assert!(SanModel::new(p).is_err());
    }

    #[test]
    fn generate_with_streams_the_same_run() {
        // The streaming form must be bit-identical to the batch form: the
        // concatenated day slices ARE the timeline, each slice carries only
        // its own day, every day 0..=days is flushed exactly once, and the
        // returned network matches.
        let params = SanModelParams::paper_default(25, 6);
        let model = SanModel::new(params.clone()).unwrap();
        let (tl, san) = model.generate(42);

        let mut streamed = Vec::new();
        let mut days_seen = Vec::new();
        let streamed_san = model.generate_with(42, |day, events| {
            days_seen.push(day);
            assert!(events.iter().all(|e| e.day() == day), "day {day}");
            streamed.extend_from_slice(events);
        });
        assert_eq!(days_seen, (0..=params.days).collect::<Vec<_>>());
        assert_eq!(streamed, tl.events());
        assert_eq!(streamed_san.num_social_nodes(), san.num_social_nodes());
        assert_eq!(streamed_san.num_social_links(), san.num_social_links());
        assert_eq!(streamed_san.num_attr_nodes(), san.num_attr_nodes());
        assert_eq!(streamed_san.num_attr_links(), san.num_attr_links());
        streamed_san.check_consistency().unwrap();
    }

    #[test]
    fn generates_expected_node_count() {
        let params = SanModelParams::paper_default(20, 10);
        let expected = params.total_social_nodes();
        let (tl, san) = generate(params, 1);
        assert_eq!(san.num_social_nodes(), expected);
        assert_eq!(tl.final_snapshot().num_social_nodes(), expected);
        san.check_consistency().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let params = SanModelParams::paper_default(15, 8);
        let (_, a) = generate(params.clone(), 42);
        let (_, b) = generate(params.clone(), 42);
        assert_eq!(a.num_social_links(), b.num_social_links());
        assert_eq!(a.num_attr_links(), b.num_attr_links());
        assert_eq!(a.num_attr_nodes(), b.num_attr_nodes());
        let (_, c) = generate(params, 43);
        // Different seed ⇒ different growth (counts almost surely differ).
        assert!(
            a.num_social_links() != c.num_social_links()
                || a.num_attr_links() != c.num_attr_links()
        );
    }

    #[test]
    fn variable_arrival_schedule_respected() {
        let mut params = SanModelParams::paper_default(3, 0);
        params.arrivals_per_day = vec![10, 0, 5];
        let expected = params.total_social_nodes();
        let (tl, san) = generate(params, 2);
        assert_eq!(san.num_social_nodes(), expected);
        let counts = tl.day_counts();
        assert_eq!(counts[1].social_nodes - counts[0].social_nodes, 10);
        assert_eq!(counts[2].social_nodes, counts[1].social_nodes);
        assert_eq!(counts[3].social_nodes - counts[2].social_nodes, 5);
    }

    #[test]
    fn every_arrival_gets_first_link_and_attrs_layered() {
        // With enough days, links per node >= 1 (first link) — check the
        // mean out-degree exceeds 1 thanks to wake-ups.
        let params = SanModelParams::paper_default(60, 20);
        let (_, san) = generate(params, 3);
        let links = san.num_social_links() as f64;
        let nodes = san.num_social_nodes() as f64;
        assert!(links / nodes > 1.0, "density {}", links / nodes);
        assert!(san.num_attr_nodes() > 5, "attribute nodes should be minted");
        assert!(san.num_attr_links() > 0);
    }

    #[test]
    fn paper_model_outdegree_is_lognormal() {
        let params = SanModelParams::paper_default(120, 25);
        let (_, san) = generate(params, 7);
        let degrees: Vec<u64> = san
            .social_nodes()
            .skip(5) // seeds are inert anchors
            .map(|u| san.out_degree(u) as u64)
            .collect();
        let fit = fit_degree_distribution(&degrees).unwrap();
        assert_eq!(
            fit.family,
            FitFamily::Lognormal,
            "paper model must give lognormal out-degrees: {fit:?}"
        );
    }

    #[test]
    fn zhel_model_outdegree_is_powerlaw_family() {
        // A wide lognormal can imitate a power law over a finite range, so
        // the classifier's raw verdict is noisy here; the discriminative
        // facts are (a) the power-law fit is *good* (small KS), (b) its
        // exponent sits at the ms/λ + 1 = 2 prediction for exponential
        // lifetimes, and (c) the paper model is *much* more lognormal than
        // the Zhel baseline on the same statistic.
        let (_, zhel) = generate(SanModelParams::zhel_baseline(120, 25), 8);
        let zhel_deg: Vec<u64> = zhel
            .social_nodes()
            .skip(5)
            .map(|u| zhel.out_degree(u) as u64)
            .collect();
        let zhel_fit = fit_degree_distribution(&zhel_deg).unwrap();
        assert!(zhel_fit.ks_powerlaw < 0.08, "{zhel_fit:?}");
        assert!(
            (zhel_fit.alpha - 2.0).abs() < 0.4,
            "alpha={} (expected ~2 for ms/λ=1)",
            zhel_fit.alpha
        );

        let (_, paper) = generate(SanModelParams::paper_default(120, 25), 8);
        let paper_deg: Vec<u64> = paper
            .social_nodes()
            .skip(5)
            .map(|u| paper.out_degree(u) as u64)
            .collect();
        let paper_fit = fit_degree_distribution(&paper_deg).unwrap();
        assert_eq!(paper_fit.family, FitFamily::Lognormal);
        assert!(
            paper_fit.llr_per_sample() > zhel_fit.llr_per_sample() + 0.005,
            "paper model must be more lognormal than zhel: {} vs {}",
            paper_fit.llr_per_sample(),
            zhel_fit.llr_per_sample()
        );
    }

    #[test]
    fn reciprocation_knob_controls_reciprocity() {
        let mut params = SanModelParams::paper_default(40, 15);
        params.reciprocate_prob = 0.0;
        let (_, low) = generate(params.clone(), 9);
        params.reciprocate_prob = 0.8;
        let (_, high) = generate(params, 9);
        let r = |san: &San| {
            let mut total = 0;
            let mut mutual = 0;
            for (u, v) in san.social_links() {
                total += 1;
                if san.has_social_link(v, u) {
                    mutual += 1;
                }
            }
            mutual as f64 / total as f64
        };
        assert!(
            r(&high) > r(&low) + 0.3,
            "high={} low={}",
            r(&high),
            r(&low)
        );
    }

    #[test]
    fn ablation_presets() {
        let p = SanModelParams::paper_default(10, 5).without_lapa();
        assert_eq!(p.first_link, FirstLink::Pa);
        let p = SanModelParams::paper_default(10, 5).without_focal_closure();
        assert_eq!(p.closing, ClosingModel::Rr);
    }

    #[test]
    fn timeline_days_are_complete() {
        let params = SanModelParams::paper_default(30, 5);
        let (tl, _) = generate(params, 10);
        assert_eq!(tl.max_day(), Some(30));
        let counts = tl.day_counts();
        assert_eq!(counts.len(), 31); // day 0 (seeds) through day 30
    }

    #[test]
    fn wake_ordering_is_by_time_then_node() {
        let mut heap = BinaryHeap::new();
        heap.push(Wake { time: 2.0, node: 1 });
        heap.push(Wake { time: 1.0, node: 9 });
        heap.push(Wake { time: 1.0, node: 3 });
        assert_eq!(heap.pop().unwrap(), Wake { time: 1.0, node: 3 });
        assert_eq!(heap.pop().unwrap(), Wake { time: 1.0, node: 9 });
        assert_eq!(heap.pop().unwrap(), Wake { time: 2.0, node: 1 });
    }

    #[test]
    fn friend_copy_produces_attribute_overlap() {
        // With aggressive copying, linked users should share attributes
        // far more often than chance.
        let mut params = SanModelParams::zhel_baseline(60, 15);
        params.attr_assign = AttrAssign::FriendCopy {
            mean: 2.0,
            copy_prob: 0.9,
            p_new: 0.1,
        };
        let (_, san) = generate(params, 11);
        let mut linked_shared = 0usize;
        let mut linked_total = 0usize;
        for (u, v) in san.social_links() {
            linked_total += 1;
            if san.common_attrs(u, v) > 0 {
                linked_shared += 1;
            }
        }
        assert!(linked_total > 0);
        let frac = linked_shared as f64 / linked_total as f64;
        assert!(frac > 0.25, "frac={frac}");
    }
}
