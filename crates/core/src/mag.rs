//! Multiplicative Attribute Graph (MAG) baseline, after Kim & Leskovec
//! (Internet Mathematics 2012) — the other joint social/attribute model the
//! paper discusses in related work (§8).
//!
//! Every node draws `L` binary latent attributes; the probability of a
//! directed link `u → v` is the product of per-attribute affinities
//!
//! ```text
//! P(u → v) = Π_l  Θ_l[ a_u[l], a_v[l] ]
//! ```
//!
//! As the paper notes, MAG yields **binomial-family** degree distributions
//! (each of the `n−1` potential links is an independent coin), differing
//! from the empirically observed lognormal/power-law SANs — which is why it
//! serves as a contrast baseline, not a contender. Each latent attribute
//! `l` is exposed as an attribute node whose members are the users with
//! `a_u[l] = 1`, so the output is a full SAN.
//!
//! Generation is `O(n²·L)`; intended for baseline-scale comparisons, not
//! million-node simulation.

use crate::error::ModelError;
use san_graph::{AttrType, San, SocialId};
use san_stats::SplitRng;

/// A 2×2 affinity matrix for one latent attribute.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Affinity {
    /// P-contribution when both endpoints have the attribute.
    pub both: f64,
    /// When only one endpoint has it (symmetric).
    pub one: f64,
    /// When neither has it.
    pub neither: f64,
}

impl Affinity {
    /// A homophilous affinity (`both > one > neither`), the standard MAG
    /// regime. Kept mild so per-node link probabilities stay within one
    /// order of magnitude and degrees show the binomial concentration the
    /// paper attributes to MAG.
    pub fn homophilous() -> Self {
        Affinity {
            both: 0.72,
            one: 0.6,
            neither: 0.5,
        }
    }

    fn validate(&self) -> Result<(), ModelError> {
        for (name, v) in [
            ("both", self.both),
            ("one", self.one),
            ("neither", self.neither),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ModelError::InvalidParameter {
                    name: match name {
                        "both" => "affinity.both",
                        "one" => "affinity.one",
                        _ => "affinity.neither",
                    },
                    value: v,
                    constraint: "must be in [0,1]",
                });
            }
        }
        Ok(())
    }

    #[inline]
    fn factor(&self, a: bool, b: bool) -> f64 {
        match (a, b) {
            (true, true) => self.both,
            (false, false) => self.neither,
            _ => self.one,
        }
    }
}

/// MAG model parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MagParams {
    /// Number of social nodes.
    pub nodes: usize,
    /// Number of latent binary attributes `L`.
    pub num_attrs: usize,
    /// Bernoulli probability of possessing each attribute.
    pub attr_prob: f64,
    /// Shared affinity matrix (one per attribute would be a trivial
    /// extension; the paper's discussion needs only the family shape).
    pub affinity: Affinity,
    /// Global scale multiplied into every link probability (controls
    /// density independent of `L`).
    pub scale: f64,
}

impl MagParams {
    /// A baseline-scale default: ~n·20 expected links.
    pub fn default_for(nodes: usize) -> Self {
        MagParams {
            nodes,
            num_attrs: 6,
            attr_prob: 0.4,
            affinity: Affinity::homophilous(),
            scale: 0.5,
        }
    }

    fn validate(&self) -> Result<(), ModelError> {
        if self.nodes < 2 {
            return Err(ModelError::InvalidParameter {
                name: "nodes",
                value: self.nodes as f64,
                constraint: "must be >= 2",
            });
        }
        if !(0.0..=1.0).contains(&self.attr_prob) {
            return Err(ModelError::InvalidParameter {
                name: "attr_prob",
                value: self.attr_prob,
                constraint: "must be in [0,1]",
            });
        }
        if !(0.0..=1.0).contains(&self.scale) {
            return Err(ModelError::InvalidParameter {
                name: "scale",
                value: self.scale,
                constraint: "must be in [0,1]",
            });
        }
        self.affinity.validate()
    }
}

/// Generates a MAG SAN. Deterministic in `seed`.
#[allow(clippy::needless_range_loop)]
pub fn generate_mag(params: &MagParams, seed: u64) -> Result<San, ModelError> {
    params.validate()?;
    let mut rng = SplitRng::new(seed);
    let n = params.nodes;
    let l = params.num_attrs;
    // Draw latent attribute vectors.
    let mut has: Vec<Vec<bool>> = Vec::with_capacity(n);
    for _ in 0..n {
        has.push((0..l).map(|_| rng.chance(params.attr_prob)).collect());
    }
    let mut san = San::new();
    let users: Vec<SocialId> = (0..n).map(|_| san.add_social_node()).collect();
    // One attribute node per latent attribute; members are the possessors.
    for li in 0..l {
        let ty = AttrType::PAPER_TYPES[li % 4];
        let a = san.add_attr_node(ty);
        for (ui, &u) in users.iter().enumerate() {
            if has[ui][li] {
                san.add_attr_link(u, a);
            }
        }
    }
    // Sample every ordered pair.
    for (ui, &u) in users.iter().enumerate() {
        for (vi, &v) in users.iter().enumerate() {
            if ui == vi {
                continue;
            }
            let mut p = params.scale;
            for li in 0..l {
                p *= params.affinity.factor(has[ui][li], has[vi][li]);
            }
            if rng.chance(p) {
                san.add_social_link(u, v);
            }
        }
    }
    Ok(san)
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_stats::summary::{mean, std_dev};

    #[test]
    fn rejects_bad_params() {
        let mut p = MagParams::default_for(10);
        p.nodes = 1;
        assert!(generate_mag(&p, 1).is_err());
        let mut p = MagParams::default_for(10);
        p.attr_prob = 1.5;
        assert!(generate_mag(&p, 1).is_err());
        let mut p = MagParams::default_for(10);
        p.affinity.both = -0.1;
        assert!(generate_mag(&p, 1).is_err());
        let mut p = MagParams::default_for(10);
        p.scale = 2.0;
        assert!(generate_mag(&p, 1).is_err());
    }

    #[test]
    fn generates_consistent_san() {
        let san = generate_mag(&MagParams::default_for(200), 3).unwrap();
        assert_eq!(san.num_social_nodes(), 200);
        assert_eq!(san.num_attr_nodes(), 6);
        san.check_consistency().unwrap();
        assert!(san.num_social_links() > 0);
    }

    #[test]
    fn homophily_increases_same_attr_link_rate() {
        let san = generate_mag(&MagParams::default_for(300), 4).unwrap();
        // Compare link probability between users sharing >= 1 attribute vs
        // none, empirically.
        let mut same = (0usize, 0usize); // (links, pairs)
        let mut diff = (0usize, 0usize);
        let users: Vec<SocialId> = san.social_nodes().collect();
        for &u in &users[..100] {
            for &v in &users[..100] {
                if u == v {
                    continue;
                }
                let bucket = if san.common_attrs(u, v) > 0 {
                    &mut same
                } else {
                    &mut diff
                };
                bucket.1 += 1;
                if san.has_social_link(u, v) {
                    bucket.0 += 1;
                }
            }
        }
        let p_same = same.0 as f64 / same.1.max(1) as f64;
        let p_diff = diff.0 as f64 / diff.1.max(1) as f64;
        assert!(p_same > p_diff, "p_same={p_same} p_diff={p_diff}");
    }

    #[test]
    fn degrees_are_binomial_family() {
        // Binomial degrees concentrate: coefficient of variation is far
        // smaller than for the heavy-tailed families (a lognormal with
        // sigma ~ 1 has CV ~ 1.3; binomial(n, p) has CV ~ 1/sqrt(np)).
        let san = generate_mag(&MagParams::default_for(400), 5).unwrap();
        let degrees: Vec<f64> = san
            .social_nodes()
            .map(|u| san.out_degree(u) as f64)
            .collect();
        let cv = std_dev(&degrees) / mean(&degrees);
        assert!(cv < 0.6, "cv={cv} — MAG degrees should concentrate");
    }

    #[test]
    fn deterministic_in_seed() {
        let p = MagParams::default_for(100);
        let a = generate_mag(&p, 9).unwrap();
        let b = generate_mag(&p, 9).unwrap();
        assert_eq!(a.num_social_links(), b.num_social_links());
    }
}
