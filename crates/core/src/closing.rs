//! Building Block 2: attribute-augmented triangle closing (§5.2).
//!
//! When an existing node `u` wakes up and issues a link, generative models
//! close triangles: `u` picks some 2-hop neighbour `v`. The paper compares
//! three selection schemes:
//!
//! * **Baseline** — uniform over the distinct social 2-hop neighbourhood;
//! * **RR** (random-random) — a uniform first hop `w ∈ Γs(u)`, then a
//!   uniform second hop `v ∈ Γs(w)`;
//! * **RR-SAN** — the first hop ranges over `Γs(u) ∪ Γa(u)`: stepping
//!   through an *attribute* node reaches users who share that attribute
//!   (a **focal closure**). The weight of attribute hops is governed by
//!   `fc` (`fc = 0` disables focal closure; `fc = 1` is the uniform-union
//!   model of §5.2; §6.2 uses `fc = 0.1`).
//!
//! [`ClosingModel::closure_probability`] computes the exact probability
//! that a scheme proposes a given target — the quantity behind the paper's
//! "RR performs 14 % better than Baseline, RR-SAN 36 % better than RR"
//! comparison.

use crate::error::ModelError;
use san_graph::{SanRead, SocialId};
use san_stats::SplitRng;
use std::collections::HashSet;

/// A triangle-closing scheme.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ClosingModel {
    /// Uniform over the distinct 2-hop social neighbourhood.
    Baseline,
    /// Random-random two-hop walk over social links.
    Rr,
    /// Random-random walk over social *and* attribute links; `fc` scales
    /// the probability mass of attribute first-hops.
    RrSan {
        /// Attribute-hop weight (`0 ⇒` no focal closure).
        fc: f64,
    },
}

impl ClosingModel {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        if let ClosingModel::RrSan { fc } = *self {
            if fc < 0.0 || !fc.is_finite() {
                return Err(ModelError::InvalidParameter {
                    name: "fc",
                    value: fc,
                    constraint: "must be finite and >= 0",
                });
            }
        }
        Ok(())
    }

    /// Samples a closure target for `u`, excluding `u` itself and existing
    /// `u →` targets. Returns `None` when the scheme cannot propose a valid
    /// target (e.g. no 2-hop neighbourhood).
    pub fn sample(&self, san: &impl SanRead, u: SocialId, rng: &mut SplitRng) -> Option<SocialId> {
        const RETRIES: usize = 32;
        match *self {
            ClosingModel::Baseline => {
                let candidates = two_hop_candidates(san, u);
                if candidates.is_empty() {
                    return None;
                }
                Some(candidates[rng.below(candidates.len() as u64) as usize])
            }
            ClosingModel::Rr => {
                let first = san.social_neighbors(u);
                if first.is_empty() {
                    return None;
                }
                for _ in 0..RETRIES {
                    let w = first[rng.below(first.len() as u64) as usize];
                    let second = san.social_neighbors(w);
                    if second.is_empty() {
                        continue;
                    }
                    let v = second[rng.below(second.len() as u64) as usize];
                    if v != u && !san.has_social_link(u, v) {
                        return Some(v);
                    }
                }
                None
            }
            ClosingModel::RrSan { fc } => {
                let social = san.social_neighbors(u);
                let attrs = san.attrs_of(u);
                let w_social = social.len() as f64;
                let w_attr = fc * attrs.len() as f64;
                if w_social + w_attr <= 0.0 {
                    return None;
                }
                for _ in 0..RETRIES {
                    let through_attr = rng.f64() * (w_social + w_attr) >= w_social;
                    let v = if through_attr && !attrs.is_empty() {
                        let x = attrs[rng.below(attrs.len() as u64) as usize];
                        let members = san.members_of(x);
                        if members.is_empty() {
                            continue;
                        }
                        members[rng.below(members.len() as u64) as usize]
                    } else if !social.is_empty() {
                        let w = social[rng.below(social.len() as u64) as usize];
                        let second = san.social_neighbors(w);
                        if second.is_empty() {
                            continue;
                        }
                        second[rng.below(second.len() as u64) as usize]
                    } else {
                        continue;
                    };
                    if v != u && !san.has_social_link(u, v) {
                        return Some(v);
                    }
                }
                None
            }
        }
    }

    /// Exact probability that the scheme proposes target `v` for source `u`
    /// in one (unconditioned) two-hop draw.
    ///
    /// No rejection renormalisation is applied — this is the raw proposal
    /// probability, which is the right quantity for comparing schemes on
    /// observed closure events (all schemes lose the same rejected mass to
    /// invalid targets).
    pub fn closure_probability(&self, san: &impl SanRead, u: SocialId, v: SocialId) -> f64 {
        match *self {
            ClosingModel::Baseline => {
                let candidates = two_hop_candidates(san, u);
                if candidates.contains(&v) {
                    1.0 / candidates.len() as f64
                } else {
                    0.0
                }
            }
            ClosingModel::Rr => rr_probability(san, u, v),
            ClosingModel::RrSan { fc } => {
                let social = san.social_neighbors(u);
                let attrs = san.attrs_of(u);
                let w_social = social.len() as f64;
                let w_attr = fc * attrs.len() as f64;
                let total = w_social + w_attr;
                if total <= 0.0 {
                    return 0.0;
                }
                let p_social = if social.is_empty() {
                    0.0
                } else {
                    rr_probability(san, u, v)
                };
                let mut p_attr = 0.0;
                if !attrs.is_empty() {
                    for &x in attrs {
                        let members = san.members_of(x);
                        if !members.is_empty() && members.contains(&v) {
                            p_attr += 1.0 / (attrs.len() as f64 * members.len() as f64);
                        }
                    }
                }
                (w_social / total) * p_social + (w_attr / total) * p_attr
            }
        }
    }
}

/// Probability of reaching `v` from `u` by the RR walk.
fn rr_probability(san: &impl SanRead, u: SocialId, v: SocialId) -> f64 {
    let first = san.social_neighbors(u);
    if first.is_empty() {
        return 0.0;
    }
    let mut p = 0.0;
    for &w in first.iter() {
        let second = san.social_neighbors(w);
        if second.is_empty() {
            continue;
        }
        if second.contains(&v) {
            p += 1.0 / (first.len() as f64 * second.len() as f64);
        }
    }
    p
}

/// Distinct 2-hop social neighbourhood of `u` (excluding `u` and its
/// existing `u →` targets), sorted for determinism.
fn two_hop_candidates(san: &impl SanRead, u: SocialId) -> Vec<SocialId> {
    let mut out: HashSet<SocialId> = HashSet::new();
    for &w in san.social_neighbors(u).iter() {
        for &v in san.social_neighbors(w).iter() {
            if v != u && !san.has_social_link(u, v) {
                out.insert(v);
            }
        }
    }
    let mut v: Vec<SocialId> = out.into_iter().collect();
    v.sort_unstable();
    v
}

/// Mean proposal probability of a scheme over a batch of observed closure
/// events `(u, v)` evaluated against the pre-closure network — the §5.2
/// comparison statistic.
pub fn mean_closure_probability(
    model: &ClosingModel,
    san: &impl SanRead,
    events: &[(SocialId, SocialId)],
) -> f64 {
    if events.is_empty() {
        return 0.0;
    }
    let sum: f64 = events
        .iter()
        .map(|&(u, v)| model.closure_probability(san, u, v))
        .sum();
    sum / events.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::fixtures::{figure1, figure1_closures};
    use san_graph::San;
    use std::collections::HashMap;

    #[test]
    fn validate_fc() {
        assert!(ClosingModel::RrSan { fc: 0.5 }.validate().is_ok());
        assert!(ClosingModel::RrSan { fc: -0.1 }.validate().is_err());
        assert!(ClosingModel::RrSan { fc: f64::NAN }.validate().is_err());
        assert!(ClosingModel::Rr.validate().is_ok());
    }

    #[test]
    fn two_hop_candidates_figure1() {
        let fx = figure1();
        let [_u1, u2, u3, u4, u5, _u6] = fx.users;
        // Γs(u4) = {u3, u5, u6}; their neighbourhoods reach u2 (via u3) and
        // each other.
        let cands = two_hop_candidates(&fx.san, u4);
        assert!(cands.contains(&u2));
        assert!(!cands.contains(&u4));
        // u3, u5, u6 are already direct out-targets or reachable:
        // u4->u3 and u4->u5 exist, so they are excluded; u6 has a link
        // to u4 but u4->u6 does not exist, so u6 is allowed if 2-hop.
        assert!(!cands.contains(&u3));
        assert!(!cands.contains(&u5));
    }

    #[test]
    fn baseline_uniform_probability() {
        let fx = figure1();
        let [_u1, u2, _u3, u4, ..] = fx.users;
        let cands = two_hop_candidates(&fx.san, u4);
        let p = ClosingModel::Baseline.closure_probability(&fx.san, u4, u2);
        assert!((p - 1.0 / cands.len() as f64).abs() < 1e-12);
        // Unreachable target.
        let p0 = ClosingModel::Baseline.closure_probability(&fx.san, u4, fx.users[0]);
        assert_eq!(p0, 0.0);
    }

    #[test]
    fn rr_probability_matches_empirical() {
        let fx = figure1();
        let [_u1, u2, _u3, u4, ..] = fx.users;
        let model = ClosingModel::Rr;
        let p_exact = model.closure_probability(&fx.san, u4, u2);
        assert!(p_exact > 0.0);
        // Empirical check via sampling (counting only successful draws
        // proportionally: accept/reject preserves ratios of valid targets).
        let mut rng = SplitRng::new(10);
        let mut counts: HashMap<SocialId, usize> = HashMap::new();
        let n = 100_000;
        let mut ok = 0;
        for _ in 0..n {
            if let Some(v) = model.sample(&fx.san, u4, &mut rng) {
                *counts.entry(v).or_insert(0) += 1;
                ok += 1;
            }
        }
        assert!(ok > 0);
        // All valid targets' exact probabilities, renormalised.
        let all: Vec<SocialId> = fx.san.social_nodes().collect();
        let exact: HashMap<SocialId, f64> = all
            .iter()
            .filter(|&&v| v != u4 && !fx.san.has_social_link(u4, v))
            .map(|&v| (v, model.closure_probability(&fx.san, u4, v)))
            .collect();
        let total_exact: f64 = exact.values().sum();
        for (&v, &pe) in &exact {
            let emp = *counts.get(&v).unwrap_or(&0) as f64 / ok as f64;
            let want = pe / total_exact;
            assert!((emp - want).abs() < 0.02, "{v}: emp={emp} want={want}");
        }
    }

    #[test]
    fn rrsan_fc_zero_equals_rr() {
        let fx = figure1();
        let rr = ClosingModel::Rr;
        let rrsan0 = ClosingModel::RrSan { fc: 0.0 };
        for &u in &fx.users {
            for &v in &fx.users {
                if u != v {
                    let a = rr.closure_probability(&fx.san, u, v);
                    let b = rrsan0.closure_probability(&fx.san, u, v);
                    assert!((a - b).abs() < 1e-12, "{u}->{v}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn rrsan_enables_focal_closure() {
        let fx = figure1();
        let [u1, u2, ..] = fx.users;
        // u1 has no social neighbours: RR cannot propose anything, but
        // u1 shares UC Berkeley with u2, so RR-SAN can reach u2.
        assert_eq!(ClosingModel::Rr.closure_probability(&fx.san, u1, u2), 0.0);
        let p = ClosingModel::RrSan { fc: 1.0 }.closure_probability(&fx.san, u1, u2);
        assert!(p > 0.0);
        let mut rng = SplitRng::new(11);
        let v = ClosingModel::RrSan { fc: 1.0 }
            .sample(&fx.san, u1, &mut rng)
            .unwrap();
        assert_eq!(v, u2);
        assert_eq!(ClosingModel::Rr.sample(&fx.san, u1, &mut rng), None);
    }

    #[test]
    fn rrsan_probability_increases_with_fc_for_focal_targets() {
        let fx = figure1();
        let [.., u5, u6] = fx.users;
        // u6 -> u5 is reachable both socially (via u4) and focally (Google).
        let p_low = ClosingModel::RrSan { fc: 0.1 }.closure_probability(&fx.san, u6, u5);
        let p_high = ClosingModel::RrSan { fc: 2.0 }.closure_probability(&fx.san, u6, u5);
        assert!(p_high > p_low, "p_high={p_high} p_low={p_low}");
    }

    #[test]
    fn figure1_closures_rrsan_dominates_rr() {
        // On the Figure 1 closure events (one triadic, one focal, one both)
        // RR-SAN must beat RR: only RR-SAN can explain the focal closure.
        let fx = figure1();
        let events = figure1_closures(&fx);
        let p_rr = mean_closure_probability(&ClosingModel::Rr, &fx.san, &events);
        let rrsan = ClosingModel::RrSan { fc: 1.0 };
        let p_rrsan = mean_closure_probability(&rrsan, &fx.san, &events);
        assert!(p_rrsan > p_rr, "rrsan={p_rrsan} rr={p_rr}");
        // Every observed closure has positive probability under RR-SAN…
        for (u, v) in events {
            assert!(rrsan.closure_probability(&fx.san, u, v) > 0.0, "{u}->{v}");
        }
        // …while RR assigns zero to the purely focal one (u1 -> u2).
        assert_eq!(
            ClosingModel::Rr.closure_probability(&fx.san, fx.users[0], fx.users[1]),
            0.0
        );
    }

    #[test]
    fn sample_never_returns_invalid_target() {
        let fx = figure1();
        let mut rng = SplitRng::new(12);
        for model in [
            ClosingModel::Baseline,
            ClosingModel::Rr,
            ClosingModel::RrSan { fc: 0.5 },
        ] {
            for &u in &fx.users {
                for _ in 0..200 {
                    if let Some(v) = model.sample(&fx.san, u, &mut rng) {
                        assert_ne!(v, u);
                        assert!(!fx.san.has_social_link(u, v));
                    }
                }
            }
        }
    }

    #[test]
    fn isolated_node_yields_none() {
        let mut san = San::new();
        let u = san.add_social_node();
        san.add_social_node();
        let mut rng = SplitRng::new(13);
        assert_eq!(ClosingModel::Baseline.sample(&san, u, &mut rng), None);
        assert_eq!(ClosingModel::Rr.sample(&san, u, &mut rng), None);
        assert_eq!(
            ClosingModel::RrSan { fc: 1.0 }.sample(&san, u, &mut rng),
            None
        );
    }

    #[test]
    fn mean_probability_empty_events() {
        let fx = figure1();
        assert_eq!(
            mean_closure_probability(&ClosingModel::Rr, &fx.san, &[]),
            0.0
        );
    }
}
