//! Error type for model construction and evaluation.

use std::fmt;

/// Errors from generative-model configuration or likelihood evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter is outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Constraint description.
        constraint: &'static str,
    },
    /// The event trace contains no usable link-arrival events.
    EmptyTrace,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid model parameter {name}={value}: {constraint}"),
            ModelError::EmptyTrace => write!(f, "event trace has no link arrivals"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ModelError::InvalidParameter {
            name: "beta",
            value: -1.0,
            constraint: "must be >= 0",
        };
        assert!(e.to_string().contains("beta"));
        assert!(ModelError::EmptyTrace.to_string().contains("no link"));
    }
}
