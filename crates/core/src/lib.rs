//! # san-core — generative models for Social-Attribute Networks
//!
//! The primary contribution of *"Evolution of Social-Attribute Networks"*
//! (Gong et al., IMC 2012) is a generative model that grows the **social and
//! attribute structure jointly**, built from two attribute-augmented
//! building blocks:
//!
//! 1. **Attribute-augmented preferential attachment** (§5.1): the LAPA and
//!    PAPA families extend classical PA with the number of common
//!    attributes `a(u, v)`; LAPA wins empirically and is linear in `a` —
//!    see [`attach`].
//! 2. **Attribute-augmented triangle closing** (§5.2): RR-SAN extends the
//!    random-random walk closure with focal (shared-attribute) hops — see
//!    [`closing`].
//!
//! [`model`] assembles them into the full stochastic process of
//! Algorithm 1 — node arrival, lognormal attribute degrees, preferential
//! attribute linking, LAPA first links, **truncated-normal lifetimes**
//! (the lever that provably produces lognormal out-degrees, Theorem 1),
//! sleep times with mean `m_s/d_out`, and RR-SAN wake-up links. Every
//! lever is a parameter, so the ablations of Fig. 18 (PA instead of LAPA;
//! RR instead of RR-SAN) and the baselines are presets:
//!
//! * [`zhel`] — the directed extension of Zheleva et al.'s co-evolution
//!   model used as the paper's baseline (§6),
//! * [`mag`] — a Kim–Leskovec multiplicative-attribute-graph style baseline
//!   (related work §8),
//! * [`params`] — guided greedy parameter search ("we run a guided greedy
//!   search to estimate appropriate parameters", §6),
//! * [`theory`] — Theorems 1 and 2 as checkable predictions.

pub mod attach;
pub mod closing;
pub mod error;
pub mod mag;
pub mod model;
pub mod params;
pub mod theory;
pub mod zhel;

pub use attach::{AttachModel, LapaSampler};
pub use closing::ClosingModel;
pub use error::ModelError;
pub use model::{AttrAssign, FirstLink, LifetimeDist, SanModel, SanModelParams, SleepMode};
pub use theory::{predicted_attr_exponent, predicted_outdegree_lognormal};
