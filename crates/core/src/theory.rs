//! Theorems 1 and 2 (§5.4) as checkable predictions.
//!
//! **Theorem 1.** With sleep times of mean `m_s/d_out` and lifetimes from a
//! normal `N(µ_l, σ_l²)` truncated at 0, the generated social out-degrees
//! are lognormal with
//!
//! ```text
//! µ_o = (µ_l + σ_l·g(γ_l)) / m_s        σ_o² = σ_l²·(1 − δ(γ_l)) / m_s²
//! ```
//!
//! where `γ_l = −µ_l/σ_l`, `g(γ) = φ(γ)/(1 − Φ(γ))`, `δ(γ) = g(γ)(g(γ)−γ)`
//! — i.e. `ln D_out ≈ lifetime / m_s` via the harmonic-sum argument.
//!
//! **Theorem 2.** With each attribute link attaching to a brand-new
//! attribute node w.p. `p` and to an existing node ∝ social degree
//! otherwise, the social degrees of attribute nodes follow a power law with
//! exponent `(2 − p)/(1 − p)`.

use crate::error::ModelError;
use san_stats::dist::trunc_normal::{delta, mills_g};

/// Theorem 1: predicted `(µ_o, σ_o)` of the lognormal out-degree
/// distribution.
pub fn predicted_outdegree_lognormal(
    lifetime_mu: f64,
    lifetime_sigma: f64,
    mean_sleep: f64,
) -> Result<(f64, f64), ModelError> {
    if lifetime_sigma <= 0.0 || lifetime_sigma.is_nan() {
        return Err(ModelError::InvalidParameter {
            name: "lifetime_sigma",
            value: lifetime_sigma,
            constraint: "must be > 0",
        });
    }
    if mean_sleep <= 0.0 || mean_sleep.is_nan() {
        return Err(ModelError::InvalidParameter {
            name: "mean_sleep",
            value: mean_sleep,
            constraint: "must be > 0",
        });
    }
    let gamma = -lifetime_mu / lifetime_sigma;
    let mu_o = (lifetime_mu + lifetime_sigma * mills_g(gamma)) / mean_sleep;
    let var_o = lifetime_sigma * lifetime_sigma * (1.0 - delta(gamma)) / (mean_sleep * mean_sleep);
    Ok((mu_o, var_o.sqrt()))
}

/// Theorem 2: predicted power-law exponent `(2 − p)/(1 − p)` of the social
/// degree of attribute nodes.
pub fn predicted_attr_exponent(p_new: f64) -> Result<f64, ModelError> {
    if !(0.0..1.0).contains(&p_new) {
        return Err(ModelError::InvalidParameter {
            name: "p_new",
            value: p_new,
            constraint: "must be in [0, 1)",
        });
    }
    Ok((2.0 - p_new) / (1.0 - p_new))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttrAssign, SanModel, SanModelParams};
    use san_stats::{DiscretePowerLaw, Lognormal};

    #[test]
    fn theorem1_formula_values() {
        // Untruncated regime (mu >> 0): mu_o = mu_l/ms, sigma_o = sigma_l/ms.
        let (mu_o, sigma_o) = predicted_outdegree_lognormal(100.0, 5.0, 10.0).unwrap();
        assert!((mu_o - 10.0).abs() < 1e-3, "mu_o={mu_o}");
        assert!((sigma_o - 0.5).abs() < 1e-3, "sigma_o={sigma_o}");
        // Truncation shifts the mean up and shrinks the variance.
        let (mu_t, sigma_t) = predicted_outdegree_lognormal(0.0, 5.0, 10.0).unwrap();
        assert!(mu_t > 0.0);
        assert!(sigma_t < 0.5);
    }

    #[test]
    fn theorem1_rejects_bad_params() {
        assert!(predicted_outdegree_lognormal(1.0, 0.0, 1.0).is_err());
        assert!(predicted_outdegree_lognormal(1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn theorem2_formula_values() {
        assert!((predicted_attr_exponent(0.0).unwrap() - 2.0).abs() < 1e-12);
        assert!((predicted_attr_exponent(0.5).unwrap() - 3.0).abs() < 1e-12);
        // The paper's measured alpha ~= 2.0-2.1 corresponds to p ~= 0-0.1.
        assert!((predicted_attr_exponent(0.1).unwrap() - 19.0 / 9.0).abs() < 1e-12);
        assert!(predicted_attr_exponent(1.0).is_err());
        assert!(predicted_attr_exponent(-0.1).is_err());
    }

    #[test]
    fn theorem1_matches_simulation() {
        // Generate with known lifetime/sleep parameters and compare the
        // fitted lognormal against the prediction.
        let params = SanModelParams::paper_default(150, 30);
        let (lt_mu, lt_sigma, ms) = (8.0, 6.0, 8.0); // paper_default values
        let (mu_pred, _sigma_pred) = predicted_outdegree_lognormal(lt_mu, lt_sigma, ms).unwrap();
        let (_, san) = SanModel::new(params).unwrap().generate(21);
        // Exclude seeds (inert) and the youngest cohort (their lifetimes
        // have not elapsed, biasing degrees down).
        let n = san.num_social_nodes();
        let degrees: Vec<f64> = (5..n * 3 / 4)
            .map(|i| san.out_degree(san_graph::SocialId(i as u32)) as f64)
            .filter(|&d| d > 0.0)
            .collect();
        let fit = Lognormal::fit(&degrees).unwrap();
        // Mean-field + censoring: generous tolerance, but the prediction
        // must be in the right neighbourhood.
        assert!(
            (fit.mu - mu_pred).abs() < 0.75,
            "fit.mu={} predicted={}",
            fit.mu,
            mu_pred
        );
    }

    #[test]
    fn theorem2_matches_simulation() {
        // Sweep p_new and check the fitted attribute-degree exponent tracks
        // (2-p)/(1-p). The mean-field exponent is approached from below at
        // finite size (seed attributes get a head start), so the fit uses
        // x_min = 3 to focus on the tail, and the exponent must also be
        // monotone in p as the theorem predicts.
        let mut fitted = Vec::new();
        for &p_new in &[0.2, 1.0 / 3.0, 0.5] {
            let mut params = SanModelParams::paper_default(100, 40);
            params.attr_assign = AttrAssign::Lognormal {
                mu: 1.0,
                sigma: 0.8,
                p_new,
            };
            let (_, san) = SanModel::new(params).unwrap().generate(33);
            let degrees: Vec<u64> = san
                .attr_nodes()
                .map(|a| san.social_degree_of_attr(a) as u64)
                .filter(|&d| d >= 1)
                .collect();
            assert!(degrees.len() > 100, "need attribute nodes to fit");
            let fit = DiscretePowerLaw::fit(&degrees, 3).unwrap();
            fitted.push(fit.alpha());
            let predicted = predicted_attr_exponent(p_new).unwrap();
            assert!(
                (fit.alpha() - predicted).abs() < 0.45,
                "p={p_new}: fitted={} predicted={predicted}",
                fit.alpha()
            );
        }
        assert!(
            fitted[0] < fitted[1] && fitted[1] < fitted[2],
            "exponent must grow with p: {fitted:?}"
        );
    }
}
