//! # san-stats — probability and fitting toolkit for SAN analysis
//!
//! This crate is the statistics substrate of the `gplus-san` workspace. It
//! implements, from scratch, every probabilistic primitive the paper
//! *"Evolution of Social-Attribute Networks"* (Gong et al., IMC 2012) relies
//! on:
//!
//! * the **discrete lognormal** distribution (the paper's best-fit family for
//!   Google+ social in/out-degrees and attribute degrees, §3.5 / §4.1),
//! * the **discrete power law** with Clauset-style maximum-likelihood fitting
//!   (the best-fit family for the social degree of attribute nodes),
//! * the **truncated normal** lifetime distribution of the generative model
//!   (§5.3) together with the Mills-ratio quantities `g(γ)` and `δ(γ)` that
//!   Theorem 1 uses,
//! * model selection between the two families ("which distribution fits
//!   best", mirroring the tool of Clauset, Shalizi & Newman referenced by the
//!   paper),
//! * histogramming (log-binned pdf, ccdf) used to render every degree
//!   distribution figure,
//! * descriptive statistics (interpolated percentiles for the effective
//!   diameter, Pearson correlation for assortativity, OLS on log-log scales),
//! * the **Hoeffding** sample-size bound `K = ⌈ln(2ν) / (2ε²)⌉` that powers
//!   the constant-time clustering-coefficient approximation (Appendix A), and
//! * a deterministic, splittable random number generator so that every
//!   experiment in the workspace is reproducible from a single `u64` seed.
//!
//! The crate is intentionally dependency-light: only `rand` (for the
//! `RngCore` traits) and `serde` (to persist fitted parameters in experiment
//! reports).
//!
//! ## Quick example
//!
//! ```
//! use san_stats::prelude::*;
//!
//! let mut rng = SplitRng::new(42);
//! let ln = DiscreteLognormal::new(1.5, 1.0).unwrap();
//! let samples: Vec<u64> = (0..5000).map(|_| ln.sample(&mut rng)).collect();
//! let fit = fit_degree_distribution(&samples).unwrap();
//! assert_eq!(fit.family, FitFamily::Lognormal);
//! ```

pub mod dist;
pub mod error;
pub mod fit;
pub mod histogram;
pub mod hoeffding;
pub mod rng;
pub mod special;
pub mod summary;

pub use dist::common::{AliasTable, Exponential, Geometric, Zipf};
pub use dist::lognormal::{DiscreteLognormal, Lognormal};
pub use dist::powerlaw::DiscretePowerLaw;
pub use dist::powerlaw_cutoff::PowerLawCutoff;
pub use dist::trunc_normal::TruncatedNormal;
pub use error::StatsError;
pub use fit::{fit_degree_distribution, DegreeFit, FitFamily};
pub use histogram::{ccdf, empirical_pmf, log_binned_pdf};
pub use hoeffding::hoeffding_samples;
pub use rng::SplitRng;
pub use summary::{mean, median, ols, pearson, percentile, std_dev, variance, OlsFit};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::dist::common::{AliasTable, Exponential, Geometric, Zipf};
    pub use crate::dist::lognormal::{DiscreteLognormal, Lognormal};
    pub use crate::dist::powerlaw::DiscretePowerLaw;
    pub use crate::dist::powerlaw_cutoff::PowerLawCutoff;
    pub use crate::dist::trunc_normal::TruncatedNormal;
    pub use crate::error::StatsError;
    pub use crate::fit::{fit_degree_distribution, DegreeFit, FitFamily};
    pub use crate::histogram::{ccdf, empirical_pmf, log_binned_pdf};
    pub use crate::hoeffding::hoeffding_samples;
    pub use crate::rng::SplitRng;
    pub use crate::summary::{mean, median, ols, pearson, percentile, std_dev, variance, OlsFit};
}
