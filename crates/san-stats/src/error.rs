//! Error type shared by all statistical routines.

use std::fmt;

/// Errors produced by distribution construction, sampling and fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter is outside its valid domain
    /// (e.g. `sigma <= 0` for a lognormal, `alpha <= 1` for a power law).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be > 0"`.
        constraint: &'static str,
    },
    /// The input sample set is empty or otherwise unusable for fitting.
    InsufficientData {
        /// What the routine needed.
        needed: &'static str,
    },
    /// A numerical routine failed to converge.
    NoConvergence {
        /// Which routine.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name}={value}: {constraint}"),
            StatsError::InsufficientData { needed } => {
                write!(f, "insufficient data: {needed}")
            }
            StatsError::NoConvergence { what } => {
                write!(f, "numerical routine did not converge: {what}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = StatsError::InvalidParameter {
            name: "sigma",
            value: -1.0,
            constraint: "must be > 0",
        };
        assert_eq!(e.to_string(), "invalid parameter sigma=-1: must be > 0");
    }

    #[test]
    fn display_insufficient_data() {
        let e = StatsError::InsufficientData {
            needed: "at least one sample",
        };
        assert!(e.to_string().contains("at least one sample"));
    }

    #[test]
    fn display_no_convergence() {
        let e = StatsError::NoConvergence { what: "alpha MLE" };
        assert!(e.to_string().contains("alpha MLE"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(StatsError::NoConvergence { what: "x" });
        assert!(e.to_string().contains('x'));
    }
}
