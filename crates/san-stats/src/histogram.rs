//! Histogramming for heavy-tailed degree data.
//!
//! The paper's degree-distribution figures (Figs. 5, 9, 10, 16, 17) are
//! log-log plots of probability versus degree. Two renderings are provided:
//!
//! * [`empirical_pmf`] — exact probability mass at each observed value
//!   (what the paper plots as "empirical"),
//! * [`log_binned_pdf`] — logarithmically binned density, which de-noises the
//!   tail of heavy-tailed samples, and
//! * [`ccdf`] — the complementary CDF `P(X ≥ x)`, a binning-free alternative
//!   used in tests because it is strictly monotone.

use std::collections::BTreeMap;

/// Exact empirical probability mass function over the observed support.
///
/// Returns `(value, probability)` pairs sorted by value. Zero-valued samples
/// are retained: callers that need the paper's `k ≥ 1` convention filter
/// first.
pub fn empirical_pmf(samples: &[u64]) -> Vec<(u64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for &s in samples {
        *counts.entry(s).or_insert(0) += 1;
    }
    let n = samples.len() as f64;
    counts.into_iter().map(|(v, c)| (v, c as f64 / n)).collect()
}

/// Complementary cumulative distribution `P(X ≥ x)` over the observed
/// support, as `(value, probability)` pairs sorted by value.
pub fn ccdf(samples: &[u64]) -> Vec<(u64, f64)> {
    let pmf = empirical_pmf(samples);
    let mut out = Vec::with_capacity(pmf.len());
    let mut tail = 1.0;
    for (v, p) in pmf {
        out.push((v, tail));
        tail -= p;
    }
    out
}

/// Logarithmically binned probability density of positive integer samples.
///
/// Bin edges grow geometrically with `bins_per_decade` bins per factor of 10.
/// Each returned point is `(bin geometric centre, probability mass / bin
/// width)`, i.e. a density that can be compared against a continuous pdf on a
/// log-log plot. Samples equal to zero are ignored (log-scale plots cannot
/// show them); the fraction ignored is returned alongside.
pub fn log_binned_pdf(samples: &[u64], bins_per_decade: usize) -> LogBinnedPdf {
    assert!(bins_per_decade > 0, "need at least one bin per decade");
    let positive: Vec<u64> = samples.iter().copied().filter(|&s| s > 0).collect();
    let zero_fraction = if samples.is_empty() {
        0.0
    } else {
        (samples.len() - positive.len()) as f64 / samples.len() as f64
    };
    if positive.is_empty() {
        return LogBinnedPdf {
            points: Vec::new(),
            zero_fraction,
        };
    }
    let max = *positive.iter().max().expect("nonempty") as f64;
    let ratio = 10f64.powf(1.0 / bins_per_decade as f64);
    // Build edges 1, r, r^2, ... covering max.
    let mut edges = vec![1.0];
    while *edges.last().expect("nonempty") <= max {
        let next = edges.last().expect("nonempty") * ratio;
        edges.push(next);
    }
    let mut counts = vec![0u64; edges.len() - 1];
    for &s in &positive {
        let x = s as f64;
        // Find bin via logarithm (edges are exact powers of ratio).
        let idx = (x.ln() / ratio.ln()).floor() as usize;
        let idx = idx.min(counts.len() - 1);
        // Guard against floating point placing x just below edges[idx].
        let idx = if x < edges[idx] && idx > 0 {
            idx - 1
        } else {
            idx
        };
        counts[idx] += 1;
    }
    let n = positive.len() as f64;
    let points = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| {
            let lo = edges[i];
            let hi = edges[i + 1];
            let centre = (lo * hi).sqrt();
            let width = hi - lo;
            (centre, c as f64 / n / width)
        })
        .collect();
    LogBinnedPdf {
        points,
        zero_fraction,
    }
}

/// Output of [`log_binned_pdf`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogBinnedPdf {
    /// `(bin centre, density)` pairs for non-empty bins.
    pub points: Vec<(f64, f64)>,
    /// Fraction of input samples that were zero (not representable on a
    /// log axis).
    pub zero_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let samples = [1u64, 1, 2, 3, 3, 3, 10];
        let pmf = empirical_pmf(&samples);
        let total: f64 = pmf.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(pmf[0], (1, 2.0 / 7.0));
        assert_eq!(pmf.last().expect("nonempty").0, 10);
    }

    #[test]
    fn pmf_empty_input() {
        assert!(empirical_pmf(&[]).is_empty());
        assert!(ccdf(&[]).is_empty());
    }

    #[test]
    fn ccdf_starts_at_one_and_decreases() {
        let samples = [1u64, 2, 2, 3, 5, 8];
        let c = ccdf(&samples);
        assert_eq!(c[0].1, 1.0);
        for w in c.windows(2) {
            assert!(w[1].1 < w[0].1, "ccdf must strictly decrease over support");
        }
        // Tail probability of the max value = its pmf.
        let last = c.last().expect("nonempty");
        assert!((last.1 - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn log_binned_mass_conserved() {
        // Total mass = sum(density * width) must be 1 over positive samples.
        let samples: Vec<u64> = (1..=1000u64).collect();
        let pdf = log_binned_pdf(&samples, 5);
        // Reconstruct widths from consecutive edges implied by ratio.
        let ratio = 10f64.powf(1.0 / 5.0);
        let mass: f64 = pdf
            .points
            .iter()
            .map(|(centre, d)| {
                let lo = centre / ratio.sqrt();
                let hi = centre * ratio.sqrt();
                d * (hi - lo)
            })
            .sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass={mass}");
    }

    #[test]
    fn log_binned_ignores_zeros_and_reports_fraction() {
        let samples = [0u64, 0, 1, 2, 4, 8];
        let pdf = log_binned_pdf(&samples, 4);
        assert!((pdf.zero_fraction - 2.0 / 6.0).abs() < 1e-12);
        assert!(!pdf.points.is_empty());
    }

    #[test]
    fn log_binned_all_zero_input() {
        let pdf = log_binned_pdf(&[0, 0, 0], 4);
        assert!(pdf.points.is_empty());
        assert!((pdf.zero_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_binned_single_value() {
        let pdf = log_binned_pdf(&[5, 5, 5, 5], 4);
        assert_eq!(pdf.points.len(), 1);
        assert_eq!(pdf.zero_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn log_binned_zero_bins_panics() {
        log_binned_pdf(&[1, 2, 3], 0);
    }

    #[test]
    fn log_binned_density_decreasing_for_power_law_like_data() {
        // Geometric-ish data: many small, few large.
        let mut samples = Vec::new();
        for k in 1..=64u64 {
            for _ in 0..(1024 / k) {
                samples.push(k);
            }
        }
        let pdf = log_binned_pdf(&samples, 3);
        let first = pdf.points.first().expect("nonempty").1;
        let last = pdf.points.last().expect("nonempty").1;
        assert!(first > last);
    }
}
