//! Workhorse samplers shared across the workspace: exponential and
//! geometric waiting times, a bounded Zipf law, and a Walker alias table
//! for repeated draws from a fixed weight vector.

use crate::error::StatsError;
use crate::rng::SplitRng;

/// Exponential distribution with a given mean (sleep times, lifetimes,
/// reciprocation delays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates the distribution; the mean must be positive and finite.
    pub fn new(mean: f64) -> Result<Exponential, StatsError> {
        if mean <= 0.0 || !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be > 0 and finite",
            });
        }
        Ok(Exponential { mean })
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample by inversion.
    pub fn sample(&self, rng: &mut SplitRng) -> f64 {
        // 1 - f64() is in (0, 1], so ln is finite.
        -self.mean * (1.0 - rng.f64()).ln()
    }
}

/// Geometric distribution on `{1, 2, 3, …}` with success probability `p`
/// (mean `1/p`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates the distribution; requires `0 < p ≤ 1`.
    pub fn new(p: f64) -> Result<Geometric, StatsError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
                constraint: "must be in (0, 1]",
            });
        }
        Ok(Geometric { p })
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `1/p`.
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one sample by inversion (`1` when `p = 1`).
    pub fn sample(&self, rng: &mut SplitRng) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u = 1.0 - rng.f64(); // in (0, 1]
        let k = (u.ln() / (1.0 - self.p).ln()).floor() + 1.0;
        if k >= u64::MAX as f64 {
            u64::MAX
        } else {
            k as u64
        }
    }
}

/// Bounded Zipf law: `p(k) ∝ k^{−s}` on `{1, …, n}`.
#[derive(Debug, Clone)]
pub struct Zipf {
    s: f64,
    cdf_table: Vec<f64>,
}

impl Zipf {
    /// Creates the law on `{1, …, n}`; requires `n ≥ 1` and finite `s ≥ 0`.
    pub fn new(s: f64, n: usize) -> Result<Zipf, StatsError> {
        if s < 0.0 || !s.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "s",
                value: s,
                constraint: "must be >= 0 and finite",
            });
        }
        if n == 0 {
            return Err(StatsError::InvalidParameter {
                name: "n",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        let mut cdf_table = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf_table.push(total);
        }
        for c in &mut cdf_table {
            *c /= total;
        }
        Ok(Zipf { s, cdf_table })
    }

    /// The exponent `s`.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// The support size `n`.
    pub fn n(&self) -> usize {
        self.cdf_table.len()
    }

    /// Probability mass at `k` (0 outside `1..=n`).
    pub fn pmf(&self, k: u64) -> f64 {
        if k == 0 || k as usize > self.cdf_table.len() {
            return 0.0;
        }
        let idx = (k - 1) as usize;
        if idx == 0 {
            self.cdf_table[0]
        } else {
            self.cdf_table[idx] - self.cdf_table[idx - 1]
        }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut SplitRng) -> u64 {
        let u = rng.f64();
        let idx = self.cdf_table.partition_point(|&c| c <= u);
        (idx.min(self.cdf_table.len() - 1) + 1) as u64
    }
}

/// Walker alias table: O(n) construction, O(1) weighted index sampling.
///
/// The staple for repeated draws from a fixed weight vector (attribute
/// popularity, degree-proportional choices over frozen snapshots).
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability per slot.
    prob: Vec<f64>,
    /// Fallback index per slot.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table. Fails when the weights are empty, contain a
    /// negative or non-finite entry, or sum to zero. Zero-weight entries
    /// are valid and are never sampled.
    pub fn new(weights: &[f64]) -> Result<AliasTable, StatsError> {
        if weights.is_empty() {
            return Err(StatsError::InsufficientData {
                needed: "at least one weight",
            });
        }
        let mut total = 0.0;
        for &w in weights {
            if w < 0.0 || !w.is_finite() {
                return Err(StatsError::InvalidParameter {
                    name: "weight",
                    value: w,
                    constraint: "must be finite and >= 0",
                });
            }
            total += w;
        }
        if total <= 0.0 || total.is_nan() {
            return Err(StatsError::InvalidParameter {
                name: "total weight",
                value: total,
                constraint: "must be > 0",
            });
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias: Vec<usize> = (0..n).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let heaviest = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
            .map(|(i, _)| i)
            .expect("nonempty");
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] -= 1.0 - prob[s];
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Rounding leftovers: positive-weight slots saturate to 1;
        // zero-weight slots must still never sample themselves.
        for &i in large.iter().chain(small.iter()) {
            if weights[i] > 0.0 {
                prob[i] = 1.0;
            } else {
                prob[i] = 0.0;
                alias[i] = heaviest;
            }
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no slots (never constructed — kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index proportionally to the construction weights.
    pub fn sample(&self, rng: &mut SplitRng) -> usize {
        let slot = rng.below(self.prob.len() as u64) as usize;
        if rng.f64() < self.prob[slot] {
            slot
        } else {
            self.alias[slot]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_and_validation() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        let d = Exponential::new(4.0).unwrap();
        let mut rng = SplitRng::new(41);
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn geometric_support_and_mean() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        let d = Geometric::new(0.25).unwrap();
        let mut rng = SplitRng::new(42);
        let n = 100_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let k = d.sample(&mut rng);
            assert!(k >= 1);
            sum += k;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
        // Degenerate p=1.
        assert_eq!(Geometric::new(1.0).unwrap().sample(&mut rng), 1);
    }

    #[test]
    fn zipf_ranks_and_ratios() {
        assert!(Zipf::new(-1.0, 5).is_err());
        assert!(Zipf::new(1.0, 0).is_err());
        let d = Zipf::new(1.0, 100).unwrap();
        let total: f64 = (1..=100u64).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // p(1)/p(2) = 2 for s = 1.
        assert!((d.pmf(1) / d.pmf(2) - 2.0).abs() < 1e-9);
        let mut rng = SplitRng::new(43);
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 0.0, 3.0, 6.0];
        let t = AliasTable::new(&weights).unwrap();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        let mut rng = SplitRng::new(44);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight index sampled");
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / 10.0;
            let got = counts[i] as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "i={i}: {got} vs {expect}");
        }
    }

    #[test]
    fn alias_table_validation() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
        assert!(AliasTable::new(&[1.0]).is_ok());
    }

    #[test]
    fn alias_table_single_and_uniform() {
        let t = AliasTable::new(&[2.5]).unwrap();
        let mut rng = SplitRng::new(45);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        let t = AliasTable::new(&[1.0; 7]).unwrap();
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count={c}");
        }
    }
}
