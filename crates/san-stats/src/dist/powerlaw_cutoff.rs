//! Power law with exponential cutoff: `p(k) ∝ k^{−α}·e^{−k/λ}` on `k ≥ 1`.
//!
//! This is the sleep/gap distribution family of Leskovec et al.'s network
//! evolution machinery, which the Zhel baseline (§6) inherits. The
//! exponential cutoff makes every moment finite, so the pmf table can be
//! truncated at a point of provably negligible tail mass.

use crate::error::StatsError;
use crate::rng::SplitRng;

/// A discrete power law with exponential cutoff.
#[derive(Debug, Clone)]
pub struct PowerLawCutoff {
    alpha: f64,
    lambda: f64,
    /// Exact CDF over the (truncated) support starting at 1.
    cdf_table: Vec<f64>,
}

impl PowerLawCutoff {
    /// Creates `p(k) ∝ k^{−α}·e^{−k/λ}`; requires `α ≥ 0` and `λ > 0`.
    ///
    /// (Unlike the pure power law, `α ≤ 1` is fine here — the cutoff
    /// normalises the distribution.)
    pub fn new(alpha: f64, lambda: f64) -> Result<PowerLawCutoff, StatsError> {
        if alpha < 0.0 || !alpha.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be >= 0 and finite",
            });
        }
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "lambda",
                value: lambda,
                constraint: "must be > 0 and finite",
            });
        }
        // Beyond ~50λ the residual mass is < e^{-50}; cap the table there.
        let support = ((50.0 * lambda).ceil() as usize).clamp(64, 4_000_000);
        let mut weights = Vec::with_capacity(support);
        let mut total = 0.0;
        for k in 1..=support {
            let kf = k as f64;
            let w = kf.powf(-alpha) * (-kf / lambda).exp();
            total += w;
            weights.push(total);
        }
        let cdf_table = weights.into_iter().map(|c| c / total).collect();
        Ok(PowerLawCutoff {
            alpha,
            lambda,
            cdf_table,
        })
    }

    /// The power-law exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The cutoff scale `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Probability mass at `k` (0 outside the effective support).
    pub fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let idx = (k - 1) as usize;
        match idx {
            0 => self.cdf_table[0],
            _ if idx < self.cdf_table.len() => self.cdf_table[idx] - self.cdf_table[idx - 1],
            _ => 0.0,
        }
    }

    /// Draws one sample via inverse-CDF binary search.
    pub fn sample(&self, rng: &mut SplitRng) -> u64 {
        let u = rng.f64();
        let idx = self.cdf_table.partition_point(|&c| c <= u);
        (idx.min(self.cdf_table.len() - 1) + 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(PowerLawCutoff::new(-0.5, 1.0).is_err());
        assert!(PowerLawCutoff::new(1.0, 0.0).is_err());
        assert!(PowerLawCutoff::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn pmf_normalised() {
        let d = PowerLawCutoff::new(1.5, 20.0).unwrap();
        let total: f64 = (1..=5_000u64).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn cutoff_suppresses_tail_relative_to_pure_power_law() {
        let d = PowerLawCutoff::new(1.5, 10.0).unwrap();
        // Pure power-law ratio p(50)/p(5) = (50/5)^{-1.5} = 10^{-1.5}.
        let pure_ratio = 10f64.powf(-1.5);
        let ratio = d.pmf(50) / d.pmf(5);
        assert!(ratio < pure_ratio * 0.2, "ratio={ratio}");
    }

    #[test]
    fn sampler_matches_pmf_and_mean() {
        let d = PowerLawCutoff::new(1.0, 8.0).unwrap();
        let mut rng = SplitRng::new(31);
        let n = 100_000;
        let mut sum = 0u64;
        let mut ones = 0usize;
        for _ in 0..n {
            let k = d.sample(&mut rng);
            assert!(k >= 1);
            sum += k;
            if k == 1 {
                ones += 1;
            }
        }
        let emp_mean = sum as f64 / n as f64;
        let true_mean: f64 = (1..=2_000u64).map(|k| k as f64 * d.pmf(k)).sum();
        assert!((emp_mean - true_mean).abs() < 0.05 * true_mean);
        let emp_p1 = ones as f64 / n as f64;
        assert!((emp_p1 - d.pmf(1)).abs() < 0.01);
    }
}
