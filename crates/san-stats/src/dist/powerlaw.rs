//! The discrete power law `p(k) = k^{−α} / ζ(α, x_min)` with Clauset-style
//! maximum-likelihood fitting — the best-fit family for the social degree
//! of attribute nodes (§4.1, Fig. 10b, Theorem 2).

use crate::error::StatsError;
use crate::rng::SplitRng;
use crate::special::{hurwitz_zeta, hurwitz_zeta_ds};

/// Number of exact-CDF table entries kept for fast sampling; the analytic
/// zeta tail handles draws beyond the table (rare for any `α > 1.3`).
const TABLE_LEN: usize = 1024;

/// A discrete power law on `k ≥ x_min`.
#[derive(Debug, Clone)]
pub struct DiscretePowerLaw {
    alpha: f64,
    xmin: u64,
    zeta_norm: f64,
    /// `cdf_table[i] = P(K ≤ xmin + i)`, exact.
    cdf_table: Vec<f64>,
}

impl DiscretePowerLaw {
    /// Creates the distribution; requires `alpha > 1` (normalisability)
    /// and `xmin ≥ 1`.
    pub fn new(alpha: f64, xmin: u64) -> Result<DiscretePowerLaw, StatsError> {
        if alpha <= 1.0 || !alpha.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be > 1 and finite",
            });
        }
        if xmin == 0 {
            return Err(StatsError::InvalidParameter {
                name: "xmin",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        let zeta_norm = hurwitz_zeta(alpha, xmin as f64);
        let mut cdf_table = Vec::with_capacity(TABLE_LEN);
        let mut cum = 0.0;
        for i in 0..TABLE_LEN {
            let k = xmin + i as u64;
            cum += (k as f64).powf(-alpha) / zeta_norm;
            cdf_table.push(cum.min(1.0));
        }
        Ok(DiscretePowerLaw {
            alpha,
            xmin,
            zeta_norm,
            cdf_table,
        })
    }

    /// The exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The support lower bound `x_min`.
    pub fn xmin(&self) -> u64 {
        self.xmin
    }

    /// Probability mass at `k` (0 below `x_min`).
    pub fn pmf(&self, k: u64) -> f64 {
        if k < self.xmin {
            return 0.0;
        }
        (k as f64).powf(-self.alpha) / self.zeta_norm
    }

    /// Natural log of the pmf (`−∞` below `x_min`).
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k < self.xmin {
            return f64::NEG_INFINITY;
        }
        -self.alpha * (k as f64).ln() - self.zeta_norm.ln()
    }

    /// Survival function `P(K ≥ k)` (exact, via the zeta ratio).
    pub fn sf(&self, k: u64) -> f64 {
        if k <= self.xmin {
            return 1.0;
        }
        hurwitz_zeta(self.alpha, k as f64) / self.zeta_norm
    }

    /// Total log-likelihood of the samples at or above `x_min`; samples
    /// below `x_min` contribute `−∞` (they are outside the support).
    pub fn log_likelihood(&self, samples: &[u64]) -> f64 {
        samples.iter().map(|&k| self.ln_pmf(k)).sum()
    }

    /// Draws one sample: an exact inverse-CDF lookup in the precomputed
    /// head table, falling back to doubling + binary search on the zeta
    /// tail for draws beyond it.
    pub fn sample(&self, rng: &mut SplitRng) -> u64 {
        let u = rng.f64();
        let table_top = *self.cdf_table.last().expect("nonempty table");
        if u < table_top {
            // partition_point: first index with cdf > u.
            let idx = self.cdf_table.partition_point(|&c| c <= u);
            return self.xmin + idx as u64;
        }
        // Tail: find smallest k with P(K >= k + 1) <= 1 - u.
        let tail_target = 1.0 - u;
        let mut lo = self.xmin + TABLE_LEN as u64; // sf(lo) > tail_target here
        let mut hi = lo * 2;
        while self.sf(hi) > tail_target {
            lo = hi;
            hi *= 2;
            if hi > 1 << 60 {
                break;
            }
        }
        // Invariant: sf(lo) > tail_target >= sf(hi); the answer is the
        // largest k with sf(k) > tail_target.
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.sf(mid) > tail_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Discrete MLE for `α` over the samples `≥ xmin`: solves
    /// `−ζ′(α, x_min)/ζ(α, x_min) = mean(ln k)` by bisection.
    ///
    /// Fails with [`StatsError::InsufficientData`] when fewer than two
    /// samples reach `x_min`; a tail concentrated entirely at `x_min`
    /// clamps to the upper bisection bound instead of diverging.
    pub fn fit(samples: &[u64], xmin: u64) -> Result<DiscretePowerLaw, StatsError> {
        if xmin == 0 {
            return Err(StatsError::InvalidParameter {
                name: "xmin",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        let tail: Vec<u64> = samples.iter().copied().filter(|&k| k >= xmin).collect();
        if tail.len() < 2 {
            return Err(StatsError::InsufficientData {
                needed: "at least two samples >= xmin",
            });
        }
        let mean_ln = tail.iter().map(|&k| (k as f64).ln()).sum::<f64>() / tail.len() as f64;
        let a = xmin as f64;
        // h(α) = E_model[ln K] − mean_ln, strictly decreasing in α.
        let h = |alpha: f64| -hurwitz_zeta_ds(alpha, a) / hurwitz_zeta(alpha, a) - mean_ln;
        let (mut lo, mut hi) = (1.000_001f64, 25.0f64);
        if h(hi) > 0.0 {
            // Degenerate tail (all mass at/near xmin): steepest allowed law.
            return DiscretePowerLaw::new(hi, xmin);
        }
        if h(lo) < 0.0 {
            // Heavier than any normalisable law fits; shallowest allowed.
            return DiscretePowerLaw::new(lo, xmin);
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if h(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        DiscretePowerLaw::new(0.5 * (lo + hi), xmin)
    }

    /// Kolmogorov–Smirnov distance between this law and the empirical CDF
    /// of the samples `≥ xmin` (both conditioned on the tail).
    pub fn ks_distance(&self, samples: &[u64]) -> f64 {
        let mut tail: Vec<u64> = samples
            .iter()
            .copied()
            .filter(|&k| k >= self.xmin)
            .collect();
        if tail.is_empty() {
            return 1.0;
        }
        tail.sort_unstable();
        let n = tail.len() as f64;
        let mut max_d: f64 = 0.0;
        let mut i = 0;
        while i < tail.len() {
            let k = tail[i];
            let mut j = i;
            while j < tail.len() && tail[j] == k {
                j += 1;
            }
            let emp = j as f64 / n;
            let model = 1.0 - self.sf(k + 1);
            max_d = max_d.max((model - emp).abs());
            i = j;
        }
        max_d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(DiscretePowerLaw::new(1.0, 1).is_err());
        assert!(DiscretePowerLaw::new(0.5, 1).is_err());
        assert!(DiscretePowerLaw::new(f64::NAN, 1).is_err());
        assert!(DiscretePowerLaw::new(2.0, 0).is_err());
    }

    #[test]
    fn pmf_normalised() {
        for &(alpha, xmin) in &[(1.5, 1u64), (2.2, 1), (2.5, 5)] {
            let d = DiscretePowerLaw::new(alpha, xmin).unwrap();
            let head: f64 = (xmin..xmin + 200_000).map(|k| d.pmf(k)).sum();
            let tail = d.sf(xmin + 200_000);
            assert!(
                (head + tail - 1.0).abs() < 1e-9,
                "alpha={alpha}: head+tail={}",
                head + tail
            );
        }
    }

    #[test]
    fn sampler_matches_pmf_and_support() {
        let d = DiscretePowerLaw::new(2.2, 3).unwrap();
        let mut rng = SplitRng::new(21);
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let k = d.sample(&mut rng);
            assert!(k >= 3);
            *counts.entry(k).or_insert(0usize) += 1;
        }
        for k in 3..=8u64 {
            let emp = *counts.get(&k).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (emp - d.pmf(k)).abs() < 0.01,
                "k={k}: emp={emp} pmf={}",
                d.pmf(k)
            );
        }
    }

    #[test]
    fn tail_sampling_hits_beyond_table() {
        // Shallow exponent: the table holds well under all the mass, so
        // the zeta-tail path is exercised.
        let d = DiscretePowerLaw::new(1.2, 1).unwrap();
        let mut rng = SplitRng::new(22);
        let mut beyond = 0;
        for _ in 0..2_000 {
            if d.sample(&mut rng) > TABLE_LEN as u64 {
                beyond += 1;
            }
        }
        assert!(beyond > 0, "tail path never taken");
    }

    #[test]
    fn mle_recovers_alpha() {
        for &alpha in &[1.8, 2.2, 3.0] {
            let d = DiscretePowerLaw::new(alpha, 1).unwrap();
            let mut rng = SplitRng::new(23);
            let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
            let fit = DiscretePowerLaw::fit(&samples, 1).unwrap();
            assert!(
                (fit.alpha() - alpha).abs() < 0.1,
                "alpha={alpha} fit={}",
                fit.alpha()
            );
        }
    }

    #[test]
    fn fit_ignores_below_xmin_and_requires_tail() {
        let d = DiscretePowerLaw::new(2.5, 5).unwrap();
        let mut rng = SplitRng::new(24);
        let mut samples: Vec<u64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        samples.extend([1u64; 5_000]); // noise below xmin
        let fit = DiscretePowerLaw::fit(&samples, 5).unwrap();
        assert!((fit.alpha() - 2.5).abs() < 0.15, "alpha={}", fit.alpha());
        assert!(DiscretePowerLaw::fit(&[1, 2, 3], 10).is_err());
    }

    #[test]
    fn degenerate_tail_clamps() {
        let fit = DiscretePowerLaw::fit(&[1, 1, 1, 1], 1).unwrap();
        assert!((fit.alpha() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn ks_small_for_true_model_large_for_wrong() {
        let d = DiscretePowerLaw::new(2.0, 1).unwrap();
        let mut rng = SplitRng::new(25);
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(d.ks_distance(&samples) < 0.02);
        let wrong = DiscretePowerLaw::new(3.5, 1).unwrap();
        assert!(wrong.ks_distance(&samples) > 0.1);
        assert_eq!(d.ks_distance(&[]), 1.0);
    }

    #[test]
    fn ln_pmf_matches_pmf() {
        let d = DiscretePowerLaw::new(2.3, 2).unwrap();
        for k in [2u64, 10, 1000] {
            assert!((d.ln_pmf(k) - d.pmf(k).ln()).abs() < 1e-12);
        }
        assert_eq!(d.ln_pmf(1), f64::NEG_INFINITY);
    }
}
