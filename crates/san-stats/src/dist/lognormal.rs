//! Continuous and discrete lognormal distributions — the best-fit family
//! for Google+ social out/in-degrees and attribute degrees (§3.5, §4.1,
//! Fig. 5/10a).
//!
//! The discrete variant is defined by **rounding** a continuous lognormal
//! to the nearest integer and conditioning on the result being ≥ 1:
//!
//! ```text
//! P(K = k) ∝ Φ(z(k + ½)) − Φ(z(k − ½)),   z(x) = (ln x − µ)/σ,  k ≥ 1
//! ```
//!
//! This makes the pmf, CDF and sampler exactly consistent with each other
//! (sampling draws the continuous variable and rounds), matches the
//! `p(k) ∝ (1/k)·exp(−(ln k − µ)²/2σ²)` shape the paper plots, and keeps
//! tail evaluation numerically stable through the survival function.

use crate::error::StatsError;
use crate::rng::SplitRng;
use crate::special::{normal_pdf, normal_sf};

fn validate(mu: f64, sigma: f64) -> Result<(), StatsError> {
    if !mu.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "mu",
            value: mu,
            constraint: "must be finite",
        });
    }
    if sigma <= 0.0 || !sigma.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "sigma",
            value: sigma,
            constraint: "must be > 0 and finite",
        });
    }
    Ok(())
}

/// A continuous lognormal: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lognormal {
    /// Location of `ln X`.
    pub mu: f64,
    /// Scale of `ln X`.
    pub sigma: f64,
}

impl Lognormal {
    /// Creates the distribution; `sigma` must be positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Lognormal, StatsError> {
        validate(mu, sigma)?;
        Ok(Lognormal { mu, sigma })
    }

    /// Maximum-likelihood fit: `µ̂, σ̂` are the mean and (population)
    /// standard deviation of `ln x` over the strictly positive samples.
    ///
    /// Fails with [`StatsError::InsufficientData`] when fewer than two
    /// samples are positive; a degenerate spread is clamped to a small
    /// positive `σ̂` so constant data still yields a usable distribution.
    pub fn fit(samples: &[f64]) -> Result<Lognormal, StatsError> {
        let logs: Vec<f64> = samples
            .iter()
            .copied()
            .filter(|&x| x > 0.0 && x.is_finite())
            .map(f64::ln)
            .collect();
        if logs.len() < 2 {
            return Err(StatsError::InsufficientData {
                needed: "at least two positive samples",
            });
        }
        let n = logs.len() as f64;
        let mu = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|y| (y - mu) * (y - mu)).sum::<f64>() / n;
        let sigma = var.sqrt().max(1e-3);
        Ok(Lognormal { mu, sigma })
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        normal_pdf(z) / (x * self.sigma)
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SplitRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
}

/// The rounded-and-conditioned discrete lognormal on `k ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteLognormal {
    mu: f64,
    sigma: f64,
    /// `P(X ≥ ½)` of the parent continuous variable — the conditioning
    /// normaliser.
    norm: f64,
}

impl DiscreteLognormal {
    /// Creates the distribution; `sigma` must be positive.
    pub fn new(mu: f64, sigma: f64) -> Result<DiscreteLognormal, StatsError> {
        validate(mu, sigma)?;
        let norm = normal_sf((0.5f64.ln() - mu) / sigma);
        Ok(DiscreteLognormal { mu, sigma, norm })
    }

    /// Location parameter `µ` of `ln X`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter `σ` of `ln X`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    #[inline]
    fn z(&self, x: f64) -> f64 {
        (x.ln() - self.mu) / self.sigma
    }

    /// Probability mass at `k` (0 for `k = 0`).
    pub fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let kf = k as f64;
        let hi = normal_sf(self.z(kf - 0.5));
        let lo = normal_sf(self.z(kf + 0.5));
        ((hi - lo) / self.norm).max(0.0)
    }

    /// Cumulative distribution `P(K ≤ k)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let tail = normal_sf(self.z(k as f64 + 0.5)) / self.norm;
        (1.0 - tail).clamp(0.0, 1.0)
    }

    /// Natural log of the pmf, stable deep into the tails.
    ///
    /// When the survival-function difference underflows (bins far out in
    /// the tail are narrower than f64 cancellation allows), the density
    /// approximation `φ(z(k))·Δln(x)/σ` is used instead, which keeps
    /// log-likelihood comparisons finite.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return f64::NEG_INFINITY;
        }
        let p = self.pmf(k);
        if p > 0.0 && p.is_finite() {
            return p.ln();
        }
        let kf = k as f64;
        let z = self.z(kf);
        let dlnx = (kf + 0.5).ln() - (kf - 0.5).ln();
        // ln( φ(z)·Δlnx/σ / norm )
        (-0.5 * z * z) - (2.0 * std::f64::consts::PI).sqrt().ln() + dlnx.ln()
            - self.sigma.ln()
            - self.norm.ln()
    }

    /// Total log-likelihood of a positive sample set.
    pub fn log_likelihood(&self, samples: &[u64]) -> f64 {
        samples
            .iter()
            .filter(|&&k| k >= 1)
            .map(|&k| self.ln_pmf(k))
            .sum()
    }

    /// Draws one sample (always ≥ 1): rounds a parent-lognormal draw,
    /// redrawing the (usually rare) results below ½.
    pub fn sample(&self, rng: &mut SplitRng) -> u64 {
        loop {
            let x = (self.mu + self.sigma * rng.standard_normal()).exp();
            if x >= 0.5 {
                if x >= u64::MAX as f64 {
                    return u64::MAX;
                }
                return x.round() as u64;
            }
        }
    }

    /// Maximum-likelihood fit over samples ≥ 1 (log-moment estimator; the
    /// discretisation bias is far below the statistical noise at the
    /// workspace's sample sizes).
    pub fn fit(samples: &[u64]) -> Result<DiscreteLognormal, StatsError> {
        let logs: Vec<f64> = samples
            .iter()
            .copied()
            .filter(|&k| k >= 1)
            .map(|k| (k as f64).ln())
            .collect();
        if logs.len() < 2 {
            return Err(StatsError::InsufficientData {
                needed: "at least two samples >= 1",
            });
        }
        let n = logs.len() as f64;
        let mu = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|y| (y - mu) * (y - mu)).sum::<f64>() / n;
        DiscreteLognormal::new(mu, var.sqrt().max(1e-3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(DiscreteLognormal::new(1.0, 0.0).is_err());
        assert!(DiscreteLognormal::new(1.0, -1.0).is_err());
        assert!(Lognormal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn pmf_normalised_and_consistent_with_cdf() {
        let d = DiscreteLognormal::new(1.2, 0.8).unwrap();
        let mut total = 0.0;
        for k in 1..100_000u64 {
            total += d.pmf(k);
            if k <= 50 {
                let cdf_direct: f64 = (1..=k).map(|j| d.pmf(j)).sum();
                assert!(
                    (cdf_direct - d.cdf(k)).abs() < 1e-10,
                    "k={k}: {cdf_direct} vs {}",
                    d.cdf(k)
                );
            }
        }
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn sampler_matches_pmf() {
        let d = DiscreteLognormal::new(0.7, 0.9).unwrap();
        let mut rng = SplitRng::new(11);
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let k = d.sample(&mut rng);
            assert!(k >= 1);
            *counts.entry(k).or_insert(0usize) += 1;
        }
        for k in 1..=6u64 {
            let emp = *counts.get(&k).unwrap_or(&0) as f64 / n as f64;
            let expect = d.pmf(k);
            assert!((emp - expect).abs() < 0.01, "k={k}: emp={emp} pmf={expect}");
        }
    }

    #[test]
    fn fit_recovers_parameters() {
        let d = DiscreteLognormal::new(1.5, 1.0).unwrap();
        let mut rng = SplitRng::new(12);
        let samples: Vec<u64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
        let fit = DiscreteLognormal::fit(&samples).unwrap();
        assert!((fit.mu() - 1.5).abs() < 0.1, "mu={}", fit.mu());
        assert!((fit.sigma() - 1.0).abs() < 0.1, "sigma={}", fit.sigma());
    }

    #[test]
    fn continuous_fit_recovers_parameters() {
        let d = Lognormal::new(2.0, 0.5).unwrap();
        let mut rng = SplitRng::new(13);
        let samples: Vec<f64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
        let fit = Lognormal::fit(&samples).unwrap();
        assert!((fit.mu - 2.0).abs() < 0.02, "mu={}", fit.mu);
        assert!((fit.sigma - 0.5).abs() < 0.02, "sigma={}", fit.sigma);
    }

    #[test]
    fn fit_requires_data() {
        assert!(DiscreteLognormal::fit(&[]).is_err());
        assert!(DiscreteLognormal::fit(&[0, 0]).is_err());
        assert!(DiscreteLognormal::fit(&[5]).is_err());
        assert!(Lognormal::fit(&[1.0]).is_err());
        assert!(Lognormal::fit(&[-1.0, -2.0]).is_err());
    }

    #[test]
    fn constant_data_clamps_sigma() {
        let fit = DiscreteLognormal::fit(&[4, 4, 4, 4]).unwrap();
        assert!(fit.sigma() > 0.0);
        assert!((fit.mu() - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_pmf_finite_far_into_tail() {
        let d = DiscreteLognormal::new(1.0, 0.8).unwrap();
        for &k in &[1u64, 10, 1_000, 1_000_000, 1_000_000_000_000] {
            let lp = d.ln_pmf(k);
            assert!(lp.is_finite(), "k={k} ln_pmf={lp}");
            assert!(lp < 0.0);
        }
        assert_eq!(d.ln_pmf(0), f64::NEG_INFINITY);
    }

    #[test]
    fn continuous_pdf_shape() {
        let d = Lognormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.pdf(0.0), 0.0);
        // Mode of LN(0,1) is e^{-1}.
        let mode = (-1.0f64).exp();
        assert!(d.pdf(mode) > d.pdf(1.5));
        assert!(d.pdf(mode) > d.pdf(0.1));
    }
}
