//! The truncated normal distribution `N(µ, σ²)` conditioned on `X ≥ 0` —
//! the lifetime distribution of the paper's generative model (§5.3), and
//! the lever behind Theorem 1's lognormal out-degrees.
//!
//! With `γ = −µ/σ` (the truncation point in standard units), the classical
//! moment formulas are
//!
//! ```text
//! E[X]   = µ + σ·g(γ)          g(γ) = φ(γ) / (1 − Φ(γ))
//! Var[X] = σ²·(1 − δ(γ))       δ(γ) = g(γ)·(g(γ) − γ)
//! ```
//!
//! `g` is the Mills-ratio hazard of the standard normal; both functions are
//! exported because Theorem 1 quotes them directly.

use crate::error::StatsError;
use crate::rng::SplitRng;
use crate::special::{normal_pdf, normal_sf};

/// The standard-normal hazard `g(γ) = φ(γ)/(1 − Φ(γ))`.
///
/// Evaluated through [`normal_sf`] so it stays accurate deep into the
/// truncation regime (`γ ≫ 0`), where naive `1 − Φ` evaluation loses all
/// precision.
pub fn mills_g(gamma: f64) -> f64 {
    normal_pdf(gamma) / normal_sf(gamma)
}

/// The variance-shrink factor `δ(γ) = g(γ)·(g(γ) − γ)` of the truncated
/// normal; `Var = σ²(1 − δ)`.
pub fn delta(gamma: f64) -> f64 {
    let g = mills_g(gamma);
    g * (g - gamma)
}

/// A normal distribution truncated to `[0, ∞)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    mu: f64,
    sigma: f64,
}

impl TruncatedNormal {
    /// Creates `N(mu, sigma²) | X ≥ 0`; `sigma` must be positive and both
    /// parameters finite.
    pub fn new(mu: f64, sigma: f64) -> Result<TruncatedNormal, StatsError> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be > 0 and finite",
            });
        }
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
                constraint: "must be finite",
            });
        }
        Ok(TruncatedNormal { mu, sigma })
    }

    /// Location parameter of the parent normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of the parent normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The truncation point in standard units, `γ = −µ/σ`.
    pub fn gamma(&self) -> f64 {
        -self.mu / self.sigma
    }

    /// Analytic mean `µ + σ·g(γ)`.
    pub fn mean(&self) -> f64 {
        self.mu + self.sigma * mills_g(self.gamma())
    }

    /// Analytic variance `σ²·(1 − δ(γ))`.
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma * (1.0 - delta(self.gamma()))
    }

    /// Draws one sample.
    ///
    /// Shallow truncations (`γ ≤ 0.5`, ≥ 30 % acceptance) use plain
    /// rejection of parent-normal draws; deep truncations use Robert's
    /// exponential-proposal rejection on the standardised tail, which keeps
    /// the expected number of draws O(1) for any `γ`.
    pub fn sample(&self, rng: &mut SplitRng) -> f64 {
        let gamma = self.gamma();
        if gamma <= 0.5 {
            loop {
                let x = self.mu + self.sigma * rng.standard_normal();
                if x >= 0.0 {
                    return x;
                }
            }
        }
        // Robert (1995): sample Z ~ N(0,1) | Z >= gamma.
        let a = (gamma + (gamma * gamma + 4.0).sqrt()) / 2.0;
        loop {
            let u1 = rng.f64();
            let z = gamma - (1.0 - u1).ln() / a;
            let d = z - a;
            if rng.f64() <= (-0.5 * d * d).exp() {
                return self.mu + self.sigma * z;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::normal_cdf;

    #[test]
    fn rejects_bad_parameters() {
        assert!(TruncatedNormal::new(1.0, 0.0).is_err());
        assert!(TruncatedNormal::new(1.0, -2.0).is_err());
        assert!(TruncatedNormal::new(f64::NAN, 1.0).is_err());
        assert!(TruncatedNormal::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn mills_g_matches_definition_in_bulk() {
        for &g in &[-2.0, -0.5, 0.0, 0.5, 1.5] {
            let direct = normal_pdf(g) / (1.0 - normal_cdf(g));
            assert!((mills_g(g) - direct).abs() < 1e-6, "gamma={g}");
        }
    }

    #[test]
    fn mills_g_tail_asymptote() {
        // g(γ) → γ + 1/γ − ... for large γ; check it stays close.
        for &g in &[4.0, 6.0, 8.0] {
            let approx = g + 1.0 / g;
            assert!(
                (mills_g(g) - approx).abs() / approx < 0.02,
                "gamma={g} g={}",
                mills_g(g)
            );
        }
    }

    #[test]
    fn delta_shrinks_variance_between_zero_and_one() {
        for &g in &[-3.0, -1.0, 0.0, 1.0, 3.0, 6.0] {
            let d = delta(g);
            assert!((0.0..1.0).contains(&d), "gamma={g} delta={d}");
        }
    }

    #[test]
    fn untruncated_regime_matches_parent_moments() {
        // mu >> 0: truncation is irrelevant.
        let t = TruncatedNormal::new(50.0, 2.0).unwrap();
        assert!((t.mean() - 50.0).abs() < 1e-6);
        assert!((t.variance() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn samples_match_moments_shallow_and_deep() {
        for &(mu, sigma) in &[(8.0, 6.0), (0.0, 1.0), (-3.0, 1.0), (-6.0, 0.5)] {
            let t = TruncatedNormal::new(mu, sigma).unwrap();
            let mut rng = SplitRng::new(7);
            let n = 50_000;
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let x = t.sample(&mut rng);
                assert!(x >= 0.0, "negative sample at mu={mu}");
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / n as f64;
            let var = sum_sq / n as f64 - mean * mean;
            let tol = 0.05 * t.mean().max(0.05);
            assert!(
                (mean - t.mean()).abs() < tol,
                "mu={mu}: mean {mean} vs {}",
                t.mean()
            );
            assert!(
                (var - t.variance()).abs() < 0.1 * t.variance().max(0.05),
                "mu={mu}: var {var} vs {}",
                t.variance()
            );
        }
    }
}
