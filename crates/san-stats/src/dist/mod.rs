//! Probability distributions implemented from first principles.
//!
//! Everything the paper's pipeline samples from or fits lives here:
//!
//! * [`lognormal`] — continuous and discrete lognormal (the best-fit family
//!   for Google+ social and attribute degrees, §3.5/§4.1),
//! * [`powerlaw`] — the discrete power law with Clauset-style MLE (the
//!   best-fit family for attribute-node social degrees, Theorem 2),
//! * [`powerlaw_cutoff`] — power law with exponential cutoff (the sleep
//!   machinery of Leskovec et al. referenced by the Zhel baseline),
//! * [`trunc_normal`] — the truncated-normal lifetime distribution of §5.3
//!   plus the Mills-ratio quantities `g(γ)` and `δ(γ)` of Theorem 1,
//! * [`common`] — workhorse samplers: exponential, geometric, bounded
//!   Zipf, and a Walker alias table for repeated weighted draws.

pub mod common;
pub mod lognormal;
pub mod powerlaw;
pub mod powerlaw_cutoff;
pub mod trunc_normal;
