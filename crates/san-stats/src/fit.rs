//! Degree-distribution model selection: lognormal vs power law.
//!
//! The paper identifies "an empirical best-fit distribution using the tool
//! [54, 10], which compares fits of several widely used distributions … with
//! respect to goodness-of-fit" (§3.5). This module reproduces the decision
//! procedure for the two families that matter in the paper: the **discrete
//! lognormal** and the **discrete power law**. Both are fit by maximum
//! likelihood over the same support (`k ≥ 1`), then compared by total
//! log-likelihood; Kolmogorov–Smirnov distances are reported as an
//! independent goodness-of-fit check.

use crate::dist::lognormal::DiscreteLognormal;
use crate::dist::powerlaw::DiscretePowerLaw;
use crate::error::StatsError;
use crate::special::normal_cdf;

/// The distribution family a sample is best explained by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FitFamily {
    /// Discrete power law `p(k) ∝ k^{−α}`.
    PowerLaw,
    /// Discrete lognormal `p(k) ∝ (1/k)·exp(−(ln k − µ)²/2σ²)`.
    Lognormal,
}

impl std::fmt::Display for FitFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitFamily::PowerLaw => write!(f, "power-law"),
            FitFamily::Lognormal => write!(f, "lognormal"),
        }
    }
}

/// Result of fitting both candidate families to a degree sample.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DegreeFit {
    /// Which family wins on log-likelihood.
    pub family: FitFamily,
    /// Lognormal location parameter `µ`.
    pub mu: f64,
    /// Lognormal scale parameter `σ`.
    pub sigma: f64,
    /// Power-law exponent `α` (fit with `x_min = 1`).
    pub alpha: f64,
    /// Total log-likelihood of the lognormal fit.
    pub ll_lognormal: f64,
    /// Total log-likelihood of the power-law fit.
    pub ll_powerlaw: f64,
    /// Kolmogorov–Smirnov distance of the lognormal fit.
    pub ks_lognormal: f64,
    /// Kolmogorov–Smirnov distance of the power-law fit.
    pub ks_powerlaw: f64,
    /// Number of samples used (those with `k ≥ 1`).
    pub n: usize,
}

impl DegreeFit {
    /// Normalised log-likelihood ratio per sample,
    /// `(ll_lognormal − ll_powerlaw)/n`; positive favours the lognormal.
    pub fn llr_per_sample(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (self.ll_lognormal - self.ll_powerlaw) / self.n as f64
    }
}

/// KS distance between the empirical CDF of `samples` (k ≥ 1) and a discrete
/// lognormal fit.
fn ks_lognormal(dist: &DiscreteLognormal, samples: &[u64]) -> f64 {
    let mut kept: Vec<u64> = samples.iter().copied().filter(|&k| k >= 1).collect();
    if kept.is_empty() {
        return 1.0;
    }
    kept.sort_unstable();
    let n = kept.len() as f64;
    let mut max_d: f64 = 0.0;
    let mut i = 0;
    while i < kept.len() {
        let k = kept[i];
        let mut j = i;
        while j < kept.len() && kept[j] == k {
            j += 1;
        }
        // Both CDFs jump at the same atoms; compare at F(k) only.
        let emp = j as f64 / n;
        max_d = max_d.max((dist.cdf(k) - emp).abs());
        i = j;
    }
    max_d
}

/// Fits both families to the positive part of `samples` and selects the
/// winner by log-likelihood (the paper's best-fit procedure).
///
/// Returns an error when fewer than two samples are ≥ 1 or either family
/// fails to fit (degenerate data).
pub fn fit_degree_distribution(samples: &[u64]) -> Result<DegreeFit, StatsError> {
    let kept: Vec<u64> = samples.iter().copied().filter(|&k| k >= 1).collect();
    if kept.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: "at least two samples >= 1",
        });
    }
    let ln = DiscreteLognormal::fit(&kept)?;
    let pl = DiscretePowerLaw::fit(&kept, 1)?;
    let ll_ln = ln.log_likelihood(&kept);
    let ll_pl = pl.log_likelihood(&kept);
    let family = if ll_ln >= ll_pl {
        FitFamily::Lognormal
    } else {
        FitFamily::PowerLaw
    };
    Ok(DegreeFit {
        family,
        mu: ln.mu(),
        sigma: ln.sigma(),
        alpha: pl.alpha(),
        ll_lognormal: ll_ln,
        ll_powerlaw: ll_pl,
        ks_lognormal: ks_lognormal(&ln, &kept),
        ks_powerlaw: pl.ks_distance(&kept),
        n: kept.len(),
    })
}

/// Vuong closeness test between the lognormal and power-law fits.
///
/// Returns `(z, p_two_sided)`: `z > 0` favours the lognormal, `z < 0` the
/// power law, and a large two-sided p-value means the data cannot
/// distinguish the families — exactly the nuance behind the Fig. 16
/// comparisons at finite scale. Implements the normalised log-likelihood
/// ratio statistic of Vuong (1989) as used by Clauset et al.
pub fn vuong_test(samples: &[u64]) -> Result<VuongResult, StatsError> {
    let kept: Vec<u64> = samples.iter().copied().filter(|&k| k >= 1).collect();
    if kept.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: "at least two samples >= 1",
        });
    }
    let ln = DiscreteLognormal::fit(&kept)?;
    let pl = DiscretePowerLaw::fit(&kept, 1)?;
    let diffs: Vec<f64> = kept.iter().map(|&k| ln.ln_pmf(k) - pl.ln_pmf(k)).collect();
    let n = diffs.len() as f64;
    let mean = crate::summary::mean(&diffs);
    let sd = crate::summary::std_dev(&diffs);
    if sd <= 0.0 {
        return Err(StatsError::NoConvergence {
            what: "vuong test (zero variance of pointwise LLR)",
        });
    }
    let z = n.sqrt() * mean / sd;
    let p_two_sided = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(VuongResult { z, p_two_sided })
}

/// Outcome of [`vuong_test`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VuongResult {
    /// Normalised LLR statistic; positive favours the lognormal.
    pub z: f64,
    /// Two-sided p-value under the null "families equally close".
    pub p_two_sided: f64,
}

/// Clauset-style `x_min` scan for the power-law family: for each candidate
/// `x_min`, fit `α` by MLE on the tail and measure the KS distance; return
/// the fit with the smallest KS. `max_xmin` bounds the scan (the tail must
/// keep at least ~10 observations to be meaningful).
pub fn fit_powerlaw_scan_xmin(
    samples: &[u64],
    max_xmin: u64,
) -> Result<(DiscretePowerLaw, f64), StatsError> {
    let mut best: Option<(DiscretePowerLaw, f64)> = None;
    for xmin in 1..=max_xmin {
        let tail_n = samples.iter().filter(|&&k| k >= xmin).count();
        if tail_n < 10 {
            break;
        }
        let Ok(fit) = DiscretePowerLaw::fit(samples, xmin) else {
            continue;
        };
        let ks = fit.ks_distance(samples);
        if best.as_ref().is_none_or(|(_, b)| ks < *b) {
            best = Some((fit, ks));
        }
    }
    best.ok_or(StatsError::InsufficientData {
        needed: "a tail with >= 10 samples for some x_min",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitRng;

    #[test]
    fn classifies_lognormal_data() {
        let d = DiscreteLognormal::new(1.5, 1.0).unwrap();
        let mut rng = SplitRng::new(40);
        let samples: Vec<u64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_degree_distribution(&samples).unwrap();
        assert_eq!(fit.family, FitFamily::Lognormal);
        assert!(fit.llr_per_sample() > 0.0);
        assert!(fit.ks_lognormal < fit.ks_powerlaw);
        assert!((fit.mu - 1.5).abs() < 0.15, "mu={}", fit.mu);
    }

    #[test]
    fn classifies_powerlaw_data() {
        let d = DiscretePowerLaw::new(2.2, 1).unwrap();
        let mut rng = SplitRng::new(41);
        let samples: Vec<u64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_degree_distribution(&samples).unwrap();
        assert_eq!(fit.family, FitFamily::PowerLaw);
        assert!(fit.llr_per_sample() < 0.0);
        assert!((fit.alpha - 2.2).abs() < 0.1, "alpha={}", fit.alpha);
    }

    #[test]
    fn ks_values_reported_and_sane() {
        let d = DiscretePowerLaw::new(2.0, 1).unwrap();
        let mut rng = SplitRng::new(42);
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_degree_distribution(&samples).unwrap();
        assert!(fit.ks_powerlaw < 0.02, "ks_pl={}", fit.ks_powerlaw);
        assert!((0.0..=1.0).contains(&fit.ks_lognormal));
    }

    #[test]
    fn zeros_are_ignored() {
        let d = DiscreteLognormal::new(1.0, 0.8).unwrap();
        let mut rng = SplitRng::new(43);
        let mut samples: Vec<u64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        let n_positive = samples.len();
        samples.extend(std::iter::repeat_n(0, 5_000));
        let fit = fit_degree_distribution(&samples).unwrap();
        assert_eq!(fit.n, n_positive);
    }

    #[test]
    fn rejects_insufficient_data() {
        assert!(fit_degree_distribution(&[]).is_err());
        assert!(fit_degree_distribution(&[0, 0, 0]).is_err());
        assert!(fit_degree_distribution(&[3]).is_err());
    }

    #[test]
    fn family_display() {
        assert_eq!(FitFamily::PowerLaw.to_string(), "power-law");
        assert_eq!(FitFamily::Lognormal.to_string(), "lognormal");
    }

    #[test]
    fn vuong_favours_true_family() {
        let ln = DiscreteLognormal::new(1.5, 1.0).unwrap();
        let mut rng = SplitRng::new(60);
        let samples: Vec<u64> = (0..20_000).map(|_| ln.sample(&mut rng)).collect();
        let v = vuong_test(&samples).unwrap();
        assert!(v.z > 2.0, "z={} should strongly favour lognormal", v.z);
        assert!(v.p_two_sided < 0.05);

        let pl = DiscretePowerLaw::new(2.2, 1).unwrap();
        let samples: Vec<u64> = (0..20_000).map(|_| pl.sample(&mut rng)).collect();
        let v = vuong_test(&samples).unwrap();
        assert!(v.z < -2.0, "z={} should strongly favour power law", v.z);
    }

    #[test]
    fn vuong_requires_data() {
        assert!(vuong_test(&[]).is_err());
        assert!(vuong_test(&[1]).is_err());
    }

    #[test]
    fn xmin_scan_finds_shifted_tail() {
        // Power-law tail from 5 upward, noise below.
        let pl = DiscretePowerLaw::new(2.5, 5).unwrap();
        let mut rng = SplitRng::new(61);
        let mut samples: Vec<u64> = (0..20_000).map(|_| pl.sample(&mut rng)).collect();
        samples.extend((0..5_000).map(|_| 1 + rng.below(4)));
        let (fit, ks) = fit_powerlaw_scan_xmin(&samples, 20).unwrap();
        assert!(fit.xmin() >= 4, "xmin={}", fit.xmin());
        assert!((fit.alpha() - 2.5).abs() < 0.2, "alpha={}", fit.alpha());
        assert!(ks < 0.05);
    }

    #[test]
    fn xmin_scan_needs_tail() {
        assert!(fit_powerlaw_scan_xmin(&[1, 1, 1], 10).is_err());
    }
}
