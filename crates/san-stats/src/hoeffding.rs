//! Hoeffding sample-size bound for the Appendix A clustering estimator.
//!
//! Theorem 3 of the paper: with `K = ⌈ln(2ν) / (2ε²)⌉` uniformly sampled
//! triples, the estimated average clustering coefficient is within `ε` of the
//! true value with probability at least `1 − 1/ν`. The paper runs with
//! `ε = 0.002`, `ν = 100`.

/// Number of samples `K = ⌈ln(2ν) / (2ε²)⌉` required by Theorem 3.
///
/// # Panics
/// Panics when `epsilon <= 0` or `nu < 1` — both make the bound meaningless.
pub fn hoeffding_samples(epsilon: f64, nu: f64) -> usize {
    assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
    assert!(nu >= 1.0, "nu must be >= 1, got {nu}");
    ((2.0 * nu).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

/// Inverse view of the bound: the error `ε` guaranteed (w.p. `1 − 1/ν`) by a
/// budget of `k` samples.
pub fn hoeffding_epsilon(k: usize, nu: f64) -> f64 {
    assert!(k > 0, "need at least one sample");
    assert!(nu >= 1.0, "nu must be >= 1, got {nu}");
    ((2.0 * nu).ln() / (2.0 * k as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point() {
        // ε = 0.002, ν = 100 -> K = ceil(ln(200)/(2·0.002²)) = ceil(662_289.67…)
        let k = hoeffding_samples(0.002, 100.0);
        assert_eq!(k, 662_290);
    }

    #[test]
    fn monotonicity_in_epsilon() {
        assert!(hoeffding_samples(0.001, 100.0) > hoeffding_samples(0.01, 100.0));
    }

    #[test]
    fn monotonicity_in_nu() {
        assert!(hoeffding_samples(0.01, 1000.0) > hoeffding_samples(0.01, 10.0));
    }

    #[test]
    fn inverse_roundtrip() {
        let k = hoeffding_samples(0.005, 50.0);
        let eps = hoeffding_epsilon(k, 50.0);
        assert!(eps <= 0.005 + 1e-9, "eps={eps}");
        // One fewer sample must give a (weakly) worse epsilon.
        assert!(hoeffding_epsilon(k - 1, 50.0) >= eps);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_zero_epsilon() {
        hoeffding_samples(0.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "nu must be >= 1")]
    fn rejects_small_nu() {
        hoeffding_samples(0.01, 0.5);
    }
}
