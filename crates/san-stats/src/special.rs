//! Special functions needed by the distribution machinery.
//!
//! Everything here is implemented from first principles: the error function
//! (for the normal CDF), the standard normal pdf/cdf, the Hurwitz zeta
//! function (normalising constant of the discrete power law), and the
//! harmonic-number approximation used by the paper's Theorem 1 sketch.

use std::f64::consts::PI;

/// Bernoulli numbers B₂ⱼ for the Euler–Maclaurin tail of the Hurwitz zeta.
const BERNOULLI_2J: [f64; 6] = [
    1.0 / 6.0,
    -1.0 / 30.0,
    1.0 / 42.0,
    -1.0 / 30.0,
    5.0 / 66.0,
    -691.0 / 2730.0,
];

/// Error function `erf(x)`.
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation, whose maximum
/// absolute error is `1.5e-7` — ample for the CDF comparisons and truncated
/// normal moments in this workspace.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal probability density `φ(x)`.
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution `Φ(x)`.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal survival function `1 − Φ(x)` with good *relative*
/// accuracy in the tail.
///
/// `1 − normal_cdf(x)` computed by subtraction loses all precision once
/// `Φ(x) ≈ 1`; the Mills-ratio continued fraction
/// `(1 − Φ(x)) / φ(x) = 1/(x + 1/(x + 2/(x + …)))` stays accurate for
/// `x ≥ 1`. This function is what makes the truncated-normal moment
/// formulas of Theorem 1 usable for deep truncations.
pub fn normal_sf(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - normal_sf(-x);
    }
    if x < 1.0 {
        // sf is large here; the absolute-error erf approximation is fine.
        return 0.5 * (1.0 - erf(x / std::f64::consts::SQRT_2));
    }
    // Bottom-up evaluation of the Laplace continued fraction.
    let depth = 200;
    let mut t = x;
    for k in (1..=depth).rev() {
        t = x + k as f64 / t;
    }
    normal_pdf(x) / t
}

/// Hurwitz zeta function `ζ(s, a) = Σ_{k=0}^∞ (a + k)^{-s}` for `s > 1`,
/// `a > 0`.
///
/// Computed by direct summation of the first `N` terms plus an
/// Euler–Maclaurin correction; accurate to ~1e-12 for the `s ∈ (1, 8]`
/// range used by power-law fitting.
pub fn hurwitz_zeta(s: f64, a: f64) -> f64 {
    assert!(s > 1.0, "hurwitz_zeta requires s > 1, got {s}");
    assert!(a > 0.0, "hurwitz_zeta requires a > 0, got {a}");
    const N: usize = 16;
    let mut sum = 0.0;
    for k in 0..N {
        sum += (a + k as f64).powf(-s);
    }
    let an = a + N as f64;
    // Integral tail + boundary correction.
    sum += an.powf(1.0 - s) / (s - 1.0);
    sum += 0.5 * an.powf(-s);
    // Euler–Maclaurin derivative corrections.
    let mut term_coeff = s; // s * (s+1) * ... rising factorial pieces
    let mut an_pow = an.powf(-s - 1.0);
    let mut factorial = 1.0; // (2j)!
    for (j, &b2j) in BERNOULLI_2J.iter().enumerate() {
        let two_j = 2 * (j + 1);
        factorial *= (two_j - 1) as f64 * two_j as f64;
        // term = B_{2j}/(2j)! * (s)_{2j-1} * an^{-s-2j+1}
        sum += b2j / factorial * term_coeff * an_pow;
        // Advance the rising factorial (s)_{2j+1} and the power of an.
        term_coeff *= (s + two_j as f64 - 1.0) * (s + two_j as f64);
        an_pow /= an * an;
    }
    sum
}

/// Riemann zeta `ζ(s)` for `s > 1` (Hurwitz zeta at `a = 1`).
#[inline]
pub fn riemann_zeta(s: f64) -> f64 {
    hurwitz_zeta(s, 1.0)
}

/// Numerical derivative `∂ζ(s, a)/∂s` via central differences.
///
/// The step is shrunk near `s = 1` so the probe never leaves the `s > 1`
/// domain of [`hurwitz_zeta`].
pub fn hurwitz_zeta_ds(s: f64, a: f64) -> f64 {
    let h = (1e-6 * s.max(1.0)).min(0.25 * (s - 1.0));
    assert!(h > 0.0, "hurwitz_zeta_ds requires s > 1, got {s}");
    (hurwitz_zeta(s + h, a) - hurwitz_zeta(s - h, a)) / (2.0 * h)
}

/// Harmonic number `H_n = Σ_{k=1}^n 1/k`, with the Euler–Mascheroni
/// asymptotic for large `n` (the approximation `H_n ≈ ln n` underlies the
/// paper's Theorem 1 proof sketch).
pub fn harmonic(n: u64) -> f64 {
    const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
    if n == 0 {
        return 0.0;
    }
    if n <= 64 {
        return (1..=n).map(|k| 1.0 / k as f64).sum();
    }
    let nf = n as f64;
    nf.ln() + EULER_GAMMA + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables; the A&S approximation carries an
        // absolute error of up to 1.5e-7.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.05;
            assert!((erf(x) + erf(-x)).abs() < 1e-6);
            assert!(erf(x).abs() <= 1.0);
        }
    }

    #[test]
    fn normal_sf_matches_reference_values() {
        // High-precision reference values for 1 - Phi(x).
        let cases = [
            (0.0, 0.5),
            (0.5, 0.30853753872598694),
            (1.0, 0.15865525393145707),
            (2.0, 0.022750131948179195),
            (3.0, 0.0013498980316300933),
            (6.0, 9.865876450376946e-10),
            (8.0, 6.22096057427178e-16),
        ];
        for &(x, expect) in &cases {
            let got = normal_sf(x);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 1e-5, "x={x}: got {got} expect {expect} rel={rel}");
        }
    }

    #[test]
    fn normal_sf_negative_axis() {
        assert!((normal_sf(-1.0) - 0.8413447460685429).abs() < 1e-6);
        assert!((normal_sf(-6.0) - (1.0 - 9.865876450376946e-10)).abs() < 1e-9);
    }

    #[test]
    fn normal_sf_agrees_with_cdf_in_bulk() {
        for i in -30..30 {
            let x = i as f64 * 0.1;
            assert!((normal_sf(x) - (1.0 - normal_cdf(x))).abs() < 1e-6);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for i in 0..50 {
            let x = i as f64 * 0.1;
            let s = normal_cdf(x) + normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-7, "x={x} sum={s}");
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.9750021049).abs() < 1e-6);
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!(normal_pdf(3.0) < normal_pdf(0.0));
    }

    #[test]
    fn riemann_zeta_known_values() {
        // ζ(2) = π²/6
        assert!((riemann_zeta(2.0) - PI * PI / 6.0).abs() < 1e-10);
        // ζ(4) = π⁴/90
        assert!((riemann_zeta(4.0) - PI.powi(4) / 90.0).abs() < 1e-10);
        // ζ(3) ≈ 1.2020569 (Apéry's constant)
        assert!((riemann_zeta(3.0) - 1.2020569031595942).abs() < 1e-10);
    }

    #[test]
    fn hurwitz_zeta_shift_identity() {
        // ζ(s, a) = a^{-s} + ζ(s, a+1)
        for &(s, a) in &[(1.5, 1.0), (2.5, 3.0), (3.2, 0.5)] {
            let lhs = hurwitz_zeta(s, a);
            let rhs = a.powf(-s) + hurwitz_zeta(s, a + 1.0);
            assert!((lhs - rhs).abs() < 1e-10, "s={s} a={a}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn hurwitz_zeta_matches_direct_sum() {
        // Brute force: ζ(2.5, 2) with a long direct sum.
        let direct: f64 = (0..2_000_000).map(|k| (2.0 + k as f64).powf(-2.5)).sum();
        let ours = hurwitz_zeta(2.5, 2.0);
        assert!((direct - ours).abs() < 1e-6, "{direct} vs {ours}");
    }

    #[test]
    #[should_panic(expected = "requires s > 1")]
    fn hurwitz_zeta_rejects_small_s() {
        hurwitz_zeta(1.0, 1.0);
    }

    #[test]
    fn zeta_derivative_sign() {
        // ζ decreases in s for s > 1, so the derivative must be negative.
        assert!(hurwitz_zeta_ds(2.0, 1.0) < 0.0);
        assert!(hurwitz_zeta_ds(3.0, 2.0) < 0.0);
    }

    #[test]
    fn harmonic_small_values_exact() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_asymptotic_continuity() {
        // The exact and asymptotic branches must agree around the switch point.
        let exact: f64 = (1..=64u64).map(|k| 1.0 / k as f64).sum();
        let exact65: f64 = exact + 1.0 / 65.0;
        assert!((harmonic(65) - exact65).abs() < 1e-8);
        assert!((harmonic(1000) - 7.485470861).abs() < 1e-6);
    }
}
