//! Deterministic, splittable random number generation.
//!
//! Every stochastic component in the workspace (graph generators, samplers,
//! Monte-Carlo estimators) takes an `&mut impl rand::Rng`. To make whole
//! experiments reproducible from one `u64` seed we provide [`SplitRng`], a
//! from-scratch **xoshiro256++** generator seeded through **SplitMix64**, as
//! recommended by the xoshiro authors. `SplitRng::fork` derives an
//! independent child stream, so parallel pipeline stages can each own a
//! deterministic generator regardless of interleaving.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step: the standard 64-bit finaliser used to expand seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Implements [`rand::RngCore`] so it interoperates with the whole `rand`
/// ecosystem, and [`rand::SeedableRng`] for generic construction. Prefer
/// [`SplitRng::new`] (single `u64` seed) in application code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitRng {
    s: [u64; 4],
}

impl SplitRng {
    /// Creates a generator from a single 64-bit seed.
    ///
    /// The four words of internal state are produced by iterating SplitMix64,
    /// which guarantees a non-zero, well-mixed state for any seed (including
    /// zero).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SplitRng { s }
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from the parent's output stream, so repeated forks
    /// yield distinct, reproducible streams. Forking advances the parent.
    pub fn fork(&mut self) -> Self {
        SplitRng::new(self.next_u64())
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal variate via the Marsaglia polar method.
    ///
    /// The spare variate is intentionally discarded: keeping the generator
    /// stateless w.r.t. distribution calls makes forked streams reproducible
    /// independent of call ordering.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Chooses an index in `[0, weights.len())` proportionally to `weights`.
    ///
    /// Linear scan; for repeated sampling from static weights prefer
    /// [`crate::dist::common::AliasTable`]. Returns `None` when the total
    /// weight is not strictly positive.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return Some(i);
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

impl RngCore for SplitRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitRng::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitRng::new(7);
        let mut b = SplitRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitRng::new(1);
        let mut b = SplitRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_reproducible() {
        let mut parent1 = SplitRng::new(99);
        let mut parent2 = SplitRng::new(99);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..50 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Child diverges from a fresh parent stream.
        let mut p = SplitRng::new(99);
        p.next_u64(); // consumed by fork
        assert_ne!(c1.next_u64(), p.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitRng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SplitRng::new(4);
        let n = 100_000;
        let s: f64 = (0..n).map(|_| rng.f64()).sum();
        let mean = s / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut rng = SplitRng::new(5);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 7.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn below_never_reaches_n() {
        let mut rng = SplitRng::new(6);
        for _ in 0..10_000 {
            assert!(rng.below(3) < 3);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SplitRng::new(8);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitRng::new(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SplitRng::new(10);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    fn weighted_index_rejects_zero_total() {
        let mut rng = SplitRng::new(11);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[]), None);
    }

    #[test]
    fn seedable_rng_from_seed_matches_new() {
        let mut a = <SplitRng as SeedableRng>::from_seed(42u64.to_le_bytes());
        let mut b = SplitRng::new(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_with_rand_trait_methods() {
        let mut rng = SplitRng::new(12);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let y: u32 = rng.gen_range(0..10);
        assert!(y < 10);
    }
}
