//! Descriptive statistics: moments, interpolated percentiles, correlation
//! and ordinary least squares.
//!
//! These primitives back several paper measurements directly:
//! * the **effective diameter** is the interpolated 90th percentile of the
//!   distance distribution (§3.3) — [`percentile`];
//! * the **assortativity coefficient** is a Pearson correlation over edge
//!   endpoint degrees (§3.6) — [`pearson`];
//! * power-law exponents of clustering-vs-degree curves (Fig. 9a) are read
//!   off an OLS fit in log-log space — [`ols`].

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator); `0.0` when fewer than two
/// samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (interpolated for even-sized inputs); `0.0` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Interpolated percentile `q ∈ [0, 100]` of `xs`.
///
/// Sorts a copy of the data and applies the standard linear-interpolation
/// definition: rank `r = q/100 · (n−1)` between order statistics. This is the
/// same interpolation the paper invokes for the effective diameter
/// ("the 90-th percentile distance (possibly with some interpolation)").
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&v, q)
}

/// [`percentile`] over data that is already sorted ascending.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `0.0` when either variance vanishes (the convention used for
/// degenerate assortativity inputs, e.g. a regular graph).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal-length inputs");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Result of an ordinary-least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r2: f64,
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// Returns `None` when fewer than two points are supplied or the x-variance
/// is zero.
pub fn ols(xs: &[f64], ys: &[f64]) -> Option<OlsFit> {
    assert_eq!(xs.len(), ys.len(), "ols requires equal-length inputs");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy <= 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(OlsFit {
        slope,
        intercept,
        r2,
    })
}

/// OLS in log-log space: fits `ln y = slope · ln x + c` over the pairs with
/// strictly positive coordinates, returning the power-law exponent estimate
/// (`slope`). Pairs with non-positive coordinates are skipped.
pub fn log_log_slope(points: &[(f64, f64)]) -> Option<OlsFit> {
    let (xs, ys): (Vec<f64>, Vec<f64>) = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .unzip();
    ols(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(percentile(&[], 90.0), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        // 90th percentile: rank 3.6 -> 4 + 0.6*(5-4) = 4.6
        assert!((percentile(&xs, 90.0) - 4.6).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_out_of_range_q() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -5.0), 1.0);
        assert_eq!(percentile(&xs, 105.0), 2.0);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let yneg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &yneg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ols_recovers_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ols_degenerate_inputs() {
        assert!(ols(&[1.0], &[1.0]).is_none());
        assert!(ols(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn log_log_slope_recovers_power_law() {
        // y = 5 x^{-2.5}
        let points: Vec<(f64, f64)> = (1..50)
            .map(|k| (k as f64, 5.0 * (k as f64).powf(-2.5)))
            .collect();
        let fit = log_log_slope(&points).unwrap();
        assert!((fit.slope + 2.5).abs() < 1e-9, "slope={}", fit.slope);
    }

    #[test]
    fn log_log_slope_skips_nonpositive() {
        let points = [(0.0, 1.0), (1.0, 2.0), (2.0, 4.0), (-1.0, 8.0), (4.0, 16.0)];
        // Only (1,2),(2,4),(4,16): ln y = ln2 * ... actually y = 2^x not power law;
        // just ensure the filter keeps it well-defined.
        assert!(log_log_slope(&points).is_some());
    }
}
