//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use san_stats::prelude::*;
use san_stats::special;
use san_stats::summary::percentile_sorted;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The discrete lognormal pmf must be a valid probability mass function
    /// for any sane parameter combination.
    #[test]
    fn discrete_lognormal_pmf_is_normalised(mu in -1.0f64..3.0, sigma in 0.2f64..2.0) {
        let d = DiscreteLognormal::new(mu, sigma).unwrap();
        let total: f64 = (1..200_000u64).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total={}", total);
    }

    /// Discrete lognormal CDF is monotone non-decreasing and bounded by 1.
    #[test]
    fn discrete_lognormal_cdf_monotone(mu in -1.0f64..3.0, sigma in 0.2f64..2.0, k in 1u64..5000) {
        let d = DiscreteLognormal::new(mu, sigma).unwrap();
        prop_assert!(d.cdf(k) <= d.cdf(k + 1) + 1e-15);
        prop_assert!(d.cdf(k) <= 1.0 + 1e-12);
        prop_assert!(d.cdf(k) >= 0.0);
    }

    /// Power-law pmf mass = 1 − analytic zeta tail, for any alpha/xmin.
    #[test]
    fn powerlaw_pmf_mass_consistent(alpha in 1.3f64..4.0, xmin in 1u64..5) {
        let d = DiscretePowerLaw::new(alpha, xmin).unwrap();
        let head: f64 = (xmin..xmin + 20_000).map(|k| d.pmf(k)).sum();
        let tail = special::hurwitz_zeta(alpha, (xmin + 20_000) as f64)
            / special::hurwitz_zeta(alpha, xmin as f64);
        prop_assert!((head + tail - 1.0).abs() < 1e-8);
    }

    /// Samples from a power law never fall below xmin.
    #[test]
    fn powerlaw_sample_in_support(alpha in 1.3f64..4.0, xmin in 1u64..10, seed in 0u64..1000) {
        let d = DiscretePowerLaw::new(alpha, xmin).unwrap();
        let mut rng = SplitRng::new(seed);
        for _ in 0..100 {
            prop_assert!(d.sample(&mut rng) >= xmin);
        }
    }

    /// Truncated normal samples are non-negative and the analytic mean
    /// formula tracks the empirical mean.
    #[test]
    fn trunc_normal_mean_formula(mu in -3.0f64..5.0, sigma in 0.5f64..3.0, seed in 0u64..100) {
        let t = TruncatedNormal::new(mu, sigma).unwrap();
        let mut rng = SplitRng::new(seed);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = t.sample(&mut rng);
            prop_assert!(x >= 0.0);
            sum += x;
        }
        let emp = sum / n as f64;
        let expect = t.mean();
        prop_assert!(
            (emp - expect).abs() < 0.1 + 0.05 * expect,
            "emp={} expect={}", emp, expect
        );
    }

    /// CCDF is monotone decreasing and starts at 1.
    #[test]
    fn ccdf_properties(samples in prop::collection::vec(0u64..500, 1..300)) {
        let c = ccdf(&samples);
        prop_assert!(!c.is_empty());
        prop_assert!((c[0].1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            prop_assert!(w[1].1 <= w[0].1 + 1e-12);
            prop_assert!(w[1].0 > w[0].0);
        }
    }

    /// Empirical pmf always sums to 1.
    #[test]
    fn pmf_sums_to_one(samples in prop::collection::vec(0u64..100, 1..500)) {
        let pmf = empirical_pmf(&samples);
        let total: f64 = pmf.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Percentiles are monotone in q and bracketed by min/max.
    #[test]
    fn percentile_monotone(
        mut xs in prop::collection::vec(-1e6f64..1e6, 2..200),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = percentile_sorted(&xs, lo);
        let p_hi = percentile_sorted(&xs, hi);
        prop_assert!(p_lo <= p_hi + 1e-9);
        prop_assert!(p_lo >= xs[0] - 1e-9);
        prop_assert!(p_hi <= xs[xs.len() - 1] + 1e-9);
    }

    /// Pearson correlation stays in [-1, 1].
    #[test]
    fn pearson_bounded(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)
    ) {
        let (xs, ys): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r={}", r);
    }

    /// Alias table sampling only produces valid indices and never produces
    /// indices whose weight was zero.
    #[test]
    fn alias_table_valid_indices(
        weights in prop::collection::vec(0.0f64..10.0, 1..50),
        seed in 0u64..1000,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = SplitRng::new(seed);
        for _ in 0..200 {
            let i = t.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight index {}", i);
        }
    }

    /// SplitRng::below is always within range.
    #[test]
    fn below_in_range(n in 1u64..1_000_000, seed in 0u64..1000) {
        let mut rng = SplitRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// MLE round-trip: fitting samples drawn from a power law recovers alpha
    /// within a loose tolerance.
    #[test]
    fn powerlaw_mle_roundtrip(alpha in 1.6f64..3.5, seed in 0u64..50) {
        let d = DiscretePowerLaw::new(alpha, 1).unwrap();
        let mut rng = SplitRng::new(seed);
        let samples: Vec<u64> = (0..8000).map(|_| d.sample(&mut rng)).collect();
        let fit = DiscretePowerLaw::fit(&samples, 1).unwrap();
        prop_assert!((fit.alpha() - alpha).abs() < 0.25,
            "alpha={} fit={}", alpha, fit.alpha());
    }

    /// Hoeffding bound: more samples never hurt the guaranteed epsilon.
    #[test]
    fn hoeffding_monotone(eps in 0.001f64..0.5, nu in 1.0f64..1e4) {
        let k1 = hoeffding_samples(eps, nu);
        let k2 = hoeffding_samples(eps / 2.0, nu);
        prop_assert!(k2 >= k1);
    }
}
