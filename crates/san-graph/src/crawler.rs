//! The snapshot-expanding BFS crawler of §2.2.
//!
//! The paper crawled Google+ daily: the first snapshot by breadth-first
//! search, each subsequent snapshot by *expanding the social structure from
//! the previous snapshot*. Crucially, Google+ exposes **both** the outgoing
//! ("in your circles") and incoming ("have you in circles") lists of every
//! *public* profile, which is what made crawling the whole weakly connected
//! component feasible.
//!
//! [`Crawler`] reproduces that process against a ground-truth [`San`]:
//!
//! * a **public** user exposes its out-list, in-list and attributes;
//! * a **private** user is *discoverable* (it appears in public users'
//!   lists) but exposes nothing — the two crawl biases acknowledged in §2.2
//!   (private circles ⇒ underestimated degrees; undeclared attributes) fall
//!   out of this rule;
//! * crawl state persists across days, so day `t`'s crawl expands from the
//!   users known at day `t − 1`.

use crate::ids::{AttrId, SocialId};
use crate::read::SanRead;
use crate::san::San;
use std::collections::VecDeque;

/// A crawled snapshot: the observed sub-SAN plus provenance and coverage.
#[derive(Debug, Clone)]
pub struct CrawlSnapshot {
    /// The network as observed by the crawler (dense crawl-local ids).
    pub san: San,
    /// For each crawl-local social id (by index), the ground-truth id.
    pub social_origin: Vec<SocialId>,
    /// For each crawl-local attribute id (by index), the ground-truth id.
    pub attr_origin: Vec<AttrId>,
    /// Discovered users / ground-truth users.
    pub node_coverage: f64,
    /// Observed social links / ground-truth social links.
    pub link_coverage: f64,
}

/// Stateful daily crawler over a growing ground truth.
#[derive(Debug, Clone)]
pub struct Crawler {
    seeds: Vec<SocialId>,
    /// Users discovered so far (ground-truth ids).
    known: Vec<SocialId>,
}

impl Crawler {
    /// Creates a crawler that starts from the given seed users.
    pub fn new(seeds: Vec<SocialId>) -> Self {
        Crawler {
            known: Vec::new(),
            seeds,
        }
    }

    /// Users discovered so far.
    pub fn known(&self) -> &[SocialId] {
        &self.known
    }

    /// Crawls the current ground truth.
    ///
    /// `public[u]` says whether ground-truth user `u` exposes its lists.
    /// The crawl BFS starts from all previously known users plus the seeds
    /// and repeatedly fetches the lists of every reachable public user.
    ///
    /// # Panics
    /// Panics when `public.len()` differs from the ground-truth node count
    /// or a seed id is out of range.
    pub fn crawl(&mut self, truth: &impl SanRead, public: &[bool]) -> CrawlSnapshot {
        let n = truth.num_social_nodes();
        assert_eq!(public.len(), n, "visibility vector must cover all users");

        let mut discovered = vec![false; n];
        let mut queue: VecDeque<SocialId> = VecDeque::new();
        for &u in self.known.iter().chain(self.seeds.iter()) {
            assert!(u.index() < n, "seed/known user {u} outside ground truth");
            if !discovered[u.index()] {
                discovered[u.index()] = true;
                queue.push_back(u);
            }
        }
        while let Some(u) = queue.pop_front() {
            if !public[u.index()] {
                continue; // private: lists invisible, cannot expand through.
            }
            for &v in truth.out_neighbors(u).iter().chain(truth.in_neighbors(u)) {
                if !discovered[v.index()] {
                    discovered[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }

        // Record the expanded known set (ordered by ground-truth id for
        // determinism).
        self.known = (0..n as u32)
            .map(SocialId)
            .filter(|u| discovered[u.index()])
            .collect();

        // Materialise the observed SAN.
        let mut social_new = vec![u32::MAX; n];
        let mut social_origin = Vec::new();
        for &u in &self.known {
            social_new[u.index()] = social_origin.len() as u32;
            social_origin.push(u);
        }
        let mut san = San::with_capacity(social_origin.len(), 0);
        for _ in 0..social_origin.len() {
            san.add_social_node();
        }
        let mut attr_new = vec![u32::MAX; truth.num_attr_nodes()];
        let mut attr_origin = Vec::new();
        let mut observed_links = 0usize;
        for (new_u, &old_u) in social_origin.iter().enumerate() {
            // A directed link u->v is observed if either endpoint is public
            // (u's out-list or v's in-list) and both endpoints are known.
            for &v in truth.out_neighbors(old_u) {
                let nv = social_new[v.index()];
                if nv == u32::MAX {
                    continue;
                }
                if (public[old_u.index()] || public[v.index()])
                    && san.add_social_link(SocialId(new_u as u32), SocialId(nv))
                {
                    observed_links += 1;
                }
            }
            // Attributes are profile data: only public users expose them.
            if public[old_u.index()] {
                for &a in truth.attrs_of(old_u) {
                    if attr_new[a.index()] == u32::MAX {
                        attr_new[a.index()] = attr_origin.len() as u32;
                        attr_origin.push(a);
                        san.add_attr_node(truth.attr_type(a));
                    }
                    san.add_attr_link(SocialId(new_u as u32), AttrId(attr_new[a.index()]));
                }
            }
        }

        let node_coverage = if n == 0 {
            0.0
        } else {
            social_origin.len() as f64 / n as f64
        };
        let link_coverage = if truth.num_social_links() == 0 {
            0.0
        } else {
            observed_links as f64 / truth.num_social_links() as f64
        };
        CrawlSnapshot {
            san,
            social_origin,
            attr_origin,
            node_coverage,
            link_coverage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1;

    #[test]
    fn full_visibility_crawls_whole_wcc() {
        let fx = figure1();
        let public = vec![true; 6];
        let mut crawler = Crawler::new(vec![fx.users[3]]); // u4
        let snap = crawler.crawl(&fx.san, &public);
        // u1 has no social links: unreachable. The other 5 form one WCC.
        assert_eq!(snap.san.num_social_nodes(), 5);
        assert_eq!(snap.san.num_social_links(), 5);
        assert!((snap.node_coverage - 5.0 / 6.0).abs() < 1e-12);
        assert!((snap.link_coverage - 1.0).abs() < 1e-12);
        snap.san.check_consistency().unwrap();
    }

    #[test]
    fn incoming_lists_enable_backward_discovery() {
        // Chain u0 -> u1 -> u2 seeded at u2: only reachable backwards.
        let mut san = San::new();
        let u: Vec<SocialId> = (0..3).map(|_| san.add_social_node()).collect();
        san.add_social_link(u[0], u[1]);
        san.add_social_link(u[1], u[2]);
        let mut crawler = Crawler::new(vec![u[2]]);
        let snap = crawler.crawl(&san, &[true, true, true]);
        assert_eq!(snap.san.num_social_nodes(), 3, "in-lists must be crawled");
    }

    #[test]
    fn private_users_block_expansion() {
        // u0 -> u1 -> u2 with u1 private, seeded at u0:
        // u1 is discovered via u0's out-list but u2 stays hidden
        // (u1's lists are private).
        let mut san = San::new();
        let u: Vec<SocialId> = (0..3).map(|_| san.add_social_node()).collect();
        san.add_social_link(u[0], u[1]);
        san.add_social_link(u[1], u[2]);
        let mut crawler = Crawler::new(vec![u[0]]);
        let snap = crawler.crawl(&san, &[true, false, true]);
        assert_eq!(snap.san.num_social_nodes(), 2);
        // The u0->u1 link is visible (u0 public); u1->u2 is not.
        assert_eq!(snap.san.num_social_links(), 1);
        assert!(snap.node_coverage < 1.0);
    }

    #[test]
    fn private_user_attributes_hidden() {
        let fx = figure1();
        let mut public = vec![true; 6];
        public[fx.users[4].index()] = false; // u5 private
        let mut crawler = Crawler::new(vec![fx.users[3]]);
        let snap = crawler.crawl(&fx.san, &public);
        // u5 discovered (u4's out-list) but its attributes invisible:
        // Google keeps only u6; San Francisco keeps only u2.
        let total_attr_links = snap.san.num_attr_links();
        assert_eq!(
            total_attr_links,
            fx.san.num_attr_links() - 1 /* u1 unreachable */ - 2
        );
    }

    #[test]
    fn state_persists_across_days() {
        // Day 1: two components; crawler sees one. Day 2: a bridge link
        // appears and the second component becomes reachable.
        let mut san = San::new();
        let u: Vec<SocialId> = (0..4).map(|_| san.add_social_node()).collect();
        san.add_social_link(u[0], u[1]);
        san.add_social_link(u[2], u[3]);
        let mut crawler = Crawler::new(vec![u[0]]);
        let public = vec![true; 4];
        let day1 = crawler.crawl(&san, &public);
        assert_eq!(day1.san.num_social_nodes(), 2);
        assert_eq!(crawler.known().len(), 2);

        san.add_social_link(u[1], u[2]);
        let day2 = crawler.crawl(&san, &public);
        assert_eq!(day2.san.num_social_nodes(), 4);
        assert_eq!(day2.san.num_social_links(), 3);
    }

    #[test]
    fn growing_truth_ids_stay_valid() {
        // New users join the ground truth between crawls; the crawler's
        // known set must still be valid.
        let mut san = San::new();
        let u0 = san.add_social_node();
        let u1 = san.add_social_node();
        san.add_social_link(u0, u1);
        let mut crawler = Crawler::new(vec![u0]);
        crawler.crawl(&san, &[true, true]);
        let u2 = san.add_social_node();
        san.add_social_link(u1, u2);
        let snap = crawler.crawl(&san, &[true, true, true]);
        assert_eq!(snap.san.num_social_nodes(), 3);
    }

    #[test]
    fn empty_truth() {
        let san = San::new();
        let mut crawler = Crawler::new(vec![]);
        let snap = crawler.crawl(&san, &[]);
        assert_eq!(snap.san.num_social_nodes(), 0);
        assert_eq!(snap.node_coverage, 0.0);
    }

    #[test]
    #[should_panic(expected = "visibility vector")]
    fn visibility_length_checked() {
        let fx = figure1();
        let mut crawler = Crawler::new(vec![fx.users[0]]);
        crawler.crawl(&fx.san, &[true; 3]);
    }
}
