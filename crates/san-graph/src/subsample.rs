//! Attribute subsampling — the validation methodology of §4.3.
//!
//! Only ~22 % of Google+ users declared any attribute. To argue that those
//! users' attributes are representative, the paper removes each declared
//! attribute independently with probability 0.5 and checks that
//! attribute-related metrics are unchanged. [`subsample_attributes`]
//! reproduces that operation on any SAN.

use crate::ids::SocialId;
use crate::read::SanRead;
use crate::san::San;
use san_stats::SplitRng;

/// Returns a copy of `san` in which every attribute link is retained
/// independently with probability `keep_prob`. The social structure and the
/// attribute node set are preserved verbatim (attribute nodes may end up
/// with zero members, exactly as in the paper's subsampled SAN).
///
/// # Panics
/// Panics when `keep_prob` is outside `[0, 1]`.
pub fn subsample_attributes(san: &impl SanRead, keep_prob: f64, rng: &mut SplitRng) -> San {
    assert!(
        (0.0..=1.0).contains(&keep_prob),
        "keep_prob must be in [0,1], got {keep_prob}"
    );
    let mut out = San::with_capacity(san.num_social_nodes(), san.num_attr_nodes());
    for _ in 0..san.num_social_nodes() {
        out.add_social_node();
    }
    for a in san.attr_nodes() {
        out.add_attr_node(san.attr_type(a));
    }
    for (u, v) in san.social_links() {
        out.add_social_link(u, v);
    }
    for (u, a) in san.attr_links() {
        if rng.chance(keep_prob) {
            out.add_attr_link(u, a);
        }
    }
    out
}

/// Fraction of social nodes that declare at least one attribute (the
/// paper's "22 % of users declare at least one attribute" statistic).
pub fn attribute_declaration_rate(san: &impl SanRead) -> f64 {
    if san.num_social_nodes() == 0 {
        return 0.0;
    }
    let declared = san
        .social_nodes()
        .filter(|&u| san.attr_degree(u) > 0)
        .count();
    declared as f64 / san.num_social_nodes() as f64
}

/// Convenience: ids of social nodes with at least one attribute.
pub fn nodes_with_attributes(san: &impl SanRead) -> Vec<SocialId> {
    san.social_nodes()
        .filter(|&u| san.attr_degree(u) > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1;

    #[test]
    fn keep_all_is_identity() {
        let fx = figure1();
        let mut rng = SplitRng::new(1);
        let s = subsample_attributes(&fx.san, 1.0, &mut rng);
        assert_eq!(s.num_attr_links(), fx.san.num_attr_links());
        assert_eq!(s.num_social_links(), fx.san.num_social_links());
        s.check_consistency().unwrap();
    }

    #[test]
    fn keep_none_strips_all_attr_links() {
        let fx = figure1();
        let mut rng = SplitRng::new(2);
        let s = subsample_attributes(&fx.san, 0.0, &mut rng);
        assert_eq!(s.num_attr_links(), 0);
        // Attribute nodes remain (with zero members).
        assert_eq!(s.num_attr_nodes(), fx.san.num_attr_nodes());
        assert_eq!(s.num_social_links(), fx.san.num_social_links());
    }

    #[test]
    fn half_keeps_roughly_half() {
        // Big synthetic SAN: 1 user with 10_000 attributes.
        let mut san = San::new();
        let u = san.add_social_node();
        for _ in 0..10_000 {
            let a = san.add_attr_node(crate::ids::AttrType::Other);
            san.add_attr_link(u, a);
        }
        let mut rng = SplitRng::new(3);
        let s = subsample_attributes(&san, 0.5, &mut rng);
        let kept = s.num_attr_links() as f64;
        assert!((kept - 5_000.0).abs() < 300.0, "kept={kept}");
    }

    #[test]
    #[should_panic(expected = "keep_prob")]
    fn rejects_bad_probability() {
        let fx = figure1();
        let mut rng = SplitRng::new(4);
        subsample_attributes(&fx.san, 1.5, &mut rng);
    }

    #[test]
    fn declaration_rate_figure1() {
        let fx = figure1();
        // All six users declare at least one attribute.
        assert!((attribute_declaration_rate(&fx.san) - 1.0).abs() < 1e-12);
        assert_eq!(nodes_with_attributes(&fx.san).len(), 6);
    }

    #[test]
    fn declaration_rate_empty() {
        assert_eq!(attribute_declaration_rate(&San::new()), 0.0);
    }

    #[test]
    fn declaration_rate_partial() {
        let mut san = San::new();
        let u0 = san.add_social_node();
        let _u1 = san.add_social_node();
        let a = san.add_attr_node(crate::ids::AttrType::City);
        san.add_attr_link(u0, a);
        assert!((attribute_declaration_rate(&san) - 0.5).abs() < 1e-12);
    }
}
