//! Little-endian frame codec helpers shared by every wire format in the
//! workspace.
//!
//! The snapshot store ([`crate::store`]) established the house framing
//! style: fixed-width little-endian integers, explicit section names on
//! every truncation error, and *bounds before bytes* — a reader never
//! trusts a declared length until the underlying buffer has been checked
//! to actually hold it. `san-net`'s request/response frames follow the
//! same style over TCP; this module is the small codec kernel both sides
//! of that protocol (and future framed formats) build on, so the
//! byte-twiddling lives in exactly one audited place.
//!
//! [`WireWriter`] appends fixed-width values to a growable buffer;
//! [`WireReader`] consumes them from a borrowed slice, returning a typed
//! [`WireTruncated`] (carrying the section name that ran dry) instead of
//! panicking on short input. Neither ever reads past the slice it was
//! given.

/// A read ran off the end of the buffer while decoding `section`.
///
/// This is deliberately a bare struct, not an enum: truncation is the
/// *only* failure a fixed-width codec can hit. Callers wrap it into
/// their own richer error type (e.g. `NetError::Truncated`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTruncated {
    /// Name of the field or section that could not be fully read.
    pub section: &'static str,
}

impl std::fmt::Display for WireTruncated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated while reading {}", self.section)
    }
}

impl std::error::Error for WireTruncated {}

/// Append-only little-endian frame builder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// An empty writer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> WireWriter {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer into the finished frame.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-style little-endian reader over a borrowed slice.
///
/// Every `take_*` either returns the value and advances, or returns
/// [`WireTruncated`] naming the section — the cursor never moves past
/// the end and never panics on short input.
#[derive(Debug, Clone, Copy)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> WireReader<'a> {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Bytes still unread.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes `len` raw bytes, or reports which `section` was truncated.
    pub fn take_bytes(
        &mut self,
        len: usize,
        section: &'static str,
    ) -> Result<&'a [u8], WireTruncated> {
        let end = self.pos.checked_add(len).ok_or(WireTruncated { section })?;
        if end > self.bytes.len() {
            return Err(WireTruncated { section });
        }
        // BOUNDS: `end = pos + len` checked against `bytes.len()` (with
        // overflow-checked addition) immediately above; `pos ≤ end`.
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Takes a fixed-width array, or reports which `section` was
    /// truncated.
    pub fn take_array<const N: usize>(
        &mut self,
        section: &'static str,
    ) -> Result<[u8; N], WireTruncated> {
        let slice = self.take_bytes(N, section)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Takes one byte.
    pub fn take_u8(&mut self, section: &'static str) -> Result<u8, WireTruncated> {
        Ok(self.take_array::<1>(section)?[0])
    }

    /// Takes a little-endian `u16`.
    pub fn take_u16(&mut self, section: &'static str) -> Result<u16, WireTruncated> {
        Ok(u16::from_le_bytes(self.take_array(section)?))
    }

    /// Takes a little-endian `u32`.
    pub fn take_u32(&mut self, section: &'static str) -> Result<u32, WireTruncated> {
        Ok(u32::from_le_bytes(self.take_array(section)?))
    }

    /// Takes a little-endian `u64`.
    pub fn take_u64(&mut self, section: &'static str) -> Result<u64, WireTruncated> {
        Ok(u64::from_le_bytes(self.take_array(section)?))
    }

    /// Takes an `f64` from its IEEE-754 bit pattern, little-endian.
    pub fn take_f64(&mut self, section: &'static str) -> Result<f64, WireTruncated> {
        Ok(f64::from_bits(self.take_u64(section)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_width() {
        let mut w = WireWriter::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(std::f64::consts::PI);
        w.put_bytes(b"tail");
        let frame = w.finish();
        assert_eq!(frame.len(), 1 + 2 + 4 + 8 + 8 + 4);

        let mut r = WireReader::new(&frame);
        assert_eq!(r.take_u8("a").unwrap(), 0xAB);
        assert_eq!(r.take_u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.take_u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64("d").unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.take_f64("e").unwrap(), std::f64::consts::PI);
        assert_eq!(r.take_bytes(4, "f").unwrap(), b"tail");
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.consumed(), frame.len());
    }

    #[test]
    fn truncation_names_the_section_and_does_not_advance() {
        let bytes = [1u8, 2, 3];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.take_u16("head").unwrap(), 0x0201);
        let err = r.take_u32("payload len").unwrap_err();
        assert_eq!(err.section, "payload len");
        // The failed read must not consume the remaining byte.
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.take_u8("tail").unwrap(), 3);
    }

    #[test]
    fn huge_length_requests_fail_without_wrapping() {
        let bytes = [0u8; 8];
        let mut r = WireReader::new(&bytes);
        assert!(r.take_bytes(usize::MAX, "giant").is_err());
        assert!(r.take_bytes(usize::MAX - 4, "giant").is_err());
        assert_eq!(r.remaining(), 8);
    }

    #[test]
    fn little_endian_layout_matches_store_style() {
        let mut w = WireWriter::new();
        w.put_u32(0x0403_0201);
        assert_eq!(w.finish(), vec![0x01, 0x02, 0x03, 0x04]);
    }
}
