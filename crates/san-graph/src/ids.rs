//! Strongly-typed node identifiers and attribute types.
//!
//! Social and attribute nodes live in different id spaces; mixing them up is
//! a classic source of silent bugs in heterogeneous-network code, so both
//! are newtypes. Ids are dense `u32` indices assigned in insertion order —
//! insertion order is also *arrival order*, which the preferential-
//! attachment analysis (Theorem 2) relies on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a social node (a user).
///
/// `repr(transparent)` guarantees the id has exactly the size, alignment
/// and bit pattern of its `u32` payload — the zero-copy snapshot views
/// ([`CsrSanView`](crate::view::CsrSanView)) rely on this to reinterpret
/// on-disk little-endian `u32` columns as `&[SocialId]` in place.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[repr(transparent)]
pub struct SocialId(pub u32);

/// Identifier of an attribute node (a binary attribute such as
/// `Employer=Google`).
///
/// `repr(transparent)` for the same reason as [`SocialId`]: the zero-copy
/// views reinterpret raw `u32` columns as typed id slices.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[repr(transparent)]
pub struct AttrId(pub u32);

impl SocialId {
    /// The id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// The id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SocialId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The attribute categories the paper extracts from Google+ profiles (§2.2),
/// plus a catch-all for extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttrType {
    /// Name of a school attended.
    School,
    /// Declared major / field of study.
    Major,
    /// Name of an employer.
    Employer,
    /// Current city.
    City,
    /// Any other attribute category (dynamic attributes, interest groups…).
    Other,
}

impl AttrType {
    /// The four profile-derived types the paper measures.
    pub const PAPER_TYPES: [AttrType; 4] = [
        AttrType::School,
        AttrType::Major,
        AttrType::Employer,
        AttrType::City,
    ];

    /// Stable lowercase name (used by the text serialisation format).
    pub fn as_str(self) -> &'static str {
        match self {
            AttrType::School => "school",
            AttrType::Major => "major",
            AttrType::Employer => "employer",
            AttrType::City => "city",
            AttrType::Other => "other",
        }
    }

    /// Parses the stable name produced by [`AttrType::as_str`].
    pub fn from_str_name(s: &str) -> Option<AttrType> {
        match s {
            "school" => Some(AttrType::School),
            "major" => Some(AttrType::Major),
            "employer" => Some(AttrType::Employer),
            "city" => Some(AttrType::City),
            "other" => Some(AttrType::Other),
            _ => None,
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(SocialId(1) < SocialId(2));
        assert!(AttrId(0) < AttrId(10));
        assert_eq!(SocialId(7).index(), 7);
        assert_eq!(AttrId(3).index(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SocialId(5).to_string(), "u5");
        assert_eq!(AttrId(2).to_string(), "a2");
        assert_eq!(AttrType::Employer.to_string(), "employer");
    }

    #[test]
    fn attr_type_roundtrip() {
        for ty in [
            AttrType::School,
            AttrType::Major,
            AttrType::Employer,
            AttrType::City,
            AttrType::Other,
        ] {
            assert_eq!(AttrType::from_str_name(ty.as_str()), Some(ty));
        }
        assert_eq!(AttrType::from_str_name("nonsense"), None);
    }

    #[test]
    fn paper_types_excludes_other() {
        assert_eq!(AttrType::PAPER_TYPES.len(), 4);
        assert!(!AttrType::PAPER_TYPES.contains(&AttrType::Other));
    }

    #[test]
    fn serde_roundtrip() {
        let id = SocialId(42);
        let json = serde_json::to_string(&id).unwrap();
        let back: SocialId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
        let ty = AttrType::City;
        let json = serde_json::to_string(&ty).unwrap();
        let back: AttrType = serde_json::from_str(&json).unwrap();
        assert_eq!(ty, back);
    }
}
