//! [`CsrSanView`]: a borrowed, zero-copy [`SanRead`] over the raw bytes of
//! a `SANCSRBF` snapshot — no column is ever deserialised.
//!
//! [`CsrSan::read_from`](crate::store) materialises every column into an
//! owned `Vec`; this module reads the same bytes **in place**. The
//! columnar format was designed for it: every descriptor in the header
//! carries the column's absolute byte offset, all ten `u32` columns are
//! little-endian and 4-byte aligned relative to the file start, and the
//! single `u8` tag column comes last — so once the buffer has been
//! validated (header + checksum + structure, exactly the checks
//! [`CsrSan::read_from`] performs, shared through
//! [`StoreHeader`](crate::store::StoreHeader) and the store's semantic
//! validators), a view is eleven borrowed slices and two counters: O(1)
//! space beyond the underlying buffer, zero heap allocations, and every
//! [`SanRead`] query runs at the same speed as the owned
//! [`CsrSan`](crate::CsrSan) because both dispatch to identical
//! sorted-slice code.
//!
//! The intended buffer is a read-only mapped file
//! ([`MappedSnapshot`](crate::mmap::MappedSnapshot), page-aligned by
//! `mmap(2)`), but any 4-byte-aligned buffer works — [`AlignedBytes`]
//! re-homes an arbitrary byte vector for callers (and tests) that hold
//! snapshots in plain heap memory.
//!
//! # Safety boundary
//!
//! The only `unsafe` here is the slice reinterpretation in
//! [`cast_column`]: `&[u8]` → `&[u32]`/`&[SocialId]`/`&[AttrId]`. It is
//! sound because (1) [`SocialId`](crate::ids::SocialId) and
//! [`AttrId`](crate::ids::AttrId) are `repr(transparent)` over `u32`,
//! (2) the construction path rejects buffers whose base address is not
//! 4-byte aligned ([`StoreError::Misaligned`]) and the validated
//! descriptor tiling puts every `u32` column at a file offset divisible
//! by 4, (3) the wire format is little-endian and this module refuses to
//! compile on big-endian targets, and (4) the borrow ties every view to
//! the buffer's lifetime, so a view can never outlive (or mutate) the
//! bytes it reinterprets.

#[cfg(target_endian = "big")]
compile_error!(
    "CsrSanView reinterprets little-endian SANCSRBF columns in place; a \
     big-endian target would read every id byte-swapped. san-graph does \
     not currently support big-endian hosts — porting would mean gating \
     this module (and its mmap/serve consumers) on target_endian."
);

use crate::csr::{row, sorted_intersection_count, CsrSan};
use crate::ids::{AttrId, AttrType, SocialId};
use crate::read::SanRead;
use crate::store::{
    array_at, attr_type_from_tag, check_id_range, check_offsets, elem_bytes, fnv1a64, StoreError,
    StoreHeader, ARRAY_NAMES, CHECKSUM_BYTES, HEADER_BYTES, NUM_ARRAYS,
};
use std::borrow::Cow;
use std::fmt;

/// Alignment every `u32` column view requires of the buffer base address.
pub const COLUMN_ALIGN: usize = std::mem::align_of::<u32>();

/// Reinterprets a little-endian byte run as a typed 4-byte-element column.
///
/// # Safety
/// `T` must be `u32` or a `repr(transparent)` wrapper around it;
/// `bytes.len()` must be a multiple of 4 and `bytes.as_ptr()` 4-byte
/// aligned. Callers uphold this by validating buffer alignment once at
/// construction and slicing columns on the validated descriptor grid.
unsafe fn cast_column<T>(bytes: &[u8]) -> &[T] {
    debug_assert_eq!(std::mem::size_of::<T>(), 4, "4-byte element type");
    debug_assert_eq!(bytes.len() % 4, 0, "whole elements");
    debug_assert_eq!(bytes.as_ptr() as usize % COLUMN_ALIGN, 0, "aligned base");
    // SAFETY: forwards this fn's `# Safety` contract — the caller
    // guarantees T is (transparently) u32, the byte length is a whole
    // number of elements, and the base pointer is 4-byte aligned, so the
    // raw-parts slice covers exactly the bytes of `bytes`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / 4) }
}

/// A borrowed, zero-copy CSR snapshot view over validated `SANCSRBF`
/// bytes.
///
/// Implements [`SanRead`] with exactly the owned snapshot's algorithms
/// (sorted rows, binary-search membership, zero-allocation `Γs(u)`), so
/// every analytic downstream runs on it unchanged and produces
/// bit-identical results — the `view_equivalence` and
/// `mapped_equivalence` suites lock this down. `Copy`: a view is eleven
/// slices and two counters, nothing owned.
#[derive(Clone, Copy)]
pub struct CsrSanView<'a> {
    out_off: &'a [u32],
    out_dst: &'a [SocialId],
    in_off: &'a [u32],
    in_src: &'a [SocialId],
    ua_off: &'a [u32],
    ua_attr: &'a [AttrId],
    am_off: &'a [u32],
    am_user: &'a [SocialId],
    und_off: &'a [u32],
    und_nbr: &'a [SocialId],
    attr_tags: &'a [u8],
    num_social_links: usize,
    num_attr_links: usize,
}

impl fmt::Debug for CsrSanView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrSanView")
            .field("social_nodes", &(self.out_off.len() - 1))
            .field("attr_nodes", &self.attr_tags.len())
            .field("social_links", &self.num_social_links)
            .field("attr_links", &self.num_attr_links)
            .finish_non_exhaustive()
    }
}

impl<'a> CsrSanView<'a> {
    /// Validates a `SANCSRBF` buffer and builds a zero-copy view over it.
    ///
    /// Performs the full [`CsrSan::read_from`](crate::store) validation —
    /// header checks, per-column bounds, checksum, then the semantic
    /// validators (attribute tags, offset-table monotonicity, id
    /// ranges) — once; afterwards every accessor is an O(1) slice view.
    /// Any bytes the eager loader rejects are rejected here with a typed
    /// [`StoreError`] (never a panic, never UB); additionally the buffer
    /// base must be 4-byte aligned ([`StoreError::Misaligned`]) — mapped
    /// files always are, heap buffers can use [`AlignedBytes`].
    pub fn new(bytes: &'a [u8]) -> Result<CsrSanView<'a>, StoreError> {
        Self::new_with_header(bytes).map(|(view, _)| view)
    }

    /// [`CsrSanView::new`] that also hands back the parsed [`StoreHeader`],
    /// so callers that cache the column grid
    /// ([`MappedSnapshot::open`](crate::mmap::MappedSnapshot)) validate and
    /// parse exactly once.
    pub(crate) fn new_with_header(
        bytes: &'a [u8],
    ) -> Result<(CsrSanView<'a>, StoreHeader), StoreError> {
        if bytes.len() < HEADER_BYTES {
            return Err(StoreError::Truncated { section: "header" });
        }
        // BOUNDS: the length guard above keeps this untrusted-input
        // read fully in range (array_at zero-fills on a bug).
        let header_bytes: [u8; HEADER_BYTES] = array_at(bytes, 0);
        let header = StoreHeader::parse(&header_bytes)?;
        // Column bounds before touching any payload, in file order, so a
        // short buffer names the first section it cannot hold (matching
        // the stream reader's truncation reporting).
        for (i, &section) in ARRAY_NAMES.iter().enumerate() {
            let end = header.array_offset(i) + header.array_count(i) * elem_bytes(i);
            if (bytes.len() as u64) < end {
                return Err(StoreError::Truncated { section });
            }
        }
        let payload_end = header.payload_end() as usize;
        if bytes.len() < payload_end + CHECKSUM_BYTES {
            return Err(StoreError::Truncated {
                section: "checksum",
            });
        }
        // BOUNDS: the guard above checked
        // bytes.len() >= payload_end + CHECKSUM_BYTES, covering both the
        // payload slice and the trailer slice on untrusted input.
        let expected = fnv1a64(&bytes[..payload_end]);
        let found = u64::from_le_bytes(array_at(bytes, payload_end));
        if expected != found {
            return Err(StoreError::BadChecksum { expected, found });
        }
        if !(bytes.as_ptr() as usize).is_multiple_of(COLUMN_ALIGN) {
            return Err(StoreError::Misaligned {
                required: COLUMN_ALIGN,
            });
        }
        let view = Self::from_trusted(bytes, &header);
        // Semantic validation in the eager loader's order: tags, then
        // offset-table shape, then id ranges.
        for &tag in view.attr_tags {
            attr_type_from_tag(tag)?;
        }
        check_offsets(view.out_off, view.out_dst.len(), ARRAY_NAMES[0])?;
        check_offsets(view.in_off, view.in_src.len(), ARRAY_NAMES[2])?;
        check_offsets(view.ua_off, view.ua_attr.len(), ARRAY_NAMES[4])?;
        check_offsets(view.am_off, view.am_user.len(), ARRAY_NAMES[6])?;
        check_offsets(view.und_off, view.und_nbr.len(), ARRAY_NAMES[8])?;
        let n = view.out_off.len() - 1;
        let m = view.attr_tags.len();
        check_id_range(view.out_dst, n, ARRAY_NAMES[1], |v: SocialId| v.0)?;
        check_id_range(view.in_src, n, ARRAY_NAMES[3], |v: SocialId| v.0)?;
        check_id_range(view.ua_attr, m, ARRAY_NAMES[5], |v: AttrId| v.0)?;
        check_id_range(view.am_user, n, ARRAY_NAMES[7], |v: SocialId| v.0)?;
        check_id_range(view.und_nbr, n, ARRAY_NAMES[9], |v: SocialId| v.0)?;
        Ok((view, header))
    }

    /// Builds the view from a buffer that has **already** passed the full
    /// [`CsrSanView::new`] validation with this exact header — the O(1)
    /// re-view path [`MappedSnapshot`](crate::mmap::MappedSnapshot) uses
    /// after validating its mapping once at open time.
    pub(crate) fn from_trusted(bytes: &'a [u8], header: &StoreHeader) -> CsrSanView<'a> {
        let col = |i: usize| {
            let start = header.array_offset(i) as usize;
            let len = header.array_count(i) as usize * elem_bytes(i) as usize;
            debug_assert!(i == NUM_ARRAYS - 1 || start.is_multiple_of(COLUMN_ALIGN));
            // BOUNDS: from_trusted's contract — this exact header already
            // passed new_with_header's per-array end <= len validation.
            &bytes[start..start + len]
        };
        // SAFETY: the ten u32 columns sit at validated, 4-byte-aligned
        // offsets (header tiling starts at HEADER_BYTES, a multiple of 4,
        // and each u32 column's byte length is a multiple of 4; the tag
        // column is last), the buffer base is 4-byte aligned (checked in
        // `new`, page-aligned for mappings), SocialId/AttrId are
        // repr(transparent) u32 wrappers, and the target is little-endian
        // (compile-time enforced above).
        unsafe {
            CsrSanView {
                out_off: cast_column::<u32>(col(0)),
                out_dst: cast_column::<SocialId>(col(1)),
                in_off: cast_column::<u32>(col(2)),
                in_src: cast_column::<SocialId>(col(3)),
                ua_off: cast_column::<u32>(col(4)),
                ua_attr: cast_column::<AttrId>(col(5)),
                am_off: cast_column::<u32>(col(6)),
                am_user: cast_column::<SocialId>(col(7)),
                und_off: cast_column::<u32>(col(8)),
                und_nbr: cast_column::<SocialId>(col(9)),
                attr_tags: col(10),
                num_social_links: header.num_social_links() as usize,
                num_attr_links: header.num_attr_links() as usize,
            }
        }
    }

    /// The precomputed sorted undirected neighbourhood `Γs(u)`, borrowed
    /// straight from the buffer (the view analogue of
    /// [`CsrSan::undirected_neighbors`]).
    #[inline]
    pub fn undirected_neighbors(&self, u: SocialId) -> &'a [SocialId] {
        row(self.und_off, self.und_nbr, u.index())
    }

    /// Undirected degree `|Γs(u)|` in O(1).
    #[inline]
    pub fn undirected_degree(&self, u: SocialId) -> usize {
        self.undirected_neighbors(u).len()
    }

    /// Heap bytes owned by the view itself: always **0**. The view
    /// borrows every column from the underlying buffer; its entire
    /// footprint is `size_of::<CsrSanView>()` on the stack (eleven
    /// slices + two counters). Kept as a method so the zero-allocation
    /// guarantee is audited the same way [`CsrSan::heap_bytes`] audits
    /// the owned form.
    pub fn heap_bytes(&self) -> usize {
        0
    }

    /// Materialises the view into an owned [`CsrSan`] — the seed for
    /// delta-patching forward from a mapped day
    /// (`SnapshotSource::Mapped` in `san-metrics`). Each column is copied
    /// into an exactly-sized allocation, so the result's
    /// [`CsrSan::heap_bytes`] matches a [`CsrSan::read_from`] load of the
    /// same bytes.
    pub fn to_owned_csr(&self) -> CsrSan {
        CsrSan {
            out_off: self.out_off.to_vec(),
            out_dst: self.out_dst.to_vec(),
            in_off: self.in_off.to_vec(),
            in_src: self.in_src.to_vec(),
            ua_off: self.ua_off.to_vec(),
            ua_attr: self.ua_attr.to_vec(),
            am_off: self.am_off.to_vec(),
            am_user: self.am_user.to_vec(),
            und_off: self.und_off.to_vec(),
            und_nbr: self.und_nbr.to_vec(),
            attr_types: self
                .attr_tags
                .iter()
                // Tags were validated at construction; `Other` is the
                // defensive catch-all if that invariant ever breaks.
                .map(|&t| attr_type_from_tag(t).unwrap_or(AttrType::Other))
                .collect(),
            num_social_links: self.num_social_links,
            num_attr_links: self.num_attr_links,
        }
    }
}

impl SanRead for CsrSanView<'_> {
    #[inline]
    fn num_social_nodes(&self) -> usize {
        self.out_off.len() - 1
    }

    #[inline]
    fn num_attr_nodes(&self) -> usize {
        self.am_off.len() - 1
    }

    #[inline]
    fn num_social_links(&self) -> usize {
        self.num_social_links
    }

    #[inline]
    fn num_attr_links(&self) -> usize {
        self.num_attr_links
    }

    #[inline]
    fn out_neighbors(&self, u: SocialId) -> &[SocialId] {
        row(self.out_off, self.out_dst, u.index())
    }

    #[inline]
    fn in_neighbors(&self, u: SocialId) -> &[SocialId] {
        row(self.in_off, self.in_src, u.index())
    }

    #[inline]
    fn attrs_of(&self, u: SocialId) -> &[AttrId] {
        row(self.ua_off, self.ua_attr, u.index())
    }

    #[inline]
    fn members_of(&self, a: AttrId) -> &[SocialId] {
        row(self.am_off, self.am_user, a.index())
    }

    #[inline]
    fn attr_type(&self, a: AttrId) -> AttrType {
        // Tags were validated at construction; `Other` is the defensive
        // catch-all if that invariant ever breaks.
        attr_type_from_tag(self.attr_tags[a.index()]).unwrap_or(AttrType::Other)
    }

    /// Binary search on the shorter of the two sorted rows (same
    /// algorithm as the owned snapshot).
    fn has_social_link(&self, src: SocialId, dst: SocialId) -> bool {
        let out = self.out_neighbors(src);
        let inc = self.in_neighbors(dst);
        if out.len() <= inc.len() {
            out.binary_search(&dst).is_ok()
        } else {
            inc.binary_search(&src).is_ok()
        }
    }

    fn has_attr_link(&self, user: SocialId, attr: AttrId) -> bool {
        let ua = self.attrs_of(user);
        let am = self.members_of(attr);
        if ua.len() <= am.len() {
            ua.binary_search(&attr).is_ok()
        } else {
            am.binary_search(&user).is_ok()
        }
    }

    /// Zero-allocation: borrows the precomputed union column in place.
    #[inline]
    fn social_neighbors(&self, u: SocialId) -> Cow<'_, [SocialId]> {
        Cow::Borrowed(self.undirected_neighbors(u))
    }

    /// Sorted-merge intersection (no hashing).
    fn common_attrs(&self, u: SocialId, v: SocialId) -> usize {
        sorted_intersection_count(self.attrs_of(u), self.attrs_of(v))
    }

    /// Sorted-merge intersection of the precomputed unions, excluding the
    /// endpoints themselves.
    fn common_social_neighbors(&self, u: SocialId, v: SocialId) -> usize {
        let nu = self.undirected_neighbors(u);
        let nv = self.undirected_neighbors(v);
        let mut count = sorted_intersection_count(nu, nv);
        for x in [u, v] {
            if nu.binary_search(&x).is_ok() && nv.binary_search(&x).is_ok() {
                count -= 1;
            }
        }
        count
    }
}

/// An owned byte buffer whose base address is guaranteed 4-byte aligned
/// (8, in fact), for holding snapshot bytes that [`CsrSanView::new`] can
/// view in place when the source is heap memory rather than a mapping.
///
/// `Vec<u8>` only guarantees 1-byte alignment; this re-homes the bytes
/// into a `u64`-backed allocation. Mapped files never need it (pages are
/// 4 KiB-aligned).
pub struct AlignedBytes {
    storage: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into a fresh 8-byte-aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> AlignedBytes {
        let words = bytes.len().div_ceil(8);
        let mut storage = vec![0u64; words];
        // SAFETY: the destination allocation holds `words * 8 >= len`
        // bytes; u64 has no validity constraints on its bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                storage.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
        AlignedBytes {
            storage,
            len: bytes.len(),
        }
    }

    /// A zeroed 8-byte-aligned buffer of `len` bytes — the destination the
    /// v2 decoder ([`decode_v2_image`](crate::store::decode_v2_image))
    /// fills column by column without any intermediate staging.
    pub fn zeroed(len: usize) -> AlignedBytes {
        AlignedBytes {
            storage: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// The buffer contents (base address 8-byte aligned).
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: the storage allocation is `storage.len() * 8` bytes and
        // `len` never exceeds it; u8 reads of u64 storage are always valid.
        unsafe { std::slice::from_raw_parts(self.storage.as_ptr().cast::<u8>(), self.len) }
    }

    /// Mutable view of the buffer contents, for decoders that assemble a
    /// snapshot image in place.
    pub fn as_mut_bytes(&mut self) -> &mut [u8] {
        // SAFETY: mirror of `as_bytes` — the storage allocation is
        // `storage.len() * 8 >= len` bytes, the exclusive borrow of `self`
        // makes the mutable slice unique, and any byte pattern is a valid
        // u64, so writes through the u8 view cannot break storage validity.
        unsafe { std::slice::from_raw_parts_mut(self.storage.as_mut_ptr().cast::<u8>(), self.len) }
    }
}

impl std::ops::Deref for AlignedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedBytes")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::TimelineBuilder;
    use crate::san::San;

    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = assert_send_sync::<CsrSanView<'static>>();

    // The zero-copy contract, statically: ids really are bare u32s and a
    // view really is a handful of slices.
    const _: () = assert!(std::mem::size_of::<SocialId>() == 4);
    const _: () = assert!(std::mem::align_of::<SocialId>() == 4);
    const _: () = assert!(std::mem::size_of::<AttrId>() == 4);
    const _: () = assert!(
        std::mem::size_of::<CsrSanView<'static>>()
            <= 11 * std::mem::size_of::<&[u8]>() + 2 * std::mem::size_of::<usize>()
    );

    fn sample_csr() -> CsrSan {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        let u2 = tb.add_social_node();
        let a0 = tb.add_attr_node(AttrType::City);
        let a1 = tb.add_attr_node(AttrType::Other);
        tb.add_social_link(u0, u1);
        tb.add_social_link(u1, u0);
        tb.add_social_link(u2, u0);
        tb.add_attr_link(u0, a0);
        tb.add_attr_link(u2, a1);
        tb.finish().1.freeze()
    }

    #[test]
    fn view_agrees_with_owned_snapshot() {
        let csr = sample_csr();
        let bytes = AlignedBytes::from_bytes(&csr.to_store_bytes());
        let view = CsrSanView::new(&bytes).expect("valid bytes");
        assert_eq!(view.num_social_nodes(), csr.num_social_nodes());
        assert_eq!(view.num_attr_nodes(), csr.num_attr_nodes());
        assert_eq!(SanRead::num_social_links(&view), csr.num_social_links);
        for u in 0..csr.num_social_nodes() as u32 {
            let u = SocialId(u);
            assert_eq!(view.out_neighbors(u), SanRead::out_neighbors(&csr, u));
            assert_eq!(view.in_neighbors(u), SanRead::in_neighbors(&csr, u));
            assert_eq!(view.attrs_of(u), SanRead::attrs_of(&csr, u));
            assert_eq!(view.undirected_neighbors(u), csr.undirected_neighbors(u));
        }
        for a in 0..csr.num_attr_nodes() as u32 {
            let a = AttrId(a);
            assert_eq!(view.members_of(a), SanRead::members_of(&csr, a));
            assert_eq!(view.attr_type(a), SanRead::attr_type(&csr, a));
        }
        assert_eq!(view.to_owned_csr(), csr);
        assert_eq!(view.heap_bytes(), 0);
    }

    #[test]
    fn empty_graph_views() {
        let empty = San::new().freeze();
        let bytes = AlignedBytes::from_bytes(&empty.to_store_bytes());
        let view = CsrSanView::new(&bytes).expect("empty snapshot is valid");
        assert_eq!(view.num_social_nodes(), 0);
        assert_eq!(view.num_attr_nodes(), 0);
        assert_eq!(view.to_owned_csr(), empty);
    }

    #[test]
    fn misaligned_buffer_is_rejected_typed() {
        let bytes = sample_csr().to_store_bytes();
        // Force a 4-misaligned base by offsetting into a larger buffer:
        // of any four consecutive addresses, three are misaligned.
        let mut padded = vec![0u8; bytes.len() + 8];
        let base = padded.as_ptr() as usize;
        let shift = (0..COLUMN_ALIGN)
            .find(|s| !(base + s).is_multiple_of(COLUMN_ALIGN))
            .expect("three of four offsets are misaligned");
        padded[shift..shift + bytes.len()].copy_from_slice(&bytes);
        let err = CsrSanView::new(&padded[shift..shift + bytes.len()])
            .expect_err("misaligned base must be rejected");
        assert!(
            matches!(err, StoreError::Misaligned { required: 4 }),
            "{err}"
        );
    }

    #[test]
    fn aligned_bytes_roundtrip_and_alignment() {
        for len in [0usize, 1, 7, 8, 9, 204, 1000] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
            let aligned = AlignedBytes::from_bytes(&src);
            assert_eq!(aligned.as_bytes(), src.as_slice());
            assert_eq!(aligned.as_bytes().as_ptr() as usize % 8, 0);
        }
    }

    #[test]
    fn zeroed_buffer_is_writable_in_place() {
        for len in [0usize, 1, 7, 8, 9, 204, 1000] {
            let mut buf = AlignedBytes::zeroed(len);
            assert!(buf.as_bytes().iter().all(|&b| b == 0));
            assert_eq!(buf.as_bytes().len(), len);
            assert_eq!(buf.as_bytes().as_ptr() as usize % 8, 0);
            for (i, b) in buf.as_mut_bytes().iter_mut().enumerate() {
                *b = (i * 37) as u8;
            }
            let expect: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
            assert_eq!(buf.as_bytes(), expect.as_slice());
        }
    }

    #[test]
    fn view_is_copy_and_shareable_across_threads() {
        let csr = sample_csr();
        let bytes = AlignedBytes::from_bytes(&csr.to_store_bytes());
        let view = CsrSanView::new(&bytes).expect("valid bytes");
        let totals: Vec<usize> = std::thread::scope(|scope| {
            (0..4)
                .map(|t| {
                    let v = view; // Copy
                    scope.spawn(move || {
                        v.social_nodes()
                            .skip(t)
                            .step_by(4)
                            .map(|u| v.out_degree(u))
                            .sum::<usize>()
                    })
                })
                .map(|h| h.join().expect("no panic"))
                .collect::<Vec<_>>()
        });
        assert_eq!(
            totals.iter().sum::<usize>(),
            SanRead::num_social_links(&csr)
        );
    }
}
