//! Column codecs for the SANCSRBF v2 snapshot format: frame-of-reference
//! blocks with zigzag + LEB128-varint deltas over `u32` sequences.
//!
//! Every CSR column the v1 format stores as raw little-endian `u32`s is
//! either an offset table (non-decreasing, small consecutive gaps) or a
//! sorted-per-row id list (small deltas within a row, one negative jump at
//! each row boundary). Both compress the same way: the stream is cut into
//! [`BLOCK`]-value blocks; the first value of each block is written as a
//! plain varint (the *frame*, an absolute restart point), and every later
//! value as the zigzag-encoded varint of its difference from the previous
//! value. Restarts every [`BLOCK`] values bound how much a decoder must
//! process sequentially, which is what lets the mmap path decode one
//! column at a time into an owned buffer without O(file) scratch.
//!
//! The decoder trusts nothing: truncated or overlong varints, frames or
//! deltas outside `u32` range, and streams whose length disagrees with the
//! declared value count are all rejected as typed
//! [`StoreError::BadCodec`] — never a panic, never a wrong value. Byte
//! access goes through `get`-style bounds checks only; there is no direct
//! untrusted indexing in this module.

use crate::store::StoreError;

/// Values per frame-of-reference block. The first value of every block is
/// an absolute varint restart; the remaining `BLOCK - 1` are deltas.
pub const BLOCK: usize = 1024;

/// Varints longer than this many bytes cannot occur in a valid stream:
/// frames are `u32` (≤ 5 × 7 = 35 bits) and zigzag deltas between `u32`s
/// fit 33 bits + sign (≤ 34 bits). A sixth continuation byte is corruption.
const MAX_VARINT_BYTES: usize = 5;

/// Largest value a [`MAX_VARINT_BYTES`]-byte varint may carry: 35 bits.
const MAX_VARINT_VALUE: u64 = (1 << 35) - 1;

/// Upper bound on the encoded size of `count` values (every varint at its
/// [`MAX_VARINT_BYTES`] worst case), or `None` on overflow. Header
/// validation uses this to reject absurd declared byte lengths before any
/// allocation.
pub fn max_encoded_len(count: u64) -> Option<u64> {
    count.checked_mul(MAX_VARINT_BYTES as u64)
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Appends the codec stream for `values` to `out`. The encoding of a
/// sequence is a pure function of the sequence — no headers, no padding —
/// so callers record `(count, byte_len)` alongside the stream.
pub fn encode_u32s(values: &[u32], out: &mut Vec<u8>) {
    encode_u32s_by(values, |v| v, out);
}

/// [`encode_u32s`] over any element type with a `u32` wire form (typed
/// newtype id columns encode without staging an intermediate `Vec<u32>`).
pub fn encode_u32s_by<T: Copy>(values: &[T], as_u32: impl Fn(T) -> u32, out: &mut Vec<u8>) {
    let mut prev = 0u32;
    for (i, &v) in values.iter().enumerate() {
        let v = as_u32(v);
        if i % BLOCK == 0 {
            put_varint(u64::from(v), out);
        } else {
            put_varint(zigzag(i64::from(v) - i64::from(prev)), out);
        }
        prev = v;
    }
}

/// One bounds-checked varint starting at `pos`; returns the value and the
/// position after it. Truncation and overlength are typed, never panics.
#[inline]
fn read_varint(
    bytes: &[u8],
    mut pos: usize,
    array: &'static str,
) -> Result<(u64, usize), StoreError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_BYTES {
        let Some(&b) = bytes.get(pos) else {
            return Err(StoreError::BadCodec {
                array,
                reason: "truncated varint",
            });
        };
        pos += 1;
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok((value, pos));
        }
        shift += 7;
    }
    Err(StoreError::BadCodec {
        array,
        reason: "overlong varint",
    })
}

/// Decodes exactly `count` values from `bytes`, handing each `(index,
/// value)` to `emit`. The whole stream must be consumed: trailing bytes
/// are corruption, as is running dry early. `array` names the column in
/// the typed error.
pub fn decode_u32s_with(
    bytes: &[u8],
    count: usize,
    array: &'static str,
    mut emit: impl FnMut(usize, u32),
) -> Result<(), StoreError> {
    let mut pos = 0usize;
    let mut prev = 0i64;
    for i in 0..count {
        let (raw, next) = read_varint(bytes, pos, array)?;
        pos = next;
        let value = if i % BLOCK == 0 {
            if raw > u64::from(u32::MAX) {
                return Err(StoreError::BadCodec {
                    array,
                    reason: "frame out of u32 range",
                });
            }
            raw as i64
        } else {
            if raw > MAX_VARINT_VALUE {
                return Err(StoreError::BadCodec {
                    array,
                    reason: "delta magnitude out of range",
                });
            }
            let v = prev + unzigzag(raw);
            if v < 0 || v > i64::from(u32::MAX) {
                return Err(StoreError::BadCodec {
                    array,
                    reason: "delta leaves u32 range",
                });
            }
            v
        };
        prev = value;
        emit(i, value as u32);
    }
    if pos != bytes.len() {
        return Err(StoreError::BadCodec {
            array,
            reason: "trailing bytes after last value",
        });
    }
    Ok(())
}

/// Decodes exactly `count` values into a fresh `Vec<u32>`.
pub fn decode_u32s(
    bytes: &[u8],
    count: usize,
    array: &'static str,
) -> Result<Vec<u32>, StoreError> {
    let mut out = vec![0u32; count];
    decode_u32s_with(bytes, count, array, |i, v| out[i] = v)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> Vec<u8> {
        let mut enc = Vec::new();
        encode_u32s(values, &mut enc);
        let back = decode_u32s(&enc, values.len(), "test").expect("decode");
        assert_eq!(back, values);
        enc
    }

    #[test]
    fn roundtrips_edge_sequences() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[u32::MAX]);
        roundtrip(&[0, u32::MAX, 0, u32::MAX]);
        roundtrip(&(0..5000u32).collect::<Vec<_>>());
        let sawtooth: Vec<u32> = (0..4096u32)
            .map(|i| if i % 2 == 0 { i } else { u32::MAX - i })
            .collect();
        roundtrip(&sawtooth);
    }

    #[test]
    fn monotone_offsets_compress_well() {
        // A typical offset table: ~8 links/row. One byte per delta plus a
        // handful of restart frames — far under the 4 raw bytes.
        let offs: Vec<u32> = (0..100_000u32).map(|i| i * 8).collect();
        let enc = roundtrip(&offs);
        assert!(
            enc.len() * 3 < offs.len() * 4,
            "expected ≥ 3× over raw, got {} vs {}",
            enc.len(),
            offs.len() * 4
        );
    }

    #[test]
    fn block_restarts_are_absolute() {
        // Constant high values: every block restart re-encodes the
        // absolute value; deltas between equal values are single zeros.
        let vals = vec![u32::MAX - 7; BLOCK * 3 + 5];
        let enc = roundtrip(&vals);
        assert!(enc.len() < vals.len() * 2);
    }

    #[test]
    fn truncation_is_typed() {
        let mut enc = Vec::new();
        encode_u32s(&[300, 301, 299], &mut enc);
        for cut in 0..enc.len() {
            let err = decode_u32s(&enc[..cut], 3, "col").expect_err("truncated");
            assert!(
                matches!(err, StoreError::BadCodec { array: "col", .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn overlong_varint_is_typed() {
        let err = decode_u32s(&[0x80; 6], 1, "col").expect_err("overlong");
        assert!(matches!(
            err,
            StoreError::BadCodec {
                reason: "overlong varint",
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_frame_is_typed() {
        // 2^33 as a frame value: a valid varint, not a valid u32.
        let mut enc = Vec::new();
        put_varint(1 << 33, &mut enc);
        let err = decode_u32s(&enc, 1, "col").expect_err("huge frame");
        assert!(matches!(
            err,
            StoreError::BadCodec {
                reason: "frame out of u32 range",
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_delta_is_typed() {
        // Frame 0 followed by delta -1: would decode to -1.
        let mut enc = Vec::new();
        put_varint(0, &mut enc);
        put_varint(zigzag(-1), &mut enc);
        let err = decode_u32s(&enc, 2, "col").expect_err("negative value");
        assert!(matches!(
            err,
            StoreError::BadCodec {
                reason: "delta leaves u32 range",
                ..
            }
        ));
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let mut enc = Vec::new();
        encode_u32s(&[1, 2, 3], &mut enc);
        enc.push(0x00);
        let err = decode_u32s(&enc, 3, "col").expect_err("trailing");
        assert!(matches!(
            err,
            StoreError::BadCodec {
                reason: "trailing bytes after last value",
                ..
            }
        ));
    }

    #[test]
    fn zigzag_is_involutive_at_extremes() {
        for v in [0i64, -1, 1, i64::from(u32::MAX), -i64::from(u32::MAX)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
