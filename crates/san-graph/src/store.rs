//! Columnar binary snapshot store: persist a [`CsrSan`] and load it back
//! without replaying a single event.
//!
//! # Format (`SANCSRBF`, version 1)
//!
//! A snapshot file is a fixed-size header, eleven contiguous columnar
//! payload arrays, and a trailing checksum — everything little-endian:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic: b"SANCSRBF"
//!      8     4  format version: u32 (currently 1)
//!     12     8  num_social_links: u64
//!     20     8  num_attr_links:   u64
//!     28   176  11 array descriptors, one per payload array, in file order:
//!                 { byte_offset: u64, element_count: u64 }
//!    204     …  payload arrays, contiguous, in descriptor order:
//!                 out_off   u32 × (n+1)   CSR row offsets, Γs,out
//!                 out_dst   u32 × Es      destination ids
//!                 in_off    u32 × (n+1)   CSR row offsets, Γs,in
//!                 in_src    u32 × Es      source ids
//!                 ua_off    u32 × (n+1)   CSR row offsets, user→attr
//!                 ua_attr   u32 × Ea      attribute ids
//!                 am_off    u32 × (m+1)   CSR row offsets, attr→user
//!                 am_user   u32 × Ea      member ids
//!                 und_off   u32 × (n+1)   CSR row offsets, Γs (union)
//!                 und_nbr   u32 × U       undirected neighbour ids
//!                 attr_types u8 × m       attribute-type tags
//!   tail      8  FNV-1a 64-bit checksum of every preceding byte
//! ```
//!
//! Each array is written as raw little-endian elements with **no padding**
//! between arrays, and every descriptor's `byte_offset` is absolute from
//! the start of the snapshot — a future mmap path can view any column in
//! place from the header alone without touching the others.
//!
//! ## Versioning policy
//!
//! The magic identifies the family; `version` is bumped on **any** layout
//! change (array order, element width, header field). Readers reject
//! versions they do not know ([`StoreError::UnsupportedVersion`]) rather
//! than guessing: snapshot files are cheap to regenerate from the event
//! log, so there is no migration machinery — old files are simply
//! re-frozen.
//!
//! ## Validation
//!
//! [`CsrSan::read_from`] never panics on untrusted bytes and never returns
//! a structurally inconsistent graph. Every failure is a typed
//! [`StoreError`]:
//!
//! * short stream anywhere → [`StoreError::Truncated`],
//! * wrong magic / unknown version → [`StoreError::BadMagic`] /
//!   [`StoreError::UnsupportedVersion`],
//! * descriptors that do not tile the payload region exactly →
//!   [`StoreError::OffsetMismatch`],
//! * element counts that disagree with each other or with the header
//!   link counters → [`StoreError::CountMismatch`],
//! * a CSR offset table that does not start at 0, decreases, or does not
//!   end at its payload length → [`StoreError::NonMonotoneOffsets`],
//! * an unknown attribute-type tag → [`StoreError::BadAttrType`],
//! * a neighbour/member id outside the node range →
//!   [`StoreError::IdOutOfRange`],
//! * a checksum mismatch (random corruption anywhere) →
//!   [`StoreError::BadChecksum`].
//!
//! Header-level checks (magic, version, descriptor tiling, cross-array
//! counts — including a hard cap of `u32::MAX` elements per array, which
//! no valid snapshot can exceed since CSR offsets are `u32`) run before
//! any payload is allocated, and payload reservations trust a declared
//! count only up to a fixed bound before the stream has delivered the
//! bytes — so a crafted header can neither panic the reader nor reserve
//! memory the file does not contain. The offset-table and id-range
//! validators run after the checksum has vouched for the bytes,
//! so random corruption surfaces as [`StoreError::BadChecksum`] while a
//! deliberately re-sealed file still cannot smuggle in a non-monotone
//! table or a dangling id.
//!
//! # Vaults
//!
//! [`SnapshotVault`] turns the single-file format into a persisted
//! timeline: a directory of `day-NNNN.csr` files plus a `manifest.txt`
//! index. [`SnapshotVault::save_timeline`] freezes every `step`-th day
//! through the delta pipeline and persists it;
//! [`SanTimeline::resume_from_vault`](crate::SanTimeline::resume_from_vault)
//! then warm-starts any later sweep from the nearest persisted day instead
//! of replaying from day 0.
//!
//! # Format (`SANCSRBF`, version 2)
//!
//! Version 2 shares v1's magic, little-endian discipline, and FNV-1a 64
//! trailer, but compresses every `u32` column through the
//! [`codec`] pipeline — 1024-element frame-of-reference
//! blocks whose deltas are zigzag-varint coded — and splits a persisted
//! timeline into **full** days and **delta** days. Byte 12 (directly after
//! the version word) is a kind byte: [`V2_KIND_FULL`] or
//! [`V2_KIND_DELTA`].
//!
//! A **full** day is self-contained, v1's eleven arrays in the same order
//! with compressed payloads:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic: b"SANCSRBF"
//!      8     4  format version: u32 = 2
//!     12     1  kind: u8 = 0 (full)
//!     13     3  padding (zero)
//!     16     8  num_social_links: u64
//!     24     8  num_attr_links:   u64
//!     32   176  11 column descriptors, one per array, in file order:
//!                 { element_count: u64, encoded_byte_len: u64 }
//!    208     …  payloads, contiguous, in descriptor order; u32 arrays are
//!               codec streams, attr_types stays raw u8 × m
//!   tail      8  FNV-1a 64-bit checksum of every preceding byte
//! ```
//!
//! A **delta** day stores only what changed since a named *base day* that
//! must already be persisted in the same vault: appended CSR rows and the
//! adjacency added to each of the five lists, as `(row, value)` pairs
//! split into two codec streams (rows, then values — both monotone-ish and
//! so codec-friendly):
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic: b"SANCSRBF"
//!      8     4  format version: u32 = 2
//!     12     1  kind: u8 = 1 (delta)
//!     13     3  padding (zero)
//!     16     4  base_day: u32
//!     20     8  new_social_rows: u64     (rows appended since base)
//!     28     8  new_attr_rows:   u64
//!     36     8  num_social_links: u64    (totals *after* applying)
//!     44     8  num_attr_links:   u64
//!     52   120  5 list descriptors { pair_count: u64, rows_byte_len: u64,
//!                 vals_byte_len: u64 } for out/in/ua/am/und additions
//!    172     8  attr_type_add count: u64
//!    180     …  per list: rows codec stream, then values codec stream;
//!               then raw added attr-type tags (u8 each)
//!   tail      8  FNV-1a 64-bit checksum of every preceding byte
//! ```
//!
//! ## Delta chains
//!
//! Loading a delta day loads its base (which may itself be a delta) and
//! replays the additions. Chains are bounded at [`MAX_DELTA_CHAIN`] links:
//! [`SnapshotVault::save_day_delta`] refuses to extend past the bound, and
//! readers reject deeper chains and dangling bases
//! ([`StoreError::DeltaWithoutBase`]) rather than recursing unboundedly.
//! [`StreamingVaultWriter`] emits the pattern *full, (k−1) deltas, full,
//! …* so any day reconstructs in at most *k* reads — the write-side knob
//! trading vault bytes (deltas are typically 5–20× smaller than fulls)
//! against cold-open latency.
//!
//! ## Choosing full vs delta
//!
//! Writers are free to mix: [`SnapshotVault::save_day`] writes v1,
//! [`SnapshotVault::save_day_v2`] a v2 full, and
//! [`SnapshotVault::save_day_delta`] a v2 delta against any persisted
//! base. All three coexist in one manifest and every read path
//! ([`SnapshotVault::load_day`], [`map_day`](SnapshotVault::map_day),
//! [`SanTimeline::resume_from_vault`](crate::SanTimeline::resume_from_vault))
//! returns bit-identical snapshots regardless of which format a day landed
//! in. v1 stays the interchange format — fixed layout, mmap-viewable in
//! place — while v2 is the archival format: same information, a fraction
//! of the bytes, decoded through a bounds-checked streaming pass.
//!
//! v2 decode failures reuse the v1 taxonomy and add
//! [`StoreError::BadCodec`] (malformed varint/FoR stream, named array) and
//! [`StoreError::DeltaWithoutBase`] (chain root missing). Headers are
//! validated before any payload allocation, exactly as in v1.

use crate::csr::CsrSan;
use crate::ids::{AttrId, AttrType, SocialId};
use crate::meter::VaultMetrics;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// File magic identifying the columnar CsrSan snapshot family.
pub const MAGIC: [u8; 8] = *b"SANCSRBF";

/// The raw-column format version (v1); bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// The compressed/delta format version (v2). v1 and v2 files coexist in
/// the same vault; readers dispatch on the version word.
pub const FORMAT_VERSION_V2: u32 = 2;

/// v2 kind byte: a self-contained day with every column codec-compressed.
pub const V2_KIND_FULL: u8 = 0;

/// v2 kind byte: a delta day holding only the adjacency added since a
/// named base day.
pub const V2_KIND_DELTA: u8 = 1;

/// Magic + version word — the prefix every reader peeks to dispatch.
pub(crate) const VERSION_PREFIX_BYTES: usize = 12;

/// v2 full header: magic, version, kind + 3 pad bytes, the two link
/// counters, then `{count, byte_len}` per payload array.
pub const V2_FULL_HEADER_BYTES: usize = 8 + 4 + 1 + 3 + 8 + 8 + NUM_ARRAYS * 16;

/// v2 delta header: magic, version, kind + 3 pad, base day, new node/attr
/// counts, the two link counters, `{pairs, rows_len, vals_len}` per
/// add-list, then the added-tag count.
pub const V2_DELTA_HEADER_BYTES: usize =
    8 + 4 + 1 + 3 + 4 + 8 + 8 + 8 + 8 + NUM_DELTA_LISTS * 24 + 8;

/// Add-lists in a delta day, in file order (mirrors the five CSRs).
pub const NUM_DELTA_LISTS: usize = 5;

/// Longest base→…→day delta chain a vault will create or resolve. Bounds
/// cold-miss reconstruction cost; a manifest requiring a longer walk is
/// rejected as [`StoreError::BadManifest`].
pub const MAX_DELTA_CHAIN: usize = 16;

/// Number of columnar payload arrays in a snapshot file.
pub const NUM_ARRAYS: usize = 11;

/// Header size in bytes: magic + version + two link counters + one
/// `{u64 offset, u64 count}` descriptor per payload array.
pub const HEADER_BYTES: usize = 8 + 4 + 8 + 8 + NUM_ARRAYS * 16;

/// Trailing checksum size in bytes.
pub const CHECKSUM_BYTES: usize = 8;

/// Payload array names, in file order (descriptor order). Public so tests
/// and tooling can report positions symbolically.
pub const ARRAY_NAMES: [&str; NUM_ARRAYS] = [
    "out_off",
    "out_dst",
    "in_off",
    "in_src",
    "ua_off",
    "ua_attr",
    "am_off",
    "am_user",
    "und_off",
    "und_nbr",
    "attr_types",
];

/// FNV-1a 64-bit over a byte slice — the checksum the format uses.
///
/// Exposed so tests and tooling can re-seal a deliberately patched
/// snapshot (corruption-matrix tests isolate structural errors from
/// checksum errors this way).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a 64-bit hasher.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Every way persisting or loading a snapshot can fail. No variant is ever
/// a panic: untrusted bytes always come back as one of these.
#[derive(Debug)]
pub enum StoreError {
    /// The stream ended before the named section was complete.
    Truncated {
        /// Which section was being read when the stream ran dry.
        section: &'static str,
    },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 8],
    },
    /// The file's format version is not one this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// An array descriptor's byte offset does not continue the previous
    /// array exactly (the arrays must tile the payload region).
    OffsetMismatch {
        /// Array whose descriptor is inconsistent.
        array: &'static str,
        /// Byte offset the layout requires.
        expected: u64,
        /// Byte offset the header declares.
        found: u64,
    },
    /// Element counts disagree — between offset tables that must share a
    /// row count, or between a payload array and the header link counters.
    CountMismatch {
        /// What disagreed.
        what: &'static str,
        /// The count implied by the rest of the header.
        expected: u64,
        /// The count found.
        found: u64,
    },
    /// A CSR offset table does not start at 0, decreases somewhere, or
    /// does not end at its payload array's length.
    NonMonotoneOffsets {
        /// The offending offset table.
        array: &'static str,
    },
    /// An attribute-type tag byte outside the known range.
    BadAttrType {
        /// The tag found.
        value: u8,
    },
    /// A neighbour/member id at or beyond the declared node count.
    IdOutOfRange {
        /// The array holding the out-of-range id.
        array: &'static str,
    },
    /// The trailing checksum does not match the bytes read.
    BadChecksum {
        /// Checksum recomputed from the stream.
        expected: u64,
        /// Checksum stored in the trailer.
        found: u64,
    },
    /// A vault manifest line could not be parsed.
    BadManifest {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A day was requested that the vault has not persisted.
    DayNotPersisted {
        /// The requested day.
        day: u32,
    },
    /// A v2 compressed column (or delta add-list) byte stream is
    /// malformed: truncated/overlong varint, value outside `u32` range,
    /// stream length disagreeing with the declared count, unsorted or
    /// duplicate delta pairs, or an unknown v2 kind byte.
    BadCodec {
        /// The column or list being decoded.
        array: &'static str,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A v2 delta day was opened standalone — it only describes the
    /// adjacency added since its base day, so there is no snapshot to
    /// reconstruct without the vault resolving the chain.
    DeltaWithoutBase {
        /// The base day the delta patches.
        base_day: u32,
    },
    /// A byte buffer handed to the zero-copy view path
    /// ([`CsrSanView::new`](crate::view::CsrSanView::new)) whose base
    /// address is not aligned for in-place `u32` column views. Mapped
    /// files are always page-aligned; heap buffers can use
    /// [`AlignedBytes`](crate::view::AlignedBytes).
    Misaligned {
        /// The alignment the column views require.
        required: usize,
    },
    /// Any other I/O failure (permissions, disk full, …).
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { section } => {
                write!(f, "snapshot truncated while reading {section}")
            }
            StoreError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {MAGIC:?})")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (reader knows \
                     {FORMAT_VERSION} and {FORMAT_VERSION_V2})"
                )
            }
            StoreError::OffsetMismatch {
                array,
                expected,
                found,
            } => write!(
                f,
                "array {array} declared at byte {found}, layout requires {expected}"
            ),
            StoreError::CountMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "count mismatch for {what}: expected {expected}, found {found}"
            ),
            StoreError::NonMonotoneOffsets { array } => {
                write!(
                    f,
                    "offset table {array} is not monotone from 0 to its payload length"
                )
            }
            StoreError::BadAttrType { value } => write!(f, "unknown attribute-type tag {value}"),
            StoreError::IdOutOfRange { array } => {
                write!(
                    f,
                    "array {array} holds an id beyond the declared node count"
                )
            }
            StoreError::BadChecksum { expected, found } => write!(
                f,
                "checksum mismatch: stream hashes to {expected:#018x}, trailer says {found:#018x}"
            ),
            StoreError::BadManifest { line, reason } => {
                write!(f, "vault manifest line {line}: {reason}")
            }
            StoreError::DayNotPersisted { day } => {
                write!(f, "day {day} is not persisted in this vault")
            }
            StoreError::BadCodec { array, reason } => {
                write!(f, "corrupt compressed column {array}: {reason}")
            }
            StoreError::DeltaWithoutBase { base_day } => {
                write!(
                    f,
                    "delta day opened standalone (patches base day {base_day}); \
                     resolve it through its vault"
                )
            }
            StoreError::Misaligned { required } => {
                write!(
                    f,
                    "buffer base address is not {required}-byte aligned for zero-copy column views"
                )
            }
            StoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Manual `Clone`: every variant is plain data except [`StoreError::Io`],
/// whose `io::Error` is not `Clone` — that one is rebuilt from its kind
/// and message (the serving layer's single-flight path broadcasts one
/// mapper's failure to every deduplicated waiter, each of which needs an
/// owned error).
impl Clone for StoreError {
    fn clone(&self) -> StoreError {
        match self {
            StoreError::Truncated { section } => StoreError::Truncated { section },
            StoreError::BadMagic { found } => StoreError::BadMagic { found: *found },
            StoreError::UnsupportedVersion { found } => {
                StoreError::UnsupportedVersion { found: *found }
            }
            StoreError::OffsetMismatch {
                array,
                expected,
                found,
            } => StoreError::OffsetMismatch {
                array,
                expected: *expected,
                found: *found,
            },
            StoreError::CountMismatch {
                what,
                expected,
                found,
            } => StoreError::CountMismatch {
                what,
                expected: *expected,
                found: *found,
            },
            StoreError::NonMonotoneOffsets { array } => StoreError::NonMonotoneOffsets { array },
            StoreError::BadAttrType { value } => StoreError::BadAttrType { value: *value },
            StoreError::IdOutOfRange { array } => StoreError::IdOutOfRange { array },
            StoreError::BadChecksum { expected, found } => StoreError::BadChecksum {
                expected: *expected,
                found: *found,
            },
            StoreError::BadManifest { line, reason } => StoreError::BadManifest {
                line: *line,
                reason: reason.clone(),
            },
            StoreError::DayNotPersisted { day } => StoreError::DayNotPersisted { day: *day },
            StoreError::BadCodec { array, reason } => StoreError::BadCodec { array, reason },
            StoreError::DeltaWithoutBase { base_day } => StoreError::DeltaWithoutBase {
                base_day: *base_day,
            },
            StoreError::Misaligned { required } => StoreError::Misaligned {
                required: *required,
            },
            StoreError::Io(e) => StoreError::Io(io::Error::new(e.kind(), e.to_string())),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// `read_exact` that reports a short stream as [`StoreError::Truncated`]
/// with the section being read, instead of a bare I/O error.
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), StoreError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { section }
        } else {
            StoreError::Io(e)
        }
    })
}

/// A writer that feeds every byte through the running FNV-1a hash on its
/// way out — so `write_to` seals the stream without buffering the file.
struct HashingWriter<'a, W: Write> {
    inner: &'a mut W,
    hash: Fnv1a,
    written: u64,
}

impl<W: Write> HashingWriter<'_, W> {
    fn put(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.hash.update(bytes);
        self.written += bytes.len() as u64;
        self.inner.write_all(bytes).map_err(StoreError::Io)
    }
}

/// Stable `u8` tag for an [`AttrType`] (part of the on-disk format; only
/// append new tags, never renumber).
fn attr_type_tag(ty: AttrType) -> u8 {
    match ty {
        AttrType::School => 0,
        AttrType::Major => 1,
        AttrType::Employer => 2,
        AttrType::City => 3,
        AttrType::Other => 4,
    }
}

pub(crate) fn attr_type_from_tag(tag: u8) -> Result<AttrType, StoreError> {
    match tag {
        0 => Ok(AttrType::School),
        1 => Ok(AttrType::Major),
        2 => Ok(AttrType::Employer),
        3 => Ok(AttrType::City),
        4 => Ok(AttrType::Other),
        value => Err(StoreError::BadAttrType { value }),
    }
}

/// Copies the `N` bytes at `at`, zero-filling anything out of range —
/// the panic-free replacement for `slice[at..at + N].try_into().unwrap()`.
/// Every caller passes in-range offsets (length-guarded, or reading a
/// fixed-size buffer); if a future bug breaks that, the zeros surface as
/// a downstream validation failure instead of a panic on untrusted input.
pub(crate) fn array_at<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    if let Some(src) = bytes.get(at..at + N) {
        out.copy_from_slice(src);
    }
    out
}

/// Bounded staging buffer for LE encode/decode: arrays stream through this
/// many bytes at a time, so (de)serialisation never allocates proportional
/// to the snapshot — the only heap the store path touches is the final
/// `CsrSan` arrays themselves (see [`CsrSan::heap_bytes`]).
const STAGE_BYTES: usize = 16 * 1024;

/// Writes a column of 4-byte elements as little-endian through the
/// hashing writer; `as_u32` lifts the element type (raw offsets or typed
/// ids) to its wire form.
fn write_col<W: Write, T: Copy>(
    w: &mut HashingWriter<'_, W>,
    data: &[T],
    as_u32: impl Fn(T) -> u32,
) -> Result<(), StoreError> {
    let mut stage = [0u8; STAGE_BYTES];
    for chunk in data.chunks(STAGE_BYTES / 4) {
        let bytes = &mut stage[..chunk.len() * 4];
        for (i, &v) in chunk.iter().enumerate() {
            // BOUNDS: bytes spans chunk.len()*4 and i < chunk.len(), so
            // i*4 + 4 <= len — trusted in-memory data, not reader input.
            bytes[i * 4..i * 4 + 4].copy_from_slice(&as_u32(v).to_le_bytes());
        }
        w.put(bytes)?;
    }
    Ok(())
}

/// Reads a column of `count` little-endian 4-byte elements into an
/// exactly-sized `Vec<T>`, feeding the hash as it goes; `from_u32` lifts
/// the wire form to the element type, so no intermediate `Vec<u32>` is
/// ever staged.
fn read_col<T>(
    r: &mut impl Read,
    hash: &mut Fnv1a,
    count: usize,
    section: &'static str,
    from_u32: impl Fn(u32) -> T,
) -> Result<Vec<T>, StoreError> {
    // Trust the header count only up to a bound: above it the Vec starts
    // small and grows as bytes actually arrive, so a crafted count cannot
    // reserve memory the stream never delivers (a truncated stream fails
    // fast in read_exact instead). Honest oversize columns pay a final
    // shrink to restore the exact-capacity guarantee.
    let mut out: Vec<T> = Vec::with_capacity(count.min(HEADER_TRUST_ELEMS));
    let mut stage = [0u8; STAGE_BYTES];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(STAGE_BYTES / 4);
        let bytes = &mut stage[..take * 4];
        read_exact_or(r, bytes, section)?;
        hash.update(bytes);
        for i in 0..take {
            // BOUNDS: bytes was sliced to exactly take*4 above and
            // i < take, so i*4 + 4 <= len whatever the stream contained.
            out.push(from_u32(u32::from_le_bytes(array_at(bytes, i * 4))));
        }
        remaining -= take;
    }
    if out.capacity() != out.len() {
        out.shrink_to_fit();
    }
    Ok(out)
}

/// How many elements of a header-declared count are pre-reserved before
/// any payload bytes prove the stream is that long (16 MiB of u32s).
/// Larger columns grow incrementally and shrink to exact size at the end.
const HEADER_TRUST_ELEMS: usize = 4 * 1024 * 1024;

/// One parsed array descriptor from the header.
#[derive(Debug, Clone, Copy)]
struct ArrayDesc {
    offset: u64,
    count: u64,
}

/// Byte width of one element of payload array `i` (ten `u32` columns, one
/// `u8` tag column).
#[inline]
pub(crate) fn elem_bytes(i: usize) -> u64 {
    if i == NUM_ARRAYS - 1 {
        1
    } else {
        4
    }
}

/// The parsed, header-validated prefix of a snapshot: magic, version, link
/// counters and the 11 array descriptors, with every header-level
/// consistency check already applied (magic/version, per-array element
/// cap, descriptor tiling, cross-array row counts, link-counter
/// agreement).
///
/// This is the shared front half of both deserialisation paths:
/// [`CsrSan::read_from`] parses it from the stream before allocating
/// anything, and the zero-copy [`CsrSanView`](crate::view::CsrSanView)
/// parses it from the buffer before building column views — so a header
/// that the eager loader rejects is rejected by the view path with the
/// same typed error, by construction.
#[derive(Debug, Clone, Copy)]
pub struct StoreHeader {
    num_social_links: u64,
    num_attr_links: u64,
    descs: [ArrayDesc; NUM_ARRAYS],
}

impl StoreHeader {
    /// Parses and validates the fixed-size header. Every failure is the
    /// same typed [`StoreError`] that [`CsrSan::read_from`] reports for
    /// the same bytes; nothing is allocated.
    pub fn parse(header: &[u8; HEADER_BYTES]) -> Result<StoreHeader, StoreError> {
        let magic: [u8; 8] = array_at(header, 0);
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let u32_at = |i: usize| u32::from_le_bytes(array_at(header, i));
        let u64_at = |i: usize| u64::from_le_bytes(array_at(header, i));
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let num_social_links = u64_at(12);
        let num_attr_links = u64_at(20);
        let mut descs = [ArrayDesc {
            offset: 0,
            count: 0,
        }; NUM_ARRAYS];
        for (i, d) in descs.iter_mut().enumerate() {
            d.offset = u64_at(28 + i * 16);
            d.count = u64_at(28 + i * 16 + 8);
        }
        // CSR offsets are u32, so no valid snapshot holds an array longer
        // than u32::MAX elements; reject absurd counts before anything is
        // allocated — a crafted header must never drive
        // `Vec::with_capacity` into a capacity panic or OOM abort.
        for (i, d) in descs.iter().enumerate() {
            if d.count > u64::from(u32::MAX) {
                return Err(StoreError::CountMismatch {
                    what: ARRAY_NAMES[i],
                    expected: u64::from(u32::MAX),
                    found: d.count,
                });
            }
        }
        // The arrays must tile the payload region exactly, in order.
        let mut expected = HEADER_BYTES as u64;
        for i in 0..NUM_ARRAYS {
            if descs[i].offset != expected {
                return Err(StoreError::OffsetMismatch {
                    array: ARRAY_NAMES[i],
                    expected,
                    found: descs[i].offset,
                });
            }
            expected = descs[i]
                .count
                .checked_mul(elem_bytes(i))
                .and_then(|b| expected.checked_add(b))
                .ok_or(StoreError::CountMismatch {
                    what: ARRAY_NAMES[i],
                    expected: u64::MAX,
                    found: descs[i].count,
                })?;
        }
        // Cross-array count consistency, before any payload allocation.
        let counts: [u64; NUM_ARRAYS] = std::array::from_fn(|i| descs[i].count);
        check_count_relations(&counts, num_social_links, num_attr_links)?;
        Ok(StoreHeader {
            num_social_links,
            num_attr_links,
            descs,
        })
    }

    /// The header's social-link counter `|Es|`.
    pub fn num_social_links(&self) -> u64 {
        self.num_social_links
    }

    /// The header's attribute-link counter `|Ea|`.
    pub fn num_attr_links(&self) -> u64 {
        self.num_attr_links
    }

    /// Absolute byte offset of payload array `i` (file order, see
    /// [`ARRAY_NAMES`]).
    pub fn array_offset(&self, i: usize) -> u64 {
        self.descs[i].offset
    }

    /// Element count of payload array `i`.
    pub fn array_count(&self, i: usize) -> u64 {
        self.descs[i].count
    }

    /// Number of social nodes (`out_off` rows minus the sentinel).
    pub fn social_rows(&self) -> usize {
        self.descs[0].count as usize - 1
    }

    /// Number of attribute nodes (`am_off` rows minus the sentinel).
    pub fn attr_rows(&self) -> usize {
        self.descs[6].count as usize - 1
    }

    /// First byte past the last payload array — where the checksum
    /// trailer starts.
    pub fn payload_end(&self) -> u64 {
        self.descs[NUM_ARRAYS - 1].offset + self.descs[NUM_ARRAYS - 1].count
    }
}

/// The cross-array count checks both format versions share: per-array
/// `u32::MAX` cap, the four social offset tables agreeing on rows, at
/// least one row on both sides of the bipartite graph, the tag column
/// matching the attribute rows, and the id columns matching the header
/// link counters. Runs before anything is allocated.
fn check_count_relations(
    counts: &[u64; NUM_ARRAYS],
    num_social_links: u64,
    num_attr_links: u64,
) -> Result<(), StoreError> {
    for (i, &count) in counts.iter().enumerate() {
        if count > u64::from(u32::MAX) {
            return Err(StoreError::CountMismatch {
                what: ARRAY_NAMES[i],
                expected: u64::from(u32::MAX),
                found: count,
            });
        }
    }
    let rows = counts[0]; // out_off: n + 1
    for i in [2usize, 4, 8] {
        if counts[i] != rows {
            return Err(StoreError::CountMismatch {
                what: ARRAY_NAMES[i],
                expected: rows,
                found: counts[i],
            });
        }
    }
    if rows == 0 || counts[6] == 0 {
        return Err(StoreError::CountMismatch {
            what: "offset table rows",
            expected: 1,
            found: 0,
        });
    }
    if counts[10] != counts[6] - 1 {
        return Err(StoreError::CountMismatch {
            what: "attr_types",
            expected: counts[6] - 1,
            found: counts[10],
        });
    }
    for (i, want) in [
        (1usize, num_social_links),
        (3, num_social_links),
        (5, num_attr_links),
        (7, num_attr_links),
    ] {
        if counts[i] != want {
            return Err(StoreError::CountMismatch {
                what: ARRAY_NAMES[i],
                expected: want,
                found: counts[i],
            });
        }
    }
    Ok(())
}

/// Validates that a CSR offset table starts at 0, never decreases, and
/// ends exactly at `payload_len`.
pub(crate) fn check_offsets(
    off: &[u32],
    payload_len: usize,
    array: &'static str,
) -> Result<(), StoreError> {
    if off.first() != Some(&0) || off.windows(2).any(|w| w[0] > w[1]) {
        return Err(StoreError::NonMonotoneOffsets { array });
    }
    // The first() check above already rejected an empty table.
    let last = off.last().copied().unwrap_or(0) as usize;
    if last != payload_len {
        return Err(StoreError::CountMismatch {
            what: array,
            expected: payload_len as u64,
            found: last as u64,
        });
    }
    Ok(())
}

/// Validates that every id in a payload array indexes a real node.
pub(crate) fn check_id_range<T: Copy>(
    data: &[T],
    bound: usize,
    array: &'static str,
    as_u32: impl Fn(T) -> u32,
) -> Result<(), StoreError> {
    if data.iter().any(|&v| as_u32(v) as usize >= bound) {
        return Err(StoreError::IdOutOfRange { array });
    }
    Ok(())
}

impl CsrSan {
    /// Element counts of the 11 payload arrays, in file order.
    fn array_counts(&self) -> [u64; NUM_ARRAYS] {
        [
            self.out_off.len() as u64,
            self.out_dst.len() as u64,
            self.in_off.len() as u64,
            self.in_src.len() as u64,
            self.ua_off.len() as u64,
            self.ua_attr.len() as u64,
            self.am_off.len() as u64,
            self.am_user.len() as u64,
            self.und_off.len() as u64,
            self.und_nbr.len() as u64,
            self.attr_types.len() as u64,
        ]
    }

    /// Serialises the snapshot in the columnar binary format (see the
    /// module docs for the layout) and returns the total bytes written,
    /// checksum trailer included.
    ///
    /// The stream is produced in one forward pass — header, the eleven
    /// arrays in little-endian, then the FNV-1a trailer — through a
    /// bounded staging buffer, so writing never allocates proportional to
    /// the snapshot. Wrap the destination in a
    /// [`BufWriter`](std::io::BufWriter) when writing to a file.
    pub fn write_to(&self, w: &mut impl Write) -> Result<u64, StoreError> {
        let counts = self.array_counts();
        // Element width per array: ten u32 columns, one u8 tag column.
        let sizes: [u64; NUM_ARRAYS] = {
            let mut s = [4u64; NUM_ARRAYS];
            s[NUM_ARRAYS - 1] = 1;
            s
        };
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&(self.num_social_links as u64).to_le_bytes());
        header.extend_from_slice(&(self.num_attr_links as u64).to_le_bytes());
        let mut offset = HEADER_BYTES as u64;
        for i in 0..NUM_ARRAYS {
            header.extend_from_slice(&offset.to_le_bytes());
            header.extend_from_slice(&counts[i].to_le_bytes());
            offset += counts[i] * sizes[i];
        }
        debug_assert_eq!(header.len(), HEADER_BYTES);
        let mut hw = HashingWriter {
            inner: w,
            hash: Fnv1a::new(),
            written: 0,
        };
        hw.put(&header)?;
        write_col(&mut hw, &self.out_off, |v| v)?;
        write_col(&mut hw, &self.out_dst, |v| v.0)?;
        write_col(&mut hw, &self.in_off, |v| v)?;
        write_col(&mut hw, &self.in_src, |v| v.0)?;
        write_col(&mut hw, &self.ua_off, |v| v)?;
        write_col(&mut hw, &self.ua_attr, |v| v.0)?;
        write_col(&mut hw, &self.am_off, |v| v)?;
        write_col(&mut hw, &self.am_user, |v| v.0)?;
        write_col(&mut hw, &self.und_off, |v| v)?;
        write_col(&mut hw, &self.und_nbr, |v| v.0)?;
        let mut tags = [0u8; STAGE_BYTES];
        for chunk in self.attr_types.chunks(STAGE_BYTES) {
            let bytes = &mut tags[..chunk.len()];
            for (i, &ty) in chunk.iter().enumerate() {
                // BOUNDS: bytes spans chunk.len() and i < chunk.len();
                // trusted in-memory tags, not reader input.
                bytes[i] = attr_type_tag(ty);
            }
            hw.put(bytes)?;
        }
        let checksum = hw.hash.finish();
        let total = hw.written + CHECKSUM_BYTES as u64;
        w.write_all(&checksum.to_le_bytes())?;
        Ok(total)
    }

    /// Deserialises a snapshot written by [`CsrSan::write_to`], validating
    /// structure as the stream is consumed and the checksum at the end.
    ///
    /// Never panics on untrusted bytes and never returns a structurally
    /// inconsistent graph; every failure is a typed [`StoreError`] (see
    /// the module docs for the full validation list). Each column is read
    /// into an exactly-sized allocation through a bounded stack staging
    /// buffer; the only heap staging is the `m`-byte raw tag column held
    /// until the checksum clears, and it is dropped before returning — so
    /// the loaded snapshot's [`CsrSan::heap_bytes`] equals the original's
    /// (no hidden capacity slack, no retained staging), which the
    /// `read_from_allocates_exact_capacity` audit pins down.
    pub fn read_from(r: &mut impl Read) -> Result<CsrSan, StoreError> {
        // Peek magic + version, then dispatch: v1 streams column-by-column
        // through the bounded stage buffer; v2 is block-compressed, so the
        // remaining bytes are collected and decoded in place.
        let mut prefix = [0u8; VERSION_PREFIX_BYTES];
        read_exact_or(r, &mut prefix, "header")?;
        let magic: [u8; 8] = array_at(&prefix, 0);
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        match u32::from_le_bytes(array_at(&prefix, 8)) {
            FORMAT_VERSION => {
                let mut header = [0u8; HEADER_BYTES];
                header[..VERSION_PREFIX_BYTES].copy_from_slice(&prefix);
                read_exact_or(r, &mut header[VERSION_PREFIX_BYTES..], "header")?;
                CsrSan::read_v1_body(r, &header)
            }
            FORMAT_VERSION_V2 => {
                let mut full = prefix.to_vec();
                r.read_to_end(&mut full).map_err(StoreError::Io)?;
                read_v2(&full)
            }
            found => Err(StoreError::UnsupportedVersion { found }),
        }
    }

    /// The v1 payload path: `header` is the complete 204-byte header
    /// (already known to carry the v1 magic + version); the reader is
    /// positioned at the first payload byte.
    fn read_v1_body(r: &mut impl Read, header: &[u8; HEADER_BYTES]) -> Result<CsrSan, StoreError> {
        // Every header-level check (magic/version, element caps, tiling,
        // cross-array counts) lives in the shared parser, so the eager
        // loader and the zero-copy view reject the same headers with the
        // same typed errors.
        let parsed = StoreHeader::parse(header)?;
        let num_social_links = parsed.num_social_links();
        let num_attr_links = parsed.num_attr_links();
        let rows = parsed.array_count(0);
        let mut hash = Fnv1a::new();
        hash.update(header);
        let count = |i: usize| parsed.array_count(i) as usize;
        let out_off = read_col(r, &mut hash, count(0), ARRAY_NAMES[0], |v| v)?;
        let out_dst = read_col(r, &mut hash, count(1), ARRAY_NAMES[1], SocialId)?;
        let in_off = read_col(r, &mut hash, count(2), ARRAY_NAMES[2], |v| v)?;
        let in_src = read_col(r, &mut hash, count(3), ARRAY_NAMES[3], SocialId)?;
        let ua_off = read_col(r, &mut hash, count(4), ARRAY_NAMES[4], |v| v)?;
        let ua_attr = read_col(r, &mut hash, count(5), ARRAY_NAMES[5], AttrId)?;
        let am_off = read_col(r, &mut hash, count(6), ARRAY_NAMES[6], |v| v)?;
        let am_user = read_col(r, &mut hash, count(7), ARRAY_NAMES[7], SocialId)?;
        let und_off = read_col(r, &mut hash, count(8), ARRAY_NAMES[8], |v| v)?;
        let und_nbr = read_col(r, &mut hash, count(9), ARRAY_NAMES[9], SocialId)?;
        // Tags are staged raw and decoded only after the checksum has
        // vouched for them, like every other semantic check. Same bounded
        // trust in the header count as read_col.
        let mut tag_bytes: Vec<u8> = Vec::with_capacity(count(10).min(HEADER_TRUST_ELEMS));
        {
            let mut stage = [0u8; STAGE_BYTES];
            let mut remaining = count(10);
            while remaining > 0 {
                let take = remaining.min(STAGE_BYTES);
                let bytes = &mut stage[..take];
                read_exact_or(r, bytes, ARRAY_NAMES[10])?;
                hash.update(bytes);
                tag_bytes.extend_from_slice(bytes);
                remaining -= take;
            }
        }
        let mut trailer = [0u8; CHECKSUM_BYTES];
        read_exact_or(r, &mut trailer, "checksum")?;
        let found = u64::from_le_bytes(trailer);
        let expected = hash.finish();
        if expected != found {
            return Err(StoreError::BadChecksum { expected, found });
        }
        // Semantic validation after the checksum has vouched for the
        // bytes: tag decoding, offset-table shape, then id ranges.
        let mut attr_types: Vec<AttrType> = Vec::with_capacity(tag_bytes.len());
        for b in tag_bytes {
            attr_types.push(attr_type_from_tag(b)?);
        }
        check_offsets(&out_off, out_dst.len(), ARRAY_NAMES[0])?;
        check_offsets(&in_off, in_src.len(), ARRAY_NAMES[2])?;
        check_offsets(&ua_off, ua_attr.len(), ARRAY_NAMES[4])?;
        check_offsets(&am_off, am_user.len(), ARRAY_NAMES[6])?;
        check_offsets(&und_off, und_nbr.len(), ARRAY_NAMES[8])?;
        let n = rows as usize - 1;
        let m = count(6) - 1;
        check_id_range(&out_dst, n, ARRAY_NAMES[1], |v| v.0)?;
        check_id_range(&in_src, n, ARRAY_NAMES[3], |v| v.0)?;
        check_id_range(&ua_attr, m, ARRAY_NAMES[5], |v| v.0)?;
        check_id_range(&am_user, n, ARRAY_NAMES[7], |v| v.0)?;
        check_id_range(&und_nbr, n, ARRAY_NAMES[9], |v| v.0)?;
        Ok(CsrSan {
            out_off,
            out_dst,
            in_off,
            in_src,
            ua_off,
            ua_attr,
            am_off,
            am_user,
            und_off,
            und_nbr,
            attr_types,
            num_social_links: num_social_links as usize,
            num_attr_links: num_attr_links as usize,
        })
    }

    /// Serialises into a fresh byte vector (convenience over
    /// [`CsrSan::write_to`]).
    pub fn to_store_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        if let Err(err) = self.write_to(&mut buf) {
            // Vec<u8> IO is infallible; reaching this is a serializer bug.
            debug_assert!(false, "in-memory serialisation failed: {err}");
        }
        buf
    }

    /// Deserialises from a byte slice (convenience over
    /// [`CsrSan::read_from`]).
    pub fn from_store_bytes(mut bytes: &[u8]) -> Result<CsrSan, StoreError> {
        CsrSan::read_from(&mut bytes)
    }

    /// Serialised size in bytes, without writing anything.
    pub fn store_bytes_len(&self) -> u64 {
        let counts = self.array_counts();
        let payload: u64 =
            counts[..NUM_ARRAYS - 1].iter().map(|c| c * 4).sum::<u64>() + counts[NUM_ARRAYS - 1];
        HEADER_BYTES as u64 + payload + CHECKSUM_BYTES as u64
    }

    /// Serialises the snapshot as a v2 *full* day: the same eleven columns
    /// as v1, the ten `u32` columns codec-compressed
    /// (see [`crate::codec`]), the tag column raw, sealed by the same
    /// FNV-1a trailer. Returns the total bytes written.
    pub fn write_v2_to(&self, w: &mut impl Write) -> Result<u64, StoreError> {
        let counts = self.array_counts();
        let mut payload = Vec::new();
        let mut byte_lens = [0u64; NUM_ARRAYS];
        {
            let mut mark = 0usize;
            let mut done = |i: usize, payload: &Vec<u8>| {
                byte_lens[i] = (payload.len() - mark) as u64;
                mark = payload.len();
            };
            codec::encode_u32s(&self.out_off, &mut payload);
            done(0, &payload);
            codec::encode_u32s_by(&self.out_dst, |v| v.0, &mut payload);
            done(1, &payload);
            codec::encode_u32s(&self.in_off, &mut payload);
            done(2, &payload);
            codec::encode_u32s_by(&self.in_src, |v| v.0, &mut payload);
            done(3, &payload);
            codec::encode_u32s(&self.ua_off, &mut payload);
            done(4, &payload);
            codec::encode_u32s_by(&self.ua_attr, |v| v.0, &mut payload);
            done(5, &payload);
            codec::encode_u32s(&self.am_off, &mut payload);
            done(6, &payload);
            codec::encode_u32s_by(&self.am_user, |v| v.0, &mut payload);
            done(7, &payload);
            codec::encode_u32s(&self.und_off, &mut payload);
            done(8, &payload);
            codec::encode_u32s_by(&self.und_nbr, |v| v.0, &mut payload);
            done(9, &payload);
            for &ty in &self.attr_types {
                payload.push(attr_type_tag(ty));
            }
            done(10, &payload);
        }
        let mut header = Vec::with_capacity(V2_FULL_HEADER_BYTES);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION_V2.to_le_bytes());
        header.push(V2_KIND_FULL);
        header.extend_from_slice(&[0u8; 3]);
        header.extend_from_slice(&(self.num_social_links as u64).to_le_bytes());
        header.extend_from_slice(&(self.num_attr_links as u64).to_le_bytes());
        for i in 0..NUM_ARRAYS {
            header.extend_from_slice(&counts[i].to_le_bytes());
            header.extend_from_slice(&byte_lens[i].to_le_bytes());
        }
        debug_assert_eq!(header.len(), V2_FULL_HEADER_BYTES);
        let mut hw = HashingWriter {
            inner: w,
            hash: Fnv1a::new(),
            written: 0,
        };
        hw.put(&header)?;
        hw.put(&payload)?;
        let checksum = hw.hash.finish();
        let total = hw.written + CHECKSUM_BYTES as u64;
        w.write_all(&checksum.to_le_bytes())?;
        Ok(total)
    }

    /// v2 serialisation into a fresh byte vector (convenience over
    /// [`CsrSan::write_v2_to`]).
    pub fn to_store_bytes_v2(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        if let Err(err) = self.write_v2_to(&mut buf) {
            // Vec<u8> IO is infallible; reaching this is a serializer bug.
            debug_assert!(false, "in-memory v2 serialisation failed: {err}");
        }
        buf
    }
}

// ---------------------------------------------------------------------------
// SANCSRBF v2: compressed full days and delta days.
// ---------------------------------------------------------------------------

use crate::codec;
use crate::view::AlignedBytes;

/// The kind byte of a v2 buffer (byte 12, right after magic + version).
pub(crate) fn v2_kind(bytes: &[u8]) -> Result<u8, StoreError> {
    bytes
        .get(VERSION_PREFIX_BYTES)
        .copied()
        .ok_or(StoreError::Truncated {
            section: "v2 header",
        })
}

/// Reads a complete v2 byte buffer of either kind into an owned snapshot.
/// A standalone delta day cannot be materialised — only its vault knows
/// the chain — so it reports [`StoreError::DeltaWithoutBase`].
fn read_v2(bytes: &[u8]) -> Result<CsrSan, StoreError> {
    match v2_kind(bytes)? {
        V2_KIND_FULL => read_v2_full(bytes),
        V2_KIND_DELTA => Err(StoreError::DeltaWithoutBase {
            base_day: peek_delta_base_day(bytes)?,
        }),
        _ => Err(StoreError::BadCodec {
            array: "header",
            reason: "unknown v2 kind byte",
        }),
    }
}

/// The parsed, validated header of a v2 full day — the compressed
/// counterpart of [`StoreHeader`]. Counts get the same cross-array checks
/// as v1, and every declared byte length is bounded by the codec's
/// possible range (≥ 1, ≤ [`codec::max_encoded_len`] bytes per value)
/// *before* anything is allocated — so decode-side allocations are always
/// bounded by bytes the file actually delivered.
#[derive(Debug, Clone, Copy)]
pub(crate) struct V2FullHeader {
    num_social_links: u64,
    num_attr_links: u64,
    counts: [u64; NUM_ARRAYS],
    byte_lens: [u64; NUM_ARRAYS],
    col_offsets: [u64; NUM_ARRAYS],
    total_bytes: u64,
}

impl V2FullHeader {
    fn parse(bytes: &[u8]) -> Result<V2FullHeader, StoreError> {
        let Some(header) = bytes.get(..V2_FULL_HEADER_BYTES) else {
            return Err(StoreError::Truncated {
                section: "v2 header",
            });
        };
        let magic: [u8; 8] = array_at(header, 0);
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(array_at(header, 8));
        if version != FORMAT_VERSION_V2 {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        if header.get(VERSION_PREFIX_BYTES).copied() != Some(V2_KIND_FULL) {
            return Err(StoreError::BadCodec {
                array: "header",
                reason: "not a v2 full day",
            });
        }
        let u64_at = |i: usize| u64::from_le_bytes(array_at(header, i));
        let num_social_links = u64_at(16);
        let num_attr_links = u64_at(24);
        let mut counts = [0u64; NUM_ARRAYS];
        let mut byte_lens = [0u64; NUM_ARRAYS];
        for i in 0..NUM_ARRAYS {
            counts[i] = u64_at(32 + i * 16);
            byte_lens[i] = u64_at(32 + i * 16 + 8);
        }
        check_count_relations(&counts, num_social_links, num_attr_links)?;
        for i in 0..NUM_ARRAYS {
            if i == NUM_ARRAYS - 1 {
                // The tag column is raw: one byte per element, exactly.
                if byte_lens[i] != counts[i] {
                    return Err(StoreError::CountMismatch {
                        what: "attr_types bytes",
                        expected: counts[i],
                        found: byte_lens[i],
                    });
                }
            } else {
                // A varint is 1..=5 bytes, so `count` values occupy at
                // least `count` and at most `5 * count` bytes. Anything
                // else is corruption — rejecting it here keeps decode
                // allocations bounded by real file bytes.
                let max = codec::max_encoded_len(counts[i]).unwrap_or(u64::MAX);
                if byte_lens[i] > max {
                    return Err(StoreError::BadCodec {
                        array: ARRAY_NAMES[i],
                        reason: "declared byte length exceeds codec bound",
                    });
                }
                if byte_lens[i] < counts[i] {
                    return Err(StoreError::BadCodec {
                        array: ARRAY_NAMES[i],
                        reason: "declared byte length shorter than value count",
                    });
                }
            }
        }
        let mut col_offsets = [0u64; NUM_ARRAYS];
        let mut offset = V2_FULL_HEADER_BYTES as u64;
        for i in 0..NUM_ARRAYS {
            col_offsets[i] = offset;
            offset = offset
                .checked_add(byte_lens[i])
                .ok_or(StoreError::CountMismatch {
                    what: ARRAY_NAMES[i],
                    expected: u64::MAX,
                    found: byte_lens[i],
                })?;
        }
        let total_bytes = offset + CHECKSUM_BYTES as u64;
        if (bytes.len() as u64) < total_bytes {
            return Err(StoreError::Truncated {
                section: "v2 payload",
            });
        }
        Ok(V2FullHeader {
            num_social_links,
            num_attr_links,
            counts,
            byte_lens,
            col_offsets,
            total_bytes,
        })
    }

    /// Column `i`'s compressed byte slice. In range by construction
    /// (`parse` validated the tiling against the buffer length); the empty
    /// fallback would surface as a typed decode error downstream, never a
    /// panic.
    fn col<'a>(&self, bytes: &'a [u8], i: usize) -> &'a [u8] {
        let start = self.col_offsets[i] as usize;
        bytes
            .get(start..start + self.byte_lens[i] as usize)
            .unwrap_or(&[])
    }
}

/// Verifies the FNV trailer of a v2 buffer whose `total_bytes` has been
/// validated against the buffer length.
fn verify_v2_trailer(bytes: &[u8], total_bytes: u64) -> Result<(), StoreError> {
    let total = total_bytes as usize;
    let body = bytes.get(..total - CHECKSUM_BYTES).unwrap_or(&[]);
    let expected = fnv1a64(body);
    let found = u64::from_le_bytes(array_at(bytes, total - CHECKSUM_BYTES));
    if expected != found {
        return Err(StoreError::BadChecksum { expected, found });
    }
    Ok(())
}

/// Decodes one compressed column into an exactly-sized typed vector. The
/// `count ≤ byte_len ≤ file bytes` bound from header validation keeps the
/// allocation proportional to delivered bytes.
fn decode_col_vec<T>(
    col: &[u8],
    count: usize,
    name: &'static str,
    from_u32: impl Fn(u32) -> T,
) -> Result<Vec<T>, StoreError> {
    let mut out: Vec<T> = Vec::with_capacity(count);
    codec::decode_u32s_with(col, count, name, |_, v| out.push(from_u32(v)))?;
    Ok(out)
}

/// The eager v2 full-day loader: header checks, checksum, per-column
/// decode, then exactly the v1 semantic validation (tags, offset shape,
/// id ranges).
fn read_v2_full(bytes: &[u8]) -> Result<CsrSan, StoreError> {
    let hdr = V2FullHeader::parse(bytes)?;
    verify_v2_trailer(bytes, hdr.total_bytes)?;
    let count = |i: usize| hdr.counts[i] as usize;
    let out_off = decode_col_vec(hdr.col(bytes, 0), count(0), ARRAY_NAMES[0], |v| v)?;
    let out_dst = decode_col_vec(hdr.col(bytes, 1), count(1), ARRAY_NAMES[1], SocialId)?;
    let in_off = decode_col_vec(hdr.col(bytes, 2), count(2), ARRAY_NAMES[2], |v| v)?;
    let in_src = decode_col_vec(hdr.col(bytes, 3), count(3), ARRAY_NAMES[3], SocialId)?;
    let ua_off = decode_col_vec(hdr.col(bytes, 4), count(4), ARRAY_NAMES[4], |v| v)?;
    let ua_attr = decode_col_vec(hdr.col(bytes, 5), count(5), ARRAY_NAMES[5], AttrId)?;
    let am_off = decode_col_vec(hdr.col(bytes, 6), count(6), ARRAY_NAMES[6], |v| v)?;
    let am_user = decode_col_vec(hdr.col(bytes, 7), count(7), ARRAY_NAMES[7], SocialId)?;
    let und_off = decode_col_vec(hdr.col(bytes, 8), count(8), ARRAY_NAMES[8], |v| v)?;
    let und_nbr = decode_col_vec(hdr.col(bytes, 9), count(9), ARRAY_NAMES[9], SocialId)?;
    let mut attr_types: Vec<AttrType> = Vec::with_capacity(count(10));
    for &b in hdr.col(bytes, 10) {
        attr_types.push(attr_type_from_tag(b)?);
    }
    check_offsets(&out_off, out_dst.len(), ARRAY_NAMES[0])?;
    check_offsets(&in_off, in_src.len(), ARRAY_NAMES[2])?;
    check_offsets(&ua_off, ua_attr.len(), ARRAY_NAMES[4])?;
    check_offsets(&am_off, am_user.len(), ARRAY_NAMES[6])?;
    check_offsets(&und_off, und_nbr.len(), ARRAY_NAMES[8])?;
    let n = count(0) - 1;
    let m = count(6) - 1;
    check_id_range(&out_dst, n, ARRAY_NAMES[1], |v| v.0)?;
    check_id_range(&in_src, n, ARRAY_NAMES[3], |v| v.0)?;
    check_id_range(&ua_attr, m, ARRAY_NAMES[5], |v| v.0)?;
    check_id_range(&am_user, n, ARRAY_NAMES[7], |v| v.0)?;
    check_id_range(&und_nbr, n, ARRAY_NAMES[9], |v| v.0)?;
    Ok(CsrSan {
        out_off,
        out_dst,
        in_off,
        in_src,
        ua_off,
        ua_attr,
        am_off,
        am_user,
        und_off,
        und_nbr,
        attr_types,
        num_social_links: hdr.num_social_links as usize,
        num_attr_links: hdr.num_attr_links as usize,
    })
}

/// Decodes a v2 *full* buffer into a sealed v1 image: synthesized v1
/// header, raw little-endian columns, FNV trailer — bit-identical to what
/// [`CsrSan::write_to`] emits for the same snapshot. Each compressed
/// column decodes directly into its slice of the image, so peak memory is
/// the image itself plus O(1) scratch — no O(file) staging.
///
/// The image is structurally complete but **not** semantically validated;
/// callers run [`CsrSanView::new`](crate::view::CsrSanView::new) (or the
/// eager loader) over it, reusing the entire v1 validation stack. A delta
/// buffer reports [`StoreError::DeltaWithoutBase`].
pub fn decode_v2_image(bytes: &[u8]) -> Result<AlignedBytes, StoreError> {
    match v2_kind(bytes)? {
        V2_KIND_FULL => {}
        V2_KIND_DELTA => {
            return Err(StoreError::DeltaWithoutBase {
                base_day: peek_delta_base_day(bytes)?,
            })
        }
        _ => {
            return Err(StoreError::BadCodec {
                array: "header",
                reason: "unknown v2 kind byte",
            })
        }
    }
    let hdr = V2FullHeader::parse(bytes)?;
    verify_v2_trailer(bytes, hdr.total_bytes)?;
    // The v1 layout the image will carry. Counts are capped at u32::MAX
    // and bounded by delivered bytes (count ≤ byte_len), so the image is
    // at most ~4× the file and the arithmetic cannot overflow u64.
    let mut v1_offsets = [0u64; NUM_ARRAYS];
    let mut offset = HEADER_BYTES as u64;
    for (i, slot) in v1_offsets.iter_mut().enumerate() {
        *slot = offset;
        offset += hdr.counts[i] * elem_bytes(i);
    }
    let payload_end = offset as usize;
    let total = payload_end + CHECKSUM_BYTES;
    let mut image = AlignedBytes::zeroed(total);
    {
        let img = image.as_mut_bytes();
        img[0..8].copy_from_slice(&MAGIC);
        img[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        img[12..20].copy_from_slice(&hdr.num_social_links.to_le_bytes());
        img[20..28].copy_from_slice(&hdr.num_attr_links.to_le_bytes());
        for (i, &off) in v1_offsets.iter().enumerate() {
            let at = 28 + i * 16;
            img[at..at + 8].copy_from_slice(&off.to_le_bytes());
            img[at + 8..at + 16].copy_from_slice(&hdr.counts[i].to_le_bytes());
        }
        for i in 0..NUM_ARRAYS - 1 {
            let start = v1_offsets[i] as usize;
            let dst = &mut img[start..start + hdr.counts[i] as usize * 4];
            codec::decode_u32s_with(
                hdr.col(bytes, i),
                hdr.counts[i] as usize,
                ARRAY_NAMES[i],
                |j, v| {
                    dst[j * 4..j * 4 + 4].copy_from_slice(&v.to_le_bytes());
                },
            )?;
        }
        let tag_start = v1_offsets[NUM_ARRAYS - 1] as usize;
        img[tag_start..payload_end].copy_from_slice(hdr.col(bytes, NUM_ARRAYS - 1));
        let seal = fnv1a64(&img[..payload_end]);
        img[payload_end..total].copy_from_slice(&seal.to_le_bytes());
    }
    Ok(image)
}

/// Add-list names of a delta day, in file order (the five CSRs).
const DELTA_LIST_NAMES: [&str; NUM_DELTA_LISTS] =
    ["out_add", "in_add", "ua_add", "am_add", "und_add"];

/// The base day a v2 delta buffer patches, read from the header without
/// decoding anything else. Used to report [`StoreError::DeltaWithoutBase`]
/// with the day the caller must resolve first.
fn peek_delta_base_day(bytes: &[u8]) -> Result<u32, StoreError> {
    if bytes.len() < 20 {
        return Err(StoreError::Truncated {
            section: "v2 delta header",
        });
    }
    Ok(u32::from_le_bytes(array_at(bytes, 16)))
}

/// Everything a SAN gains between two persisted days: the sorted
/// `(row, value)` add-lists [`patch_csr_into`](crate::delta) consumes for
/// each of the five CSRs, the attribute-type tags of new attribute nodes,
/// and the target day's node/link counters. Monotone SAN growth (nodes and
/// links are only ever added) is what makes this complete — a delta day is
/// exactly the adds, never a removal or an in-place edit.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DeltaDay {
    base_day: u32,
    /// Social rows of the *target* day (sentinel not counted).
    new_social_rows: u64,
    /// Attribute rows of the target day.
    new_attr_rows: u64,
    num_social_links: u64,
    num_attr_links: u64,
    out_add: Vec<(u32, SocialId)>,
    in_add: Vec<(u32, SocialId)>,
    ua_add: Vec<(u32, AttrId)>,
    am_add: Vec<(u32, SocialId)>,
    und_add: Vec<(u32, SocialId)>,
    attr_type_add: Vec<AttrType>,
}

/// Per-row sorted-merge diff of two CSRs of a monotonically growing SAN:
/// every `(row, value)` present in `new` but not in `old`, in `(row,
/// value)` order — exactly the add-list shape
/// [`patch_csr_into`](crate::delta) consumes. Assumes `old ⊆ new` row by
/// row (both sorted), which monotone growth guarantees.
fn csr_diff<T: Copy + Ord>(
    old_off: &[u32],
    old_data: &[T],
    new_off: &[u32],
    new_data: &[T],
) -> Vec<(u32, T)> {
    let old_rows = old_off.len().saturating_sub(1);
    let new_rows = new_off.len().saturating_sub(1);
    let mut adds = Vec::new();
    for i in 0..new_rows {
        let new_row = &new_data[new_off[i] as usize..new_off[i + 1] as usize];
        let old_row: &[T] = if i < old_rows {
            &old_data[old_off[i] as usize..old_off[i + 1] as usize]
        } else {
            &[]
        };
        let mut a = 0usize;
        for &v in new_row {
            if a < old_row.len() && old_row[a] == v {
                a += 1;
            } else {
                adds.push((i as u32, v));
            }
        }
        debug_assert_eq!(a, old_row.len(), "row {i}: old row not a subset of new");
    }
    adds
}

/// Computes the delta from `base` (the snapshot persisted as `base_day`)
/// to `snap`. Both are trusted in-memory snapshots of the same monotone
/// timeline.
fn delta_between(base_day: u32, base: &CsrSan, snap: &CsrSan) -> DeltaDay {
    DeltaDay {
        base_day,
        new_social_rows: snap.num_social_rows() as u64,
        new_attr_rows: snap.attr_types.len() as u64,
        num_social_links: snap.num_social_links as u64,
        num_attr_links: snap.num_attr_links as u64,
        out_add: csr_diff(&base.out_off, &base.out_dst, &snap.out_off, &snap.out_dst),
        in_add: csr_diff(&base.in_off, &base.in_src, &snap.in_off, &snap.in_src),
        ua_add: csr_diff(&base.ua_off, &base.ua_attr, &snap.ua_off, &snap.ua_attr),
        am_add: csr_diff(&base.am_off, &base.am_user, &snap.am_off, &snap.am_user),
        und_add: csr_diff(&base.und_off, &base.und_nbr, &snap.und_off, &snap.und_nbr),
        attr_type_add: snap
            .attr_types
            .get(base.attr_types.len()..)
            .unwrap_or(&[])
            .to_vec(),
    }
}

impl DeltaDay {
    /// The five add-lists as `(name, pairs)` for uniform header/payload
    /// passes; list `i` mirrors CSR `i` of the file order.
    fn list_lens(&self) -> [u64; NUM_DELTA_LISTS] {
        [
            self.out_add.len() as u64,
            self.in_add.len() as u64,
            self.ua_add.len() as u64,
            self.am_add.len() as u64,
            self.und_add.len() as u64,
        ]
    }

    /// Serialises the delta day (kind byte [`V2_KIND_DELTA`]): header,
    /// then per list a codec stream of rows followed by a codec stream of
    /// values, then the raw added tags, sealed by the FNV trailer.
    /// Returns total bytes written.
    fn write_to(&self, w: &mut impl Write) -> Result<u64, StoreError> {
        let mut payload = Vec::new();
        // Per list: (rows_len, vals_len) byte lengths of the two streams.
        let mut stream_lens = [(0u64, 0u64); NUM_DELTA_LISTS];
        {
            macro_rules! put_list {
                ($i:expr, $list:expr, $as_u32:expr) => {{
                    let rows_start = payload.len();
                    codec::encode_u32s_by(&$list, |p| p.0, &mut payload);
                    let vals_start = payload.len();
                    codec::encode_u32s_by(&$list, $as_u32, &mut payload);
                    stream_lens[$i] = (
                        (vals_start - rows_start) as u64,
                        (payload.len() - vals_start) as u64,
                    );
                }};
            }
            put_list!(0, self.out_add, |p: (u32, SocialId)| p.1 .0);
            put_list!(1, self.in_add, |p: (u32, SocialId)| p.1 .0);
            put_list!(2, self.ua_add, |p: (u32, AttrId)| p.1 .0);
            put_list!(3, self.am_add, |p: (u32, SocialId)| p.1 .0);
            put_list!(4, self.und_add, |p: (u32, SocialId)| p.1 .0);
        }
        for &ty in &self.attr_type_add {
            payload.push(attr_type_tag(ty));
        }
        let lens = self.list_lens();
        let mut header = Vec::with_capacity(V2_DELTA_HEADER_BYTES);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION_V2.to_le_bytes());
        header.push(V2_KIND_DELTA);
        header.extend_from_slice(&[0u8; 3]);
        header.extend_from_slice(&self.base_day.to_le_bytes());
        header.extend_from_slice(&self.new_social_rows.to_le_bytes());
        header.extend_from_slice(&self.new_attr_rows.to_le_bytes());
        header.extend_from_slice(&self.num_social_links.to_le_bytes());
        header.extend_from_slice(&self.num_attr_links.to_le_bytes());
        for i in 0..NUM_DELTA_LISTS {
            header.extend_from_slice(&lens[i].to_le_bytes());
            header.extend_from_slice(&stream_lens[i].0.to_le_bytes());
            header.extend_from_slice(&stream_lens[i].1.to_le_bytes());
        }
        header.extend_from_slice(&(self.attr_type_add.len() as u64).to_le_bytes());
        debug_assert_eq!(header.len(), V2_DELTA_HEADER_BYTES);
        let mut hw = HashingWriter {
            inner: w,
            hash: Fnv1a::new(),
            written: 0,
        };
        hw.put(&header)?;
        hw.put(&payload)?;
        let checksum = hw.hash.finish();
        let total = hw.written + CHECKSUM_BYTES as u64;
        w.write_all(&checksum.to_le_bytes())?;
        Ok(total)
    }

    /// Parses and validates a delta-day buffer. Everything checkable
    /// without the base snapshot is checked here: header caps, checksum,
    /// codec streams, strict `(row, value)` ordering of every list, and
    /// row/value bounds against the target day's declared node counts.
    /// Base-dependent consistency lives in [`DeltaDay::apply_to`].
    fn read(bytes: &[u8]) -> Result<DeltaDay, StoreError> {
        let Some(header) = bytes.get(..V2_DELTA_HEADER_BYTES) else {
            return Err(StoreError::Truncated {
                section: "v2 delta header",
            });
        };
        let magic: [u8; 8] = array_at(header, 0);
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(array_at(header, 8));
        if version != FORMAT_VERSION_V2 {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        if header.get(VERSION_PREFIX_BYTES).copied() != Some(V2_KIND_DELTA) {
            return Err(StoreError::BadCodec {
                array: "header",
                reason: "not a v2 delta day",
            });
        }
        let u64_at = |i: usize| u64::from_le_bytes(array_at(header, i));
        let base_day = u32::from_le_bytes(array_at(header, 16));
        let new_social_rows = u64_at(20);
        let new_attr_rows = u64_at(28);
        let num_social_links = u64_at(36);
        let num_attr_links = u64_at(44);
        // The u32::MAX caps mirror v1's: CSR offsets are u32, so no valid
        // day exceeds them — reject before allocating.
        for (what, found) in [
            ("delta social rows", new_social_rows),
            ("delta attr rows", new_attr_rows),
            ("num_social_links", num_social_links),
            ("num_attr_links", num_attr_links),
        ] {
            if found > u64::from(u32::MAX) {
                return Err(StoreError::CountMismatch {
                    what,
                    expected: u64::from(u32::MAX),
                    found,
                });
            }
        }
        let mut pairs = [0u64; NUM_DELTA_LISTS];
        let mut stream_lens = [(0u64, 0u64); NUM_DELTA_LISTS];
        for i in 0..NUM_DELTA_LISTS {
            pairs[i] = u64_at(52 + i * 24);
            stream_lens[i] = (u64_at(52 + i * 24 + 8), u64_at(52 + i * 24 + 16));
            if pairs[i] > u64::from(u32::MAX) {
                return Err(StoreError::CountMismatch {
                    what: DELTA_LIST_NAMES[i],
                    expected: u64::from(u32::MAX),
                    found: pairs[i],
                });
            }
            // Same codec byte-length sanity as full-day columns.
            let max = codec::max_encoded_len(pairs[i]).unwrap_or(u64::MAX);
            for len in [stream_lens[i].0, stream_lens[i].1] {
                if len > max {
                    return Err(StoreError::BadCodec {
                        array: DELTA_LIST_NAMES[i],
                        reason: "declared byte length exceeds codec bound",
                    });
                }
                if len < pairs[i] {
                    return Err(StoreError::BadCodec {
                        array: DELTA_LIST_NAMES[i],
                        reason: "declared byte length shorter than value count",
                    });
                }
            }
        }
        let tag_count = u64_at(52 + NUM_DELTA_LISTS * 24);
        if tag_count > u64::from(u32::MAX) {
            return Err(StoreError::CountMismatch {
                what: "delta attr_types",
                expected: u64::from(u32::MAX),
                found: tag_count,
            });
        }
        // Tile the payload and bound the buffer before touching it.
        let mut offset = V2_DELTA_HEADER_BYTES as u64;
        let mut stream_at = [(0u64, 0u64); NUM_DELTA_LISTS];
        for i in 0..NUM_DELTA_LISTS {
            stream_at[i].0 = offset;
            offset = offset
                .checked_add(stream_lens[i].0)
                .ok_or(StoreError::CountMismatch {
                    what: DELTA_LIST_NAMES[i],
                    expected: u64::MAX,
                    found: stream_lens[i].0,
                })?;
            stream_at[i].1 = offset;
            offset = offset
                .checked_add(stream_lens[i].1)
                .ok_or(StoreError::CountMismatch {
                    what: DELTA_LIST_NAMES[i],
                    expected: u64::MAX,
                    found: stream_lens[i].1,
                })?;
        }
        let tags_at = offset;
        let total_bytes = offset + tag_count + CHECKSUM_BYTES as u64;
        if (bytes.len() as u64) < total_bytes {
            return Err(StoreError::Truncated {
                section: "v2 delta payload",
            });
        }
        verify_v2_trailer(bytes, total_bytes)?;
        // Decode the ten streams into five pair lists, enforcing strict
        // (row, value) order and the target-day bounds as we go.
        #[allow(clippy::too_many_arguments)]
        fn read_list<T: Copy + Ord>(
            bytes: &[u8],
            at: (u64, u64),
            lens: (u64, u64),
            count: usize,
            name: &'static str,
            row_bound: u64,
            val_bound: u64,
            from_u32: impl Fn(u32) -> T,
            as_u32: impl Fn(T) -> u32,
        ) -> Result<Vec<(u32, T)>, StoreError> {
            let rows_col = bytes
                .get(at.0 as usize..(at.0 + lens.0) as usize)
                .unwrap_or(&[]);
            let vals_col = bytes
                .get(at.1 as usize..(at.1 + lens.1) as usize)
                .unwrap_or(&[]);
            let mut out: Vec<(u32, T)> = Vec::with_capacity(count);
            codec::decode_u32s_with(rows_col, count, name, |_, r| out.push((r, from_u32(0))))?;
            codec::decode_u32s_with(vals_col, count, name, |i, v| out[i].1 = from_u32(v))?;
            for (i, &(r, v)) in out.iter().enumerate() {
                if u64::from(r) >= row_bound {
                    return Err(StoreError::IdOutOfRange { array: name });
                }
                if u64::from(as_u32(v)) >= val_bound {
                    return Err(StoreError::IdOutOfRange { array: name });
                }
                if i > 0 && (out[i - 1].0, as_u32(out[i - 1].1)) >= (r, as_u32(v)) {
                    return Err(StoreError::BadCodec {
                        array: name,
                        reason: "pairs not strictly increasing",
                    });
                }
            }
            Ok(out)
        }
        let n = new_social_rows;
        let m = new_attr_rows;
        let lists = |i: usize| (stream_at[i], stream_lens[i], pairs[i] as usize);
        let (at0, ln0, c0) = lists(0);
        let out_add = read_list(
            bytes,
            at0,
            ln0,
            c0,
            DELTA_LIST_NAMES[0],
            n,
            n,
            SocialId,
            |v| v.0,
        )?;
        let (at1, ln1, c1) = lists(1);
        let in_add = read_list(
            bytes,
            at1,
            ln1,
            c1,
            DELTA_LIST_NAMES[1],
            n,
            n,
            SocialId,
            |v| v.0,
        )?;
        let (at2, ln2, c2) = lists(2);
        let ua_add = read_list(
            bytes,
            at2,
            ln2,
            c2,
            DELTA_LIST_NAMES[2],
            n,
            m,
            AttrId,
            |v| v.0,
        )?;
        let (at3, ln3, c3) = lists(3);
        let am_add = read_list(
            bytes,
            at3,
            ln3,
            c3,
            DELTA_LIST_NAMES[3],
            m,
            n,
            SocialId,
            |v| v.0,
        )?;
        let (at4, ln4, c4) = lists(4);
        let und_add = read_list(
            bytes,
            at4,
            ln4,
            c4,
            DELTA_LIST_NAMES[4],
            n,
            n,
            SocialId,
            |v| v.0,
        )?;
        let tag_bytes = bytes
            .get(tags_at as usize..(tags_at + tag_count) as usize)
            .unwrap_or(&[]);
        let mut attr_type_add: Vec<AttrType> = Vec::with_capacity(tag_bytes.len());
        for &b in tag_bytes {
            attr_type_add.push(attr_type_from_tag(b)?);
        }
        // Cross-list counts that need no base: the paired lists mirror
        // each other (every social link lands in out+in, every attr link
        // in ua+am), and the added tags cannot exceed the attr rows.
        if in_add.len() != out_add.len() {
            return Err(StoreError::CountMismatch {
                what: DELTA_LIST_NAMES[1],
                expected: out_add.len() as u64,
                found: in_add.len() as u64,
            });
        }
        if am_add.len() != ua_add.len() {
            return Err(StoreError::CountMismatch {
                what: DELTA_LIST_NAMES[3],
                expected: ua_add.len() as u64,
                found: am_add.len() as u64,
            });
        }
        if attr_type_add.len() as u64 > new_attr_rows {
            return Err(StoreError::CountMismatch {
                what: "delta attr_types",
                expected: new_attr_rows,
                found: attr_type_add.len() as u64,
            });
        }
        Ok(DeltaDay {
            base_day,
            new_social_rows,
            new_attr_rows,
            num_social_links,
            num_attr_links,
            out_add,
            in_add,
            ua_add,
            am_add,
            und_add,
            attr_type_add,
        })
    }

    /// Patches `base` into the target day's snapshot. Every
    /// base-dependent invariant is checked first — row growth, link
    /// counters adding up, tag counts, `u32` data-length headroom, and no
    /// add duplicating an edge the base already holds — so the trusted
    /// merge in [`patch_csr_into`](crate::delta) can never see input that
    /// trips its asserts, whatever the file claimed.
    fn apply_to(&self, base: &CsrSan) -> Result<CsrSan, StoreError> {
        let base_n = base.num_social_rows() as u64;
        let base_m = base.attr_types.len() as u64;
        let n = self.new_social_rows;
        let m = self.new_attr_rows;
        if n < base_n {
            return Err(StoreError::CountMismatch {
                what: "delta social rows",
                expected: base_n,
                found: n,
            });
        }
        if m != base_m + self.attr_type_add.len() as u64 {
            return Err(StoreError::CountMismatch {
                what: "delta attr rows",
                expected: base_m + self.attr_type_add.len() as u64,
                found: m,
            });
        }
        if self.num_social_links != base.num_social_links as u64 + self.out_add.len() as u64 {
            return Err(StoreError::CountMismatch {
                what: "num_social_links",
                expected: base.num_social_links as u64 + self.out_add.len() as u64,
                found: self.num_social_links,
            });
        }
        if self.num_attr_links != base.num_attr_links as u64 + self.ua_add.len() as u64 {
            return Err(StoreError::CountMismatch {
                what: "num_attr_links",
                expected: base.num_attr_links as u64 + self.ua_add.len() as u64,
                found: self.num_attr_links,
            });
        }
        // Patched data arrays must stay under the u32 offset ceiling, and
        // no add may duplicate an edge the base already holds — both
        // would otherwise trip the trusted merge's asserts.
        fn check_adds<T: Copy + Ord>(
            off: &[u32],
            data: &[T],
            adds: &[(u32, T)],
            name: &'static str,
        ) -> Result<(), StoreError> {
            let grown = data.len() as u64 + adds.len() as u64;
            if grown > u64::from(u32::MAX) {
                return Err(StoreError::CountMismatch {
                    what: name,
                    expected: u64::from(u32::MAX),
                    found: grown,
                });
            }
            let rows = off.len().saturating_sub(1);
            for &(r, v) in adds {
                let i = r as usize;
                if i < rows
                    && data[off[i] as usize..off[i + 1] as usize]
                        .binary_search(&v)
                        .is_ok()
                {
                    return Err(StoreError::BadCodec {
                        array: name,
                        reason: "add duplicates an edge of the base day",
                    });
                }
            }
            Ok(())
        }
        check_adds(
            &base.out_off,
            &base.out_dst,
            &self.out_add,
            DELTA_LIST_NAMES[0],
        )?;
        check_adds(
            &base.in_off,
            &base.in_src,
            &self.in_add,
            DELTA_LIST_NAMES[1],
        )?;
        check_adds(
            &base.ua_off,
            &base.ua_attr,
            &self.ua_add,
            DELTA_LIST_NAMES[2],
        )?;
        check_adds(
            &base.am_off,
            &base.am_user,
            &self.am_add,
            DELTA_LIST_NAMES[3],
        )?;
        check_adds(
            &base.und_off,
            &base.und_nbr,
            &self.und_add,
            DELTA_LIST_NAMES[4],
        )?;
        let (n, m) = (n as usize, m as usize);
        let mut snap = CsrSan::default();
        crate::delta::patch_csr_into(
            &base.out_off,
            &base.out_dst,
            n,
            &self.out_add,
            &mut snap.out_off,
            &mut snap.out_dst,
        );
        crate::delta::patch_csr_into(
            &base.in_off,
            &base.in_src,
            n,
            &self.in_add,
            &mut snap.in_off,
            &mut snap.in_src,
        );
        crate::delta::patch_csr_into(
            &base.ua_off,
            &base.ua_attr,
            n,
            &self.ua_add,
            &mut snap.ua_off,
            &mut snap.ua_attr,
        );
        crate::delta::patch_csr_into(
            &base.am_off,
            &base.am_user,
            m,
            &self.am_add,
            &mut snap.am_off,
            &mut snap.am_user,
        );
        crate::delta::patch_csr_into(
            &base.und_off,
            &base.und_nbr,
            n,
            &self.und_add,
            &mut snap.und_off,
            &mut snap.und_nbr,
        );
        snap.attr_types.clear();
        snap.attr_types.reserve_exact(m);
        snap.attr_types.extend_from_slice(&base.attr_types);
        snap.attr_types.extend_from_slice(&self.attr_type_add);
        snap.num_social_links = self.num_social_links as usize;
        snap.num_attr_links = self.num_attr_links as usize;
        Ok(snap)
    }
}

/// On-disk encoding of one persisted day, as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DayFormat {
    /// v1 raw columnar file (`day <n> <bytes>`).
    V1Full,
    /// v2 codec-compressed full day (`day <n> <bytes> v2`).
    V2Full,
    /// v2 delta day patching `base` (`day <n> <bytes> delta <base>`).
    V2Delta {
        /// The persisted day this delta patches. Always strictly earlier
        /// than the delta's own day, so chains are acyclic by grammar.
        base: u32,
    },
}

/// One manifest entry: the day file's size and how it is encoded.
#[derive(Debug, Clone, Copy)]
pub struct DayEntry {
    /// Serialised bytes on disk.
    pub bytes: u64,
    /// The file's format.
    pub format: DayFormat,
}

/// A directory of persisted daily snapshots: `day-NNNN.csr` files plus a
/// `manifest.txt` index.
///
/// ```text
/// vault/
///   manifest.txt      # "# san-vault v1" then one line per day:
///                     #   day <n> <bytes>              v1 raw full day
///                     #   day <n> <bytes> v2           v2 compressed full day
///                     #   day <n> <bytes> delta <base> v2 delta against <base>
///   day-0000.csr
///   day-0007.csr
///   …
/// ```
///
/// The manifest is the source of truth for which days exist (a partially
/// written snapshot never appears in it: files are written to a temp name
/// and renamed before the manifest is updated) **and** for how to read
/// each one: a delta day names its base, and [`SnapshotVault::load_day`] /
/// [`SnapshotVault::map_day`] walk base chains (bounded by
/// [`MAX_DELTA_CHAIN`]) transparently, so mixed v1/v2/delta vaults serve
/// every consumer — including
/// [`SnapshotVault::nearest_at_or_before`] warm-starts and
/// [`SanTimeline::resume_from_vault`](crate::SanTimeline::resume_from_vault)
/// — without the caller knowing which days are deltas. A chain that names
/// a missing base or exceeds the bound is a typed
/// [`StoreError::BadManifest`].
#[derive(Debug)]
pub struct SnapshotVault {
    dir: PathBuf,
    /// day → file size + format, mirroring the manifest.
    days: BTreeMap<u32, DayEntry>,
    /// Metered IO: bytes moved + latency per direction (see
    /// [`SnapshotVault::metrics`]).
    metrics: VaultMetrics,
}

const MANIFEST: &str = "manifest.txt";
const MANIFEST_HEADER: &str = "# san-vault v1";

impl SnapshotVault {
    /// Opens a vault directory, creating it (and an empty manifest) if it
    /// does not exist yet. Opening an existing vault loads its manifest.
    pub fn create(dir: impl Into<PathBuf>) -> Result<SnapshotVault, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if dir.join(MANIFEST).exists() {
            return SnapshotVault::open(dir);
        }
        let vault = SnapshotVault {
            dir,
            days: BTreeMap::new(),
            metrics: VaultMetrics::new(),
        };
        vault.write_manifest()?;
        Ok(vault)
    }

    /// Opens an existing vault; fails if the directory or manifest is
    /// missing or malformed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SnapshotVault, StoreError> {
        let dir = dir.into();
        let text = fs::read_to_string(dir.join(MANIFEST))?;
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == MANIFEST_HEADER => {}
            other => {
                return Err(StoreError::BadManifest {
                    line: 1,
                    reason: format!(
                        "expected header {MANIFEST_HEADER:?}, found {:?}",
                        other.map(|(_, l)| l).unwrap_or("")
                    ),
                })
            }
        }
        let mut days = BTreeMap::new();
        let mut line_of = BTreeMap::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |reason: &str| StoreError::BadManifest {
                line: i + 1,
                reason: reason.to_string(),
            };
            let parts: Vec<&str> = line.split_whitespace().collect();
            let (d, b, format) = match parts.as_slice() {
                ["day", d, b] => (d, b, DayFormat::V1Full),
                ["day", d, b, "v2"] => (d, b, DayFormat::V2Full),
                ["day", d, b, "delta", base] => {
                    let base: u32 = base.parse().map_err(|_| bad("unparsable base day"))?;
                    (d, b, DayFormat::V2Delta { base })
                }
                _ => return Err(bad("expected 'day <n> <bytes> [v2 | delta <base>]'")),
            };
            let day: u32 = d.parse().map_err(|_| bad("unparsable day"))?;
            let bytes: u64 = b.parse().map_err(|_| bad("unparsable byte count"))?;
            if let DayFormat::V2Delta { base } = format {
                // Bases strictly precede their day, so every chain walks
                // down and terminates — acyclic by grammar.
                if base >= day {
                    return Err(bad("delta base must be an earlier day"));
                }
            }
            days.insert(day, DayEntry { bytes, format });
            line_of.insert(day, i + 1);
        }
        // Second pass: every delta's base must itself be in the manifest.
        for (&day, entry) in &days {
            if let DayFormat::V2Delta { base } = entry.format {
                if !days.contains_key(&base) {
                    return Err(StoreError::BadManifest {
                        line: line_of.get(&day).copied().unwrap_or(0),
                        reason: format!(
                            "delta day {day} patches base day {base}, which is not in the manifest"
                        ),
                    });
                }
            }
        }
        Ok(SnapshotVault {
            dir,
            days,
            metrics: VaultMetrics::new(),
        })
    }

    /// This vault's IO meters: bytes read/written plus a latency
    /// histogram per direction, accumulated over every
    /// [`save_day`](SnapshotVault::save_day) /
    /// [`load_day`](SnapshotVault::load_day) /
    /// [`map_day`](SnapshotVault::map_day) since the vault handle was
    /// created (meters are per-handle, not persisted). The on-disk
    /// footprint itself is [`disk_bytes`](SnapshotVault::disk_bytes).
    pub fn metrics(&self) -> &VaultMetrics {
        &self.metrics
    }

    /// The vault's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persisted days in ascending order.
    pub fn days(&self) -> impl Iterator<Item = u32> + '_ {
        self.days.keys().copied()
    }

    /// Number of persisted days.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// True when no day has been persisted.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// The path of a day's snapshot file.
    pub fn day_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("day-{day:04}.csr"))
    }

    /// Total bytes the persisted snapshots occupy on disk (manifest
    /// excluded) — the capacity-planning counterpart of
    /// [`CsrSan::heap_bytes`].
    pub fn disk_bytes(&self) -> u64 {
        self.days.values().map(|e| e.bytes).sum()
    }

    /// How a persisted day is encoded, or `None` if it is not persisted.
    pub fn day_format(&self, day: u32) -> Option<DayFormat> {
        self.days.get(&day).map(|e| e.format)
    }

    /// Persists one day's snapshot, returning its serialised size. The
    /// file is written to a temporary name and renamed, then the manifest
    /// is rewritten — a crash mid-save never leaves a registered,
    /// half-written day. Saving a day that already exists overwrites it.
    pub fn save_day(&mut self, day: u32, snap: &CsrSan) -> Result<u64, StoreError> {
        self.persist_day(day, DayFormat::V1Full, |w| snap.write_to(w))
    }

    /// Persists one day in the v2 compressed full format (see the module
    /// docs); otherwise identical to [`save_day`](SnapshotVault::save_day).
    pub fn save_day_v2(&mut self, day: u32, snap: &CsrSan) -> Result<u64, StoreError> {
        self.persist_day(day, DayFormat::V2Full, |w| snap.write_v2_to(w))
    }

    /// Persists `day` as a v2 delta against the already-persisted
    /// `base_day` (whose snapshot the caller supplies as `base` — the
    /// streaming writer keeps it resident, so no reload happens here).
    /// Fails with [`StoreError::DayNotPersisted`] when the base is not in
    /// the manifest, and with [`StoreError::BadManifest`] when the base
    /// does not precede `day` or the resulting chain would exceed
    /// [`MAX_DELTA_CHAIN`].
    pub fn save_day_delta(
        &mut self,
        day: u32,
        base_day: u32,
        base: &CsrSan,
        snap: &CsrSan,
    ) -> Result<u64, StoreError> {
        if !self.days.contains_key(&base_day) {
            return Err(StoreError::DayNotPersisted { day: base_day });
        }
        if base_day >= day {
            return Err(StoreError::BadManifest {
                line: 0,
                reason: format!("delta base day {base_day} must precede day {day}"),
            });
        }
        let (_, base_chain) = self.chain_for(base_day)?;
        if base_chain.len() + 1 > MAX_DELTA_CHAIN {
            return Err(StoreError::BadManifest {
                line: 0,
                reason: format!(
                    "persisting day {day} as a delta on day {base_day} would exceed \
                     the chain bound of {MAX_DELTA_CHAIN}"
                ),
            });
        }
        let delta = delta_between(base_day, base, snap);
        self.persist_day(day, DayFormat::V2Delta { base: base_day }, |w| {
            delta.write_to(w)
        })
    }

    /// The shared persist path: tmp file + rename, manifest update,
    /// metering — identical crash-safety whatever the format.
    fn persist_day(
        &mut self,
        day: u32,
        format: DayFormat,
        write: impl FnOnce(&mut BufWriter<fs::File>) -> Result<u64, StoreError>,
    ) -> Result<u64, StoreError> {
        let started = Instant::now();
        let tmp = self.dir.join(format!("day-{day:04}.csr.tmp"));
        let bytes = {
            let file = fs::File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            let bytes = write(&mut w)?;
            w.flush()?;
            bytes
        };
        fs::rename(&tmp, self.day_path(day))?;
        self.days.insert(day, DayEntry { bytes, format });
        self.write_manifest()?;
        self.metrics.record_write(bytes, started.elapsed());
        Ok(bytes)
    }

    /// Freezes every `step`-th day of the timeline (always including the
    /// final day) through the incremental delta pipeline and persists each
    /// one. Returns the persisted days in order.
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn save_timeline(
        &mut self,
        timeline: &crate::SanTimeline,
        step: u32,
    ) -> Result<Vec<u32>, StoreError> {
        let mut saved = Vec::new();
        for (day, snap) in timeline.snapshot_stream(step) {
            self.save_day(day, &snap)?;
            saved.push(day);
        }
        Ok(saved)
    }

    /// Loads a persisted day as a shared snapshot handle (eager: every
    /// column is deserialised into owned arrays). A delta day is resolved
    /// through its base chain transparently. For the zero-copy alternative
    /// see [`map_day`](SnapshotVault::map_day).
    pub fn load_day(&self, day: u32) -> Result<Arc<CsrSan>, StoreError> {
        let Some(&entry) = self.days.get(&day) else {
            return Err(StoreError::DayNotPersisted { day });
        };
        match entry.format {
            DayFormat::V1Full | DayFormat::V2Full => {
                let started = Instant::now();
                let file = fs::File::open(self.day_path(day))?;
                let mut r = BufReader::new(file);
                let snap = CsrSan::read_from(&mut r)?;
                self.metrics.record_read(entry.bytes, started.elapsed());
                Ok(Arc::new(snap))
            }
            DayFormat::V2Delta { .. } => self.load_delta_chain(day),
        }
    }

    /// Walks `day`'s base chain down to a full day. Returns that full day
    /// plus the delta days on the way, newest first. Enforces the
    /// [`MAX_DELTA_CHAIN`] bound and surfaces a missing or cyclic base as
    /// [`StoreError::BadManifest`] (the parse-time checks make those
    /// unreachable for a manifest this handle loaded, but the walk stays
    /// total for manifests mutated behind it).
    fn chain_for(&self, day: u32) -> Result<(u32, Vec<u32>), StoreError> {
        let mut chain = Vec::new();
        let mut d = day;
        loop {
            let Some(&entry) = self.days.get(&d) else {
                return Err(StoreError::BadManifest {
                    line: 0,
                    reason: format!("delta chain for day {day} references missing day {d}"),
                });
            };
            match entry.format {
                DayFormat::V1Full | DayFormat::V2Full => return Ok((d, chain)),
                DayFormat::V2Delta { base } => {
                    chain.push(d);
                    if chain.len() > MAX_DELTA_CHAIN {
                        return Err(StoreError::BadManifest {
                            line: 0,
                            reason: format!(
                                "delta chain for day {day} exceeds the bound of {MAX_DELTA_CHAIN}"
                            ),
                        });
                    }
                    if base >= d {
                        return Err(StoreError::BadManifest {
                            line: 0,
                            reason: format!(
                                "delta day {d} names a base ({base}) that does not precede it"
                            ),
                        });
                    }
                    d = base;
                }
            }
        }
    }

    /// Reconstructs a delta day: eager-load its full ancestor, then apply
    /// the chain's deltas oldest → newest. Metered as one read of the
    /// chain's combined bytes, plus the chain counters
    /// ([`VaultMetrics::record_chain`]).
    fn load_delta_chain(&self, day: u32) -> Result<Arc<CsrSan>, StoreError> {
        let started = Instant::now();
        let (full_day, chain) = self.chain_for(day)?;
        let mut total_bytes = self.days.get(&full_day).map_or(0, |e| e.bytes);
        let file = fs::File::open(self.day_path(full_day))?;
        let mut r = BufReader::new(file);
        let mut cur = CsrSan::read_from(&mut r)?;
        for &d in chain.iter().rev() {
            let raw = fs::read(self.day_path(d))?;
            total_bytes += raw.len() as u64;
            let delta = DeltaDay::read(&raw)?;
            // Defense in depth: the file's own base pointer must agree
            // with the manifest's chain.
            let expected_base = match self.days.get(&d).map(|e| e.format) {
                Some(DayFormat::V2Delta { base }) => base,
                _ => d,
            };
            if delta.base_day != expected_base {
                return Err(StoreError::BadManifest {
                    line: 0,
                    reason: format!(
                        "day {d}'s file patches base day {}, manifest says {expected_base}",
                        delta.base_day
                    ),
                });
            }
            cur = delta.apply_to(&cur)?;
        }
        self.metrics.record_read(total_bytes, started.elapsed());
        self.metrics.record_chain(chain.len() as u64);
        Ok(Arc::new(cur))
    }

    /// Maps a persisted day read-only into memory and validates it once
    /// (header + checksum + structure), without deserialising a single
    /// column — the zero-copy counterpart of
    /// [`load_day`](SnapshotVault::load_day). The returned
    /// [`MappedSnapshot`](crate::mmap::MappedSnapshot) hands out
    /// [`CsrSanView`](crate::view::CsrSanView)s that read the file's pages
    /// in place and is `Send + Sync`, so one mapping can serve many
    /// threads. Metered as a read of the file's full validated length
    /// (the validation pass touches every byte).
    #[cfg(unix)]
    pub fn map_day(&self, day: u32) -> Result<crate::mmap::MappedSnapshot, StoreError> {
        let Some(&entry) = self.days.get(&day) else {
            return Err(StoreError::DayNotPersisted { day });
        };
        match entry.format {
            DayFormat::V1Full | DayFormat::V2Full => {
                let started = Instant::now();
                let mapped = crate::mmap::MappedSnapshot::open(self.day_path(day))?;
                self.metrics.record_read(entry.bytes, started.elapsed());
                Ok(mapped)
            }
            DayFormat::V2Delta { .. } => {
                // A delta day has no standalone on-disk image to map; the
                // chain is reconstructed (metered inside) and served from
                // an owned, v1-layout buffer behind the same handle type.
                let snap = self.load_delta_chain(day)?;
                crate::mmap::MappedSnapshot::from_owned(&snap, self.day_path(day))
            }
        }
    }

    /// The latest persisted day that is `≤ day` — the warm-start point for
    /// a sweep resuming at `day`.
    pub fn nearest_at_or_before(&self, day: u32) -> Option<u32> {
        self.days.range(..=day).next_back().map(|(&d, _)| d)
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for (day, entry) in &self.days {
            let bytes = entry.bytes;
            match entry.format {
                DayFormat::V1Full => text.push_str(&format!("day {day} {bytes}\n")),
                DayFormat::V2Full => text.push_str(&format!("day {day} {bytes} v2\n")),
                DayFormat::V2Delta { base } => {
                    text.push_str(&format!("day {day} {bytes} delta {base}\n"))
                }
            }
        }
        let tmp = self.dir.join("manifest.txt.tmp");
        fs::write(&tmp, text)?;
        fs::rename(tmp, self.dir.join(MANIFEST))?;
        Ok(())
    }
}

/// Streams a synthesized timeline straight into a vault: each day's
/// events patch the rolling snapshot (a [`DeltaFreezer`](crate::DeltaFreezer)
/// inside), and grid days are persisted the moment they complete —
/// compressed v2 full days every `full_every`-th persist, v2 deltas
/// against the previous persisted day otherwise. Nothing else is
/// retained: peak memory is one day's events plus the rolling snapshot
/// (and the previous persisted day's `Arc`, which shares storage with it
/// in the steady state), however many days the timeline runs.
///
/// ```no_run
/// # use san_graph::store::{SnapshotVault, StreamingVaultWriter};
/// # let events_of_day = |_d: u32| Vec::new();
/// let mut vault = SnapshotVault::create("vault")?;
/// let mut writer = StreamingVaultWriter::new(&mut vault, 7, 4);
/// for day in 0..=98 {
///     writer.apply_day(&events_of_day(day))?;
/// }
/// let saved = writer.finish()?;
/// # Ok::<(), san_graph::store::StoreError>(())
/// ```
pub struct StreamingVaultWriter<'a> {
    vault: &'a mut SnapshotVault,
    freezer: crate::DeltaFreezer,
    step: u32,
    full_every: u32,
    next_day: u32,
    deltas_since_full: u32,
    prev: Option<(u32, Arc<CsrSan>)>,
    saved: Vec<u32>,
    v1_equivalent_bytes: u64,
}

impl<'a> StreamingVaultWriter<'a> {
    /// A writer persisting every `step`-th day (the same grid as
    /// [`SnapshotVault::save_timeline`]: day 0, then multiples of `step`,
    /// plus the final day at [`finish`](StreamingVaultWriter::finish)),
    /// with at most `full_every - 1` consecutive deltas between full
    /// days.
    ///
    /// # Panics
    /// Panics if `step == 0` or `full_every` is 0 or above
    /// [`MAX_DELTA_CHAIN`].
    pub fn new(
        vault: &'a mut SnapshotVault,
        step: u32,
        full_every: u32,
    ) -> StreamingVaultWriter<'a> {
        assert!(step > 0, "step must be positive");
        assert!(
            (1..=MAX_DELTA_CHAIN as u32).contains(&full_every),
            "full_every must be in 1..={MAX_DELTA_CHAIN}"
        );
        StreamingVaultWriter {
            vault,
            freezer: crate::DeltaFreezer::new(),
            step,
            full_every,
            next_day: 0,
            deltas_since_full: 0,
            prev: None,
            saved: Vec::new(),
            v1_equivalent_bytes: 0,
        }
    }

    /// Applies the next day's events (day numbers are implicit and
    /// consecutive from 0) and persists if the day is on the grid.
    pub fn apply_day(&mut self, events: &[crate::SanEvent]) -> Result<(), StoreError> {
        let day = self.next_day;
        self.freezer.apply_day(events);
        self.next_day += 1;
        if day.is_multiple_of(self.step) {
            self.persist(day)?;
        }
        Ok(())
    }

    fn persist(&mut self, day: u32) -> Result<(), StoreError> {
        let snap = self.freezer.snapshot();
        self.v1_equivalent_bytes += snap.store_bytes_len();
        match self.prev.take() {
            Some((prev_day, prev_snap)) if self.deltas_since_full < self.full_every - 1 => {
                self.vault
                    .save_day_delta(day, prev_day, &prev_snap, &snap)?;
                self.deltas_since_full += 1;
            }
            _ => {
                self.vault.save_day_v2(day, &snap)?;
                self.deltas_since_full = 0;
            }
        }
        self.prev = Some((day, snap));
        self.saved.push(day);
        Ok(())
    }

    /// The rolling end-of-day snapshot (shared handle, no copy).
    pub fn snapshot(&mut self) -> Arc<CsrSan> {
        self.freezer.snapshot()
    }

    /// Days applied so far (the next [`apply_day`](StreamingVaultWriter::apply_day)
    /// is this day).
    pub fn days_applied(&self) -> u32 {
        self.next_day
    }

    /// What the persisted days would have occupied in the raw v1 format —
    /// the denominator of the v2 compression ratio.
    pub fn v1_equivalent_bytes(&self) -> u64 {
        self.v1_equivalent_bytes
    }

    /// Persists the final day if it is off the grid (matching
    /// [`SnapshotVault::save_timeline`]'s always-include-the-last-day
    /// contract) and returns the persisted days in order.
    pub fn finish(mut self) -> Result<Vec<u32>, StoreError> {
        if let Some(last) = self.next_day.checked_sub(1) {
            if last % self.step != 0 {
                self.persist(last)?;
            }
        }
        Ok(self.saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::TimelineBuilder;
    use crate::san::San;

    fn small_csr() -> CsrSan {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        let u2 = tb.add_social_node();
        let a0 = tb.add_attr_node(AttrType::City);
        let a1 = tb.add_attr_node(AttrType::Employer);
        tb.add_social_link(u0, u1);
        tb.add_social_link(u1, u0);
        tb.add_social_link(u2, u0);
        tb.add_attr_link(u0, a0);
        tb.add_attr_link(u2, a1);
        tb.finish().1.freeze()
    }

    #[test]
    fn roundtrip_small() {
        let csr = small_csr();
        let bytes = csr.to_store_bytes();
        assert_eq!(bytes.len() as u64, csr.store_bytes_len());
        let back = CsrSan::from_store_bytes(&bytes).unwrap();
        assert_eq!(back, csr);
    }

    #[test]
    fn roundtrip_empty() {
        let csr = San::new().freeze();
        let back = CsrSan::from_store_bytes(&csr.to_store_bytes()).unwrap();
        assert_eq!(back, csr);
    }

    /// `read_from` allocates each column exactly: no capacity slack, so
    /// the loaded snapshot's heap accounting equals the original's and
    /// `heap_bytes` stays an exact per-array audit across the store path.
    #[test]
    fn read_from_allocates_exact_capacity() {
        let csr = small_csr();
        let back = CsrSan::from_store_bytes(&csr.to_store_bytes()).unwrap();
        assert_eq!(back.heap_bytes(), {
            // Recompute the original's accounting from lengths: identical.
            csr.heap_bytes()
        });
        assert_eq!(back.out_off.capacity(), back.out_off.len());
        assert_eq!(back.out_dst.capacity(), back.out_dst.len());
        assert_eq!(back.in_off.capacity(), back.in_off.len());
        assert_eq!(back.in_src.capacity(), back.in_src.len());
        assert_eq!(back.ua_off.capacity(), back.ua_off.len());
        assert_eq!(back.ua_attr.capacity(), back.ua_attr.len());
        assert_eq!(back.am_off.capacity(), back.am_off.len());
        assert_eq!(back.am_user.capacity(), back.am_user.len());
        assert_eq!(back.und_off.capacity(), back.und_off.len());
        assert_eq!(back.und_nbr.capacity(), back.und_nbr.len());
        assert_eq!(back.attr_types.capacity(), back.attr_types.len());
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn id_out_of_range_is_detected() {
        // Hand-corrupt an id beyond the node count, re-seal the checksum:
        // the structural check must catch what the checksum now vouches
        // for.
        let csr = small_csr();
        let mut bytes = csr.to_store_bytes();
        // out_dst is the second array: starts at HEADER_BYTES + (n+1)*4.
        let out_dst_start = HEADER_BYTES + (csr.num_social_rows() + 1) * 4;
        bytes[out_dst_start..out_dst_start + 4].copy_from_slice(&99u32.to_le_bytes());
        let len = bytes.len();
        let seal = fnv1a64(&bytes[..len - CHECKSUM_BYTES]);
        bytes[len - CHECKSUM_BYTES..].copy_from_slice(&seal.to_le_bytes());
        let err = CsrSan::from_store_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, StoreError::IdOutOfRange { array: "out_dst" }),
            "{err}"
        );
    }

    #[test]
    fn bad_attr_type_tag_is_detected() {
        let csr = small_csr();
        let mut bytes = csr.to_store_bytes();
        let len = bytes.len();
        // attr_types is the final payload array, right before the trailer.
        let tag_pos = len - CHECKSUM_BYTES - csr.attr_types.len();
        bytes[tag_pos] = 250;
        let seal = fnv1a64(&bytes[..len - CHECKSUM_BYTES]);
        bytes[len - CHECKSUM_BYTES..].copy_from_slice(&seal.to_le_bytes());
        let err = CsrSan::from_store_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, StoreError::BadAttrType { value: 250 }),
            "{err}"
        );
    }

    #[test]
    fn attr_type_tags_are_stable() {
        for (tag, ty) in [
            (0u8, AttrType::School),
            (1, AttrType::Major),
            (2, AttrType::Employer),
            (3, AttrType::City),
            (4, AttrType::Other),
        ] {
            assert_eq!(attr_type_tag(ty), tag);
            assert_eq!(attr_type_from_tag(tag).unwrap(), ty);
        }
        assert!(attr_type_from_tag(5).is_err());
    }

    #[test]
    fn vault_save_load_nearest() {
        let dir = std::env::temp_dir().join(format!("san-vault-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        assert!(vault.is_empty());
        assert_eq!(vault.nearest_at_or_before(10), None);
        let csr = small_csr();
        let bytes = vault.save_day(3, &csr).unwrap();
        assert_eq!(bytes, csr.store_bytes_len());
        vault.save_day(9, &csr).unwrap();
        assert_eq!(vault.days().collect::<Vec<_>>(), vec![3, 9]);
        assert_eq!(vault.disk_bytes(), 2 * bytes);
        assert_eq!(vault.nearest_at_or_before(2), None);
        assert_eq!(vault.nearest_at_or_before(3), Some(3));
        assert_eq!(vault.nearest_at_or_before(8), Some(3));
        assert_eq!(vault.nearest_at_or_before(100), Some(9));
        assert_eq!(*vault.load_day(3).unwrap(), csr);
        assert!(matches!(
            vault.load_day(4).unwrap_err(),
            StoreError::DayNotPersisted { day: 4 }
        ));
        // Reopen: the manifest restores the same view.
        let reopened = SnapshotVault::open(&dir).unwrap();
        assert_eq!(reopened.days().collect::<Vec<_>>(), vec![3, 9]);
        assert_eq!(reopened.disk_bytes(), vault.disk_bytes());
        assert_eq!(*reopened.load_day(9).unwrap(), csr);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn vault_open_missing_and_bad_manifest() {
        let dir = std::env::temp_dir().join(format!("san-vault-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(matches!(
            SnapshotVault::open(&dir).unwrap_err(),
            StoreError::Io(_)
        ));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST), "not a vault\n").unwrap();
        assert!(matches!(
            SnapshotVault::open(&dir).unwrap_err(),
            StoreError::BadManifest { line: 1, .. }
        ));
        fs::write(dir.join(MANIFEST), format!("{MANIFEST_HEADER}\nday x 7\n")).unwrap();
        assert!(matches!(
            SnapshotVault::open(&dir).unwrap_err(),
            StoreError::BadManifest { line: 2, .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_timeline_persists_sampled_grid() {
        let mut tb = TimelineBuilder::new();
        let mut prev = tb.add_social_node();
        for day in 1..=10u32 {
            tb.advance_to_day(day);
            let u = tb.add_social_node();
            tb.add_social_link(u, prev);
            prev = u;
        }
        let (tl, _) = tb.finish();
        let dir = std::env::temp_dir().join(format!("san-vault-tl-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        let saved = vault.save_timeline(&tl, 4).unwrap();
        assert_eq!(saved, vec![0, 4, 8, 10]);
        for day in saved {
            assert_eq!(*vault.load_day(day).unwrap(), tl.snapshot_csr(day));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Metered IO on the eager vault paths: every save/load/map feeds the
    /// byte counters and latency histograms surfaced by
    /// [`SnapshotVault::metrics`], and the written-byte total matches
    /// [`SnapshotVault::disk_bytes`] exactly when nothing is overwritten.
    #[test]
    fn vault_metrics_meter_saves_loads_and_maps() {
        let dir = std::env::temp_dir().join(format!("san-vault-meter-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        assert_eq!(vault.metrics().writes(), 0);
        assert_eq!(vault.metrics().reads(), 0);
        let csr = small_csr();
        let bytes = vault.save_day(2, &csr).unwrap();
        vault.save_day(6, &csr).unwrap();
        assert_eq!(vault.metrics().writes(), 2);
        assert_eq!(vault.metrics().written_bytes(), 2 * bytes);
        assert_eq!(vault.metrics().written_bytes(), vault.disk_bytes());
        assert_eq!(vault.metrics().write_latency().count(), 2);
        // Eager loads meter the read side.
        vault.load_day(2).unwrap();
        vault.load_day(6).unwrap();
        vault.load_day(6).unwrap();
        assert_eq!(vault.metrics().reads(), 3);
        assert_eq!(vault.metrics().read_bytes(), 3 * bytes);
        assert_eq!(vault.metrics().read_latency().count(), 3);
        // Mapped opens meter the same read counters.
        #[cfg(unix)]
        {
            let mapped = vault.map_day(2).unwrap();
            assert_eq!(mapped.mapped_bytes() as u64, bytes);
            assert_eq!(vault.metrics().reads(), 4);
            assert_eq!(vault.metrics().read_bytes(), 4 * bytes);
        }
        // A failed load (unpersisted day) meters nothing.
        assert!(vault.load_day(5).is_err());
        assert_eq!(vault.metrics().reads(), if cfg!(unix) { 4 } else { 3 });
        let _ = fs::remove_dir_all(&dir);
    }

    /// A 7-day growing timeline: one new user + reciprocal links per day,
    /// plus attribute churn — enough structure that every delta list is
    /// non-trivial.
    fn grown_timeline() -> crate::evolve::SanTimeline {
        let mut tb = TimelineBuilder::new();
        let mut users = vec![tb.add_social_node()];
        let a0 = tb.add_attr_node(AttrType::School);
        tb.add_attr_link(users[0], a0);
        for day in 1..=6u32 {
            tb.advance_to_day(day);
            let u = tb.add_social_node();
            let prev = users[day as usize - 1];
            tb.add_social_link(u, prev);
            tb.add_social_link(prev, u);
            if day % 2 == 0 {
                let a = tb.add_attr_node(AttrType::City);
                tb.add_attr_link(u, a);
            } else {
                tb.add_attr_link(u, a0);
            }
            users.push(u);
        }
        tb.finish().0
    }

    #[test]
    fn vault_v2_full_and_delta_days_roundtrip() {
        let tl = grown_timeline();
        let snaps: Vec<CsrSan> = (0..=6).map(|d| tl.snapshot_csr(d)).collect();
        let dir = std::env::temp_dir().join(format!("san-vault-v2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        vault.save_day_v2(0, &snaps[0]).unwrap();
        assert_eq!(vault.day_format(0), Some(DayFormat::V2Full));
        for day in 1..=3u32 {
            vault
                .save_day_delta(day, day - 1, &snaps[day as usize - 1], &snaps[day as usize])
                .unwrap();
            assert_eq!(
                vault.day_format(day),
                Some(DayFormat::V2Delta { base: day - 1 })
            );
        }
        // Every persisted day reconstructs exactly, full or chained.
        for day in 0..=3u32 {
            assert_eq!(*vault.load_day(day).unwrap(), snaps[day as usize]);
        }
        // Chain metering recorded the reconstructions.
        assert_eq!(vault.metrics().delta_chain_loads(), 3);
        assert_eq!(vault.metrics().max_chain_len(), 3);
        assert_eq!(vault.metrics().delta_links_applied(), 1 + 2 + 3);
        // A delta day maps too: served from an owned decoded image.
        #[cfg(unix)]
        {
            let mapped = vault.map_day(3).unwrap();
            assert_eq!(mapped.view().to_owned_csr(), snaps[3]);
            assert_eq!(mapped.mapped_bytes() as u64, snaps[3].store_bytes_len());
        }
        // The deltas must be cheaper on disk than re-persisting fulls.
        let full_bytes: u64 = snaps[1..=3].iter().map(|s| s.store_bytes_len()).sum();
        assert!(vault.disk_bytes() < full_bytes);
        // Reopen: the mixed-format manifest restores formats and chains.
        let reopened = SnapshotVault::open(&dir).unwrap();
        assert_eq!(reopened.day_format(3), Some(DayFormat::V2Delta { base: 2 }));
        assert_eq!(*reopened.load_day(3).unwrap(), snaps[3]);
        assert_eq!(reopened.nearest_at_or_before(5), Some(3));
        // resume_from_vault warm-starts straight off a delta day.
        let (persisted, mut freezer) = crate::DeltaFreezer::resume_from_vault(&reopened, 5)
            .unwrap()
            .expect("vault has days at or before 5");
        assert_eq!(persisted, 3);
        assert_eq!(*freezer.snapshot(), snaps[3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_day_delta_guards() {
        let tl = grown_timeline();
        let snaps: Vec<CsrSan> = (0..=2).map(|d| tl.snapshot_csr(d)).collect();
        let dir = std::env::temp_dir().join(format!("san-vault-guard-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        // The base must already be persisted…
        assert!(matches!(
            vault
                .save_day_delta(1, 0, &snaps[0], &snaps[1])
                .unwrap_err(),
            StoreError::DayNotPersisted { day: 0 }
        ));
        vault.save_day_v2(0, &snaps[0]).unwrap();
        // …and must strictly precede the delta day.
        assert!(matches!(
            vault
                .save_day_delta(0, 0, &snaps[0], &snaps[0])
                .unwrap_err(),
            StoreError::BadManifest { .. }
        ));
        // Chains are bounded at persist time: MAX_DELTA_CHAIN deltas fit,
        // one more is refused (empty deltas keep the content trivial).
        for d in 1..=MAX_DELTA_CHAIN as u32 {
            vault
                .save_day_delta(d, d - 1, &snaps[0], &snaps[0])
                .unwrap();
        }
        let over = MAX_DELTA_CHAIN as u32 + 1;
        assert!(matches!(
            vault
                .save_day_delta(over, over - 1, &snaps[0], &snaps[0])
                .unwrap_err(),
            StoreError::BadManifest { .. }
        ));
        // The longest admitted chain still reconstructs.
        assert_eq!(*vault.load_day(MAX_DELTA_CHAIN as u32).unwrap(), snaps[0]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn broken_delta_chains_surface_bad_manifest() {
        let tl = grown_timeline();
        let snaps: Vec<CsrSan> = (0..=2).map(|d| tl.snapshot_csr(d)).collect();
        let dir = std::env::temp_dir().join(format!("san-vault-chain-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        vault.save_day_v2(0, &snaps[0]).unwrap();
        vault.save_day_delta(1, 0, &snaps[0], &snaps[1]).unwrap();
        vault.save_day_delta(2, 1, &snaps[1], &snaps[2]).unwrap();
        assert_eq!(*vault.load_day(2).unwrap(), snaps[2]);
        let manifest = fs::read_to_string(dir.join(MANIFEST)).unwrap();

        // A base that never precedes its day is rejected at parse.
        fs::write(dir.join(MANIFEST), manifest.replace("delta 1", "delta 2")).unwrap();
        assert!(matches!(
            SnapshotVault::open(&dir).unwrap_err(),
            StoreError::BadManifest { line: 4, .. }
        ));

        // A base day the manifest never lists is rejected on the second
        // pass, naming the offending line.
        fs::write(dir.join(MANIFEST), manifest.replace("delta 1", "delta 5")).unwrap();
        let err = SnapshotVault::open(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::BadManifest { line: 4, .. }),
            "{err}"
        );

        // A manifest whose chain disagrees with the file's own base
        // pointer opens (both days exist) but fails typed at load.
        fs::write(dir.join(MANIFEST), manifest.replace("delta 1", "delta 0")).unwrap();
        let twisted = SnapshotVault::open(&dir).unwrap();
        let err = twisted.load_day(2).unwrap_err();
        assert!(matches!(err, StoreError::BadManifest { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Hand-built daily event lists: day 0 seeds two users, one attribute
    /// and a link; each later day adds a user, reciprocal links and an
    /// attribute declaration.
    fn event_days(num_days: u32) -> Vec<Vec<crate::SanEvent>> {
        use crate::SanEvent::{AttrLink, AttrNode, SocialLink, SocialNode};
        let mut days = vec![vec![
            SocialNode { day: 0 },
            SocialNode { day: 0 },
            AttrNode {
                day: 0,
                ty: AttrType::School,
            },
            SocialLink {
                day: 0,
                src: SocialId(0),
                dst: SocialId(1),
            },
            AttrLink {
                day: 0,
                user: SocialId(0),
                attr: AttrId(0),
            },
        ]];
        for day in 1..num_days {
            let new = day + 1; // users 0 and 1 arrived on day 0
            days.push(vec![
                SocialNode { day },
                SocialLink {
                    day,
                    src: SocialId(new),
                    dst: SocialId(new - 1),
                },
                SocialLink {
                    day,
                    src: SocialId(new - 1),
                    dst: SocialId(new),
                },
                AttrLink {
                    day,
                    user: SocialId(new),
                    attr: AttrId(0),
                },
            ]);
        }
        days
    }

    #[test]
    fn streaming_vault_writer_persists_grid_with_bounded_chains() {
        let days = event_days(11); // days 0..=10
                                   // Reference replay: the expected snapshot at each grid day.
        let mut reference = crate::DeltaFreezer::new();
        let mut expected = Vec::new();
        for (day, events) in days.iter().enumerate() {
            reference.apply_day(events);
            if day % 2 == 0 {
                expected.push((day as u32, reference.snapshot()));
            }
        }
        let dir = std::env::temp_dir().join(format!("san-vault-stream-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        {
            let mut writer = StreamingVaultWriter::new(&mut vault, 2, 3);
            for events in &days {
                writer.apply_day(events).unwrap();
            }
            assert_eq!(writer.days_applied(), 11);
            let saved = writer.finish().unwrap();
            assert_eq!(saved, vec![0, 2, 4, 6, 8, 10]);
        }
        // full_every = 3 ⇒ the persist pattern is F D D F D D on the grid.
        assert_eq!(vault.day_format(0), Some(DayFormat::V2Full));
        assert_eq!(vault.day_format(2), Some(DayFormat::V2Delta { base: 0 }));
        assert_eq!(vault.day_format(4), Some(DayFormat::V2Delta { base: 2 }));
        assert_eq!(vault.day_format(6), Some(DayFormat::V2Full));
        assert_eq!(vault.day_format(8), Some(DayFormat::V2Delta { base: 6 }));
        assert_eq!(vault.day_format(10), Some(DayFormat::V2Delta { base: 8 }));
        // Every persisted day matches an independent event replay.
        for (day, snap) in &expected {
            assert_eq!(*vault.load_day(*day).unwrap(), **snap, "day {day}");
        }
        // The whole v2 vault undercuts the v1-equivalent footprint.
        let v1_equiv: u64 = expected.iter().map(|(_, s)| s.store_bytes_len()).sum();
        assert!(
            vault.disk_bytes() < v1_equiv,
            "v2 vault {} vs v1-equivalent {}",
            vault.disk_bytes(),
            v1_equiv
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_errors_surface_as_io() {
        // A writer that always fails must come back as StoreError::Io.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = small_csr().write_to(&mut Broken).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
    }
}
