//! Columnar binary snapshot store: persist a [`CsrSan`] and load it back
//! without replaying a single event.
//!
//! # Format (`SANCSRBF`, version 1)
//!
//! A snapshot file is a fixed-size header, eleven contiguous columnar
//! payload arrays, and a trailing checksum — everything little-endian:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic: b"SANCSRBF"
//!      8     4  format version: u32 (currently 1)
//!     12     8  num_social_links: u64
//!     20     8  num_attr_links:   u64
//!     28   176  11 array descriptors, one per payload array, in file order:
//!                 { byte_offset: u64, element_count: u64 }
//!    204     …  payload arrays, contiguous, in descriptor order:
//!                 out_off   u32 × (n+1)   CSR row offsets, Γs,out
//!                 out_dst   u32 × Es      destination ids
//!                 in_off    u32 × (n+1)   CSR row offsets, Γs,in
//!                 in_src    u32 × Es      source ids
//!                 ua_off    u32 × (n+1)   CSR row offsets, user→attr
//!                 ua_attr   u32 × Ea      attribute ids
//!                 am_off    u32 × (m+1)   CSR row offsets, attr→user
//!                 am_user   u32 × Ea      member ids
//!                 und_off   u32 × (n+1)   CSR row offsets, Γs (union)
//!                 und_nbr   u32 × U       undirected neighbour ids
//!                 attr_types u8 × m       attribute-type tags
//!   tail      8  FNV-1a 64-bit checksum of every preceding byte
//! ```
//!
//! Each array is written as raw little-endian elements with **no padding**
//! between arrays, and every descriptor's `byte_offset` is absolute from
//! the start of the snapshot — a future mmap path can view any column in
//! place from the header alone without touching the others.
//!
//! ## Versioning policy
//!
//! The magic identifies the family; `version` is bumped on **any** layout
//! change (array order, element width, header field). Readers reject
//! versions they do not know ([`StoreError::UnsupportedVersion`]) rather
//! than guessing: snapshot files are cheap to regenerate from the event
//! log, so there is no migration machinery — old files are simply
//! re-frozen.
//!
//! ## Validation
//!
//! [`CsrSan::read_from`] never panics on untrusted bytes and never returns
//! a structurally inconsistent graph. Every failure is a typed
//! [`StoreError`]:
//!
//! * short stream anywhere → [`StoreError::Truncated`],
//! * wrong magic / unknown version → [`StoreError::BadMagic`] /
//!   [`StoreError::UnsupportedVersion`],
//! * descriptors that do not tile the payload region exactly →
//!   [`StoreError::OffsetMismatch`],
//! * element counts that disagree with each other or with the header
//!   link counters → [`StoreError::CountMismatch`],
//! * a CSR offset table that does not start at 0, decreases, or does not
//!   end at its payload length → [`StoreError::NonMonotoneOffsets`],
//! * an unknown attribute-type tag → [`StoreError::BadAttrType`],
//! * a neighbour/member id outside the node range →
//!   [`StoreError::IdOutOfRange`],
//! * a checksum mismatch (random corruption anywhere) →
//!   [`StoreError::BadChecksum`].
//!
//! Header-level checks (magic, version, descriptor tiling, cross-array
//! counts — including a hard cap of `u32::MAX` elements per array, which
//! no valid snapshot can exceed since CSR offsets are `u32`) run before
//! any payload is allocated, and payload reservations trust a declared
//! count only up to a fixed bound before the stream has delivered the
//! bytes — so a crafted header can neither panic the reader nor reserve
//! memory the file does not contain. The offset-table and id-range
//! validators run after the checksum has vouched for the bytes,
//! so random corruption surfaces as [`StoreError::BadChecksum`] while a
//! deliberately re-sealed file still cannot smuggle in a non-monotone
//! table or a dangling id.
//!
//! # Vaults
//!
//! [`SnapshotVault`] turns the single-file format into a persisted
//! timeline: a directory of `day-NNNN.csr` files plus a `manifest.txt`
//! index. [`SnapshotVault::save_timeline`] freezes every `step`-th day
//! through the delta pipeline and persists it;
//! [`SanTimeline::resume_from_vault`](crate::SanTimeline::resume_from_vault)
//! then warm-starts any later sweep from the nearest persisted day instead
//! of replaying from day 0.

use crate::csr::CsrSan;
use crate::ids::{AttrId, AttrType, SocialId};
use crate::meter::VaultMetrics;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// File magic identifying the columnar CsrSan snapshot family.
pub const MAGIC: [u8; 8] = *b"SANCSRBF";

/// Current format version; bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Number of columnar payload arrays in a snapshot file.
pub const NUM_ARRAYS: usize = 11;

/// Header size in bytes: magic + version + two link counters + one
/// `{u64 offset, u64 count}` descriptor per payload array.
pub const HEADER_BYTES: usize = 8 + 4 + 8 + 8 + NUM_ARRAYS * 16;

/// Trailing checksum size in bytes.
pub const CHECKSUM_BYTES: usize = 8;

/// Payload array names, in file order (descriptor order). Public so tests
/// and tooling can report positions symbolically.
pub const ARRAY_NAMES: [&str; NUM_ARRAYS] = [
    "out_off",
    "out_dst",
    "in_off",
    "in_src",
    "ua_off",
    "ua_attr",
    "am_off",
    "am_user",
    "und_off",
    "und_nbr",
    "attr_types",
];

/// FNV-1a 64-bit over a byte slice — the checksum the format uses.
///
/// Exposed so tests and tooling can re-seal a deliberately patched
/// snapshot (corruption-matrix tests isolate structural errors from
/// checksum errors this way).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a 64-bit hasher.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Every way persisting or loading a snapshot can fail. No variant is ever
/// a panic: untrusted bytes always come back as one of these.
#[derive(Debug)]
pub enum StoreError {
    /// The stream ended before the named section was complete.
    Truncated {
        /// Which section was being read when the stream ran dry.
        section: &'static str,
    },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 8],
    },
    /// The file's format version is not one this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// An array descriptor's byte offset does not continue the previous
    /// array exactly (the arrays must tile the payload region).
    OffsetMismatch {
        /// Array whose descriptor is inconsistent.
        array: &'static str,
        /// Byte offset the layout requires.
        expected: u64,
        /// Byte offset the header declares.
        found: u64,
    },
    /// Element counts disagree — between offset tables that must share a
    /// row count, or between a payload array and the header link counters.
    CountMismatch {
        /// What disagreed.
        what: &'static str,
        /// The count implied by the rest of the header.
        expected: u64,
        /// The count found.
        found: u64,
    },
    /// A CSR offset table does not start at 0, decreases somewhere, or
    /// does not end at its payload array's length.
    NonMonotoneOffsets {
        /// The offending offset table.
        array: &'static str,
    },
    /// An attribute-type tag byte outside the known range.
    BadAttrType {
        /// The tag found.
        value: u8,
    },
    /// A neighbour/member id at or beyond the declared node count.
    IdOutOfRange {
        /// The array holding the out-of-range id.
        array: &'static str,
    },
    /// The trailing checksum does not match the bytes read.
    BadChecksum {
        /// Checksum recomputed from the stream.
        expected: u64,
        /// Checksum stored in the trailer.
        found: u64,
    },
    /// A vault manifest line could not be parsed.
    BadManifest {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A day was requested that the vault has not persisted.
    DayNotPersisted {
        /// The requested day.
        day: u32,
    },
    /// A byte buffer handed to the zero-copy view path
    /// ([`CsrSanView::new`](crate::view::CsrSanView::new)) whose base
    /// address is not aligned for in-place `u32` column views. Mapped
    /// files are always page-aligned; heap buffers can use
    /// [`AlignedBytes`](crate::view::AlignedBytes).
    Misaligned {
        /// The alignment the column views require.
        required: usize,
    },
    /// Any other I/O failure (permissions, disk full, …).
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { section } => {
                write!(f, "snapshot truncated while reading {section}")
            }
            StoreError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {MAGIC:?})")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (reader knows {FORMAT_VERSION})"
                )
            }
            StoreError::OffsetMismatch {
                array,
                expected,
                found,
            } => write!(
                f,
                "array {array} declared at byte {found}, layout requires {expected}"
            ),
            StoreError::CountMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "count mismatch for {what}: expected {expected}, found {found}"
            ),
            StoreError::NonMonotoneOffsets { array } => {
                write!(
                    f,
                    "offset table {array} is not monotone from 0 to its payload length"
                )
            }
            StoreError::BadAttrType { value } => write!(f, "unknown attribute-type tag {value}"),
            StoreError::IdOutOfRange { array } => {
                write!(
                    f,
                    "array {array} holds an id beyond the declared node count"
                )
            }
            StoreError::BadChecksum { expected, found } => write!(
                f,
                "checksum mismatch: stream hashes to {expected:#018x}, trailer says {found:#018x}"
            ),
            StoreError::BadManifest { line, reason } => {
                write!(f, "vault manifest line {line}: {reason}")
            }
            StoreError::DayNotPersisted { day } => {
                write!(f, "day {day} is not persisted in this vault")
            }
            StoreError::Misaligned { required } => {
                write!(
                    f,
                    "buffer base address is not {required}-byte aligned for zero-copy column views"
                )
            }
            StoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Manual `Clone`: every variant is plain data except [`StoreError::Io`],
/// whose `io::Error` is not `Clone` — that one is rebuilt from its kind
/// and message (the serving layer's single-flight path broadcasts one
/// mapper's failure to every deduplicated waiter, each of which needs an
/// owned error).
impl Clone for StoreError {
    fn clone(&self) -> StoreError {
        match self {
            StoreError::Truncated { section } => StoreError::Truncated { section },
            StoreError::BadMagic { found } => StoreError::BadMagic { found: *found },
            StoreError::UnsupportedVersion { found } => {
                StoreError::UnsupportedVersion { found: *found }
            }
            StoreError::OffsetMismatch {
                array,
                expected,
                found,
            } => StoreError::OffsetMismatch {
                array,
                expected: *expected,
                found: *found,
            },
            StoreError::CountMismatch {
                what,
                expected,
                found,
            } => StoreError::CountMismatch {
                what,
                expected: *expected,
                found: *found,
            },
            StoreError::NonMonotoneOffsets { array } => StoreError::NonMonotoneOffsets { array },
            StoreError::BadAttrType { value } => StoreError::BadAttrType { value: *value },
            StoreError::IdOutOfRange { array } => StoreError::IdOutOfRange { array },
            StoreError::BadChecksum { expected, found } => StoreError::BadChecksum {
                expected: *expected,
                found: *found,
            },
            StoreError::BadManifest { line, reason } => StoreError::BadManifest {
                line: *line,
                reason: reason.clone(),
            },
            StoreError::DayNotPersisted { day } => StoreError::DayNotPersisted { day: *day },
            StoreError::Misaligned { required } => StoreError::Misaligned {
                required: *required,
            },
            StoreError::Io(e) => StoreError::Io(io::Error::new(e.kind(), e.to_string())),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// `read_exact` that reports a short stream as [`StoreError::Truncated`]
/// with the section being read, instead of a bare I/O error.
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), StoreError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { section }
        } else {
            StoreError::Io(e)
        }
    })
}

/// A writer that feeds every byte through the running FNV-1a hash on its
/// way out — so `write_to` seals the stream without buffering the file.
struct HashingWriter<'a, W: Write> {
    inner: &'a mut W,
    hash: Fnv1a,
    written: u64,
}

impl<W: Write> HashingWriter<'_, W> {
    fn put(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.hash.update(bytes);
        self.written += bytes.len() as u64;
        self.inner.write_all(bytes).map_err(StoreError::Io)
    }
}

/// Stable `u8` tag for an [`AttrType`] (part of the on-disk format; only
/// append new tags, never renumber).
fn attr_type_tag(ty: AttrType) -> u8 {
    match ty {
        AttrType::School => 0,
        AttrType::Major => 1,
        AttrType::Employer => 2,
        AttrType::City => 3,
        AttrType::Other => 4,
    }
}

pub(crate) fn attr_type_from_tag(tag: u8) -> Result<AttrType, StoreError> {
    match tag {
        0 => Ok(AttrType::School),
        1 => Ok(AttrType::Major),
        2 => Ok(AttrType::Employer),
        3 => Ok(AttrType::City),
        4 => Ok(AttrType::Other),
        value => Err(StoreError::BadAttrType { value }),
    }
}

/// Copies the `N` bytes at `at`, zero-filling anything out of range —
/// the panic-free replacement for `slice[at..at + N].try_into().unwrap()`.
/// Every caller passes in-range offsets (length-guarded, or reading a
/// fixed-size buffer); if a future bug breaks that, the zeros surface as
/// a downstream validation failure instead of a panic on untrusted input.
pub(crate) fn array_at<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    if let Some(src) = bytes.get(at..at + N) {
        out.copy_from_slice(src);
    }
    out
}

/// Bounded staging buffer for LE encode/decode: arrays stream through this
/// many bytes at a time, so (de)serialisation never allocates proportional
/// to the snapshot — the only heap the store path touches is the final
/// `CsrSan` arrays themselves (see [`CsrSan::heap_bytes`]).
const STAGE_BYTES: usize = 16 * 1024;

/// Writes a column of 4-byte elements as little-endian through the
/// hashing writer; `as_u32` lifts the element type (raw offsets or typed
/// ids) to its wire form.
fn write_col<W: Write, T: Copy>(
    w: &mut HashingWriter<'_, W>,
    data: &[T],
    as_u32: impl Fn(T) -> u32,
) -> Result<(), StoreError> {
    let mut stage = [0u8; STAGE_BYTES];
    for chunk in data.chunks(STAGE_BYTES / 4) {
        let bytes = &mut stage[..chunk.len() * 4];
        for (i, &v) in chunk.iter().enumerate() {
            // BOUNDS: bytes spans chunk.len()*4 and i < chunk.len(), so
            // i*4 + 4 <= len — trusted in-memory data, not reader input.
            bytes[i * 4..i * 4 + 4].copy_from_slice(&as_u32(v).to_le_bytes());
        }
        w.put(bytes)?;
    }
    Ok(())
}

/// Reads a column of `count` little-endian 4-byte elements into an
/// exactly-sized `Vec<T>`, feeding the hash as it goes; `from_u32` lifts
/// the wire form to the element type, so no intermediate `Vec<u32>` is
/// ever staged.
fn read_col<T>(
    r: &mut impl Read,
    hash: &mut Fnv1a,
    count: usize,
    section: &'static str,
    from_u32: impl Fn(u32) -> T,
) -> Result<Vec<T>, StoreError> {
    // Trust the header count only up to a bound: above it the Vec starts
    // small and grows as bytes actually arrive, so a crafted count cannot
    // reserve memory the stream never delivers (a truncated stream fails
    // fast in read_exact instead). Honest oversize columns pay a final
    // shrink to restore the exact-capacity guarantee.
    let mut out: Vec<T> = Vec::with_capacity(count.min(HEADER_TRUST_ELEMS));
    let mut stage = [0u8; STAGE_BYTES];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(STAGE_BYTES / 4);
        let bytes = &mut stage[..take * 4];
        read_exact_or(r, bytes, section)?;
        hash.update(bytes);
        for i in 0..take {
            // BOUNDS: bytes was sliced to exactly take*4 above and
            // i < take, so i*4 + 4 <= len whatever the stream contained.
            out.push(from_u32(u32::from_le_bytes(array_at(bytes, i * 4))));
        }
        remaining -= take;
    }
    if out.capacity() != out.len() {
        out.shrink_to_fit();
    }
    Ok(out)
}

/// How many elements of a header-declared count are pre-reserved before
/// any payload bytes prove the stream is that long (16 MiB of u32s).
/// Larger columns grow incrementally and shrink to exact size at the end.
const HEADER_TRUST_ELEMS: usize = 4 * 1024 * 1024;

/// One parsed array descriptor from the header.
#[derive(Debug, Clone, Copy)]
struct ArrayDesc {
    offset: u64,
    count: u64,
}

/// Byte width of one element of payload array `i` (ten `u32` columns, one
/// `u8` tag column).
#[inline]
pub(crate) fn elem_bytes(i: usize) -> u64 {
    if i == NUM_ARRAYS - 1 {
        1
    } else {
        4
    }
}

/// The parsed, header-validated prefix of a snapshot: magic, version, link
/// counters and the 11 array descriptors, with every header-level
/// consistency check already applied (magic/version, per-array element
/// cap, descriptor tiling, cross-array row counts, link-counter
/// agreement).
///
/// This is the shared front half of both deserialisation paths:
/// [`CsrSan::read_from`] parses it from the stream before allocating
/// anything, and the zero-copy [`CsrSanView`](crate::view::CsrSanView)
/// parses it from the buffer before building column views — so a header
/// that the eager loader rejects is rejected by the view path with the
/// same typed error, by construction.
#[derive(Debug, Clone, Copy)]
pub struct StoreHeader {
    num_social_links: u64,
    num_attr_links: u64,
    descs: [ArrayDesc; NUM_ARRAYS],
}

impl StoreHeader {
    /// Parses and validates the fixed-size header. Every failure is the
    /// same typed [`StoreError`] that [`CsrSan::read_from`] reports for
    /// the same bytes; nothing is allocated.
    pub fn parse(header: &[u8; HEADER_BYTES]) -> Result<StoreHeader, StoreError> {
        let magic: [u8; 8] = array_at(header, 0);
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let u32_at = |i: usize| u32::from_le_bytes(array_at(header, i));
        let u64_at = |i: usize| u64::from_le_bytes(array_at(header, i));
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let num_social_links = u64_at(12);
        let num_attr_links = u64_at(20);
        let mut descs = [ArrayDesc {
            offset: 0,
            count: 0,
        }; NUM_ARRAYS];
        for (i, d) in descs.iter_mut().enumerate() {
            d.offset = u64_at(28 + i * 16);
            d.count = u64_at(28 + i * 16 + 8);
        }
        // CSR offsets are u32, so no valid snapshot holds an array longer
        // than u32::MAX elements; reject absurd counts before anything is
        // allocated — a crafted header must never drive
        // `Vec::with_capacity` into a capacity panic or OOM abort.
        for (i, d) in descs.iter().enumerate() {
            if d.count > u64::from(u32::MAX) {
                return Err(StoreError::CountMismatch {
                    what: ARRAY_NAMES[i],
                    expected: u64::from(u32::MAX),
                    found: d.count,
                });
            }
        }
        // The arrays must tile the payload region exactly, in order.
        let mut expected = HEADER_BYTES as u64;
        for i in 0..NUM_ARRAYS {
            if descs[i].offset != expected {
                return Err(StoreError::OffsetMismatch {
                    array: ARRAY_NAMES[i],
                    expected,
                    found: descs[i].offset,
                });
            }
            expected = descs[i]
                .count
                .checked_mul(elem_bytes(i))
                .and_then(|b| expected.checked_add(b))
                .ok_or(StoreError::CountMismatch {
                    what: ARRAY_NAMES[i],
                    expected: u64::MAX,
                    found: descs[i].count,
                })?;
        }
        // Cross-array count consistency, before any payload allocation.
        let rows = descs[0].count; // out_off: n + 1
        for i in [2usize, 4, 8] {
            if descs[i].count != rows {
                return Err(StoreError::CountMismatch {
                    what: ARRAY_NAMES[i],
                    expected: rows,
                    found: descs[i].count,
                });
            }
        }
        if rows == 0 || descs[6].count == 0 {
            return Err(StoreError::CountMismatch {
                what: "offset table rows",
                expected: 1,
                found: 0,
            });
        }
        if descs[10].count != descs[6].count - 1 {
            return Err(StoreError::CountMismatch {
                what: "attr_types",
                expected: descs[6].count - 1,
                found: descs[10].count,
            });
        }
        for (i, want) in [
            (1usize, num_social_links),
            (3, num_social_links),
            (5, num_attr_links),
            (7, num_attr_links),
        ] {
            if descs[i].count != want {
                return Err(StoreError::CountMismatch {
                    what: ARRAY_NAMES[i],
                    expected: want,
                    found: descs[i].count,
                });
            }
        }
        Ok(StoreHeader {
            num_social_links,
            num_attr_links,
            descs,
        })
    }

    /// The header's social-link counter `|Es|`.
    pub fn num_social_links(&self) -> u64 {
        self.num_social_links
    }

    /// The header's attribute-link counter `|Ea|`.
    pub fn num_attr_links(&self) -> u64 {
        self.num_attr_links
    }

    /// Absolute byte offset of payload array `i` (file order, see
    /// [`ARRAY_NAMES`]).
    pub fn array_offset(&self, i: usize) -> u64 {
        self.descs[i].offset
    }

    /// Element count of payload array `i`.
    pub fn array_count(&self, i: usize) -> u64 {
        self.descs[i].count
    }

    /// Number of social nodes (`out_off` rows minus the sentinel).
    pub fn social_rows(&self) -> usize {
        self.descs[0].count as usize - 1
    }

    /// Number of attribute nodes (`am_off` rows minus the sentinel).
    pub fn attr_rows(&self) -> usize {
        self.descs[6].count as usize - 1
    }

    /// First byte past the last payload array — where the checksum
    /// trailer starts.
    pub fn payload_end(&self) -> u64 {
        self.descs[NUM_ARRAYS - 1].offset + self.descs[NUM_ARRAYS - 1].count
    }
}

/// Validates that a CSR offset table starts at 0, never decreases, and
/// ends exactly at `payload_len`.
pub(crate) fn check_offsets(
    off: &[u32],
    payload_len: usize,
    array: &'static str,
) -> Result<(), StoreError> {
    if off.first() != Some(&0) || off.windows(2).any(|w| w[0] > w[1]) {
        return Err(StoreError::NonMonotoneOffsets { array });
    }
    // The first() check above already rejected an empty table.
    let last = off.last().copied().unwrap_or(0) as usize;
    if last != payload_len {
        return Err(StoreError::CountMismatch {
            what: array,
            expected: payload_len as u64,
            found: last as u64,
        });
    }
    Ok(())
}

/// Validates that every id in a payload array indexes a real node.
pub(crate) fn check_id_range<T: Copy>(
    data: &[T],
    bound: usize,
    array: &'static str,
    as_u32: impl Fn(T) -> u32,
) -> Result<(), StoreError> {
    if data.iter().any(|&v| as_u32(v) as usize >= bound) {
        return Err(StoreError::IdOutOfRange { array });
    }
    Ok(())
}

impl CsrSan {
    /// Element counts of the 11 payload arrays, in file order.
    fn array_counts(&self) -> [u64; NUM_ARRAYS] {
        [
            self.out_off.len() as u64,
            self.out_dst.len() as u64,
            self.in_off.len() as u64,
            self.in_src.len() as u64,
            self.ua_off.len() as u64,
            self.ua_attr.len() as u64,
            self.am_off.len() as u64,
            self.am_user.len() as u64,
            self.und_off.len() as u64,
            self.und_nbr.len() as u64,
            self.attr_types.len() as u64,
        ]
    }

    /// Serialises the snapshot in the columnar binary format (see the
    /// module docs for the layout) and returns the total bytes written,
    /// checksum trailer included.
    ///
    /// The stream is produced in one forward pass — header, the eleven
    /// arrays in little-endian, then the FNV-1a trailer — through a
    /// bounded staging buffer, so writing never allocates proportional to
    /// the snapshot. Wrap the destination in a
    /// [`BufWriter`](std::io::BufWriter) when writing to a file.
    pub fn write_to(&self, w: &mut impl Write) -> Result<u64, StoreError> {
        let counts = self.array_counts();
        // Element width per array: ten u32 columns, one u8 tag column.
        let sizes: [u64; NUM_ARRAYS] = {
            let mut s = [4u64; NUM_ARRAYS];
            s[NUM_ARRAYS - 1] = 1;
            s
        };
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&(self.num_social_links as u64).to_le_bytes());
        header.extend_from_slice(&(self.num_attr_links as u64).to_le_bytes());
        let mut offset = HEADER_BYTES as u64;
        for i in 0..NUM_ARRAYS {
            header.extend_from_slice(&offset.to_le_bytes());
            header.extend_from_slice(&counts[i].to_le_bytes());
            offset += counts[i] * sizes[i];
        }
        debug_assert_eq!(header.len(), HEADER_BYTES);
        let mut hw = HashingWriter {
            inner: w,
            hash: Fnv1a::new(),
            written: 0,
        };
        hw.put(&header)?;
        write_col(&mut hw, &self.out_off, |v| v)?;
        write_col(&mut hw, &self.out_dst, |v| v.0)?;
        write_col(&mut hw, &self.in_off, |v| v)?;
        write_col(&mut hw, &self.in_src, |v| v.0)?;
        write_col(&mut hw, &self.ua_off, |v| v)?;
        write_col(&mut hw, &self.ua_attr, |v| v.0)?;
        write_col(&mut hw, &self.am_off, |v| v)?;
        write_col(&mut hw, &self.am_user, |v| v.0)?;
        write_col(&mut hw, &self.und_off, |v| v)?;
        write_col(&mut hw, &self.und_nbr, |v| v.0)?;
        let mut tags = [0u8; STAGE_BYTES];
        for chunk in self.attr_types.chunks(STAGE_BYTES) {
            let bytes = &mut tags[..chunk.len()];
            for (i, &ty) in chunk.iter().enumerate() {
                // BOUNDS: bytes spans chunk.len() and i < chunk.len();
                // trusted in-memory tags, not reader input.
                bytes[i] = attr_type_tag(ty);
            }
            hw.put(bytes)?;
        }
        let checksum = hw.hash.finish();
        let total = hw.written + CHECKSUM_BYTES as u64;
        w.write_all(&checksum.to_le_bytes())?;
        Ok(total)
    }

    /// Deserialises a snapshot written by [`CsrSan::write_to`], validating
    /// structure as the stream is consumed and the checksum at the end.
    ///
    /// Never panics on untrusted bytes and never returns a structurally
    /// inconsistent graph; every failure is a typed [`StoreError`] (see
    /// the module docs for the full validation list). Each column is read
    /// into an exactly-sized allocation through a bounded stack staging
    /// buffer; the only heap staging is the `m`-byte raw tag column held
    /// until the checksum clears, and it is dropped before returning — so
    /// the loaded snapshot's [`CsrSan::heap_bytes`] equals the original's
    /// (no hidden capacity slack, no retained staging), which the
    /// `read_from_allocates_exact_capacity` audit pins down.
    pub fn read_from(r: &mut impl Read) -> Result<CsrSan, StoreError> {
        let mut header = [0u8; HEADER_BYTES];
        read_exact_or(r, &mut header, "header")?;
        // Every header-level check (magic/version, element caps, tiling,
        // cross-array counts) lives in the shared parser, so the eager
        // loader and the zero-copy view reject the same headers with the
        // same typed errors.
        let parsed = StoreHeader::parse(&header)?;
        let num_social_links = parsed.num_social_links();
        let num_attr_links = parsed.num_attr_links();
        let rows = parsed.array_count(0);
        let mut hash = Fnv1a::new();
        hash.update(&header);
        let count = |i: usize| parsed.array_count(i) as usize;
        let out_off = read_col(r, &mut hash, count(0), ARRAY_NAMES[0], |v| v)?;
        let out_dst = read_col(r, &mut hash, count(1), ARRAY_NAMES[1], SocialId)?;
        let in_off = read_col(r, &mut hash, count(2), ARRAY_NAMES[2], |v| v)?;
        let in_src = read_col(r, &mut hash, count(3), ARRAY_NAMES[3], SocialId)?;
        let ua_off = read_col(r, &mut hash, count(4), ARRAY_NAMES[4], |v| v)?;
        let ua_attr = read_col(r, &mut hash, count(5), ARRAY_NAMES[5], AttrId)?;
        let am_off = read_col(r, &mut hash, count(6), ARRAY_NAMES[6], |v| v)?;
        let am_user = read_col(r, &mut hash, count(7), ARRAY_NAMES[7], SocialId)?;
        let und_off = read_col(r, &mut hash, count(8), ARRAY_NAMES[8], |v| v)?;
        let und_nbr = read_col(r, &mut hash, count(9), ARRAY_NAMES[9], SocialId)?;
        // Tags are staged raw and decoded only after the checksum has
        // vouched for them, like every other semantic check. Same bounded
        // trust in the header count as read_col.
        let mut tag_bytes: Vec<u8> = Vec::with_capacity(count(10).min(HEADER_TRUST_ELEMS));
        {
            let mut stage = [0u8; STAGE_BYTES];
            let mut remaining = count(10);
            while remaining > 0 {
                let take = remaining.min(STAGE_BYTES);
                let bytes = &mut stage[..take];
                read_exact_or(r, bytes, ARRAY_NAMES[10])?;
                hash.update(bytes);
                tag_bytes.extend_from_slice(bytes);
                remaining -= take;
            }
        }
        let mut trailer = [0u8; CHECKSUM_BYTES];
        read_exact_or(r, &mut trailer, "checksum")?;
        let found = u64::from_le_bytes(trailer);
        let expected = hash.finish();
        if expected != found {
            return Err(StoreError::BadChecksum { expected, found });
        }
        // Semantic validation after the checksum has vouched for the
        // bytes: tag decoding, offset-table shape, then id ranges.
        let mut attr_types: Vec<AttrType> = Vec::with_capacity(tag_bytes.len());
        for b in tag_bytes {
            attr_types.push(attr_type_from_tag(b)?);
        }
        check_offsets(&out_off, out_dst.len(), ARRAY_NAMES[0])?;
        check_offsets(&in_off, in_src.len(), ARRAY_NAMES[2])?;
        check_offsets(&ua_off, ua_attr.len(), ARRAY_NAMES[4])?;
        check_offsets(&am_off, am_user.len(), ARRAY_NAMES[6])?;
        check_offsets(&und_off, und_nbr.len(), ARRAY_NAMES[8])?;
        let n = rows as usize - 1;
        let m = count(6) - 1;
        check_id_range(&out_dst, n, ARRAY_NAMES[1], |v| v.0)?;
        check_id_range(&in_src, n, ARRAY_NAMES[3], |v| v.0)?;
        check_id_range(&ua_attr, m, ARRAY_NAMES[5], |v| v.0)?;
        check_id_range(&am_user, n, ARRAY_NAMES[7], |v| v.0)?;
        check_id_range(&und_nbr, n, ARRAY_NAMES[9], |v| v.0)?;
        Ok(CsrSan {
            out_off,
            out_dst,
            in_off,
            in_src,
            ua_off,
            ua_attr,
            am_off,
            am_user,
            und_off,
            und_nbr,
            attr_types,
            num_social_links: num_social_links as usize,
            num_attr_links: num_attr_links as usize,
        })
    }

    /// Serialises into a fresh byte vector (convenience over
    /// [`CsrSan::write_to`]).
    pub fn to_store_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        if let Err(err) = self.write_to(&mut buf) {
            // Vec<u8> IO is infallible; reaching this is a serializer bug.
            debug_assert!(false, "in-memory serialisation failed: {err}");
        }
        buf
    }

    /// Deserialises from a byte slice (convenience over
    /// [`CsrSan::read_from`]).
    pub fn from_store_bytes(mut bytes: &[u8]) -> Result<CsrSan, StoreError> {
        CsrSan::read_from(&mut bytes)
    }

    /// Serialised size in bytes, without writing anything.
    pub fn store_bytes_len(&self) -> u64 {
        let counts = self.array_counts();
        let payload: u64 =
            counts[..NUM_ARRAYS - 1].iter().map(|c| c * 4).sum::<u64>() + counts[NUM_ARRAYS - 1];
        HEADER_BYTES as u64 + payload + CHECKSUM_BYTES as u64
    }
}

/// A directory of persisted daily snapshots: `day-NNNN.csr` files plus a
/// `manifest.txt` index.
///
/// ```text
/// vault/
///   manifest.txt      # "# san-vault v1" then one "day <n> <bytes>" line per day
///   day-0000.csr
///   day-0007.csr
///   …
/// ```
///
/// The manifest is the source of truth for which days exist (a partially
/// written snapshot never appears in it: files are written to a temp name
/// and renamed before the manifest is updated). Days are persisted with
/// [`SnapshotVault::save_day`] / [`SnapshotVault::save_timeline`] and come
/// back as shared handles through [`SnapshotVault::load_day`];
/// [`SnapshotVault::nearest_at_or_before`] is the warm-start query
/// [`SanTimeline::resume_from_vault`](crate::SanTimeline::resume_from_vault)
/// builds on.
#[derive(Debug)]
pub struct SnapshotVault {
    dir: PathBuf,
    /// day → serialised snapshot bytes, mirroring the manifest.
    days: BTreeMap<u32, u64>,
    /// Metered IO: bytes moved + latency per direction (see
    /// [`SnapshotVault::metrics`]).
    metrics: VaultMetrics,
}

const MANIFEST: &str = "manifest.txt";
const MANIFEST_HEADER: &str = "# san-vault v1";

impl SnapshotVault {
    /// Opens a vault directory, creating it (and an empty manifest) if it
    /// does not exist yet. Opening an existing vault loads its manifest.
    pub fn create(dir: impl Into<PathBuf>) -> Result<SnapshotVault, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if dir.join(MANIFEST).exists() {
            return SnapshotVault::open(dir);
        }
        let vault = SnapshotVault {
            dir,
            days: BTreeMap::new(),
            metrics: VaultMetrics::new(),
        };
        vault.write_manifest()?;
        Ok(vault)
    }

    /// Opens an existing vault; fails if the directory or manifest is
    /// missing or malformed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SnapshotVault, StoreError> {
        let dir = dir.into();
        let text = fs::read_to_string(dir.join(MANIFEST))?;
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == MANIFEST_HEADER => {}
            other => {
                return Err(StoreError::BadManifest {
                    line: 1,
                    reason: format!(
                        "expected header {MANIFEST_HEADER:?}, found {:?}",
                        other.map(|(_, l)| l).unwrap_or("")
                    ),
                })
            }
        }
        let mut days = BTreeMap::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |reason: &str| StoreError::BadManifest {
                line: i + 1,
                reason: reason.to_string(),
            };
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some("day"), Some(d), Some(b), None) => {
                    let day: u32 = d.parse().map_err(|_| bad("unparsable day"))?;
                    let bytes: u64 = b.parse().map_err(|_| bad("unparsable byte count"))?;
                    days.insert(day, bytes);
                }
                _ => return Err(bad("expected 'day <n> <bytes>'")),
            }
        }
        Ok(SnapshotVault {
            dir,
            days,
            metrics: VaultMetrics::new(),
        })
    }

    /// This vault's IO meters: bytes read/written plus a latency
    /// histogram per direction, accumulated over every
    /// [`save_day`](SnapshotVault::save_day) /
    /// [`load_day`](SnapshotVault::load_day) /
    /// [`map_day`](SnapshotVault::map_day) since the vault handle was
    /// created (meters are per-handle, not persisted). The on-disk
    /// footprint itself is [`disk_bytes`](SnapshotVault::disk_bytes).
    pub fn metrics(&self) -> &VaultMetrics {
        &self.metrics
    }

    /// The vault's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persisted days in ascending order.
    pub fn days(&self) -> impl Iterator<Item = u32> + '_ {
        self.days.keys().copied()
    }

    /// Number of persisted days.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// True when no day has been persisted.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// The path of a day's snapshot file.
    pub fn day_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("day-{day:04}.csr"))
    }

    /// Total bytes the persisted snapshots occupy on disk (manifest
    /// excluded) — the capacity-planning counterpart of
    /// [`CsrSan::heap_bytes`].
    pub fn disk_bytes(&self) -> u64 {
        self.days.values().sum()
    }

    /// Persists one day's snapshot, returning its serialised size. The
    /// file is written to a temporary name and renamed, then the manifest
    /// is rewritten — a crash mid-save never leaves a registered,
    /// half-written day. Saving a day that already exists overwrites it.
    pub fn save_day(&mut self, day: u32, snap: &CsrSan) -> Result<u64, StoreError> {
        let started = Instant::now();
        let tmp = self.dir.join(format!("day-{day:04}.csr.tmp"));
        let bytes = {
            let file = fs::File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            let bytes = snap.write_to(&mut w)?;
            w.flush()?;
            bytes
        };
        fs::rename(&tmp, self.day_path(day))?;
        self.days.insert(day, bytes);
        self.write_manifest()?;
        self.metrics.record_write(bytes, started.elapsed());
        Ok(bytes)
    }

    /// Freezes every `step`-th day of the timeline (always including the
    /// final day) through the incremental delta pipeline and persists each
    /// one. Returns the persisted days in order.
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn save_timeline(
        &mut self,
        timeline: &crate::SanTimeline,
        step: u32,
    ) -> Result<Vec<u32>, StoreError> {
        let mut saved = Vec::new();
        for (day, snap) in timeline.snapshot_stream(step) {
            self.save_day(day, &snap)?;
            saved.push(day);
        }
        Ok(saved)
    }

    /// Loads a persisted day as a shared snapshot handle (eager: every
    /// column is deserialised into owned arrays). For the zero-copy
    /// alternative see [`map_day`](SnapshotVault::map_day).
    pub fn load_day(&self, day: u32) -> Result<Arc<CsrSan>, StoreError> {
        let Some(&bytes) = self.days.get(&day) else {
            return Err(StoreError::DayNotPersisted { day });
        };
        let started = Instant::now();
        let file = fs::File::open(self.day_path(day))?;
        let mut r = BufReader::new(file);
        let snap = CsrSan::read_from(&mut r)?;
        self.metrics.record_read(bytes, started.elapsed());
        Ok(Arc::new(snap))
    }

    /// Maps a persisted day read-only into memory and validates it once
    /// (header + checksum + structure), without deserialising a single
    /// column — the zero-copy counterpart of
    /// [`load_day`](SnapshotVault::load_day). The returned
    /// [`MappedSnapshot`](crate::mmap::MappedSnapshot) hands out
    /// [`CsrSanView`](crate::view::CsrSanView)s that read the file's pages
    /// in place and is `Send + Sync`, so one mapping can serve many
    /// threads. Metered as a read of the file's full validated length
    /// (the validation pass touches every byte).
    #[cfg(unix)]
    pub fn map_day(&self, day: u32) -> Result<crate::mmap::MappedSnapshot, StoreError> {
        let Some(&bytes) = self.days.get(&day) else {
            return Err(StoreError::DayNotPersisted { day });
        };
        let started = Instant::now();
        let mapped = crate::mmap::MappedSnapshot::open(self.day_path(day))?;
        self.metrics.record_read(bytes, started.elapsed());
        Ok(mapped)
    }

    /// The latest persisted day that is `≤ day` — the warm-start point for
    /// a sweep resuming at `day`.
    pub fn nearest_at_or_before(&self, day: u32) -> Option<u32> {
        self.days.range(..=day).next_back().map(|(&d, _)| d)
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for (day, bytes) in &self.days {
            text.push_str(&format!("day {day} {bytes}\n"));
        }
        let tmp = self.dir.join("manifest.txt.tmp");
        fs::write(&tmp, text)?;
        fs::rename(tmp, self.dir.join(MANIFEST))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::TimelineBuilder;
    use crate::san::San;

    fn small_csr() -> CsrSan {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        let u2 = tb.add_social_node();
        let a0 = tb.add_attr_node(AttrType::City);
        let a1 = tb.add_attr_node(AttrType::Employer);
        tb.add_social_link(u0, u1);
        tb.add_social_link(u1, u0);
        tb.add_social_link(u2, u0);
        tb.add_attr_link(u0, a0);
        tb.add_attr_link(u2, a1);
        tb.finish().1.freeze()
    }

    #[test]
    fn roundtrip_small() {
        let csr = small_csr();
        let bytes = csr.to_store_bytes();
        assert_eq!(bytes.len() as u64, csr.store_bytes_len());
        let back = CsrSan::from_store_bytes(&bytes).unwrap();
        assert_eq!(back, csr);
    }

    #[test]
    fn roundtrip_empty() {
        let csr = San::new().freeze();
        let back = CsrSan::from_store_bytes(&csr.to_store_bytes()).unwrap();
        assert_eq!(back, csr);
    }

    /// `read_from` allocates each column exactly: no capacity slack, so
    /// the loaded snapshot's heap accounting equals the original's and
    /// `heap_bytes` stays an exact per-array audit across the store path.
    #[test]
    fn read_from_allocates_exact_capacity() {
        let csr = small_csr();
        let back = CsrSan::from_store_bytes(&csr.to_store_bytes()).unwrap();
        assert_eq!(back.heap_bytes(), {
            // Recompute the original's accounting from lengths: identical.
            csr.heap_bytes()
        });
        assert_eq!(back.out_off.capacity(), back.out_off.len());
        assert_eq!(back.out_dst.capacity(), back.out_dst.len());
        assert_eq!(back.in_off.capacity(), back.in_off.len());
        assert_eq!(back.in_src.capacity(), back.in_src.len());
        assert_eq!(back.ua_off.capacity(), back.ua_off.len());
        assert_eq!(back.ua_attr.capacity(), back.ua_attr.len());
        assert_eq!(back.am_off.capacity(), back.am_off.len());
        assert_eq!(back.am_user.capacity(), back.am_user.len());
        assert_eq!(back.und_off.capacity(), back.und_off.len());
        assert_eq!(back.und_nbr.capacity(), back.und_nbr.len());
        assert_eq!(back.attr_types.capacity(), back.attr_types.len());
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn id_out_of_range_is_detected() {
        // Hand-corrupt an id beyond the node count, re-seal the checksum:
        // the structural check must catch what the checksum now vouches
        // for.
        let csr = small_csr();
        let mut bytes = csr.to_store_bytes();
        // out_dst is the second array: starts at HEADER_BYTES + (n+1)*4.
        let out_dst_start = HEADER_BYTES + (csr.num_social_rows() + 1) * 4;
        bytes[out_dst_start..out_dst_start + 4].copy_from_slice(&99u32.to_le_bytes());
        let len = bytes.len();
        let seal = fnv1a64(&bytes[..len - CHECKSUM_BYTES]);
        bytes[len - CHECKSUM_BYTES..].copy_from_slice(&seal.to_le_bytes());
        let err = CsrSan::from_store_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, StoreError::IdOutOfRange { array: "out_dst" }),
            "{err}"
        );
    }

    #[test]
    fn bad_attr_type_tag_is_detected() {
        let csr = small_csr();
        let mut bytes = csr.to_store_bytes();
        let len = bytes.len();
        // attr_types is the final payload array, right before the trailer.
        let tag_pos = len - CHECKSUM_BYTES - csr.attr_types.len();
        bytes[tag_pos] = 250;
        let seal = fnv1a64(&bytes[..len - CHECKSUM_BYTES]);
        bytes[len - CHECKSUM_BYTES..].copy_from_slice(&seal.to_le_bytes());
        let err = CsrSan::from_store_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, StoreError::BadAttrType { value: 250 }),
            "{err}"
        );
    }

    #[test]
    fn attr_type_tags_are_stable() {
        for (tag, ty) in [
            (0u8, AttrType::School),
            (1, AttrType::Major),
            (2, AttrType::Employer),
            (3, AttrType::City),
            (4, AttrType::Other),
        ] {
            assert_eq!(attr_type_tag(ty), tag);
            assert_eq!(attr_type_from_tag(tag).unwrap(), ty);
        }
        assert!(attr_type_from_tag(5).is_err());
    }

    #[test]
    fn vault_save_load_nearest() {
        let dir = std::env::temp_dir().join(format!("san-vault-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        assert!(vault.is_empty());
        assert_eq!(vault.nearest_at_or_before(10), None);
        let csr = small_csr();
        let bytes = vault.save_day(3, &csr).unwrap();
        assert_eq!(bytes, csr.store_bytes_len());
        vault.save_day(9, &csr).unwrap();
        assert_eq!(vault.days().collect::<Vec<_>>(), vec![3, 9]);
        assert_eq!(vault.disk_bytes(), 2 * bytes);
        assert_eq!(vault.nearest_at_or_before(2), None);
        assert_eq!(vault.nearest_at_or_before(3), Some(3));
        assert_eq!(vault.nearest_at_or_before(8), Some(3));
        assert_eq!(vault.nearest_at_or_before(100), Some(9));
        assert_eq!(*vault.load_day(3).unwrap(), csr);
        assert!(matches!(
            vault.load_day(4).unwrap_err(),
            StoreError::DayNotPersisted { day: 4 }
        ));
        // Reopen: the manifest restores the same view.
        let reopened = SnapshotVault::open(&dir).unwrap();
        assert_eq!(reopened.days().collect::<Vec<_>>(), vec![3, 9]);
        assert_eq!(reopened.disk_bytes(), vault.disk_bytes());
        assert_eq!(*reopened.load_day(9).unwrap(), csr);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn vault_open_missing_and_bad_manifest() {
        let dir = std::env::temp_dir().join(format!("san-vault-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(matches!(
            SnapshotVault::open(&dir).unwrap_err(),
            StoreError::Io(_)
        ));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST), "not a vault\n").unwrap();
        assert!(matches!(
            SnapshotVault::open(&dir).unwrap_err(),
            StoreError::BadManifest { line: 1, .. }
        ));
        fs::write(dir.join(MANIFEST), format!("{MANIFEST_HEADER}\nday x 7\n")).unwrap();
        assert!(matches!(
            SnapshotVault::open(&dir).unwrap_err(),
            StoreError::BadManifest { line: 2, .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_timeline_persists_sampled_grid() {
        let mut tb = TimelineBuilder::new();
        let mut prev = tb.add_social_node();
        for day in 1..=10u32 {
            tb.advance_to_day(day);
            let u = tb.add_social_node();
            tb.add_social_link(u, prev);
            prev = u;
        }
        let (tl, _) = tb.finish();
        let dir = std::env::temp_dir().join(format!("san-vault-tl-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        let saved = vault.save_timeline(&tl, 4).unwrap();
        assert_eq!(saved, vec![0, 4, 8, 10]);
        for day in saved {
            assert_eq!(*vault.load_day(day).unwrap(), tl.snapshot_csr(day));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Metered IO on the eager vault paths: every save/load/map feeds the
    /// byte counters and latency histograms surfaced by
    /// [`SnapshotVault::metrics`], and the written-byte total matches
    /// [`SnapshotVault::disk_bytes`] exactly when nothing is overwritten.
    #[test]
    fn vault_metrics_meter_saves_loads_and_maps() {
        let dir = std::env::temp_dir().join(format!("san-vault-meter-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();
        assert_eq!(vault.metrics().writes(), 0);
        assert_eq!(vault.metrics().reads(), 0);
        let csr = small_csr();
        let bytes = vault.save_day(2, &csr).unwrap();
        vault.save_day(6, &csr).unwrap();
        assert_eq!(vault.metrics().writes(), 2);
        assert_eq!(vault.metrics().written_bytes(), 2 * bytes);
        assert_eq!(vault.metrics().written_bytes(), vault.disk_bytes());
        assert_eq!(vault.metrics().write_latency().count(), 2);
        // Eager loads meter the read side.
        vault.load_day(2).unwrap();
        vault.load_day(6).unwrap();
        vault.load_day(6).unwrap();
        assert_eq!(vault.metrics().reads(), 3);
        assert_eq!(vault.metrics().read_bytes(), 3 * bytes);
        assert_eq!(vault.metrics().read_latency().count(), 3);
        // Mapped opens meter the same read counters.
        #[cfg(unix)]
        {
            let mapped = vault.map_day(2).unwrap();
            assert_eq!(mapped.mapped_bytes() as u64, bytes);
            assert_eq!(vault.metrics().reads(), 4);
            assert_eq!(vault.metrics().read_bytes(), 4 * bytes);
        }
        // A failed load (unpersisted day) meters nothing.
        assert!(vault.load_day(5).is_err());
        assert_eq!(vault.metrics().reads(), if cfg!(unix) { 4 } else { 3 });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_errors_surface_as_io() {
        // A writer that always fails must come back as StoreError::Io.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = small_csr().write_to(&mut Broken).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
    }
}
