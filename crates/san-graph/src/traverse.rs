//! Graph traversal: BFS distances, weakly connected components, and induced
//! subgraph extraction.
//!
//! Directed BFS implements the paper's distance
//! `dist(u, v)` = length of the shortest directed path from `u` to `v`
//! (§3.3, social links only). WCCs treat social links as undirected — the
//! crawl of §2.2 collects "a large Weakly Connected Component".

use crate::ids::{AttrId, SocialId};
use crate::read::SanRead;
use crate::san::San;
use crate::unionfind::UnionFind;
use std::collections::VecDeque;

/// Directed single-source BFS over social links.
///
/// Returns `dist[v] = Some(d)` for nodes reachable from `src` via directed
/// paths, `None` otherwise. `dist[src] = Some(0)`.
pub fn bfs_directed(san: &impl SanRead, src: SocialId) -> Vec<Option<u32>> {
    let mut dist = vec![None; san.num_social_nodes()];
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        // Queued nodes always have distances; skip defensively if not.
        let Some(du) = dist[u.index()] else { continue };
        for &v in san.out_neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Undirected single-source BFS (social links traversed both ways).
pub fn bfs_undirected(san: &impl SanRead, src: SocialId) -> Vec<Option<u32>> {
    let mut dist = vec![None; san.num_social_nodes()];
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        // Queued nodes always have distances; skip defensively if not.
        let Some(du) = dist[u.index()] else { continue };
        for &v in san.out_neighbors(u).iter().chain(san.in_neighbors(u)) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Weakly connected components of the social graph.
///
/// Returns `(component_id_per_node, component_sizes)`; component ids are
/// dense in `0..sizes.len()`.
pub fn weakly_connected_components(san: &impl SanRead) -> (Vec<usize>, Vec<usize>) {
    let n = san.num_social_nodes();
    let mut uf = UnionFind::new(n);
    for (u, v) in san.social_links() {
        uf.union(u.index(), v.index());
    }
    let mut root_to_id = vec![usize::MAX; n];
    let mut ids = vec![0usize; n];
    let mut sizes = Vec::new();
    for i in 0..n {
        let root = uf.find(i);
        if root_to_id[root] == usize::MAX {
            root_to_id[root] = sizes.len();
            sizes.push(0);
        }
        ids[i] = root_to_id[root];
        sizes[ids[i]] += 1;
    }
    (ids, sizes)
}

/// The members of the largest WCC (ties broken by lowest component id).
pub fn largest_wcc(san: &impl SanRead) -> Vec<SocialId> {
    if san.num_social_nodes() == 0 {
        return Vec::new();
    }
    let (ids, sizes) = weakly_connected_components(san);
    // The early return above guarantees at least one component, so the
    // max exists; an empty fallback yields an empty id list.
    let Some(best) = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
    else {
        return Vec::new();
    };
    ids.iter()
        .enumerate()
        .filter(|&(_, &c)| c == best)
        .map(|(i, _)| SocialId(i as u32))
        .collect()
}

/// Result of [`induced_subgraph`]: the sub-SAN plus id mappings back to the
/// original network.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced sub-SAN (dense ids).
    pub san: San,
    /// For each new social id (by index), the original id.
    pub social_origin: Vec<SocialId>,
    /// For each new attribute id (by index), the original id.
    pub attr_origin: Vec<AttrId>,
}

/// Induces the sub-SAN on a set of social nodes.
///
/// Keeps the social links with both endpoints in `keep`, the attribute nodes
/// with at least one kept member, and the attribute links incident to kept
/// users. Duplicate ids in `keep` are ignored.
pub fn induced_subgraph(san: &impl SanRead, keep: &[SocialId]) -> Subgraph {
    let mut social_new = vec![u32::MAX; san.num_social_nodes()];
    let mut social_origin = Vec::new();
    for &u in keep {
        if social_new[u.index()] == u32::MAX {
            social_new[u.index()] = social_origin.len() as u32;
            social_origin.push(u);
        }
    }
    let mut sub = San::with_capacity(social_origin.len(), 0);
    for _ in 0..social_origin.len() {
        sub.add_social_node();
    }
    let mut attr_new = vec![u32::MAX; san.num_attr_nodes()];
    let mut attr_origin = Vec::new();
    for (new_u, &old_u) in social_origin.iter().enumerate() {
        for &v in san.out_neighbors(old_u) {
            let nv = social_new[v.index()];
            if nv != u32::MAX {
                sub.add_social_link(SocialId(new_u as u32), SocialId(nv));
            }
        }
        for &a in san.attrs_of(old_u) {
            if attr_new[a.index()] == u32::MAX {
                attr_new[a.index()] = attr_origin.len() as u32;
                attr_origin.push(a);
                sub.add_attr_node(san.attr_type(a));
            }
            sub.add_attr_link(SocialId(new_u as u32), AttrId(attr_new[a.index()]));
        }
    }
    Subgraph {
        san: sub,
        social_origin,
        attr_origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1;
    use crate::ids::AttrType;

    /// A 5-node line u0 -> u1 -> u2 -> u3 plus isolated u4.
    fn line() -> San {
        let mut san = San::new();
        let u: Vec<SocialId> = (0..5).map(|_| san.add_social_node()).collect();
        san.add_social_link(u[0], u[1]);
        san.add_social_link(u[1], u[2]);
        san.add_social_link(u[2], u[3]);
        san
    }

    #[test]
    fn directed_bfs_distances() {
        let san = line();
        let d = bfs_directed(&san, SocialId(0));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], None);
        // Directedness: nothing reaches u0.
        let d3 = bfs_directed(&san, SocialId(3));
        assert_eq!(d3[0], None);
        assert_eq!(d3[3], Some(0));
    }

    #[test]
    fn undirected_bfs_reaches_backwards() {
        let san = line();
        let d = bfs_undirected(&san, SocialId(3));
        assert_eq!(d[0], Some(3));
        assert_eq!(d[4], None);
    }

    #[test]
    fn wcc_partition() {
        let san = line();
        let (ids, sizes) = weakly_connected_components(&san);
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert_eq!(sizes.len(), 2);
        assert_eq!(ids[0], ids[3]);
        assert_ne!(ids[0], ids[4]);
    }

    #[test]
    fn largest_wcc_members() {
        let san = line();
        let wcc = largest_wcc(&san);
        assert_eq!(wcc.len(), 4);
        assert!(!wcc.contains(&SocialId(4)));
    }

    #[test]
    fn largest_wcc_empty_graph() {
        assert!(largest_wcc(&San::new()).is_empty());
    }

    #[test]
    fn figure1_is_weakly_connected_except_u1() {
        // u1 only has an attribute link, no social link, so it is its own
        // social WCC.
        let fx = figure1();
        let (_, sizes) = weakly_connected_components(&fx.san);
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 5]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_links_only() {
        let fx = figure1();
        let [_u1, u2, u3, u4, ..] = fx.users;
        let sub = induced_subgraph(&fx.san, &[u2, u3, u4]);
        assert_eq!(sub.san.num_social_nodes(), 3);
        // Links among {u2,u3,u4}: u4->u3, u3->u2, u2->u3.
        assert_eq!(sub.san.num_social_links(), 3);
        sub.san.check_consistency().unwrap();
        // Attribute nodes: CS (u3, u4), UCB (u2), SF (u2) => 3 attrs.
        assert_eq!(sub.san.num_attr_nodes(), 3);
        assert_eq!(sub.san.num_attr_links(), 4);
        // Mappings point back at original ids.
        assert_eq!(sub.social_origin.len(), 3);
        assert!(sub.social_origin.contains(&u2));
        assert!(sub.attr_origin.contains(&fx.computer_science));
    }

    #[test]
    fn induced_subgraph_dedups_keep_list() {
        let fx = figure1();
        let [u1, u2, ..] = fx.users;
        let sub = induced_subgraph(&fx.san, &[u1, u2, u1, u2]);
        assert_eq!(sub.san.num_social_nodes(), 2);
    }

    #[test]
    fn induced_subgraph_preserves_attr_types() {
        let mut san = San::new();
        let u = san.add_social_node();
        let a = san.add_attr_node(AttrType::Employer);
        san.add_attr_link(u, a);
        let sub = induced_subgraph(&san, &[u]);
        assert_eq!(sub.san.attr_type(AttrId(0)), AttrType::Employer);
    }

    #[test]
    fn induced_subgraph_empty_keep() {
        let fx = figure1();
        let sub = induced_subgraph(&fx.san, &[]);
        assert_eq!(sub.san.num_social_nodes(), 0);
        assert_eq!(sub.san.num_attr_nodes(), 0);
    }
}
