//! Test fixtures, most importantly the paper's **Figure 1** example SAN.
//!
//! Figure 1 shows six social nodes `u1…u6` and four attribute nodes
//! (*San Francisco*, *UC Berkeley*, *Computer Science*, *Google Inc.*). The
//! paper uses it to illustrate the closure taxonomy of §5.2:
//!
//! * `u4 → u2` is a **triadic** closure (common friend, no attribute),
//! * `u1 → u2` is a **focal** closure (common attribute *UC Berkeley*),
//! * `u6 → u5` closes **both** (common friend *and* common attribute
//!   *Google Inc.*).
//!
//! The figure does not enumerate every base link, so this fixture
//! instantiates the smallest network in which all three statements hold
//! *before* the closure links are added; [`figure1_closures`] returns the
//! three closure links so tests can replay them as arrival events.

use crate::ids::{AttrId, AttrType, SocialId};
use crate::san::San;

/// Named handles into the Figure 1 fixture.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The network (without the three closure links).
    pub san: San,
    /// `u1…u6` in order (`users[0]` is `u1`).
    pub users: [SocialId; 6],
    /// *San Francisco* (City).
    pub san_francisco: AttrId,
    /// *UC Berkeley* (School).
    pub uc_berkeley: AttrId,
    /// *Computer Science* (Major).
    pub computer_science: AttrId,
    /// *Google Inc.* (Employer).
    pub google: AttrId,
}

/// Builds the Figure 1 base network (closure links **not** yet added).
///
/// Base social links: `u4 → u3`, `u3 → u2`, `u6 → u4`, `u4 → u5`,
/// `u2 → u3`.
/// Attribute links: `u1 — UC Berkeley`, `u2 — UC Berkeley`,
/// `u2 — San Francisco`, `u3 — Computer Science`, `u4 — Computer Science`,
/// `u5 — Google Inc.`, `u5 — San Francisco`, `u6 — Google Inc.`.
pub fn figure1() -> Figure1 {
    let mut san = San::new();
    let users: [SocialId; 6] = core::array::from_fn(|_| san.add_social_node());
    let san_francisco = san.add_attr_node(AttrType::City);
    let uc_berkeley = san.add_attr_node(AttrType::School);
    let computer_science = san.add_attr_node(AttrType::Major);
    let google = san.add_attr_node(AttrType::Employer);

    let [u1, u2, u3, u4, u5, u6] = users;
    assert!(san.add_social_link(u4, u3));
    assert!(san.add_social_link(u3, u2));
    assert!(san.add_social_link(u6, u4));
    assert!(san.add_social_link(u4, u5));
    assert!(san.add_social_link(u2, u3));

    assert!(san.add_attr_link(u1, uc_berkeley));
    assert!(san.add_attr_link(u2, uc_berkeley));
    assert!(san.add_attr_link(u2, san_francisco));
    assert!(san.add_attr_link(u3, computer_science));
    assert!(san.add_attr_link(u4, computer_science));
    assert!(san.add_attr_link(u5, google));
    assert!(san.add_attr_link(u5, san_francisco));
    assert!(san.add_attr_link(u6, google));

    Figure1 {
        san,
        users,
        san_francisco,
        uc_berkeley,
        computer_science,
        google,
    }
}

/// The three closure links of Figure 1, in the order
/// (triadic `u4→u2`, focal `u1→u2`, both `u6→u5`).
pub fn figure1_closures(fx: &Figure1) -> [(SocialId, SocialId); 3] {
    let [u1, u2, _u3, u4, u5, u6] = fx.users;
    [(u4, u2), (u1, u2), (u6, u5)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_counts() {
        let fx = figure1();
        assert_eq!(fx.san.num_social_nodes(), 6);
        assert_eq!(fx.san.num_attr_nodes(), 4);
        assert_eq!(fx.san.num_social_links(), 5);
        assert_eq!(fx.san.num_attr_links(), 8);
        fx.san.check_consistency().unwrap();
    }

    #[test]
    fn triadic_closure_premise_holds() {
        // u4 -> u2 must have a common friend (u3) but no common attribute.
        let fx = figure1();
        let [_u1, u2, _u3, u4, ..] = fx.users;
        assert!(fx.san.common_social_neighbors(u4, u2) >= 1);
        assert_eq!(fx.san.common_attrs(u4, u2), 0);
    }

    #[test]
    fn focal_closure_premise_holds() {
        // u1 -> u2: common attribute (UC Berkeley), no common friend.
        let fx = figure1();
        let [u1, u2, ..] = fx.users;
        assert!(fx.san.common_attrs(u1, u2) >= 1);
        assert_eq!(fx.san.common_social_neighbors(u1, u2), 0);
    }

    #[test]
    fn both_closure_premise_holds() {
        // u6 -> u5: common friend (u4) and common attribute (Google).
        let fx = figure1();
        let [.., u5, u6] = fx.users;
        assert!(fx.san.common_social_neighbors(u6, u5) >= 1);
        assert!(fx.san.common_attrs(u6, u5) >= 1);
    }

    #[test]
    fn closures_are_new_links() {
        let fx = figure1();
        for (src, dst) in figure1_closures(&fx) {
            assert!(!fx.san.has_social_link(src, dst), "{src}->{dst} pre-exists");
        }
    }

    #[test]
    fn attr_types_as_in_paper() {
        let fx = figure1();
        assert_eq!(fx.san.attr_type(fx.san_francisco), AttrType::City);
        assert_eq!(fx.san.attr_type(fx.uc_berkeley), AttrType::School);
        assert_eq!(fx.san.attr_type(fx.computer_science), AttrType::Major);
        assert_eq!(fx.san.attr_type(fx.google), AttrType::Employer);
    }
}
