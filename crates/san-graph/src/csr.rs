//! [`CsrSan`]: an immutable compressed-sparse-row snapshot of a SAN.
//!
//! The measurement half of the paper never mutates a snapshot, so the
//! adjacency-of-`Vec`s layout of [`San`] pays for flexibility it does not
//! use: one heap allocation per node, pointer-chasing per row, and linear
//! membership scans. `CsrSan` freezes a snapshot into four CSR structures
//! (out, in, user→attr, attr→user) plus a precomputed undirected union
//! `Γs(u)`, each a pair of flat arrays:
//!
//! * neighbour rows are **contiguous and sorted** — iteration is
//!   cache-friendly and membership is a binary search,
//! * `Γs(u)` is **zero-allocation** (the mutable path materialises a `Vec`
//!   per call),
//! * the whole snapshot is a handful of `Vec`s, so it is `Send + Sync` for
//!   free — per-day metric sweeps can fan out across threads sharing one
//!   frozen snapshot.
//!
//! Freeze any read view with [`CsrSan::from_read`] (or the conveniences
//! [`San::freeze`] and
//! [`SanTimeline::snapshot_csr`](crate::evolve::SanTimeline::snapshot_csr)),
//! then hand it to any function generic over [`SanRead`].

use crate::ids::{AttrId, AttrType, SocialId};
use crate::read::SanRead;
use crate::san::San;
use std::borrow::Cow;

/// An immutable, cache-friendly SAN snapshot in CSR form.
///
/// Fields are `pub(crate)` so [`crate::delta::DeltaFreezer`] can patch a
/// snapshot with one day's events without a full re-freeze.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrSan {
    pub(crate) out_off: Vec<u32>,
    pub(crate) out_dst: Vec<SocialId>,
    pub(crate) in_off: Vec<u32>,
    pub(crate) in_src: Vec<SocialId>,
    pub(crate) ua_off: Vec<u32>,
    pub(crate) ua_attr: Vec<AttrId>,
    pub(crate) am_off: Vec<u32>,
    pub(crate) am_user: Vec<SocialId>,
    /// Precomputed sorted `Γs(u)` (undirected union of out and in).
    pub(crate) und_off: Vec<u32>,
    pub(crate) und_nbr: Vec<SocialId>,
    pub(crate) attr_types: Vec<AttrType>,
    pub(crate) num_social_links: usize,
    pub(crate) num_attr_links: usize,
}

/// Builds one CSR from per-row sorted data produced by `row_of`.
fn build_csr<I, T: Copy + Ord>(
    rows: usize,
    total_hint: usize,
    mut row_of: impl FnMut(usize) -> I,
) -> (Vec<u32>, Vec<T>)
where
    I: Iterator<Item = T>,
{
    let mut off = Vec::with_capacity(rows + 1);
    let mut data: Vec<T> = Vec::with_capacity(total_hint);
    off.push(0u32);
    for i in 0..rows {
        let start = data.len();
        data.extend(row_of(i));
        data[start..].sort_unstable();
        assert!(
            data.len() <= u32::MAX as usize,
            "CSR offsets overflow u32 (more than 4.29e9 links)"
        );
        off.push(data.len() as u32);
    }
    (off, data)
}

#[inline]
pub(crate) fn row<'a, T>(off: &[u32], data: &'a [T], i: usize) -> &'a [T] {
    &data[off[i] as usize..off[i + 1] as usize]
}

/// Counts elements common to two sorted, deduplicated slices.
pub(crate) fn sorted_intersection_count<T: Copy + Ord>(a: &[T], b: &[T]) -> usize {
    // Galloping when the sizes are lopsided, two-pointer merge otherwise.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len().max(1) >= 16 {
        return small
            .iter()
            .filter(|x| large.binary_search(x).is_ok())
            .count();
    }
    let mut count = 0;
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

impl CsrSan {
    /// Freezes any read view into CSR form.
    pub fn from_read(g: &(impl SanRead + ?Sized)) -> CsrSan {
        let n = g.num_social_nodes();
        let m = g.num_attr_nodes();
        let es = g.num_social_links();
        let ea = g.num_attr_links();
        let (out_off, out_dst) = build_csr(n, es, |i| {
            g.out_neighbors(SocialId(i as u32)).iter().copied()
        });
        let (in_off, in_src) = build_csr(n, es, |i| {
            g.in_neighbors(SocialId(i as u32)).iter().copied()
        });
        let (ua_off, ua_attr) =
            build_csr(n, ea, |i| g.attrs_of(SocialId(i as u32)).iter().copied());
        let (am_off, am_user) =
            build_csr(m, ea, |i| g.members_of(AttrId(i as u32)).iter().copied());
        // Undirected union from the already-sorted out/in rows.
        let mut und_off = Vec::with_capacity(n + 1);
        let mut und_nbr: Vec<SocialId> = Vec::new();
        und_off.push(0u32);
        for i in 0..n {
            let o = row(&out_off, &out_dst, i);
            let inc = row(&in_off, &in_src, i);
            let (mut a, mut b) = (0, 0);
            // Sorted-merge union; the (None, None) arm doubles as the
            // loop exit so no arm needs to be unreachable.
            loop {
                let next = match (o.get(a), inc.get(b)) {
                    (Some(&x), Some(&y)) if x == y => {
                        a += 1;
                        b += 1;
                        x
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        a += 1;
                        x
                    }
                    (Some(_), Some(&y)) => {
                        b += 1;
                        y
                    }
                    (Some(&x), None) => {
                        a += 1;
                        x
                    }
                    (None, Some(&y)) => {
                        b += 1;
                        y
                    }
                    (None, None) => break,
                };
                und_nbr.push(next);
            }
            assert!(
                und_nbr.len() <= u32::MAX as usize,
                "CSR offsets overflow u32"
            );
            und_off.push(und_nbr.len() as u32);
        }
        let attr_types = (0..m as u32).map(|a| g.attr_type(AttrId(a))).collect();
        CsrSan {
            out_off,
            out_dst,
            in_off,
            in_src,
            ua_off,
            ua_attr,
            am_off,
            am_user,
            und_off,
            und_nbr,
            attr_types,
            num_social_links: es,
            num_attr_links: ea,
        }
    }

    /// The precomputed sorted undirected neighbourhood `Γs(u)` as a
    /// borrowed slice (what [`SanRead::social_neighbors`] hands out without
    /// allocating).
    #[inline]
    pub fn undirected_neighbors(&self, u: SocialId) -> &[SocialId] {
        row(&self.und_off, &self.und_nbr, u.index())
    }

    /// Undirected degree `|Γs(u)|` in O(1).
    #[inline]
    pub fn undirected_degree(&self, u: SocialId) -> usize {
        self.undirected_neighbors(u).len()
    }

    /// Approximate heap footprint in bytes, used for capacity planning in
    /// benches and by the sharding layer
    /// ([`ShardedCsrSan::shard_bytes`](crate::shard::ShardedCsrSan::shard_bytes)).
    ///
    /// Every flat array of the snapshot is accounted for — the five offset
    /// tables, the four social-id payloads (out, in, membership,
    /// undirected), the attribute column, and the attribute-type table; the
    /// `heap_bytes_sums_every_array` test recomputes the total from the
    /// individual arrays so a future field can't silently go unmetered.
    ///
    /// The store path keeps this audit exact:
    /// [`CsrSan::read_from`](crate::store) loads each column into an
    /// exactly-sized allocation and retains no staging buffers, so a
    /// snapshot loaded from disk reports the same `heap_bytes` as the one
    /// that was written (the audit test round-trips through the store to
    /// prove it); for the on-disk counterpart see
    /// [`SnapshotVault::disk_bytes`](crate::store::SnapshotVault::disk_bytes).
    pub fn heap_bytes(&self) -> usize {
        fn bytes_of<T>(v: &[T]) -> usize {
            std::mem::size_of_val(v)
        }
        // Offset tables (u32 each, one sentinel slot per table).
        bytes_of(&self.out_off)
            + bytes_of(&self.in_off)
            + bytes_of(&self.ua_off)
            + bytes_of(&self.am_off)
            + bytes_of(&self.und_off)
            // Social-id payload rows.
            + bytes_of(&self.out_dst)
            + bytes_of(&self.in_src)
            + bytes_of(&self.am_user)
            + bytes_of(&self.und_nbr)
            // Attribute column and type table.
            + bytes_of(&self.ua_attr)
            + bytes_of(&self.attr_types)
    }
}

impl From<&San> for CsrSan {
    fn from(san: &San) -> CsrSan {
        CsrSan::from_read(san)
    }
}

impl SanRead for CsrSan {
    #[inline]
    fn num_social_nodes(&self) -> usize {
        self.out_off.len() - 1
    }

    #[inline]
    fn num_attr_nodes(&self) -> usize {
        self.am_off.len() - 1
    }

    #[inline]
    fn num_social_links(&self) -> usize {
        self.num_social_links
    }

    #[inline]
    fn num_attr_links(&self) -> usize {
        self.num_attr_links
    }

    #[inline]
    fn out_neighbors(&self, u: SocialId) -> &[SocialId] {
        row(&self.out_off, &self.out_dst, u.index())
    }

    #[inline]
    fn in_neighbors(&self, u: SocialId) -> &[SocialId] {
        row(&self.in_off, &self.in_src, u.index())
    }

    #[inline]
    fn attrs_of(&self, u: SocialId) -> &[AttrId] {
        row(&self.ua_off, &self.ua_attr, u.index())
    }

    #[inline]
    fn members_of(&self, a: AttrId) -> &[SocialId] {
        row(&self.am_off, &self.am_user, a.index())
    }

    #[inline]
    fn attr_type(&self, a: AttrId) -> AttrType {
        self.attr_types[a.index()]
    }

    /// Binary search on the shorter of the two sorted rows.
    fn has_social_link(&self, src: SocialId, dst: SocialId) -> bool {
        let out = self.out_neighbors(src);
        let inc = self.in_neighbors(dst);
        if out.len() <= inc.len() {
            out.binary_search(&dst).is_ok()
        } else {
            inc.binary_search(&src).is_ok()
        }
    }

    fn has_attr_link(&self, user: SocialId, attr: AttrId) -> bool {
        let ua = self.attrs_of(user);
        let am = self.members_of(attr);
        if ua.len() <= am.len() {
            ua.binary_search(&attr).is_ok()
        } else {
            am.binary_search(&user).is_ok()
        }
    }

    /// Zero-allocation: borrows the precomputed union row.
    #[inline]
    fn social_neighbors(&self, u: SocialId) -> Cow<'_, [SocialId]> {
        Cow::Borrowed(self.undirected_neighbors(u))
    }

    /// Sorted-merge intersection (no hashing).
    fn common_attrs(&self, u: SocialId, v: SocialId) -> usize {
        sorted_intersection_count(self.attrs_of(u), self.attrs_of(v))
    }

    /// Sorted-merge intersection of the precomputed unions, excluding the
    /// endpoints themselves.
    fn common_social_neighbors(&self, u: SocialId, v: SocialId) -> usize {
        let nu = self.undirected_neighbors(u);
        let nv = self.undirected_neighbors(v);
        let mut count = sorted_intersection_count(nu, nv);
        // Remove u/v themselves when both rows contain them.
        for x in [u, v] {
            if nu.binary_search(&x).is_ok() && nv.binary_search(&x).is_ok() {
                count -= 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1;
    use san_stats::SplitRng;

    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = assert_send_sync::<CsrSan>();

    fn random_san(n: u32, links: usize, attrs: u32, attr_links: usize, seed: u64) -> San {
        let mut rng = SplitRng::new(seed);
        let mut san = San::new();
        for _ in 0..n {
            san.add_social_node();
        }
        for i in 0..attrs {
            san.add_attr_node(AttrType::PAPER_TYPES[(i % 4) as usize]);
        }
        for _ in 0..links {
            let u = SocialId(rng.below(n as u64) as u32);
            let v = SocialId(rng.below(n as u64) as u32);
            if u != v {
                san.add_social_link(u, v);
            }
        }
        for _ in 0..attr_links {
            let u = SocialId(rng.below(n as u64) as u32);
            let a = AttrId(rng.below(attrs as u64) as u32);
            san.add_attr_link(u, a);
        }
        san
    }

    /// Exhaustive agreement between a San and its frozen snapshot.
    fn assert_agrees(san: &San, csr: &CsrSan) {
        assert_eq!(csr.num_social_nodes(), san.num_social_nodes());
        assert_eq!(csr.num_attr_nodes(), san.num_attr_nodes());
        assert_eq!(SanRead::num_social_links(csr), san.num_social_links());
        assert_eq!(SanRead::num_attr_links(csr), san.num_attr_links());
        for u in San::social_nodes(san) {
            let mut expect: Vec<SocialId> = san.out_neighbors(u).to_vec();
            expect.sort_unstable();
            assert_eq!(SanRead::out_neighbors(csr, u), expect.as_slice());
            let mut expect: Vec<SocialId> = san.in_neighbors(u).to_vec();
            expect.sort_unstable();
            assert_eq!(SanRead::in_neighbors(csr, u), expect.as_slice());
            let mut expect: Vec<AttrId> = san.attrs_of(u).to_vec();
            expect.sort_unstable();
            assert_eq!(SanRead::attrs_of(csr, u), expect.as_slice());
            assert_eq!(
                csr.undirected_neighbors(u),
                San::social_neighbors(san, u).as_slice()
            );
            assert_eq!(SanRead::out_degree(csr, u), san.out_degree(u));
            assert_eq!(SanRead::in_degree(csr, u), san.in_degree(u));
            assert_eq!(SanRead::attr_degree(csr, u), san.attr_degree(u));
        }
        for a in San::attr_nodes(san) {
            let mut expect: Vec<SocialId> = san.members_of(a).to_vec();
            expect.sort_unstable();
            assert_eq!(SanRead::members_of(csr, a), expect.as_slice());
            assert_eq!(SanRead::attr_type(csr, a), san.attr_type(a));
        }
        for u in San::social_nodes(san) {
            for v in San::social_nodes(san) {
                assert_eq!(
                    SanRead::has_social_link(csr, u, v),
                    san.has_social_link(u, v),
                    "{u}->{v}"
                );
                assert_eq!(
                    SanRead::common_attrs(csr, u, v),
                    san.common_attrs(u, v),
                    "common_attrs {u},{v}"
                );
                assert_eq!(
                    SanRead::common_social_neighbors(csr, u, v),
                    san.common_social_neighbors(u, v),
                    "common_social {u},{v}"
                );
            }
            for a in San::attr_nodes(san) {
                assert_eq!(SanRead::has_attr_link(csr, u, a), san.has_attr_link(u, a));
            }
        }
        use std::collections::BTreeSet;
        assert_eq!(
            SanRead::social_links(csr).collect::<BTreeSet<_>>(),
            San::social_links(san).collect::<BTreeSet<_>>()
        );
        assert_eq!(
            SanRead::attr_links(csr).collect::<BTreeSet<_>>(),
            San::attr_links(san).collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn figure1_freeze_agrees_everywhere() {
        let fx = figure1();
        assert_agrees(&fx.san, &fx.san.freeze());
    }

    #[test]
    fn random_san_freeze_agrees_everywhere() {
        for seed in 0..4 {
            let san = random_san(30, 120, 6, 40, seed);
            assert_agrees(&san, &san.freeze());
        }
    }

    #[test]
    fn empty_san_freezes() {
        let csr = San::new().freeze();
        assert_eq!(csr.num_social_nodes(), 0);
        assert_eq!(csr.num_attr_nodes(), 0);
        assert_eq!(SanRead::social_links(&csr).count(), 0);
    }

    #[test]
    fn refreeze_is_identity() {
        let san = random_san(20, 60, 4, 20, 9);
        let once = san.freeze();
        let twice = CsrSan::from_read(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn heap_bytes_reports_something_sane() {
        let san = random_san(50, 300, 8, 60, 3);
        let csr = san.freeze();
        let bytes = csr.heap_bytes();
        // At minimum the payload arrays exist: 2 * links * 4 bytes.
        assert!(bytes >= 2 * SanRead::num_social_links(&csr) * 4);
        assert!(bytes < 1 << 20);
    }

    /// Audit: `heap_bytes` equals the independently-summed sizes of every
    /// flat array the struct holds, derived from the public counts — so the
    /// accounting breaks loudly if an array is added without metering it.
    #[test]
    fn heap_bytes_sums_every_array() {
        use std::mem::size_of;
        let san = random_san(40, 250, 6, 70, 8);
        let csr = san.freeze();
        let n = csr.num_social_nodes();
        let m = csr.num_attr_nodes();
        let es = SanRead::num_social_links(&csr);
        let ea = SanRead::num_attr_links(&csr);
        let und: usize = (0..n as u32)
            .map(|u| csr.undirected_degree(SocialId(u)))
            .sum();
        let offsets = 4 * (n + 1) + (m + 1); // out/in/ua/und + am tables
        let social_payload = es /* out_dst */ + es /* in_src */ + ea /* am_user */ + und;
        let expect = offsets * size_of::<u32>()
            + social_payload * size_of::<SocialId>()
            + ea * size_of::<AttrId>() /* ua_attr */
            + m * size_of::<AttrType>();
        assert_eq!(csr.heap_bytes(), expect);
        // The same audit holds across the store path: a snapshot loaded
        // back from its serialised bytes owns exactly the same arrays —
        // no capacity slack, no retained staging allocation.
        let loaded = CsrSan::from_store_bytes(&csr.to_store_bytes()).expect("store roundtrip");
        assert_eq!(loaded.heap_bytes(), expect);
    }

    #[test]
    fn snapshot_is_shareable_across_threads() {
        let san = random_san(60, 400, 6, 80, 5);
        let csr = san.freeze();
        let degrees: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let csr = &csr; // shared by reference: Sync
                    scope.spawn(move || {
                        SanRead::social_nodes(csr)
                            .skip(t)
                            .step_by(4)
                            .map(|u| SanRead::out_degree(csr, u))
                            .sum::<usize>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        assert_eq!(
            degrees.iter().sum::<usize>(),
            SanRead::num_social_links(&csr)
        );
    }

    #[test]
    fn sorted_intersection_paths() {
        // Two-pointer path.
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        // Galloping path (lopsided sizes).
        let big: Vec<u32> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(sorted_intersection_count(&[4, 5, 500], &big), 2);
        assert_eq!(sorted_intersection_count::<u32>(&[], &big), 0);
    }
}
