//! Timestamped SAN evolution: event logs, replay, and daily snapshots.
//!
//! The paper's dataset is a sequence of **79 daily snapshots** of a growing
//! network (§2.2). We represent growth as an append-only [`SanEvent`] log
//! ([`SanTimeline`]); any day's snapshot is reproduced by replaying the
//! prefix of events with `day ≤ t`. Generators build timelines through
//! [`TimelineBuilder`], which maintains the live [`San`] (so models can
//! query degrees and neighbourhoods while growing the network) and records
//! every mutation.

use crate::ids::{AttrId, AttrType, SocialId};
use crate::san::San;
use serde::{Deserialize, Serialize};

/// One growth event. Node ids are implicit: the `k`-th `SocialNode` event
/// creates `SocialId(k)`, and likewise for attribute nodes — replay is
/// therefore unambiguous and the log is compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SanEvent {
    /// A user joins.
    SocialNode {
        /// Arrival day.
        day: u32,
    },
    /// A new attribute value first appears.
    AttrNode {
        /// Arrival day.
        day: u32,
        /// Attribute category.
        ty: AttrType,
    },
    /// A directed social link is created.
    SocialLink {
        /// Creation day.
        day: u32,
        /// Source user.
        src: SocialId,
        /// Destination user.
        dst: SocialId,
    },
    /// An undirected user–attribute link is created.
    AttrLink {
        /// Creation day.
        day: u32,
        /// The user.
        user: SocialId,
        /// The attribute.
        attr: AttrId,
    },
}

impl SanEvent {
    /// The day the event occurred.
    pub fn day(&self) -> u32 {
        match *self {
            SanEvent::SocialNode { day }
            | SanEvent::AttrNode { day, .. }
            | SanEvent::SocialLink { day, .. }
            | SanEvent::AttrLink { day, .. } => day,
        }
    }
}

/// Per-day aggregate counts (the series of Figures 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct DayCounts {
    /// Day index.
    pub day: u32,
    /// Cumulative social nodes at end of day.
    pub social_nodes: usize,
    /// Cumulative attribute nodes at end of day.
    pub attr_nodes: usize,
    /// Cumulative social links at end of day.
    pub social_links: usize,
    /// Cumulative attribute links at end of day.
    pub attr_links: usize,
}

/// Advances `idx` past every event of `day` (the log is day-ordered) and
/// returns that day's slice — the one grouping scan both sweep drivers
/// share.
fn take_day_slice<'a>(events: &'a [SanEvent], day: u32, idx: &mut usize) -> &'a [SanEvent] {
    let start = *idx;
    while *idx < events.len() && events[*idx].day() == day {
        *idx += 1;
    }
    &events[start..*idx]
}

impl DayCounts {
    /// Reads the aggregate counters of any SAN view as the end-of-`day`
    /// totals — the one place the field-by-field assembly lives.
    pub fn measure(day: u32, g: &impl crate::read::SanRead) -> DayCounts {
        DayCounts {
            day,
            social_nodes: g.num_social_nodes(),
            attr_nodes: g.num_attr_nodes(),
            social_links: g.num_social_links(),
            attr_links: g.num_attr_links(),
        }
    }
}

/// An immutable, day-ordered SAN growth log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SanTimeline {
    events: Vec<SanEvent>,
}

impl SanTimeline {
    /// Wraps a day-ordered event list.
    ///
    /// # Panics
    /// Panics if the events are not sorted by day (replay would be
    /// ambiguous).
    pub fn from_events(events: Vec<SanEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].day() <= w[1].day()),
            "timeline events must be day-ordered"
        );
        SanTimeline { events }
    }

    /// The raw event log.
    pub fn events(&self) -> &[SanEvent] {
        &self.events
    }

    /// The last day with any event (`None` for an empty timeline).
    pub fn max_day(&self) -> Option<u32> {
        self.events.last().map(SanEvent::day)
    }

    /// Replays the log through day `day` (inclusive) into a fresh [`San`].
    pub fn snapshot_at(&self, day: u32) -> San {
        let mut san = San::new();
        for ev in &self.events {
            if ev.day() > day {
                break;
            }
            Self::apply(&mut san, ev);
        }
        san
    }

    /// Replays the log through day `day` and freezes the result into an
    /// immutable [`CsrSan`](crate::CsrSan) — the snapshot form every
    /// analytic consumes. One replay, one freeze, no retained mutable
    /// state; the product is `Send + Sync`, so per-day sweeps can build
    /// snapshots on worker threads.
    ///
    /// This replays from day 0, so calling it for *every* day is
    /// quadratic; all-day sweeps should use the incremental
    /// [`snapshot_stream`](SanTimeline::snapshot_stream) /
    /// [`for_each_snapshot`](SanTimeline::for_each_snapshot) pipeline
    /// instead.
    pub fn snapshot_csr(&self, day: u32) -> crate::CsrSan {
        self.snapshot_at(day).freeze()
    }

    /// Streams `(day, Arc<CsrSan>)` for every `step`-th day (day 0, `step`,
    /// `2·step`, …, always including the final day) in one incremental
    /// delta-freeze pass: each day's snapshot is produced by patching the
    /// previous day's CSR arrays with that day's events
    /// ([`DeltaFreezer`](crate::delta::DeltaFreezer)), so a full-timeline
    /// sweep is near-linear in events instead of the quadratic
    /// replay-per-day of calling
    /// [`snapshot_csr`](SanTimeline::snapshot_csr) in a loop.
    ///
    /// Snapshots are yielded **in day order** as `Arc`-shared,
    /// `Send + Sync` handles — the hand-off itself is allocation-free (no
    /// flat-array clone), so they can be given to worker threads or
    /// wrapped into a [`ShardedCsrSan`](crate::shard::ShardedCsrSan) for
    /// intra-snapshot parallelism. Only the freezer's current state plus
    /// whatever snapshots consumers still hold are live — O(E) memory for
    /// a sequential sweep regardless of timeline length. An empty timeline
    /// yields nothing.
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn snapshot_stream(&self, step: u32) -> SnapshotStream<'_> {
        assert!(step >= 1, "step must be at least 1");
        SnapshotStream {
            events: &self.events,
            idx: 0,
            day: 0,
            max_day: self.max_day(),
            step,
            emit_from: 0,
            pending: None,
            freezer: crate::delta::DeltaFreezer::new(),
        }
    }

    /// Warm-started form of [`snapshot_stream`](SanTimeline::snapshot_stream):
    /// yields the sampled days of `start..=max_day` (the same `step` grid a
    /// full sweep uses — `day % step == 0` plus the forced final day) but
    /// seeds the delta freezer from the **nearest persisted vault day at or
    /// before `start`** instead of replaying from day 0, so the sweep costs
    /// only the events after the persisted day.
    ///
    /// The yielded snapshots are bit-identical to the corresponding days of
    /// a full `snapshot_stream(step)` (the `vault_equivalence` suite locks
    /// this down). When the vault holds no day at or before `start`, the
    /// stream falls back to replaying from day 0 and simply withholds the
    /// days before `start`; when `start` is past the final day, it yields
    /// nothing.
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn resume_from_vault(
        &self,
        vault: &crate::store::SnapshotVault,
        start: u32,
        step: u32,
    ) -> Result<SnapshotStream<'_>, crate::store::StoreError> {
        assert!(step >= 1, "step must be at least 1");
        if self.max_day().filter(|&d| start <= d).is_none() {
            // Empty timeline or start past the final day: nothing to emit
            // (and no reason to touch the vault).
            return Ok(self.exhausted_stream(crate::delta::DeltaFreezer::new(), start, step));
        }
        match crate::delta::DeltaFreezer::resume_from_vault(vault, start)? {
            None => Ok(SnapshotStream {
                events: &self.events,
                idx: 0,
                day: 0,
                max_day: self.max_day(),
                step,
                emit_from: start,
                pending: None,
                freezer: crate::delta::DeltaFreezer::new(),
            }),
            Some((persisted, freezer)) => Ok(self.resume_stream(freezer, persisted, start, step)),
        }
    }

    /// Warm-started form of [`snapshot_stream`](SanTimeline::snapshot_stream)
    /// seeded from an **already materialised** end-of-day snapshot — what
    /// the `SnapshotSource::Mapped` sweep driver in `san-metrics` uses to
    /// seed from a zero-copy mapped day
    /// ([`CsrSanView::to_owned_csr`](crate::view::CsrSanView::to_owned_csr)),
    /// and what [`resume_from_vault`](SanTimeline::resume_from_vault) is
    /// built on. Yields the sampled days of `start..=max_day` on the same
    /// `step` grid as a full sweep, delta-patching forward from
    /// `seed_day`.
    ///
    /// `seed` must be the end-of-day state of `seed_day` of **this**
    /// timeline (the vault and mapped paths guarantee it); a mismatched
    /// seed yields snapshots of a different network, exactly as feeding a
    /// foreign snapshot to [`DeltaFreezer::from_shared`] would.
    ///
    /// # Panics
    /// Panics if `step == 0` or `seed_day > start`.
    pub fn resume_from_snapshot(
        &self,
        seed: std::sync::Arc<crate::CsrSan>,
        seed_day: u32,
        start: u32,
        step: u32,
    ) -> SnapshotStream<'_> {
        assert!(step >= 1, "step must be at least 1");
        assert!(
            seed_day <= start,
            "seed day {seed_day} must not exceed start day {start}"
        );
        let freezer = crate::delta::DeltaFreezer::from_shared(seed);
        if self.max_day().filter(|&d| start <= d).is_none() {
            return self.exhausted_stream(freezer, start, step);
        }
        self.resume_stream(freezer, seed_day, start, step)
    }

    /// A stream that yields nothing (but still carries the freezer, so
    /// counters remain readable).
    fn exhausted_stream(
        &self,
        freezer: crate::delta::DeltaFreezer,
        start: u32,
        step: u32,
    ) -> SnapshotStream<'_> {
        SnapshotStream {
            events: &self.events,
            idx: self.events.len(),
            day: 0,
            max_day: None,
            step,
            emit_from: start,
            pending: None,
            freezer,
        }
    }

    /// Shared warm-start core: `freezer` already holds the end-of-day
    /// state of `seed_day`; emit the sampled days of `start..=last`.
    /// Callers have checked `start <= last`.
    fn resume_stream(
        &self,
        freezer: crate::delta::DeltaFreezer,
        seed_day: u32,
        start: u32,
        step: u32,
    ) -> SnapshotStream<'_> {
        // Callers checked the timeline is nonempty; on an empty one the
        // seed day is trivially the last day, which routes into the
        // exhausted-stream arm below instead of panicking.
        let last = self.max_day().unwrap_or(seed_day);
        // The seeded snapshot IS the end-of-day state of `seed_day`;
        // emit it first if that day is on the grid.
        let pending = (seed_day == start && (seed_day.is_multiple_of(step) || seed_day == last))
            .then_some(seed_day);
        if seed_day == last {
            let mut stream = self.exhausted_stream(freezer, start, step);
            stream.pending = pending;
            return stream;
        }
        SnapshotStream {
            events: &self.events,
            idx: self.events.partition_point(|e| e.day() <= seed_day),
            day: seed_day + 1,
            max_day: Some(last),
            step,
            emit_from: start,
            pending,
            freezer,
        }
    }

    /// Borrowing form of [`snapshot_stream`](SanTimeline::snapshot_stream):
    /// invokes `visit(day, &CsrSan)` with the delta-frozen end-of-day
    /// snapshot of every sampled day, without cloning the snapshot at all.
    /// This is the cheapest way to run a sequential full-resolution sweep.
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn for_each_snapshot<F: FnMut(u32, &crate::CsrSan)>(&self, step: u32, mut visit: F) {
        assert!(step >= 1, "step must be at least 1");
        let Some(max_day) = self.max_day() else {
            return;
        };
        let mut freezer = crate::delta::DeltaFreezer::new();
        let mut idx = 0;
        for day in 0..=max_day {
            freezer.apply_day(take_day_slice(&self.events, day, &mut idx));
            if day % step == 0 || day == max_day {
                visit(day, freezer.current());
            }
        }
    }

    /// Replays the whole log.
    pub fn final_snapshot(&self) -> San {
        match self.max_day() {
            Some(d) => self.snapshot_at(d),
            None => San::new(),
        }
    }

    /// Incrementally replays the log, invoking `visit(day, &san)` with the
    /// end-of-day state for every day in `0..=max_day`. This is the engine
    /// behind every "evolution of metric X" figure: one pass, no snapshot
    /// clones.
    pub fn for_each_day<F: FnMut(u32, &San)>(&self, mut visit: F) {
        let Some(max_day) = self.max_day() else {
            return;
        };
        let mut san = San::new();
        let mut idx = 0;
        for day in 0..=max_day {
            while idx < self.events.len() && self.events[idx].day() == day {
                Self::apply(&mut san, &self.events[idx]);
                idx += 1;
            }
            visit(day, &san);
        }
    }

    /// Per-day cumulative node/link counts (Figures 2–3) in a single pass.
    pub fn day_counts(&self) -> Vec<DayCounts> {
        let mut out = Vec::new();
        self.for_each_day(|day, san| out.push(DayCounts::measure(day, san)));
        out
    }

    /// All social-link arrival events in order — the trace replayed by the
    /// attachment-model likelihood evaluation (Fig. 15).
    pub fn social_link_arrivals(&self) -> impl Iterator<Item = (u32, SocialId, SocialId)> + '_ {
        self.events.iter().filter_map(|ev| match *ev {
            SanEvent::SocialLink { day, src, dst } => Some((day, src, dst)),
            _ => None,
        })
    }

    fn apply(san: &mut San, ev: &SanEvent) {
        match *ev {
            SanEvent::SocialNode { .. } => {
                san.add_social_node();
            }
            SanEvent::AttrNode { ty, .. } => {
                san.add_attr_node(ty);
            }
            SanEvent::SocialLink { src, dst, .. } => {
                san.add_social_link(src, dst);
            }
            SanEvent::AttrLink { user, attr, .. } => {
                san.add_attr_link(user, attr);
            }
        }
    }
}

/// Iterator over `(day, Arc<CsrSan>)` snapshots of every sampled day,
/// produced incrementally by a
/// [`DeltaFreezer`](crate::delta::DeltaFreezer). Built by
/// [`SanTimeline::snapshot_stream`].
#[derive(Debug)]
pub struct SnapshotStream<'a> {
    events: &'a [SanEvent],
    idx: usize,
    day: u32,
    max_day: Option<u32>,
    step: u32,
    /// Sampled days before this are patched through but not yielded (the
    /// vault-resume case: the grid stays the full sweep's, only the
    /// emission window narrows).
    emit_from: u32,
    /// A day whose snapshot is already the freezer's current state (the
    /// vault-loaded day) and must be yielded before any patching.
    pending: Option<u32>,
    freezer: crate::delta::DeltaFreezer,
}

impl SnapshotStream<'_> {
    /// Shared snapshots handed out of the freezer so far (the per-sweep
    /// hand-off budget the regression tests pin down).
    pub fn snapshots_taken(&self) -> u64 {
        self.freezer.snapshots_taken()
    }

    /// Days advanced through the underlying freezer so far.
    pub fn days_applied(&self) -> u64 {
        self.freezer.days_applied()
    }
}

impl Iterator for SnapshotStream<'_> {
    type Item = (u32, std::sync::Arc<crate::CsrSan>);

    fn next(&mut self) -> Option<(u32, std::sync::Arc<crate::CsrSan>)> {
        if let Some(day) = self.pending.take() {
            return Some((day, self.freezer.snapshot()));
        }
        loop {
            let max_day = self.max_day?;
            let day = self.day;
            self.freezer
                .apply_day(take_day_slice(self.events, day, &mut self.idx));
            let sampled =
                (day.is_multiple_of(self.step) || day == max_day) && day >= self.emit_from;
            if day == max_day {
                // Exhausted; also guards `day + 1` against u32 overflow.
                self.max_day = None;
            } else {
                self.day = day + 1;
            }
            if sampled {
                return Some((day, self.freezer.snapshot()));
            }
        }
    }
}

/// Records growth events while maintaining the live network.
///
/// Generators call the same mutation API as [`San`]; every successful
/// mutation is appended to the log. Days advance monotonically through
/// [`TimelineBuilder::advance_to_day`].
#[derive(Debug, Clone, Default)]
pub struct TimelineBuilder {
    san: San,
    events: Vec<SanEvent>,
    day: u32,
}

impl TimelineBuilder {
    /// Creates an empty builder at day 0.
    pub fn new() -> Self {
        TimelineBuilder::default()
    }

    /// The current day.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Advances the clock; days never go backwards.
    ///
    /// # Panics
    /// Panics when `day` is earlier than the current day.
    pub fn advance_to_day(&mut self, day: u32) {
        assert!(
            day >= self.day,
            "day must be monotone: {} -> {day}",
            self.day
        );
        self.day = day;
    }

    /// Read access to the live network.
    pub fn san(&self) -> &San {
        &self.san
    }

    /// Adds a social node now.
    pub fn add_social_node(&mut self) -> SocialId {
        let id = self.san.add_social_node();
        self.events.push(SanEvent::SocialNode { day: self.day });
        id
    }

    /// Adds an attribute node now.
    pub fn add_attr_node(&mut self, ty: AttrType) -> AttrId {
        let id = self.san.add_attr_node(ty);
        self.events.push(SanEvent::AttrNode { day: self.day, ty });
        id
    }

    /// Adds a social link now; duplicate/self-loop attempts are not
    /// recorded and return `false`.
    pub fn add_social_link(&mut self, src: SocialId, dst: SocialId) -> bool {
        let added = self.san.add_social_link(src, dst);
        if added {
            self.events.push(SanEvent::SocialLink {
                day: self.day,
                src,
                dst,
            });
        }
        added
    }

    /// Adds an attribute link now; duplicates are not recorded and return
    /// `false`.
    pub fn add_attr_link(&mut self, user: SocialId, attr: AttrId) -> bool {
        let added = self.san.add_attr_link(user, attr);
        if added {
            self.events.push(SanEvent::AttrLink {
                day: self.day,
                user,
                attr,
            });
        }
        added
    }

    /// Hands out the events accumulated since the last drain (or since
    /// construction) and clears the internal log — the streaming hand-off
    /// used by `SanModel::generate_with` to flush one day at a time into a
    /// [`DeltaFreezer`](crate::delta::DeltaFreezer) or
    /// [`StreamingVaultWriter`](crate::store::StreamingVaultWriter)
    /// without ever materialising the full event log. Draining does not
    /// touch the live [`San`]; a builder that is drained every day holds
    /// only the current day's events plus the network itself.
    ///
    /// [`finish`](TimelineBuilder::finish) after draining returns a
    /// timeline holding only the undrained suffix.
    pub fn drain_events(&mut self) -> Vec<SanEvent> {
        std::mem::take(&mut self.events)
    }

    /// Finalises the log, returning the timeline and the fully-grown
    /// network (identical to `timeline.final_snapshot()` but avoids a
    /// replay).
    pub fn finish(self) -> (SanTimeline, San) {
        (
            SanTimeline {
                events: self.events,
            },
            self.san,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_timeline() -> SanTimeline {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        let a0 = tb.add_attr_node(AttrType::City);
        tb.add_social_link(u0, u1);
        tb.advance_to_day(1);
        let u2 = tb.add_social_node();
        tb.add_social_link(u2, u0);
        tb.add_attr_link(u2, a0);
        tb.advance_to_day(3);
        tb.add_social_link(u1, u2);
        tb.finish().0
    }

    #[test]
    fn snapshot_replay_matches_days() {
        let tl = sample_timeline();
        let d0 = tl.snapshot_at(0);
        assert_eq!(d0.num_social_nodes(), 2);
        assert_eq!(d0.num_social_links(), 1);
        assert_eq!(d0.num_attr_nodes(), 1);
        assert_eq!(d0.num_attr_links(), 0);

        let d1 = tl.snapshot_at(1);
        assert_eq!(d1.num_social_nodes(), 3);
        assert_eq!(d1.num_social_links(), 2);
        assert_eq!(d1.num_attr_links(), 1);

        // Day 2 has no events: same as day 1.
        let d2 = tl.snapshot_at(2);
        assert_eq!(d2.num_social_links(), 2);

        let d3 = tl.snapshot_at(3);
        assert_eq!(d3.num_social_links(), 3);
        d3.check_consistency().unwrap();
    }

    #[test]
    fn final_snapshot_equals_last_day() {
        let tl = sample_timeline();
        let fin = tl.final_snapshot();
        let last = tl.snapshot_at(tl.max_day().unwrap());
        assert_eq!(fin.num_social_links(), last.num_social_links());
        assert_eq!(fin.num_attr_links(), last.num_attr_links());
    }

    #[test]
    fn builder_finish_equals_replay() {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        tb.add_social_link(u0, u1);
        let (tl, san) = tb.finish();
        let replayed = tl.final_snapshot();
        assert_eq!(san.num_social_nodes(), replayed.num_social_nodes());
        assert_eq!(san.num_social_links(), replayed.num_social_links());
    }

    #[test]
    fn for_each_day_covers_gap_days() {
        let tl = sample_timeline();
        let mut days = Vec::new();
        tl.for_each_day(|day, _| days.push(day));
        assert_eq!(days, vec![0, 1, 2, 3]);
    }

    #[test]
    fn day_counts_are_cumulative_monotone() {
        let tl = sample_timeline();
        let counts = tl.day_counts();
        assert_eq!(counts.len(), 4);
        for w in counts.windows(2) {
            assert!(w[1].social_nodes >= w[0].social_nodes);
            assert!(w[1].social_links >= w[0].social_links);
            assert!(w[1].attr_links >= w[0].attr_links);
        }
        assert_eq!(counts[3].social_links, 3);
    }

    #[test]
    fn link_arrivals_in_order() {
        let tl = sample_timeline();
        let arrivals: Vec<_> = tl.social_link_arrivals().collect();
        assert_eq!(arrivals.len(), 3);
        assert_eq!(arrivals[0], (0, SocialId(0), SocialId(1)));
        assert_eq!(arrivals[2].0, 3);
    }

    #[test]
    fn duplicate_links_not_recorded() {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        assert!(tb.add_social_link(u0, u1));
        assert!(!tb.add_social_link(u0, u1));
        let (tl, _) = tb.finish();
        assert_eq!(tl.social_link_arrivals().count(), 1);
    }

    #[test]
    fn drain_events_hands_out_days_without_retaining_log() {
        // Rebuild the sample timeline, draining after each day; the
        // concatenation of the drained slices must equal the batch log and
        // `finish` must return only the undrained suffix.
        let batch = sample_timeline();
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        let a0 = tb.add_attr_node(AttrType::City);
        tb.add_social_link(u0, u1);
        let mut drained = tb.drain_events();
        assert_eq!(drained.len(), 4);
        tb.advance_to_day(1);
        let u2 = tb.add_social_node();
        tb.add_social_link(u2, u0);
        tb.add_attr_link(u2, a0);
        drained.extend(tb.drain_events());
        tb.advance_to_day(3);
        tb.add_social_link(u1, u2);
        let tail = tb.drain_events();
        assert_eq!(
            tail,
            [SanEvent::SocialLink {
                day: 3,
                src: u1,
                dst: u2
            }]
        );
        drained.extend(tail);
        assert_eq!(drained, batch.events());
        // The live network is untouched by draining and the residual
        // timeline is empty.
        let (tl, san) = tb.finish();
        assert!(tl.events().is_empty());
        assert_eq!(san.num_social_links(), 3);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn day_cannot_go_backwards() {
        let mut tb = TimelineBuilder::new();
        tb.advance_to_day(5);
        tb.advance_to_day(4);
    }

    #[test]
    #[should_panic(expected = "day-ordered")]
    fn from_events_rejects_unordered() {
        SanTimeline::from_events(vec![
            SanEvent::SocialNode { day: 2 },
            SanEvent::SocialNode { day: 1 },
        ]);
    }

    #[test]
    fn empty_timeline() {
        let tl = SanTimeline::default();
        assert_eq!(tl.max_day(), None);
        assert_eq!(tl.final_snapshot().num_social_nodes(), 0);
        let mut called = false;
        tl.for_each_day(|_, _| called = true);
        assert!(!called);
        assert!(tl.day_counts().is_empty());
    }

    #[test]
    fn snapshot_stream_matches_replay_per_day() {
        let tl = sample_timeline();
        for step in [1u32, 2, 3] {
            for (day, snap) in tl.snapshot_stream(step) {
                assert_eq!(*snap, tl.snapshot_csr(day), "step={step} day={day}");
            }
        }
    }

    #[test]
    fn snapshot_stream_samples_steps_and_final_day() {
        let tl = sample_timeline(); // max_day == 3
        let days: Vec<u32> = tl.snapshot_stream(2).map(|(d, _)| d).collect();
        assert_eq!(days, vec![0, 2, 3]);
        let days: Vec<u32> = tl.snapshot_stream(7).map(|(d, _)| d).collect();
        assert_eq!(days, vec![0, 3]);
    }

    #[test]
    fn held_snapshot_survives_stream_advance() {
        // The Arc hand-off must never mutate a handed-out day in place:
        // a snapshot kept across later apply_day calls stays bit-identical
        // to the replay of its own day.
        let tl = sample_timeline();
        let mut stream = tl.snapshot_stream(1);
        let (d0, s0) = stream.next().unwrap();
        let expect = tl.snapshot_csr(d0);
        while stream.next().is_some() {}
        assert_eq!(*s0, expect);
    }

    #[test]
    fn snapshot_stream_empty_timeline_yields_nothing() {
        let tl = SanTimeline::default();
        assert_eq!(tl.snapshot_stream(1).count(), 0);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn snapshot_stream_rejects_zero_step() {
        sample_timeline().snapshot_stream(0);
    }

    #[test]
    fn for_each_snapshot_matches_stream() {
        let tl = sample_timeline();
        let streamed: Vec<(u32, crate::CsrSan)> = tl
            .snapshot_stream(2)
            .map(|(day, snap)| (day, (*snap).clone()))
            .collect();
        let mut visited = Vec::new();
        tl.for_each_snapshot(2, |day, snap| visited.push((day, snap.clone())));
        assert_eq!(visited, streamed);
    }

    #[test]
    fn stream_freeze_budget_is_one_per_sampled_day() {
        let tl = sample_timeline(); // days 0..=3
        let mut stream = tl.snapshot_stream(2);
        while stream.next().is_some() {}
        assert_eq!(stream.days_applied(), 4); // every day advanced once
        assert_eq!(stream.snapshots_taken(), 3); // only days 0, 2, 3 cloned
    }

    #[test]
    fn serde_roundtrip() {
        let tl = sample_timeline();
        let json = serde_json::to_string(&tl).unwrap();
        let back: SanTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back.events(), tl.events());
    }
}
