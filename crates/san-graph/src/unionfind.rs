//! Disjoint-set union (union-find) with path compression and union by size.
//!
//! Used by [`crate::traverse`] for weakly-connected-component extraction —
//! the paper's crawl targets the largest WCC of Google+ (§2.2).

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 2));
        assert!(!uf.union(1, 3), "already connected");
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.component_size(3), 4);
        assert!(uf.connected(0, 3));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, 99));
        assert_eq!(uf.component_size(50), 100);
    }

    #[test]
    fn empty_unionfind() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
    }
}
