//! Metered IO: byte counters and latency histograms for the snapshot
//! store and the serving layer.
//!
//! [`SnapshotVault`](crate::store::SnapshotVault) carries a
//! [`VaultMetrics`] that every persist/load path feeds — bytes moved and a
//! latency histogram per direction — and the `san-serve` snapshot server
//! embeds the same type for its mmap open/validate path, so capacity
//! planning reads one shape everywhere. Counters are relaxed atomics:
//! recording from many reader threads is wait-free and never perturbs the
//! operation being measured by more than a handful of uncontended atomic
//! adds.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Adds `delta` to a byte/nanosecond accumulator, saturating at
/// `u64::MAX` instead of wrapping — a meter that has been up for years
/// must degrade to "pinned at max", never to a small lie.
///
/// # ORDERING:
/// Relaxed on both the success and failure orderings: the accumulators
/// are independent monotonic counters with no cross-variable protocol —
/// exactness comes from the compare-exchange atomicity of
/// `fetch_update`, which no memory ordering strengthens or weakens.
fn saturating_fetch_add(counter: &AtomicU64, delta: u64) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(delta))
    });
}

/// Number of power-of-two latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds, so the histogram spans 1 ns to ~9 min.
pub const BUCKETS: usize = 40;

/// A fixed-size, lock-free latency histogram with power-of-two nanosecond
/// buckets.
///
/// Recording is one relaxed fetch-add per sample (plus count/sum
/// bookkeeping); quantile reads are approximate to within the bucket
/// resolution (a factor of two), which is plenty for "is a cache hit
/// sub-microsecond and a cold open tens of microseconds" questions.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let nanos = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = (nanos.max(1).ilog2() as usize).min(BUCKETS - 1);
        // ORDERING: relaxed fetch-adds — increments are exact by RMW
        // atomicity alone; no reader needs to observe bucket/count/sum as
        // a consistent triple. The bucket is bumped *before* the count so
        // a racing quantile scan never sees a rank its bucket walk can't
        // cover (tests/loom_meter.rs explores every interleaving).
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturates: ~585 years of summed nanoseconds pins at u64::MAX
        // rather than wrapping the mean back toward zero.
        saturating_fetch_add(&self.sum_nanos, nanos);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        // ORDERING: relaxed load of one monotonic counter; callers get
        // an at-least-this-many snapshot, never tearing.
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        // ORDERING: relaxed — sum and count are sampled independently;
        // mid-record skew moves the mean by at most one sample's weight.
        self.sum_nanos.load(Ordering::Relaxed) as f64 / count as f64
    }

    /// Approximate `q`-quantile in nanoseconds (the geometric midpoint of
    /// the bucket holding the quantile sample; 0 when empty).
    ///
    /// # Panics
    /// Panics when `q` is not in `[0, 1]`.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of [0, 1]: {q}");
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based, clamped into [1, count].
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            // ORDERING: relaxed — record() bumps a bucket before the
            // count, so the rank computed above is always covered by the
            // bucket mass this scan accumulates; no acquire needed.
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)): 2^i * 1.5.
                return (1u64 << i) + (1u64 << i) / 2;
            }
        }
        // Unreachable while count() sums the buckets, but stay total.
        (1u64 << (BUCKETS - 1)) + (1u64 << (BUCKETS - 1)) / 2
    }

    /// Approximate median in nanoseconds.
    pub fn median_nanos(&self) -> u64 {
        self.quantile_nanos(0.5)
    }

    /// A copy of the per-bucket sample counts (bucket `i` covers
    /// `[2^i, 2^(i+1))` nanoseconds).
    ///
    /// Each bucket is loaded once; concurrent `record()` calls may land
    /// between loads, so the copy is a per-bucket-exact, cross-bucket
    /// approximate view — the same guarantee `quantile_nanos` works from.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        // ORDERING: relaxed per-bucket loads — each bucket is an
        // independent monotonic counter; no cross-bucket protocol exists
        // to order against (see the record() invariant note).
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// A non-atomic copy of the whole histogram for consistent export.
    ///
    /// The snapshot's `count()` is defined as the sum of the copied
    /// buckets — not a separate load of the live count — so exporters
    /// that emit cumulative buckets plus a total (Prometheus `+Inf`)
    /// always ship an internally consistent triple even while recorders
    /// race the copy. `sum_nanos` is sampled after the buckets and may
    /// include samples the bucket copy missed; the skew is bounded by
    /// the samples recorded during the scan.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.buckets();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            // ORDERING: relaxed — independent monotonic accumulator,
            // same single-counter-snapshot argument as sum recording.
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A plain (non-atomic) copy of a [`LatencyHistogram`] taken by
/// [`LatencyHistogram::snapshot`]: internally consistent — `count()` is
/// exactly the sum of `buckets()` — and safe to hold across an export
/// pass while the live histogram keeps recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_nanos: u64,
}

impl HistogramSnapshot {
    /// Per-bucket sample counts; bucket `i` covers `[2^i, 2^(i+1))` ns.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Total samples in this snapshot (always `== buckets().sum()`).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Summed nanoseconds at snapshot time (saturating accumulator; may
    /// lead `count` by the samples recorded during the bucket scan).
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Inclusive upper bound of bucket `i` in nanoseconds: samples in
    /// bucket `i` are all `<= 2^(i+1) - 1` ns (the last bucket also
    /// absorbs clamped overflows, so exporters should publish it as
    /// unbounded).
    pub fn bucket_upper_nanos(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("mean_nanos", &self.mean_nanos())
            .field("p50_nanos", &self.quantile_nanos(0.5))
            .field("p99_nanos", &self.quantile_nanos(0.99))
            .field("p999_nanos", &self.quantile_nanos(0.999))
            .finish()
    }
}

/// IO meters for one vault (or one serving layer): bytes moved in each
/// direction plus a latency histogram per direction.
///
/// Lives next to
/// [`SnapshotVault::disk_bytes`](crate::store::SnapshotVault::disk_bytes):
/// `disk_bytes` answers "how much does the persisted timeline occupy",
/// `VaultMetrics` answers "how fast is it moving and how often". Reads
/// cover both the eager [`load_day`](crate::store::SnapshotVault::load_day)
/// path and the mmap [`map_day`](crate::store::SnapshotVault::map_day)
/// path (a mapped open is metered by its validated byte length — the pages
/// fault in lazily, but the validation pass touches every byte once).
#[derive(Debug, Default)]
pub struct VaultMetrics {
    read_bytes: AtomicU64,
    written_bytes: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    read_latency: LatencyHistogram,
    write_latency: LatencyHistogram,
    delta_chain_loads: AtomicU64,
    delta_links_applied: AtomicU64,
    max_chain_len: AtomicU64,
}

impl VaultMetrics {
    /// Fresh, zeroed meters.
    pub fn new() -> VaultMetrics {
        VaultMetrics::default()
    }

    /// Records one completed read (load or mmap open+validate).
    pub fn record_read(&self, bytes: u64, elapsed: Duration) {
        // ORDERING: relaxed — byte totals and op counts are independent
        // monotonic meters; nothing synchronizes on them. Byte totals
        // saturate (a busy vault can move > 2^64 bytes over its life).
        saturating_fetch_add(&self.read_bytes, bytes);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.read_latency.record(elapsed);
    }

    /// Records one completed write (persist).
    pub fn record_write(&self, bytes: u64, elapsed: Duration) {
        // ORDERING: relaxed — same argument as record_read.
        saturating_fetch_add(&self.written_bytes, bytes);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.write_latency.record(elapsed);
    }

    /// Total bytes read so far (saturating at `u64::MAX`).
    pub fn read_bytes(&self) -> u64 {
        // ORDERING: relaxed load of one monotonic counter — a
        // single-variable snapshot needs no inter-variable ordering.
        self.read_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes written so far (saturating at `u64::MAX`).
    pub fn written_bytes(&self) -> u64 {
        // ORDERING: relaxed; same single-counter-snapshot argument.
        self.written_bytes.load(Ordering::Relaxed)
    }

    /// Number of completed reads.
    pub fn reads(&self) -> u64 {
        // ORDERING: relaxed; same single-counter-snapshot argument.
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of completed writes.
    pub fn writes(&self) -> u64 {
        // ORDERING: relaxed; same single-counter-snapshot argument.
        self.writes.load(Ordering::Relaxed)
    }

    /// Records one delta-chain reconstruction: a full-day load plus
    /// `links` delta applications. Called *in addition to*
    /// [`record_read`](VaultMetrics::record_read) (which meters the
    /// combined bytes + latency), so chain loads remain visible among
    /// plain reads.
    pub fn record_chain(&self, links: u64) {
        // ORDERING: relaxed — independent monotonic meters, like every
        // other counter here; the max is a fetch_max RMW whose exactness
        // needs no inter-variable ordering.
        self.delta_chain_loads.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.delta_links_applied, links);
        self.max_chain_len.fetch_max(links, Ordering::Relaxed);
    }

    /// Number of delta-chain reconstructions (reads that resolved at
    /// least one delta day).
    pub fn delta_chain_loads(&self) -> u64 {
        // ORDERING: relaxed; same single-counter-snapshot argument.
        self.delta_chain_loads.load(Ordering::Relaxed)
    }

    /// Total delta days applied across all chain reconstructions
    /// (saturating at `u64::MAX`).
    pub fn delta_links_applied(&self) -> u64 {
        // ORDERING: relaxed; same single-counter-snapshot argument.
        self.delta_links_applied.load(Ordering::Relaxed)
    }

    /// Longest chain resolved so far (0 when no chain load has happened).
    pub fn max_chain_len(&self) -> u64 {
        // ORDERING: relaxed; same single-counter-snapshot argument.
        self.max_chain_len.load(Ordering::Relaxed)
    }

    /// Latency distribution of reads (load / open+validate).
    pub fn read_latency(&self) -> &LatencyHistogram {
        &self.read_latency
    }

    /// Latency distribution of writes (persist).
    pub fn write_latency(&self) -> &LatencyHistogram {
        &self.write_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = assert_send_sync::<VaultMetrics>();
    const _: () = assert_send_sync::<LatencyHistogram>();

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_nanos(), 0.0);
        assert_eq!(h.median_nanos(), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        // 9 samples at ~1 µs, 1 sample at ~1 ms.
        for _ in 0..9 {
            h.record(Duration::from_micros(1));
        }
        h.record(Duration::from_millis(1));
        assert_eq!(h.count(), 10);
        // Median lands in the 1 µs bucket [2^9, 2^10): midpoint 768 ns.
        let p50 = h.median_nanos();
        assert!((512..1024).contains(&p50), "p50 {p50}");
        // p99 / max land in the 1 ms bucket.
        let p99 = h.quantile_nanos(0.99);
        assert!((524_288..2_097_152).contains(&p99), "p99 {p99}");
        let mean = h.mean_nanos();
        assert!(mean > 900.0 && mean < 200_000.0, "mean {mean}");
        // Extremes are total.
        assert!(h.quantile_nanos(0.0) > 0);
        assert!(h.quantile_nanos(1.0) >= p99);
    }

    #[test]
    fn zero_duration_lands_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.median_nanos(), 1); // bucket 0 midpoint: 1 + 1/2 = 1
    }

    #[test]
    #[should_panic(expected = "quantile out of")]
    fn quantile_rejects_out_of_range() {
        LatencyHistogram::new().quantile_nanos(1.5);
    }

    /// Bucket `i` covers `[2^i, 2^(i+1))`: an exact power of two lands in
    /// its own bucket, one nanosecond less lands one bucket down.
    #[test]
    fn power_of_two_boundaries_split_buckets() {
        for i in 1..BUCKETS as u32 - 1 {
            let h = LatencyHistogram::new();
            h.record(Duration::from_nanos(1u64 << i));
            h.record(Duration::from_nanos((1u64 << i) - 1));
            // Midpoints of buckets i and i-1 are distinct, and the
            // median (rank 1 of 2) is the lower sample's bucket.
            assert_eq!(
                h.median_nanos(),
                (1u64 << (i - 1)) + (1u64 << (i - 1)) / 2,
                "i={i}"
            );
            assert_eq!(
                h.quantile_nanos(1.0),
                (1u64 << i) + (1u64 << i) / 2,
                "i={i}"
            );
        }
    }

    /// `Duration::MAX` clamps to `u64::MAX` nanoseconds and lands in the
    /// last bucket instead of indexing out of bounds.
    #[test]
    fn duration_max_clamps_into_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::MAX);
        assert_eq!(h.count(), 1);
        let top = (1u64 << (BUCKETS - 1)) + (1u64 << (BUCKETS - 1)) / 2;
        assert_eq!(h.median_nanos(), top);
        assert_eq!(h.quantile_nanos(1.0), top);
    }

    /// The nanosecond sum pins at `u64::MAX` instead of wrapping: the
    /// mean degrades to "huge", never to a small lie.
    #[test]
    fn sum_nanos_saturates_instead_of_wrapping() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(u64::MAX));
        h.record(Duration::from_nanos(u64::MAX));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean_nanos(), u64::MAX as f64 / 2.0);
    }

    /// Byte totals saturate too — and the op counters keep counting.
    #[test]
    fn vault_byte_counters_saturate() {
        let m = VaultMetrics::new();
        m.record_read(u64::MAX, Duration::from_nanos(1));
        m.record_read(u64::MAX, Duration::from_nanos(1));
        m.record_write(u64::MAX - 10, Duration::from_nanos(1));
        m.record_write(100, Duration::from_nanos(1));
        assert_eq!(m.read_bytes(), u64::MAX);
        assert_eq!(m.written_bytes(), u64::MAX);
        assert_eq!(m.reads(), 2);
        assert_eq!(m.writes(), 2);
    }

    #[test]
    fn vault_metrics_accumulate() {
        let m = VaultMetrics::new();
        m.record_write(100, Duration::from_micros(5));
        m.record_write(50, Duration::from_micros(5));
        m.record_read(100, Duration::from_micros(2));
        assert_eq!(m.written_bytes(), 150);
        assert_eq!(m.read_bytes(), 100);
        assert_eq!(m.writes(), 2);
        assert_eq!(m.reads(), 1);
        assert_eq!(m.write_latency().count(), 2);
        assert_eq!(m.read_latency().count(), 1);
    }

    /// `Debug` reports the tail the benches report: p999 alongside p99.
    #[test]
    fn debug_includes_p999() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(1));
        let dbg = format!("{h:?}");
        assert!(dbg.contains("p99_nanos"), "{dbg}");
        assert!(dbg.contains("p999_nanos"), "{dbg}");
    }

    /// `buckets()` mirrors where `record()` put each sample.
    #[test]
    fn buckets_accessor_matches_recorded_samples() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1)); // bucket 0
        h.record(Duration::from_nanos(6)); // bucket 2: [4, 8)
        h.record(Duration::from_nanos(7)); // bucket 2
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[2], 2);
        assert_eq!(b.iter().sum::<u64>(), 3);
    }

    /// A snapshot is internally consistent by construction: its count is
    /// the sum of its buckets, and its `+Inf`-style total never drifts
    /// from the bucket mass even with recorders racing the copy.
    #[test]
    fn snapshot_is_consistent_under_concurrent_recording() {
        let h = LatencyHistogram::new();
        let stop = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    // ORDERING: relaxed — test-local stop flag, no data
                    // is published through it.
                    while stop.load(Ordering::Relaxed) == 0 {
                        h.record(Duration::from_nanos(700));
                        h.record(Duration::from_micros(40));
                    }
                });
            }
            let mut last_count = 0u64;
            for _ in 0..200 {
                let snap = h.snapshot();
                assert_eq!(
                    snap.count(),
                    snap.buckets().iter().sum::<u64>(),
                    "snapshot count must equal its own bucket sum"
                );
                // Counts from successive snapshots are monotone. (The
                // live count may transiently trail the bucket sum —
                // record() bumps the bucket first — so only snapshots
                // are compared against snapshots here.)
                assert!(snap.count() >= last_count);
                last_count = snap.count();
            }
            stop.store(1, Ordering::Relaxed);
        });
        // Quiesced: snapshot and live views agree exactly, and repeated
        // snapshots are identical.
        let snap = h.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap, h.snapshot());
        assert_eq!(snap.buckets(), &h.buckets());
    }

    /// Bucket upper bounds are `2^(i+1) - 1`, with the last bucket
    /// unbounded (it absorbs clamped `Duration::MAX` samples).
    #[test]
    fn snapshot_bucket_upper_bounds() {
        assert_eq!(HistogramSnapshot::bucket_upper_nanos(0), 1);
        assert_eq!(HistogramSnapshot::bucket_upper_nanos(1), 3);
        assert_eq!(HistogramSnapshot::bucket_upper_nanos(9), 1023);
        assert_eq!(HistogramSnapshot::bucket_upper_nanos(BUCKETS - 1), u64::MAX);
        assert_eq!(HistogramSnapshot::bucket_upper_nanos(BUCKETS + 5), u64::MAX);
    }

    #[test]
    fn concurrent_recording_is_exact_on_counters() {
        let m = VaultMetrics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        m.record_read(3, Duration::from_nanos(100));
                    }
                });
            }
        });
        assert_eq!(m.reads(), 4000);
        assert_eq!(m.read_bytes(), 12_000);
        assert_eq!(m.read_latency().count(), 4000);
    }
}
