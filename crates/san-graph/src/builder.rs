//! Out-of-order batch construction of [`San`] structures.
//!
//! [`San`]'s mutation API requires endpoints to exist before links are added
//! and assigns ids densely. When loading edge lists from disk (or writing
//! tests by hand) it is more convenient to name nodes up front and add links
//! in any order; [`SanBuilder`] buffers everything, validates, and produces
//! the final structure.

use crate::ids::{AttrId, AttrType, SocialId};
use crate::san::San;
use std::fmt;

/// Errors reported by [`SanBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A social link references a node id that was never declared.
    UnknownSocialNode(u32),
    /// An attribute link references an attribute id that was never declared.
    UnknownAttrNode(u32),
    /// A social link is a self-loop.
    SelfLoop(u32),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownSocialNode(id) => write!(f, "unknown social node u{id}"),
            BuildError::UnknownAttrNode(id) => write!(f, "unknown attribute node a{id}"),
            BuildError::SelfLoop(id) => write!(f, "self-loop at u{id}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Buffered SAN constructor.
///
/// Duplicate links are silently deduplicated (the multiset semantics of raw
/// crawl data collapse to simple-graph semantics, as in the paper).
#[derive(Debug, Clone, Default)]
pub struct SanBuilder {
    num_social: u32,
    attr_types: Vec<AttrType>,
    social_links: Vec<(u32, u32)>,
    attr_links: Vec<(u32, u32)>,
}

impl SanBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SanBuilder::default()
    }

    /// Declares `n` social nodes (ids `0..n`); returns the builder for
    /// chaining. Calling repeatedly *extends* the node range.
    pub fn social_nodes(&mut self, n: u32) -> &mut Self {
        self.num_social += n;
        self
    }

    /// Declares an attribute node and returns its id.
    pub fn attr_node(&mut self, ty: AttrType) -> AttrId {
        let id = AttrId(self.attr_types.len() as u32);
        self.attr_types.push(ty);
        id
    }

    /// Buffers a directed social link `src → dst`.
    pub fn social_link(&mut self, src: u32, dst: u32) -> &mut Self {
        self.social_links.push((src, dst));
        self
    }

    /// Buffers an undirected attribute link.
    pub fn attr_link(&mut self, user: u32, attr: u32) -> &mut Self {
        self.attr_links.push((user, attr));
        self
    }

    /// Validates and produces the [`San`].
    pub fn build(&self) -> Result<San, BuildError> {
        let mut san = San::with_capacity(self.num_social as usize, self.attr_types.len());
        for _ in 0..self.num_social {
            san.add_social_node();
        }
        for &ty in &self.attr_types {
            san.add_attr_node(ty);
        }
        for &(src, dst) in &self.social_links {
            if src >= self.num_social {
                return Err(BuildError::UnknownSocialNode(src));
            }
            if dst >= self.num_social {
                return Err(BuildError::UnknownSocialNode(dst));
            }
            if src == dst {
                return Err(BuildError::SelfLoop(src));
            }
            san.add_social_link(SocialId(src), SocialId(dst));
        }
        for &(user, attr) in &self.attr_links {
            if user >= self.num_social {
                return Err(BuildError::UnknownSocialNode(user));
            }
            if attr as usize >= self.attr_types.len() {
                return Err(BuildError::UnknownAttrNode(attr));
            }
            san.add_attr_link(SocialId(user), AttrId(attr));
        }
        Ok(san)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_small_network() {
        let mut b = SanBuilder::new();
        b.social_nodes(3);
        let a0 = b.attr_node(AttrType::School);
        b.social_link(0, 1).social_link(1, 2).attr_link(0, a0.0);
        let san = b.build().unwrap();
        assert_eq!(san.num_social_nodes(), 3);
        assert_eq!(san.num_attr_nodes(), 1);
        assert_eq!(san.num_social_links(), 2);
        assert_eq!(san.num_attr_links(), 1);
        san.check_consistency().unwrap();
    }

    #[test]
    fn deduplicates_links() {
        let mut b = SanBuilder::new();
        b.social_nodes(2);
        b.social_link(0, 1).social_link(0, 1).social_link(0, 1);
        let san = b.build().unwrap();
        assert_eq!(san.num_social_links(), 1);
    }

    #[test]
    fn rejects_unknown_endpoints() {
        let mut b = SanBuilder::new();
        b.social_nodes(2);
        b.social_link(0, 5);
        assert_eq!(b.build().unwrap_err(), BuildError::UnknownSocialNode(5));

        let mut b = SanBuilder::new();
        b.social_nodes(2);
        b.attr_link(0, 0);
        assert_eq!(b.build().unwrap_err(), BuildError::UnknownAttrNode(0));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = SanBuilder::new();
        b.social_nodes(2);
        b.social_link(1, 1);
        assert_eq!(b.build().unwrap_err(), BuildError::SelfLoop(1));
    }

    #[test]
    fn social_nodes_extends() {
        let mut b = SanBuilder::new();
        b.social_nodes(2).social_nodes(3);
        let san = b.build().unwrap();
        assert_eq!(san.num_social_nodes(), 5);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            BuildError::UnknownSocialNode(3).to_string(),
            "unknown social node u3"
        );
        assert_eq!(BuildError::SelfLoop(1).to_string(), "self-loop at u1");
        assert_eq!(
            BuildError::UnknownAttrNode(2).to_string(),
            "unknown attribute node a2"
        );
    }
}
