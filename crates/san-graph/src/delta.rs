//! Incremental delta-freeze: patch yesterday's [`CsrSan`] with one day's
//! events instead of replaying the whole timeline.
//!
//! [`SanTimeline::snapshot_csr`](crate::evolve::SanTimeline::snapshot_csr)
//! replays the event log from day 0 and re-freezes from scratch, so a full
//! sweep over all days costs O(days × E) replay work plus one O(E log d)
//! sort-freeze per day — quadratic in practice. [`DeltaFreezer`] keeps the
//! current day's frozen snapshot and *patches* it: a day with `k` new
//! events costs one merge pass over the flat CSR arrays (a bulk copy of
//! untouched rows plus a sorted merge of the `k` additions), and a day
//! with no events costs nothing at all. Rows are never re-sorted — the old
//! row is already sorted and the additions are merged in order — so the
//! product is field-for-field identical to a from-scratch freeze (the
//! `delta_equivalence` property suite pins this down).
//!
//! Two internal buffers are double-buffered (`cur`/`scratch`) so steady
//! state allocates nothing once row capacity has been reached; the current
//! day additionally sits behind an [`Arc`], so
//! [`DeltaFreezer::snapshot`] hands consumers a shared view without any
//! flat-array clone, and the double-buffer is reclaimed whenever the
//! handed-out day has been dropped by the time the next day is applied.
//!
//! Prefer the timeline conveniences
//! [`SanTimeline::snapshot_stream`](crate::evolve::SanTimeline::snapshot_stream)
//! and
//! [`SanTimeline::for_each_snapshot`](crate::evolve::SanTimeline::for_each_snapshot)
//! over driving a `DeltaFreezer` by hand.

use crate::csr::CsrSan;
use crate::evolve::SanEvent;
use crate::ids::{AttrId, AttrType, SocialId};
use std::collections::HashSet;
use std::sync::Arc;

/// Builds the frozen snapshot of every day by patching the previous day's
/// [`CsrSan`] with that day's events.
///
/// Feed it one day at a time through [`DeltaFreezer::apply_day`]; read the
/// current frozen state with [`DeltaFreezer::current`] or take a shared
/// handle with [`DeltaFreezer::snapshot`].
///
/// The current day lives behind an [`Arc`], so handing a snapshot to
/// consumers (worker threads, sharded views) is **allocation-free** — one
/// atomic increment, no flat-array clone. As long as no handed-out `Arc`
/// outlives the next [`apply_day`](DeltaFreezer::apply_day) (the
/// sequential-sweep case), the freezer reclaims the buffers and steady
/// state allocates nothing; when a consumer still holds the day (the
/// parallel hand-off case), the next patch simply builds into fresh
/// buffers instead — paying the old clone cost only when sharing actually
/// happens.
///
/// Event semantics mirror replay through [`San`](crate::San) exactly:
/// self-loops and duplicate links (within the day or against earlier days)
/// are ignored, and links to unknown endpoints panic.
#[derive(Debug, Clone, Default)]
pub struct DeltaFreezer {
    cur: Arc<CsrSan>,
    scratch: CsrSan,
    // Per-day scratch state, cleared on every apply_day.
    out_add: Vec<(u32, SocialId)>,
    in_add: Vec<(u32, SocialId)>,
    ua_add: Vec<(u32, AttrId)>,
    am_add: Vec<(u32, SocialId)>,
    und_add: Vec<(u32, SocialId)>,
    attr_type_add: Vec<AttrType>,
    pending_social: HashSet<(u32, u32)>,
    pending_und: HashSet<(u32, u32)>,
    pending_attr: HashSet<(u32, u32)>,
    days_applied: u64,
    snapshots_taken: u64,
}

impl Default for CsrSan {
    /// The frozen form of an empty SAN (what `San::new().freeze()` yields).
    fn default() -> CsrSan {
        CsrSan {
            out_off: vec![0],
            out_dst: Vec::new(),
            in_off: vec![0],
            in_src: Vec::new(),
            ua_off: vec![0],
            ua_attr: Vec::new(),
            am_off: vec![0],
            am_user: Vec::new(),
            und_off: vec![0],
            und_nbr: Vec::new(),
            attr_types: Vec::new(),
            num_social_links: 0,
            num_attr_links: 0,
        }
    }
}

/// Merges one CSR with sorted per-row additions into `(new_off, new_data)`.
///
/// `adds` must be sorted by `(row, value)` and contain no value already
/// present in its row (the caller deduplicates); rows past the end of
/// `old_off` are new and start empty. Crate-visible: the v2 delta-day
/// loader in `store` reconstructs snapshots through this exact merge, so
/// persisted deltas patch bit-identically to live ones. Callers feeding it
/// untrusted add-lists must pre-validate sortedness, row bounds, and the
/// `u32::MAX` data-length cap — the asserts here are for trusted inputs.
pub(crate) fn patch_csr_into<T: Copy + Ord>(
    old_off: &[u32],
    old_data: &[T],
    new_rows: usize,
    adds: &[(u32, T)],
    new_off: &mut Vec<u32>,
    new_data: &mut Vec<T>,
) {
    new_off.clear();
    new_data.clear();
    new_off.reserve(new_rows + 1);
    new_data.reserve(old_data.len() + adds.len());
    new_off.push(0u32);
    let old_rows = old_off.len() - 1;
    let mut ai = 0usize;
    for i in 0..new_rows {
        let old_row: &[T] = if i < old_rows {
            &old_data[old_off[i] as usize..old_off[i + 1] as usize]
        } else {
            &[]
        };
        let row_start = ai;
        while ai < adds.len() && adds[ai].0 as usize == i {
            ai += 1;
        }
        let row_adds = &adds[row_start..ai];
        if row_adds.is_empty() {
            new_data.extend_from_slice(old_row);
        } else {
            let (mut a, mut b) = (0usize, 0usize);
            while a < old_row.len() && b < row_adds.len() {
                if old_row[a] <= row_adds[b].1 {
                    new_data.push(old_row[a]);
                    a += 1;
                } else {
                    new_data.push(row_adds[b].1);
                    b += 1;
                }
            }
            new_data.extend_from_slice(&old_row[a..]);
            new_data.extend(row_adds[b..].iter().map(|&(_, v)| v));
        }
        assert!(
            new_data.len() <= u32::MAX as usize,
            "CSR offsets overflow u32 (more than 4.29e9 links)"
        );
        new_off.push(new_data.len() as u32);
    }
    debug_assert_eq!(ai, adds.len(), "addition for a row beyond new_rows");
}

/// True when `val` is in the (sorted) row `i` of a CSR, treating rows past
/// the end as empty.
#[inline]
fn csr_row_contains<T: Copy + Ord>(off: &[u32], data: &[T], i: usize, val: T) -> bool {
    if i + 1 >= off.len() {
        return false;
    }
    data[off[i] as usize..off[i + 1] as usize]
        .binary_search(&val)
        .is_ok()
}

impl DeltaFreezer {
    /// A freezer at the state before day 0: the empty network.
    pub fn new() -> DeltaFreezer {
        DeltaFreezer::default()
    }

    /// Resumes from an existing frozen snapshot (e.g. one loaded from
    /// disk); subsequent [`apply_day`](DeltaFreezer::apply_day) calls patch
    /// forward from it.
    pub fn from_snapshot(csr: CsrSan) -> DeltaFreezer {
        DeltaFreezer::from_shared(Arc::new(csr))
    }

    /// Like [`from_snapshot`](DeltaFreezer::from_snapshot) but adopts an
    /// already-shared handle (what
    /// [`SnapshotVault::load_day`](crate::store::SnapshotVault::load_day)
    /// returns) without cloning the flat arrays.
    pub fn from_shared(csr: Arc<CsrSan>) -> DeltaFreezer {
        DeltaFreezer {
            cur: csr,
            ..DeltaFreezer::default()
        }
    }

    /// Warm-starts a freezer from the nearest vault day at or before
    /// `day`: returns the persisted day it loaded plus the freezer seeded
    /// with that snapshot, or `Ok(None)` when the vault holds nothing at
    /// or before `day` (the caller must replay from day 0). Subsequent
    /// [`apply_day`](DeltaFreezer::apply_day) calls patch forward from the
    /// loaded state, so a sweep over `[day, end]` costs only the events
    /// after the persisted day. Prefer the timeline-level
    /// [`SanTimeline::resume_from_vault`](crate::evolve::SanTimeline::resume_from_vault),
    /// which also slices the event log.
    pub fn resume_from_vault(
        vault: &crate::store::SnapshotVault,
        day: u32,
    ) -> Result<Option<(u32, DeltaFreezer)>, crate::store::StoreError> {
        match vault.nearest_at_or_before(day) {
            None => Ok(None),
            Some(persisted) => {
                let snap = vault.load_day(persisted)?;
                Ok(Some((persisted, DeltaFreezer::from_shared(snap))))
            }
        }
    }

    /// The frozen end-of-day state after everything applied so far.
    #[inline]
    pub fn current(&self) -> &CsrSan {
        &self.cur
    }

    /// A shared handle to the current frozen state — one atomic increment,
    /// no flat-array clone (the Arc-shared day hand-off).
    pub fn snapshot(&mut self) -> Arc<CsrSan> {
        self.snapshots_taken += 1;
        Arc::clone(&self.cur)
    }

    /// Days fed through [`apply_day`](DeltaFreezer::apply_day) so far.
    pub fn days_applied(&self) -> u64 {
        self.days_applied
    }

    /// Shared snapshots handed out by [`snapshot`](DeltaFreezer::snapshot) —
    /// the "how many hand-offs did this sweep actually pay for" counter the
    /// regression tests assert on.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// Applies one day's events (all of them, in log order) to the current
    /// snapshot. Days with no events are free.
    ///
    /// # Panics
    /// Panics when an event references a node that does not exist yet, the
    /// same contract as replaying through [`San`](crate::San).
    pub fn apply_day(&mut self, events: &[SanEvent]) {
        self.days_applied += 1;
        if events.is_empty() {
            return;
        }
        let mut n = self.cur.num_social_rows();
        let mut m = self.cur.attr_types.len();
        self.out_add.clear();
        self.in_add.clear();
        self.ua_add.clear();
        self.am_add.clear();
        self.und_add.clear();
        self.pending_social.clear();
        self.pending_und.clear();
        self.pending_attr.clear();
        self.attr_type_add.clear();
        let mut social_links = self.cur.num_social_links;
        let mut attr_links = self.cur.num_attr_links;
        for ev in events {
            match *ev {
                SanEvent::SocialNode { .. } => n += 1,
                SanEvent::AttrNode { ty, .. } => {
                    self.attr_type_add.push(ty);
                    m += 1;
                }
                SanEvent::SocialLink { src, dst, .. } => {
                    assert!(src.index() < n, "unknown source {src}");
                    assert!(dst.index() < n, "unknown destination {dst}");
                    if src == dst || self.has_social_link(src, dst) {
                        continue;
                    }
                    self.pending_social.insert((src.0, dst.0));
                    self.out_add.push((src.0, dst));
                    self.in_add.push((dst.0, src));
                    social_links += 1;
                    for (a, b) in [(src, dst), (dst, src)] {
                        if !self.has_und_neighbor(a, b) {
                            self.pending_und.insert((a.0, b.0));
                            self.und_add.push((a.0, b));
                        }
                    }
                }
                SanEvent::AttrLink { user, attr, .. } => {
                    assert!(user.index() < n, "unknown user {user}");
                    assert!(attr.index() < m, "unknown attr {attr}");
                    if self.has_attr_link(user, attr) {
                        continue;
                    }
                    self.pending_attr.insert((user.0, attr.0));
                    self.ua_add.push((user.0, attr));
                    self.am_add.push((attr.0, user));
                    attr_links += 1;
                }
            }
        }
        self.out_add.sort_unstable();
        self.in_add.sort_unstable();
        self.ua_add.sort_unstable();
        self.am_add.sort_unstable();
        self.und_add.sort_unstable();
        // Patch every CSR from `cur` into `scratch`, then publish. Untouched
        // structures still need their offset tables re-extended when rows
        // were added, so each of the five goes through the same path.
        let (cur, s) = (&*self.cur, &mut self.scratch);
        patch_csr_into(
            &cur.out_off,
            &cur.out_dst,
            n,
            &self.out_add,
            &mut s.out_off,
            &mut s.out_dst,
        );
        patch_csr_into(
            &cur.in_off,
            &cur.in_src,
            n,
            &self.in_add,
            &mut s.in_off,
            &mut s.in_src,
        );
        patch_csr_into(
            &cur.ua_off,
            &cur.ua_attr,
            n,
            &self.ua_add,
            &mut s.ua_off,
            &mut s.ua_attr,
        );
        patch_csr_into(
            &cur.am_off,
            &cur.am_user,
            m,
            &self.am_add,
            &mut s.am_off,
            &mut s.am_user,
        );
        patch_csr_into(
            &cur.und_off,
            &cur.und_nbr,
            n,
            &self.und_add,
            &mut s.und_off,
            &mut s.und_nbr,
        );
        s.attr_types.clear();
        s.attr_types.extend_from_slice(&cur.attr_types);
        s.attr_types.extend_from_slice(&self.attr_type_add);
        s.num_social_links = social_links;
        s.num_attr_links = attr_links;
        // Publish the new day. If nobody kept yesterday's Arc, reclaim its
        // buffers as the next scratch (steady state: zero allocations, the
        // old double-buffer behaviour); if a consumer still holds it, fall
        // back to a fresh scratch — the only case that ever pays a new
        // allocation, and exactly the case the old clone-per-day always
        // paid for.
        let next = Arc::new(std::mem::take(&mut self.scratch));
        let prev = std::mem::replace(&mut self.cur, next);
        self.scratch = Arc::try_unwrap(prev).unwrap_or_default();
    }

    /// Link membership against current snapshot + this day's pending adds.
    fn has_social_link(&self, src: SocialId, dst: SocialId) -> bool {
        self.pending_social.contains(&(src.0, dst.0))
            || csr_row_contains(&self.cur.out_off, &self.cur.out_dst, src.index(), dst)
    }

    fn has_und_neighbor(&self, u: SocialId, v: SocialId) -> bool {
        self.pending_und.contains(&(u.0, v.0))
            || csr_row_contains(&self.cur.und_off, &self.cur.und_nbr, u.index(), v)
    }

    fn has_attr_link(&self, user: SocialId, attr: AttrId) -> bool {
        self.pending_attr.contains(&(user.0, attr.0))
            || csr_row_contains(&self.cur.ua_off, &self.cur.ua_attr, user.index(), attr)
    }
}

impl CsrSan {
    /// Social-node row count straight off the offset table (avoids the
    /// trait import in crate-internal code).
    #[inline]
    pub(crate) fn num_social_rows(&self) -> usize {
        self.out_off.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::TimelineBuilder;
    use crate::read::SanRead;
    use crate::san::San;

    #[test]
    fn default_matches_empty_freeze() {
        assert_eq!(CsrSan::default(), San::new().freeze());
        assert_eq!(DeltaFreezer::new().current(), &San::new().freeze());
    }

    #[test]
    fn patches_match_replay_on_small_timeline() {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        let a0 = tb.add_attr_node(AttrType::City);
        tb.add_social_link(u0, u1);
        tb.advance_to_day(1);
        let u2 = tb.add_social_node();
        tb.add_social_link(u2, u0);
        tb.add_social_link(u1, u0); // makes u0<->u1 reciprocal
        tb.add_attr_link(u2, a0);
        tb.advance_to_day(4);
        tb.add_social_link(u1, u2);
        let (tl, _) = tb.finish();
        let mut fz = DeltaFreezer::new();
        let events = tl.events();
        let mut idx = 0;
        for day in 0..=tl.max_day().unwrap() {
            let start = idx;
            while idx < events.len() && events[idx].day() == day {
                idx += 1;
            }
            fz.apply_day(&events[start..idx]);
            assert_eq!(fz.current(), &tl.snapshot_csr(day), "day {day}");
        }
        assert_eq!(fz.days_applied(), 5);
    }

    #[test]
    fn duplicate_and_self_loop_events_ignored_like_replay() {
        // Hand-built log a TimelineBuilder would never record: duplicate
        // links (same day and across days) and a self-loop.
        let events = vec![
            SanEvent::SocialNode { day: 0 },
            SanEvent::SocialNode { day: 0 },
            SanEvent::SocialLink {
                day: 0,
                src: SocialId(0),
                dst: SocialId(1),
            },
            SanEvent::SocialLink {
                day: 0,
                src: SocialId(0),
                dst: SocialId(1),
            },
            SanEvent::SocialLink {
                day: 0,
                src: SocialId(1),
                dst: SocialId(1),
            },
            SanEvent::AttrNode {
                day: 1,
                ty: AttrType::School,
            },
            SanEvent::AttrLink {
                day: 1,
                user: SocialId(0),
                attr: AttrId(0),
            },
            SanEvent::AttrLink {
                day: 1,
                user: SocialId(0),
                attr: AttrId(0),
            },
            SanEvent::SocialLink {
                day: 2,
                src: SocialId(0),
                dst: SocialId(1),
            },
        ];
        let tl = crate::evolve::SanTimeline::from_events(events);
        let mut fz = DeltaFreezer::new();
        let evs = tl.events();
        let mut idx = 0;
        for day in 0..=2 {
            let start = idx;
            while idx < evs.len() && evs[idx].day() == day {
                idx += 1;
            }
            fz.apply_day(&evs[start..idx]);
            let expect = tl.snapshot_csr(day);
            assert_eq!(fz.current(), &expect, "day {day}");
        }
        assert_eq!(SanRead::num_social_links(fz.current()), 1);
        assert_eq!(SanRead::num_attr_links(fz.current()), 1);
    }

    #[test]
    #[should_panic(expected = "unknown destination")]
    fn unknown_endpoint_panics_like_replay() {
        let mut fz = DeltaFreezer::new();
        fz.apply_day(&[
            SanEvent::SocialNode { day: 0 },
            SanEvent::SocialLink {
                day: 0,
                src: SocialId(0),
                dst: SocialId(9),
            },
        ]);
    }

    #[test]
    fn empty_day_is_noop() {
        let mut fz = DeltaFreezer::new();
        fz.apply_day(&[SanEvent::SocialNode { day: 0 }]);
        let before = fz.current().clone();
        fz.apply_day(&[]);
        assert_eq!(fz.current(), &before);
        assert_eq!(fz.days_applied(), 2);
    }

    #[test]
    fn snapshot_counter_tracks_clones() {
        let mut fz = DeltaFreezer::new();
        fz.apply_day(&[SanEvent::SocialNode { day: 0 }]);
        assert_eq!(fz.snapshots_taken(), 0);
        let _a = fz.snapshot();
        let _b = fz.snapshot();
        assert_eq!(fz.snapshots_taken(), 2);
    }

    #[test]
    fn from_snapshot_resumes_mid_timeline() {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        tb.add_social_link(u0, u1);
        tb.advance_to_day(1);
        let u2 = tb.add_social_node();
        tb.add_social_link(u1, u2);
        let (tl, _) = tb.finish();
        let mid = tl.snapshot_csr(0);
        let mut fz = DeltaFreezer::from_snapshot(mid);
        let day1: Vec<SanEvent> = tl
            .events()
            .iter()
            .copied()
            .filter(|e| e.day() == 1)
            .collect();
        fz.apply_day(&day1);
        assert_eq!(fz.current(), &tl.snapshot_csr(1));
    }
}
