//! [`SanRead`]: the read-only view every analytic is written against.
//!
//! The paper's pipeline is write-once, read-many: the crawler/timeline
//! builds 79 daily snapshots (§2.2), after which every measurement in
//! §3–§6 only *reads* them. This trait captures exactly the read surface —
//! node/link counts, the `Γs,out/Γs,in/Γs/Γa` neighbourhoods of §2.1,
//! membership tests, and attribute types — so the same metric code runs
//! against the mutable [`San`](crate::San) adjacency lists *and* the
//! frozen, cache-friendly [`CsrSan`](crate::CsrSan) snapshots.
//!
//! Only the nine accessor methods are required; everything else has a
//! default implementation in terms of them. Implementations with better
//! representations (sorted CSR rows, precomputed unions) override the
//! defaults — see [`CsrSan`](crate::CsrSan).
//!
//! Implementations may also narrow the *iteration* surface to a node
//! range: [`CsrShard`](crate::shard::CsrShard) overrides
//! [`SanRead::social_nodes`] / [`SanRead::social_links`] /
//! [`SanRead::attr_nodes`] / [`SanRead::attr_links`] (and the two link
//! counters) to cover only the shard it owns, while every query *by id*
//! still sees the whole snapshot. Per-node sweeps written against this
//! trait then decompose across shards for free: run the sweep on each
//! shard, merge the partials.

use crate::ids::{AttrId, AttrType, SocialId};
use std::borrow::Cow;
use std::collections::HashSet;

/// Read-only access to a Social-Attribute Network.
pub trait SanRead {
    // ------------------------------------------------------------------
    // Required accessors
    // ------------------------------------------------------------------

    /// Number of social nodes `|Vs|`.
    fn num_social_nodes(&self) -> usize;

    /// Number of attribute nodes `|Va|`.
    fn num_attr_nodes(&self) -> usize;

    /// Number of directed social links `|Es|`.
    fn num_social_links(&self) -> usize;

    /// Number of undirected attribute links `|Ea|`.
    fn num_attr_links(&self) -> usize;

    /// `Γs,out(u)` — outgoing social neighbours.
    fn out_neighbors(&self, u: SocialId) -> &[SocialId];

    /// `Γs,in(u)` — incoming social neighbours.
    fn in_neighbors(&self, u: SocialId) -> &[SocialId];

    /// `Γa(u)` — attribute neighbours of a social node.
    fn attrs_of(&self, u: SocialId) -> &[AttrId];

    /// Social members of an attribute node.
    fn members_of(&self, a: AttrId) -> &[SocialId];

    /// Type of an attribute node.
    fn attr_type(&self, a: AttrId) -> AttrType;

    // ------------------------------------------------------------------
    // Degrees
    // ------------------------------------------------------------------

    /// Out-degree of a social node.
    #[inline]
    fn out_degree(&self, u: SocialId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of a social node.
    #[inline]
    fn in_degree(&self, u: SocialId) -> usize {
        self.in_neighbors(u).len()
    }

    /// Attribute degree of a social node (`|Γa(u)|`).
    #[inline]
    fn attr_degree(&self, u: SocialId) -> usize {
        self.attrs_of(u).len()
    }

    /// Social degree of an attribute node (number of members).
    #[inline]
    fn social_degree_of_attr(&self, a: AttrId) -> usize {
        self.members_of(a).len()
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// True when the directed link `src → dst` exists.
    ///
    /// The default scans the shorter of `Γs,out(src)` and `Γs,in(dst)`;
    /// sorted representations override with binary search.
    fn has_social_link(&self, src: SocialId, dst: SocialId) -> bool {
        let out = self.out_neighbors(src);
        let inc = self.in_neighbors(dst);
        if out.len() <= inc.len() {
            out.contains(&dst)
        } else {
            inc.contains(&src)
        }
    }

    /// True when the attribute link `user — attr` exists.
    fn has_attr_link(&self, user: SocialId, attr: AttrId) -> bool {
        let ua = self.attrs_of(user);
        let am = self.members_of(attr);
        if ua.len() <= am.len() {
            ua.contains(&attr)
        } else {
            am.contains(&user)
        }
    }

    // ------------------------------------------------------------------
    // Combined neighbourhoods
    // ------------------------------------------------------------------

    /// `Γs(u)` — the undirected social neighbourhood (union of in- and
    /// out-neighbours), sorted and deduplicated.
    ///
    /// Returned as [`Cow`] so representations that precompute the union
    /// (e.g. [`CsrSan`](crate::CsrSan)) can hand out a borrowed slice with
    /// zero allocation, while the default materialises it on demand.
    fn social_neighbors(&self, u: SocialId) -> Cow<'_, [SocialId]> {
        let mut v: Vec<SocialId> = self
            .out_neighbors(u)
            .iter()
            .chain(self.in_neighbors(u))
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        Cow::Owned(v)
    }

    /// Number of common attributes `a(u, v)` shared by two social nodes —
    /// the attribute-affinity term of the LAPA/PAPA attachment models
    /// (§5.1).
    fn common_attrs(&self, u: SocialId, v: SocialId) -> usize {
        let (small, large) = if self.attr_degree(u) <= self.attr_degree(v) {
            (self.attrs_of(u), self.attrs_of(v))
        } else {
            (self.attrs_of(v), self.attrs_of(u))
        };
        if large.len() <= 8 {
            // Tiny lists: quadratic scan beats hashing.
            return small.iter().filter(|a| large.contains(a)).count();
        }
        let set: HashSet<AttrId> = large.iter().copied().collect();
        small.iter().filter(|a| set.contains(a)).count()
    }

    /// Number of common *undirected* social neighbours of two social nodes
    /// (the fine-grained reciprocity feature, §4.2).
    fn common_social_neighbors(&self, u: SocialId, v: SocialId) -> usize {
        let nu = self.social_neighbors(u);
        let nv = self.social_neighbors(v);
        let (small, large) = if nu.len() <= nv.len() {
            (&nu, &nv)
        } else {
            (&nv, &nu)
        };
        let set: HashSet<SocialId> = large.iter().copied().collect();
        small
            .iter()
            .filter(|w| **w != u && **w != v && set.contains(w))
            .count()
    }

    // ------------------------------------------------------------------
    // Iteration
    // ------------------------------------------------------------------

    /// Iterates over all social node ids.
    fn social_nodes(&self) -> impl Iterator<Item = SocialId> + '_ {
        (0..self.num_social_nodes() as u32).map(SocialId)
    }

    /// Iterates over all attribute node ids.
    fn attr_nodes(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.num_attr_nodes() as u32).map(AttrId)
    }

    /// Iterates over all directed social links `(src, dst)`.
    fn social_links(&self) -> impl Iterator<Item = (SocialId, SocialId)> + '_ {
        (0..self.num_social_nodes() as u32).flat_map(move |u| {
            let u = SocialId(u);
            self.out_neighbors(u).iter().map(move |&v| (u, v))
        })
    }

    /// Iterates over all attribute links `(user, attr)`.
    fn attr_links(&self) -> impl Iterator<Item = (SocialId, AttrId)> + '_ {
        (0..self.num_social_nodes() as u32).flat_map(move |u| {
            let u = SocialId(u);
            self.attrs_of(u).iter().map(move |&a| (u, a))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1;
    use crate::san::San;

    /// A minimal hand-rolled implementation exercising every default.
    struct Tiny {
        out: Vec<Vec<SocialId>>,
        inc: Vec<Vec<SocialId>>,
        ua: Vec<Vec<AttrId>>,
        am: Vec<Vec<SocialId>>,
        types: Vec<AttrType>,
    }

    impl SanRead for Tiny {
        fn num_social_nodes(&self) -> usize {
            self.out.len()
        }
        fn num_attr_nodes(&self) -> usize {
            self.am.len()
        }
        fn num_social_links(&self) -> usize {
            self.out.iter().map(Vec::len).sum()
        }
        fn num_attr_links(&self) -> usize {
            self.ua.iter().map(Vec::len).sum()
        }
        fn out_neighbors(&self, u: SocialId) -> &[SocialId] {
            &self.out[u.index()]
        }
        fn in_neighbors(&self, u: SocialId) -> &[SocialId] {
            &self.inc[u.index()]
        }
        fn attrs_of(&self, u: SocialId) -> &[AttrId] {
            &self.ua[u.index()]
        }
        fn members_of(&self, a: AttrId) -> &[SocialId] {
            &self.am[a.index()]
        }
        fn attr_type(&self, a: AttrId) -> AttrType {
            self.types[a.index()]
        }
    }

    fn tiny() -> Tiny {
        // u0 -> u1, u1 -> u0, u0 -> u2; attrs: a0 {u0, u1}, a1 {u1}.
        Tiny {
            out: vec![vec![SocialId(1), SocialId(2)], vec![SocialId(0)], vec![]],
            inc: vec![vec![SocialId(1)], vec![SocialId(0)], vec![SocialId(0)]],
            ua: vec![vec![AttrId(0)], vec![AttrId(0), AttrId(1)], vec![]],
            am: vec![vec![SocialId(0), SocialId(1)], vec![SocialId(1)]],
            types: vec![AttrType::Employer, AttrType::City],
        }
    }

    #[test]
    fn defaults_compute_from_required_methods() {
        let g = tiny();
        assert_eq!(g.out_degree(SocialId(0)), 2);
        assert_eq!(g.in_degree(SocialId(2)), 1);
        assert_eq!(g.attr_degree(SocialId(1)), 2);
        assert_eq!(g.social_degree_of_attr(AttrId(0)), 2);
        assert!(g.has_social_link(SocialId(0), SocialId(1)));
        assert!(!g.has_social_link(SocialId(2), SocialId(0)));
        assert!(g.has_attr_link(SocialId(1), AttrId(1)));
        assert!(!g.has_attr_link(SocialId(2), AttrId(0)));
        assert_eq!(
            g.social_neighbors(SocialId(0)).as_ref(),
            &[SocialId(1), SocialId(2)]
        );
        assert_eq!(g.common_attrs(SocialId(0), SocialId(1)), 1);
        assert_eq!(g.social_links().count(), 3);
        assert_eq!(g.attr_links().count(), 3);
        assert_eq!(g.social_nodes().count(), 3);
        assert_eq!(g.attr_nodes().count(), 2);
    }

    /// A generic helper usable with any implementation — the migration
    /// pattern every analytic crate follows.
    fn density_generic(g: &impl SanRead) -> f64 {
        g.num_social_links() as f64 / g.num_social_nodes().max(1) as f64
    }

    #[test]
    fn generic_functions_accept_both_san_and_custom_impls() {
        let fx = figure1();
        assert!((density_generic(&fx.san) - 5.0 / 6.0).abs() < 1e-12);
        assert!((density_generic(&tiny()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn san_trait_view_agrees_with_inherent_api() {
        let fx = figure1();
        let san: &San = &fx.san;
        fn links_via_trait(g: &impl SanRead) -> usize {
            g.social_links().count()
        }
        assert_eq!(links_via_trait(san), san.num_social_links());
        fn gamma_s(g: &impl SanRead, u: SocialId) -> Vec<SocialId> {
            g.social_neighbors(u).into_owned()
        }
        for u in 0..6u32 {
            assert_eq!(
                gamma_s(san, SocialId(u)),
                San::social_neighbors(san, SocialId(u))
            );
        }
    }
}
