//! Range-partitioned [`CsrSan`] shards for intra-snapshot parallelism.
//!
//! A frozen snapshot's flat CSR arrays are the natural unit for
//! range-partitioning: [`ShardedCsrSan`] cuts the social node space into
//! `K` **node-contiguous shards balanced by edge count** (boundaries are
//! placed on the CSR row offsets, so a handful of hubs never land in one
//! shard together with an equal *node* share of the tail), and partitions
//! the attribute node space the same way by membership count. Every shard
//! is a zero-copy [`CsrShard`] view borrowing the shared column arrays of
//! the one underlying snapshot behind an [`Arc`].
//!
//! The contracts:
//!
//! * **The whole is the graph.** `ShardedCsrSan` implements [`SanRead`] by
//!   delegating to the inner [`CsrSan`], so every existing analytic runs on
//!   it unchanged.
//! * **A shard is the graph restricted to its node range.** [`CsrShard`]
//!   also implements [`SanRead`]: *iteration* ([`SanRead::social_nodes`],
//!   [`SanRead::social_links`], [`SanRead::attr_nodes`],
//!   [`SanRead::attr_links`]) and the link counters cover only the owned
//!   ranges, while *queries by id* (neighbour rows, membership, attribute
//!   types) remain global — exactly what a per-node sweep needs to count
//!   cross-shard triangles or probe reverse links that live in another
//!   shard. `num_social_nodes`/`num_attr_nodes` stay global too: they are
//!   the **id-space size**, so algorithms that allocate arrays indexed by
//!   node id keep working on a shard view.
//! * **Partials merge in shard order.** [`ShardedCsrSan::map_shards`] runs
//!   one closure per shard on scoped threads and returns the results in
//!   shard order; [`ShardedCsrSan::fold_shards`] folds them in that order
//!   with an explicit associative merge. Because shards are node-contiguous
//!   and ordered, concatenating per-shard vectors reproduces the global
//!   node order exactly, and integer partials (link/triangle tallies) merge
//!   bit-for-bit; float partials agree with the sequential sum up to
//!   summation regrouping (the shard-equivalence suite pins ≤ 1e-12).
//!
//! Empty shards are legal (they occur when `K` exceeds the node count or
//! the degree sequence is extremely skewed) and every driver handles them.

use crate::csr::CsrSan;
use crate::ids::{AttrId, AttrType, SocialId};
use crate::read::SanRead;
use std::borrow::Cow;
use std::ops::Range;
use std::sync::Arc;

/// A [`CsrSan`] range-partitioned into `K` node-contiguous shards balanced
/// by edge count.
///
/// Construction is O(K log V) binary searches over the already-frozen row
/// offsets — no graph data is copied or moved. The snapshot itself sits
/// behind an [`Arc`], so a sharded view can be built directly from the
/// allocation-free hand-off of
/// [`SanTimeline::snapshot_stream`](crate::evolve::SanTimeline::snapshot_stream).
#[derive(Debug, Clone)]
pub struct ShardedCsrSan {
    csr: Arc<CsrSan>,
    /// `K + 1` social-node boundaries: shard `i` owns `[bounds[i], bounds[i+1])`.
    social_bounds: Vec<u32>,
    /// `K + 1` attribute-node boundaries, balanced by membership count.
    attr_bounds: Vec<u32>,
}

/// Places `k + 1` boundaries over `rows` rows such that each slice carries
/// roughly `1/k` of the total monotone `weight`. `weight(rows)` must be the
/// grand total and `weight(0)` zero.
fn balance_bounds(rows: usize, k: usize, weight: impl Fn(usize) -> u64) -> Vec<u32> {
    let total = weight(rows);
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0u32);
    for i in 1..k {
        let target = total * i as u64 / k as u64;
        // First row index whose cumulative weight reaches the target.
        // bounds starts as vec![0] and only grows, so last() exists.
        let (mut lo, mut hi) = (bounds.last().copied().unwrap_or(0) as usize, rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if weight(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        bounds.push(lo as u32);
    }
    bounds.push(rows as u32);
    bounds
}

impl ShardedCsrSan {
    /// Partitions a shared snapshot into `shards` node-contiguous shards.
    ///
    /// Social boundaries balance the **directed link endpoints**
    /// (out-degree + in-degree, read straight off the CSR row offsets);
    /// attribute boundaries balance membership counts. Shards may be empty
    /// when `shards` exceeds the node count.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(csr: Arc<CsrSan>, shards: usize) -> ShardedCsrSan {
        assert!(shards >= 1, "need at least one shard");
        let n = csr.num_social_nodes();
        let m = csr.num_attr_nodes();
        let social_bounds = balance_bounds(n, shards, |i| {
            u64::from(csr.out_off[i]) + u64::from(csr.in_off[i])
        });
        let attr_bounds = balance_bounds(m, shards, |i| u64::from(csr.am_off[i]));
        ShardedCsrSan {
            csr,
            social_bounds,
            attr_bounds,
        }
    }

    /// Convenience: freeze ownership of a snapshot and partition it.
    pub fn from_csr(csr: CsrSan, shards: usize) -> ShardedCsrSan {
        ShardedCsrSan::new(Arc::new(csr), shards)
    }

    /// Number of shards `K`.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.social_bounds.len() - 1
    }

    /// The underlying snapshot.
    #[inline]
    pub fn csr(&self) -> &CsrSan {
        &self.csr
    }

    /// A clone of the shared snapshot handle (one atomic increment).
    pub fn share(&self) -> Arc<CsrSan> {
        Arc::clone(&self.csr)
    }

    /// The `i`-th shard view.
    ///
    /// # Panics
    /// Panics when `i >= num_shards()`.
    pub fn shard(&self, i: usize) -> CsrShard<'_> {
        assert!(i < self.num_shards(), "shard {i} out of range");
        CsrShard {
            csr: &self.csr,
            index: i,
            social_start: self.social_bounds[i],
            social_end: self.social_bounds[i + 1],
            attr_start: self.attr_bounds[i],
            attr_end: self.attr_bounds[i + 1],
        }
    }

    /// Iterates over all shard views in shard order.
    pub fn shards(&self) -> impl Iterator<Item = CsrShard<'_>> {
        (0..self.num_shards()).map(|i| self.shard(i))
    }

    /// The owned social-node range of every shard, in shard order. The
    /// ranges are contiguous and cover `0..num_social_nodes` exactly, so
    /// they can carve a node-indexed buffer into disjoint mutable chunks.
    pub fn social_ranges(&self) -> Vec<Range<usize>> {
        self.shards()
            .map(|s| {
                let r = s.social_range();
                r.start as usize..r.end as usize
            })
            .collect()
    }

    /// Approximate heap bytes attributable to each shard (its share of the
    /// row payloads plus offset-table slots) — the capacity-planning view:
    /// the per-shard figures sum to [`CsrSan::heap_bytes`] up to the
    /// constant global tables (attribute types) that no shard owns alone.
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shards().map(|s| s.shard_bytes()).collect()
    }

    /// Runs `f` once per shard on scoped threads and returns the results
    /// **in shard order** (not completion order), so downstream merges are
    /// deterministic.
    ///
    /// One thread per shard: `K` is chosen by the caller to match the
    /// machine, and shards are edge-balanced, so finer-grained work
    /// stealing would buy little.
    pub fn map_shards<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(CsrShard<'_>) -> T + Sync,
    {
        let k = self.num_shards();
        if k == 1 {
            // No hand-off worth paying for.
            return vec![f(self.shard(0))];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..k)
                .map(|i| {
                    let shard = self.shard(i);
                    let f = &f;
                    scope.spawn(move || f(shard))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // Forward a worker's panic payload instead of replacing
                    // it with a fresh panic here.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }

    /// [`map_shards`](ShardedCsrSan::map_shards), then folds the per-shard
    /// partials **in shard order** with an explicit merge. `merge` must be
    /// associative for the result to be independent of `K`; with shard
    /// ranges in node order, concatenation and integer sums reproduce the
    /// sequential answer exactly.
    pub fn fold_shards<T, A, F, M>(&self, f: F, init: A, merge: M) -> A
    where
        T: Send,
        F: Fn(CsrShard<'_>) -> T + Sync,
        M: FnMut(A, T) -> A,
    {
        self.map_shards(f).into_iter().fold(init, merge)
    }
}

/// A zero-copy view of one node-contiguous shard of a [`ShardedCsrSan`].
///
/// Implements [`SanRead`] *over its node range*: iteration and link
/// counters cover the owned ranges only, queries by id see the whole
/// snapshot (see the [module docs](self) for the exact contract).
#[derive(Debug, Clone, Copy)]
pub struct CsrShard<'a> {
    csr: &'a CsrSan,
    index: usize,
    social_start: u32,
    social_end: u32,
    attr_start: u32,
    attr_end: u32,
}

impl CsrShard<'_> {
    /// This shard's position in `0..K`.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The owned social-node id range.
    #[inline]
    pub fn social_range(&self) -> Range<u32> {
        self.social_start..self.social_end
    }

    /// The owned attribute-node id range.
    #[inline]
    pub fn attr_range(&self) -> Range<u32> {
        self.attr_start..self.attr_end
    }

    /// Number of owned social nodes.
    #[inline]
    pub fn owned_social_nodes(&self) -> usize {
        (self.social_end - self.social_start) as usize
    }

    /// Number of directed social links whose **source** this shard owns —
    /// the edge-balance figure the partitioner equalises (together with the
    /// in-links) and the benches report.
    #[inline]
    pub fn owned_social_links(&self) -> usize {
        (self.csr.out_off[self.social_end as usize] - self.csr.out_off[self.social_start as usize])
            as usize
    }

    /// Number of attribute links whose **user** this shard owns.
    #[inline]
    pub fn owned_attr_links(&self) -> usize {
        (self.csr.ua_off[self.social_end as usize] - self.csr.ua_off[self.social_start as usize])
            as usize
    }

    /// True when the shard owns no social and no attribute nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.social_start == self.social_end && self.attr_start == self.attr_end
    }

    /// Approximate heap bytes of this shard's slice of the snapshot: the
    /// owned rows of every social CSR (out, in, undirected, user→attr), the
    /// owned membership rows (attr→user), and the owned offset-table slots.
    pub fn shard_bytes(&self) -> usize {
        use std::mem::size_of;
        let c = self.csr;
        let (s0, s1) = (self.social_start as usize, self.social_end as usize);
        let (a0, a1) = (self.attr_start as usize, self.attr_end as usize);
        let row_payload = |off: &[u32], lo: usize, hi: usize| (off[hi] - off[lo]) as usize;
        let social_payload = row_payload(&c.out_off, s0, s1)
            + row_payload(&c.in_off, s0, s1)
            + row_payload(&c.und_off, s0, s1);
        let offsets = 4 * (s1 - s0) + (a1 - a0); // out/in/und/ua + am slots
        social_payload * size_of::<SocialId>()
            + row_payload(&c.ua_off, s0, s1) * size_of::<AttrId>()
            + row_payload(&c.am_off, a0, a1) * size_of::<SocialId>()
            + (a1 - a0) * size_of::<AttrType>()
            + offsets * size_of::<u32>()
    }
}

impl SanRead for CsrShard<'_> {
    /// Global id-space size (see module docs), **not** the owned count —
    /// use [`CsrShard::owned_social_nodes`] for that.
    #[inline]
    fn num_social_nodes(&self) -> usize {
        self.csr.num_social_nodes()
    }

    /// Global id-space size of the attribute layer.
    #[inline]
    fn num_attr_nodes(&self) -> usize {
        self.csr.num_attr_nodes()
    }

    /// Directed links originating in the owned range (what
    /// [`SanRead::social_links`] iterates here).
    #[inline]
    fn num_social_links(&self) -> usize {
        self.owned_social_links()
    }

    /// Attribute links whose user is in the owned range (what
    /// [`SanRead::attr_links`] iterates here).
    #[inline]
    fn num_attr_links(&self) -> usize {
        self.owned_attr_links()
    }

    #[inline]
    fn out_neighbors(&self, u: SocialId) -> &[SocialId] {
        self.csr.out_neighbors(u)
    }

    #[inline]
    fn in_neighbors(&self, u: SocialId) -> &[SocialId] {
        self.csr.in_neighbors(u)
    }

    #[inline]
    fn attrs_of(&self, u: SocialId) -> &[AttrId] {
        self.csr.attrs_of(u)
    }

    #[inline]
    fn members_of(&self, a: AttrId) -> &[SocialId] {
        self.csr.members_of(a)
    }

    #[inline]
    fn attr_type(&self, a: AttrId) -> AttrType {
        self.csr.attr_type(a)
    }

    #[inline]
    fn has_social_link(&self, src: SocialId, dst: SocialId) -> bool {
        self.csr.has_social_link(src, dst)
    }

    #[inline]
    fn has_attr_link(&self, user: SocialId, attr: AttrId) -> bool {
        self.csr.has_attr_link(user, attr)
    }

    #[inline]
    fn social_neighbors(&self, u: SocialId) -> Cow<'_, [SocialId]> {
        Cow::Borrowed(self.csr.undirected_neighbors(u))
    }

    #[inline]
    fn common_attrs(&self, u: SocialId, v: SocialId) -> usize {
        self.csr.common_attrs(u, v)
    }

    #[inline]
    fn common_social_neighbors(&self, u: SocialId, v: SocialId) -> usize {
        self.csr.common_social_neighbors(u, v)
    }

    /// Only the owned social nodes.
    fn social_nodes(&self) -> impl Iterator<Item = SocialId> + '_ {
        self.social_range().map(SocialId)
    }

    /// Only the owned attribute nodes.
    fn attr_nodes(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.attr_range().map(AttrId)
    }

    /// Only the links originating in the owned range.
    fn social_links(&self) -> impl Iterator<Item = (SocialId, SocialId)> + '_ {
        self.social_range().flat_map(move |u| {
            let u = SocialId(u);
            self.csr.out_neighbors(u).iter().map(move |&v| (u, v))
        })
    }

    /// Only the attribute links of owned users.
    fn attr_links(&self) -> impl Iterator<Item = (SocialId, AttrId)> + '_ {
        self.social_range().flat_map(move |u| {
            let u = SocialId(u);
            self.csr.attrs_of(u).iter().map(move |&a| (u, a))
        })
    }
}

impl SanRead for ShardedCsrSan {
    #[inline]
    fn num_social_nodes(&self) -> usize {
        self.csr.num_social_nodes()
    }

    #[inline]
    fn num_attr_nodes(&self) -> usize {
        self.csr.num_attr_nodes()
    }

    #[inline]
    fn num_social_links(&self) -> usize {
        SanRead::num_social_links(&*self.csr)
    }

    #[inline]
    fn num_attr_links(&self) -> usize {
        SanRead::num_attr_links(&*self.csr)
    }

    #[inline]
    fn out_neighbors(&self, u: SocialId) -> &[SocialId] {
        self.csr.out_neighbors(u)
    }

    #[inline]
    fn in_neighbors(&self, u: SocialId) -> &[SocialId] {
        self.csr.in_neighbors(u)
    }

    #[inline]
    fn attrs_of(&self, u: SocialId) -> &[AttrId] {
        self.csr.attrs_of(u)
    }

    #[inline]
    fn members_of(&self, a: AttrId) -> &[SocialId] {
        self.csr.members_of(a)
    }

    #[inline]
    fn attr_type(&self, a: AttrId) -> AttrType {
        self.csr.attr_type(a)
    }

    #[inline]
    fn has_social_link(&self, src: SocialId, dst: SocialId) -> bool {
        self.csr.has_social_link(src, dst)
    }

    #[inline]
    fn has_attr_link(&self, user: SocialId, attr: AttrId) -> bool {
        self.csr.has_attr_link(user, attr)
    }

    #[inline]
    fn social_neighbors(&self, u: SocialId) -> Cow<'_, [SocialId]> {
        Cow::Borrowed(self.csr.undirected_neighbors(u))
    }

    #[inline]
    fn common_attrs(&self, u: SocialId, v: SocialId) -> usize {
        self.csr.common_attrs(u, v)
    }

    #[inline]
    fn common_social_neighbors(&self, u: SocialId, v: SocialId) -> usize {
        self.csr.common_social_neighbors(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1;
    use crate::san::San;
    use san_stats::SplitRng;

    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = assert_send_sync::<ShardedCsrSan>();
    const _: () = assert_send_sync::<CsrShard<'static>>();

    fn random_csr(n: u32, links: usize, attrs: u32, attr_links: usize, seed: u64) -> CsrSan {
        let mut rng = SplitRng::new(seed);
        let mut san = San::new();
        for _ in 0..n {
            san.add_social_node();
        }
        for i in 0..attrs {
            san.add_attr_node(AttrType::PAPER_TYPES[(i % 4) as usize]);
        }
        for _ in 0..links {
            let u = SocialId(rng.below(u64::from(n)) as u32);
            let v = SocialId(rng.below(u64::from(n)) as u32);
            if u != v {
                san.add_social_link(u, v);
            }
        }
        for _ in 0..attr_links {
            let u = SocialId(rng.below(u64::from(n)) as u32);
            let a = AttrId(rng.below(u64::from(attrs)) as u32);
            san.add_attr_link(u, a);
        }
        san.freeze()
    }

    /// Shards partition both id spaces exactly, for every K, including
    /// K > node count (empty shards).
    #[test]
    fn shards_partition_id_spaces() {
        let csr = random_csr(40, 200, 6, 50, 1);
        for k in [1usize, 2, 3, 7, 64] {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            assert_eq!(sharded.num_shards(), k);
            let mut social: Vec<u32> = Vec::new();
            let mut attrs: Vec<u32> = Vec::new();
            for s in sharded.shards() {
                social.extend(s.social_range());
                attrs.extend(s.attr_range());
            }
            assert_eq!(social, (0..40).collect::<Vec<_>>(), "k={k}");
            assert_eq!(attrs, (0..6).collect::<Vec<_>>(), "k={k}");
        }
    }

    /// Edge-count balance: with uniform random links, no shard should carry
    /// a grossly outsized share of directed link endpoints.
    #[test]
    fn shards_balance_edges_not_nodes() {
        // One hub with ~half of all links plus a uniform tail.
        let mut san = San::new();
        for _ in 0..100 {
            san.add_social_node();
        }
        for v in 1..100u32 {
            san.add_social_link(SocialId(0), SocialId(v));
        }
        let mut rng = SplitRng::new(7);
        for _ in 0..99 {
            let u = SocialId(1 + rng.below(99) as u32);
            let v = SocialId(1 + rng.below(99) as u32);
            if u != v {
                san.add_social_link(u, v);
            }
        }
        let csr = san.freeze();
        let total: usize = 2 * SanRead::num_social_links(&csr);
        let sharded = ShardedCsrSan::from_csr(csr, 4);
        // The hub (node 0) must sit alone-ish: its shard should not also
        // absorb a quarter of the remaining nodes' edges.
        let weights: Vec<usize> = sharded
            .shards()
            .map(|s| {
                s.social_range()
                    .map(|u| {
                        let u = SocialId(u);
                        s.out_neighbors(u).len() + s.in_neighbors(u).len()
                    })
                    .sum()
            })
            .collect();
        assert_eq!(weights.iter().sum::<usize>(), total);
        let max = *weights.iter().max().unwrap();
        // Perfect balance is total/4; the hub alone holds ~total/2 of the
        // endpoints, so the best achievable max share is ~1/2. Node-count
        // partitioning would give the hub's shard ~1/2 + 1/4.
        assert!(
            max <= total * 2 / 3,
            "weights {weights:?} not edge-balanced (total {total})"
        );
        // And the hub's shard must be node-light.
        let hub_shard = sharded.shard(0);
        assert!(hub_shard.owned_social_nodes() < 50);
    }

    #[test]
    fn shard_view_restricts_iteration_but_not_queries() {
        let fx = figure1();
        let sharded = ShardedCsrSan::from_csr(fx.san.freeze(), 2);
        let whole = sharded.csr().clone();
        let mut links = Vec::new();
        for s in sharded.shards() {
            // Iteration: only owned nodes.
            for u in s.social_nodes() {
                assert!(s.social_range().contains(&u.0));
            }
            links.extend(s.social_links());
            // Queries by id work for *any* node, owned or not.
            for u in SanRead::social_nodes(&whole) {
                assert_eq!(s.out_neighbors(u), SanRead::out_neighbors(&whole, u));
                assert_eq!(
                    s.social_neighbors(u).as_ref(),
                    SanRead::social_neighbors(&whole, u).as_ref()
                );
            }
            assert_eq!(s.num_social_nodes(), whole.num_social_nodes());
        }
        let mut expect: Vec<_> = SanRead::social_links(&whole).collect();
        expect.sort_unstable();
        links.sort_unstable();
        assert_eq!(links, expect);
    }

    #[test]
    fn shard_link_counters_sum_to_whole() {
        let csr = random_csr(30, 150, 5, 40, 3);
        for k in [1usize, 2, 3, 7] {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            let links: usize = sharded.shards().map(|s| s.num_social_links()).sum();
            let alinks: usize = sharded.shards().map(|s| s.num_attr_links()).sum();
            assert_eq!(links, SanRead::num_social_links(&csr), "k={k}");
            assert_eq!(alinks, SanRead::num_attr_links(&csr), "k={k}");
        }
    }

    #[test]
    fn whole_view_delegates_everywhere() {
        let csr = random_csr(25, 100, 4, 30, 9);
        let sharded = ShardedCsrSan::from_csr(csr.clone(), 3);
        assert_eq!(sharded.num_social_nodes(), csr.num_social_nodes());
        assert_eq!(
            SanRead::num_social_links(&sharded),
            SanRead::num_social_links(&csr)
        );
        for u in SanRead::social_nodes(&csr) {
            assert_eq!(
                SanRead::out_neighbors(&sharded, u),
                SanRead::out_neighbors(&csr, u)
            );
            for v in SanRead::social_nodes(&csr) {
                assert_eq!(
                    SanRead::has_social_link(&sharded, u, v),
                    SanRead::has_social_link(&csr, u, v)
                );
                assert_eq!(
                    SanRead::common_social_neighbors(&sharded, u, v),
                    SanRead::common_social_neighbors(&csr, u, v)
                );
            }
        }
    }

    #[test]
    fn map_and_fold_run_in_shard_order() {
        let csr = random_csr(50, 300, 8, 60, 5);
        let sharded = ShardedCsrSan::from_csr(csr, 5);
        let indices = sharded.map_shards(|s| s.index());
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        let degree_sum: usize = sharded.fold_shards(
            |s| {
                s.social_range()
                    .map(|u| s.out_neighbors(SocialId(u)).len())
                    .sum::<usize>()
            },
            0usize,
            |acc, part| acc + part,
        );
        assert_eq!(degree_sum, SanRead::num_social_links(sharded.csr()));
    }

    #[test]
    fn shard_bytes_accounts_for_the_whole_snapshot() {
        let csr = random_csr(60, 400, 7, 80, 11);
        let whole = csr.heap_bytes();
        for k in [1usize, 2, 4, 9] {
            let sharded = ShardedCsrSan::from_csr(csr.clone(), k);
            let per_shard = sharded.shard_bytes();
            assert_eq!(per_shard.len(), k);
            let sum: usize = per_shard.iter().sum();
            // Shards split payloads and offset slots exactly; the whole
            // additionally carries one sentinel slot per offset table
            // (5 tables × 4 bytes).
            assert_eq!(sum + 5 * 4, whole, "k={k}");
        }
    }

    #[test]
    fn more_shards_than_nodes_yields_empty_shards() {
        let mut san = San::new();
        for _ in 0..3 {
            san.add_social_node();
        }
        san.add_social_link(SocialId(0), SocialId(1));
        let sharded = ShardedCsrSan::from_csr(san.freeze(), 7);
        assert_eq!(sharded.num_shards(), 7);
        let nonempty = sharded.shards().filter(|s| !s.is_empty()).count();
        assert!(nonempty <= 3);
        let owned: usize = sharded.shards().map(|s| s.owned_social_nodes()).sum();
        assert_eq!(owned, 3);
        // Drivers still work with empty shards present.
        let total_links: usize = sharded
            .map_shards(|s| s.social_links().count())
            .into_iter()
            .sum();
        assert_eq!(total_links, 1);
    }

    #[test]
    fn empty_snapshot_shards() {
        let sharded = ShardedCsrSan::from_csr(San::new().freeze(), 4);
        assert_eq!(sharded.num_shards(), 4);
        assert!(sharded.shards().all(|s| s.is_empty()));
        assert_eq!(sharded.map_shards(|s| s.owned_social_links()), vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedCsrSan::from_csr(San::new().freeze(), 0);
    }

    #[test]
    fn social_ranges_cover_buffer_exactly() {
        let csr = random_csr(33, 120, 4, 20, 13);
        let sharded = ShardedCsrSan::from_csr(csr, 4);
        let ranges = sharded.social_ranges();
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 33);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }
}
