//! Degree-vector extraction and degree-bounded undirected views.
//!
//! The paper analyses four degree notions (§3.5, §4.1):
//!
//! 1. social **out-degree** of social nodes,
//! 2. social **in-degree** of social nodes,
//! 3. **attribute degree** of social nodes (`|Γa(u)|`),
//! 4. **social degree of attribute nodes** (number of members).
//!
//! [`DegreeVectors`] extracts all four in one pass. The SybilLimit and
//! anonymity experiments (§6.2) additionally need an *undirected* view of
//! the social graph with a **node degree bound** ("we imposed a node degree
//! bound of 100") — [`to_undirected`] and [`bound_degrees`].

use crate::ids::SocialId;
use crate::read::SanRead;
use san_stats::SplitRng;

/// The four degree vectors of a SAN.
#[derive(Debug, Clone, Default)]
pub struct DegreeVectors {
    /// Out-degree per social node.
    pub out: Vec<u64>,
    /// In-degree per social node.
    pub inc: Vec<u64>,
    /// Attribute degree per social node.
    pub attr_of_social: Vec<u64>,
    /// Social degree per attribute node.
    pub social_of_attr: Vec<u64>,
}

/// Extracts all four degree vectors.
pub fn degree_vectors(san: &impl SanRead) -> DegreeVectors {
    let out = san
        .social_nodes()
        .map(|u| san.out_degree(u) as u64)
        .collect();
    let inc = san
        .social_nodes()
        .map(|u| san.in_degree(u) as u64)
        .collect();
    let attr_of_social = san
        .social_nodes()
        .map(|u| san.attr_degree(u) as u64)
        .collect();
    let social_of_attr = san
        .attr_nodes()
        .map(|a| san.social_degree_of_attr(a) as u64)
        .collect();
    DegreeVectors {
        out,
        inc,
        attr_of_social,
        social_of_attr,
    }
}

/// Undirected adjacency view of the social graph: `adj[u]` lists every `v`
/// such that `u → v` or `v → u`, sorted and deduplicated.
pub fn to_undirected(san: &impl SanRead) -> Vec<Vec<u32>> {
    let n = san.num_social_nodes();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in san.social_links() {
        adj[u.index()].push(v.0);
        adj[v.index()].push(u.0);
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Applies a node degree bound to an undirected adjacency structure.
///
/// For every node with more than `bound` neighbours, a uniformly random
/// subset of `bound` incident edges is retained *from that node's
/// perspective*; an edge survives only if **both** endpoints retain it
/// (mirroring SybilLimit's guideline that the protocol refuses to use more
/// than `bound` edges per node). The result is symmetric.
pub fn bound_degrees(adj: &[Vec<u32>], bound: usize, rng: &mut SplitRng) -> Vec<Vec<u32>> {
    let n = adj.len();
    // keep[u] = set of neighbours u retains.
    let mut keep: Vec<Vec<u32>> = Vec::with_capacity(n);
    for list in adj {
        if list.len() <= bound {
            keep.push(list.clone());
        } else {
            // Partial Fisher-Yates over a copy.
            let mut copy = list.clone();
            for i in 0..bound {
                let j = i + rng.below((copy.len() - i) as u64) as usize;
                copy.swap(i, j);
            }
            copy.truncate(bound);
            copy.sort_unstable();
            keep.push(copy);
        }
    }
    // Intersect: edge (u,v) survives iff v in keep[u] and u in keep[v].
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, kept) in keep.iter().enumerate() {
        for &v in kept {
            if (v as usize) > u && keep[v as usize].binary_search(&(u as u32)).is_ok() {
                out[u].push(v);
                out[v as usize].push(u as u32);
            }
        }
    }
    for list in &mut out {
        list.sort_unstable();
    }
    out
}

/// Total number of undirected edges in an adjacency structure.
pub fn undirected_edge_count(adj: &[Vec<u32>]) -> usize {
    adj.iter().map(Vec::len).sum::<usize>() / 2
}

/// Social nodes sorted by descending total (in+out) degree; useful for
/// seeding crawls at well-connected users.
pub fn nodes_by_total_degree(san: &impl SanRead) -> Vec<SocialId> {
    let mut nodes: Vec<SocialId> = san.social_nodes().collect();
    nodes.sort_by_key(|&u| std::cmp::Reverse(san.out_degree(u) + san.in_degree(u)));
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1;
    use crate::san::San;

    #[test]
    fn degree_vectors_figure1() {
        let fx = figure1();
        let dv = degree_vectors(&fx.san);
        assert_eq!(dv.out.len(), 6);
        assert_eq!(dv.social_of_attr.len(), 4);
        // u4 has out-links to u3 and u5.
        assert_eq!(dv.out[3], 2);
        // u1 has one attribute (UC Berkeley).
        assert_eq!(dv.attr_of_social[0], 1);
        // Google has two members.
        assert_eq!(dv.social_of_attr[fx.google.index()], 2);
        // Totals match link counts.
        assert_eq!(dv.out.iter().sum::<u64>(), 5);
        assert_eq!(dv.inc.iter().sum::<u64>(), 5);
        assert_eq!(dv.attr_of_social.iter().sum::<u64>(), 8);
        assert_eq!(dv.social_of_attr.iter().sum::<u64>(), 8);
    }

    #[test]
    fn undirected_view_symmetric_dedup() {
        let fx = figure1();
        let adj = to_undirected(&fx.san);
        for (u, list) in adj.iter().enumerate() {
            for &v in list {
                assert!(adj[v as usize].contains(&(u as u32)), "asymmetric {u}-{v}");
                assert_ne!(v as usize, u, "self-loop");
            }
            let mut sorted = list.clone();
            sorted.dedup();
            assert_eq!(&sorted, list, "not deduplicated/sorted");
        }
        // u2<->u3 is reciprocal in the directed graph but must appear once.
        assert_eq!(adj[1].iter().filter(|&&v| v == 2).count(), 1);
    }

    #[test]
    fn bound_degrees_enforces_bound() {
        // Star: hub 0 connected to 1..=20.
        let mut san = San::new();
        let hub = san.add_social_node();
        let spokes: Vec<SocialId> = (0..20).map(|_| san.add_social_node()).collect();
        for &s in &spokes {
            san.add_social_link(s, hub);
        }
        let adj = to_undirected(&san);
        let mut rng = SplitRng::new(1);
        let bounded = bound_degrees(&adj, 5, &mut rng);
        assert_eq!(bounded[hub.index()].len(), 5);
        // Symmetry preserved.
        for (u, list) in bounded.iter().enumerate() {
            for &v in list {
                assert!(bounded[v as usize].contains(&(u as u32)));
            }
        }
        // Spokes keep at most their single edge.
        let surviving: usize = bounded.iter().skip(1).map(Vec::len).sum();
        assert_eq!(surviving, 5);
    }

    #[test]
    fn bound_degrees_noop_when_under_bound() {
        let fx = figure1();
        let adj = to_undirected(&fx.san);
        let mut rng = SplitRng::new(2);
        let bounded = bound_degrees(&adj, 100, &mut rng);
        assert_eq!(bounded, adj);
    }

    #[test]
    fn edge_count_roundtrip() {
        let fx = figure1();
        let adj = to_undirected(&fx.san);
        // 5 directed links, one pair (u2,u3) reciprocal -> 4 undirected edges.
        assert_eq!(undirected_edge_count(&adj), 4);
    }

    #[test]
    fn nodes_by_degree_order() {
        let fx = figure1();
        let order = nodes_by_total_degree(&fx.san);
        // u3 and u4 tie at total degree 3; stable sort keeps id order.
        let top = fx.san.out_degree(order[0]) + fx.san.in_degree(order[0]);
        assert_eq!(top, 3);
        assert!(order[0] == SocialId(2) || order[0] == SocialId(3));
        // u1 (index 0) has no social links -> last.
        assert_eq!(order[5], SocialId(0));
    }
}
