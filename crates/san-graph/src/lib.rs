//! # san-graph — the Social-Attribute Network data structure
//!
//! A **Social-Attribute Network** (SAN, Gong et al., IMC 2012, §2.1) is a
//! directed social graph `G = (Vs, Es)` augmented with `M` binary attribute
//! nodes `Va` and undirected links `Ea` between social nodes and the
//! attributes they declare:
//!
//! ```text
//! SAN = (Vs, Va, Es, Ea)
//! ```
//!
//! Social links are **directed** (Google+ circles: "in your circles" /
//! "have you in circles"); attribute links are **undirected**. For a node
//! `u` the paper defines
//!
//! * `Γa(u)` — attribute neighbours,
//! * `Γs(u)` — social neighbours (union over both link sets and directions),
//! * `Γs,in(u)`, `Γs,out(u)` — directed social neighbourhoods.
//!
//! ## The read/write split
//!
//! The paper's pipeline is write-once, read-many: the crawler/timeline
//! builds 79 daily snapshots, then every measurement only *reads* them.
//! The crate therefore separates the two concerns:
//!
//! * [`read::SanRead`] — the read-only trait every analytic downstream
//!   (metrics, applications, model validation) is generic over;
//! * [`san::San`] — the mutable adjacency-list SAN used while *growing*
//!   a network (generators, crawler, builders); implements `SanRead`;
//! * [`csr::CsrSan`] — an immutable compressed-sparse-row snapshot with
//!   sorted neighbour rows: binary-search membership, cache-friendly
//!   contiguous iteration, zero-allocation `Γs(u)`, and `Send + Sync`
//!   sharing across threads. Produced by [`San::freeze`] or
//!   [`evolve::SanTimeline::snapshot_csr`].
//!
//! Grow with `San`, freeze, measure the `CsrSan` — or measure the live
//! `San` directly; both satisfy `SanRead`.
//!
//! This crate provides:
//!
//! * `San` — the mutable in-memory SAN with O(1)-amortised node/link
//!   insertion and all the neighbourhood queries above,
//! * [`csr::CsrSan`] — the frozen CSR snapshot form,
//! * [`read::SanRead`] — the shared read abstraction,
//! * [`builder::SanBuilder`] — out-of-order batch construction,
//! * [`evolve::SanTimeline`] — a timestamped event log that can
//!   replay the network to any day (the paper's 79 daily snapshots),
//! * [`delta::DeltaFreezer`] — incremental delta-freeze: patches the
//!   previous day's `CsrSan` with one day's events, making all-day
//!   snapshot sweeps ([`evolve::SanTimeline::snapshot_stream`],
//!   [`evolve::SanTimeline::for_each_snapshot`]) near-linear instead of
//!   quadratic; sampled days are handed off as `Arc<CsrSan>` with no
//!   flat-array clone,
//! * [`shard::ShardedCsrSan`] — a snapshot range-partitioned into `K`
//!   node-contiguous, edge-balanced [`shard::CsrShard`] views with
//!   `map_shards`/`fold_shards` drivers, so one frozen day can saturate
//!   every core (intra-snapshot parallelism),
//! * [`store`] — the columnar binary snapshot store: `CsrSan::write_to` /
//!   `read_from` (versioned header, little-endian columns, checksum; v2
//!   adds frame-of-reference + varint column compression and delta-encoded
//!   day files) and [`store::SnapshotVault`] directories of persisted
//!   days, so sweeps can warm-start from disk
//!   ([`evolve::SanTimeline::resume_from_vault`]) instead of replaying the
//!   event log, plus [`store::StreamingVaultWriter`] for bounded-memory
//!   synthesize-and-persist runs,
//! * [`codec`] — the v2 column codec: frame-of-reference blocks with
//!   zigzag + varint deltas over `u32` sequences, fully typed on decode,
//! * [`view`] — [`view::CsrSanView`], a borrowed zero-copy `SanRead` over
//!   raw snapshot bytes: validate once, then every column is read in
//!   place (no `Vec` materialisation at all),
//! * [`mmap`] — [`mmap::MappedSnapshot`], a read-only `mmap(2)` of a
//!   snapshot file serving zero-copy views to any number of threads (the
//!   substrate of the `san-serve` snapshot server),
//! * [`meter`] — metered IO: [`meter::VaultMetrics`] byte counters and
//!   [`meter::LatencyHistogram`]s, fed by every vault persist/load/map
//!   path and reused by the serving layer,
//! * [`traverse`] — BFS distances, weakly connected components,
//! * [`crawler`] — the snapshot-expanding BFS crawler of §2.2 (honouring
//!   public/private visibility),
//! * [`degree`] — degree-vector extraction and the degree-bounded subgraph
//!   used by SybilLimit (§6.2),
//! * [`subsample`] — attribute subsampling for the §4.3 validation,
//! * [`io`] — plain-text and JSON serialisation,
//! * [`fixtures`] — the paper's Figure 1 six-user example network, reused as
//!   a ground-truth fixture across the workspace test suites.

pub mod builder;
pub mod codec;
pub mod crawler;
pub mod csr;
pub mod degree;
pub mod delta;
pub mod evolve;
pub mod fixtures;
pub mod ids;
pub mod io;
pub mod meter;
pub mod mmap;
pub mod read;
pub mod san;
pub mod shard;
pub mod store;
pub mod subsample;
pub mod traverse;
pub mod unionfind;
pub mod view;
pub mod wire;

pub use builder::SanBuilder;
pub use csr::CsrSan;
pub use delta::DeltaFreezer;
pub use evolve::{DayCounts, SanEvent, SanTimeline, SnapshotStream, TimelineBuilder};
pub use ids::{AttrId, AttrType, SocialId};
pub use meter::{LatencyHistogram, VaultMetrics};
#[cfg(unix)]
pub use mmap::MappedSnapshot;
pub use read::SanRead;
pub use san::San;
pub use shard::{CsrShard, ShardedCsrSan};
pub use store::{SnapshotVault, StoreError};
pub use view::{AlignedBytes, CsrSanView};
pub use wire::{WireReader, WireTruncated, WireWriter};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::builder::SanBuilder;
    pub use crate::csr::CsrSan;
    pub use crate::delta::DeltaFreezer;
    pub use crate::evolve::{DayCounts, SanEvent, SanTimeline, SnapshotStream, TimelineBuilder};
    pub use crate::ids::{AttrId, AttrType, SocialId};
    pub use crate::meter::{LatencyHistogram, VaultMetrics};
    #[cfg(unix)]
    pub use crate::mmap::MappedSnapshot;
    pub use crate::read::SanRead;
    pub use crate::san::San;
    pub use crate::shard::{CsrShard, ShardedCsrSan};
    pub use crate::store::{SnapshotVault, StoreError};
    pub use crate::view::{AlignedBytes, CsrSanView};
    pub use crate::wire::{WireReader, WireTruncated, WireWriter};
}
