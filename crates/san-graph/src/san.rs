//! The core [`San`] structure: a directed social graph plus an undirected
//! bipartite user–attribute graph, with the neighbourhood queries of §2.1.

use crate::csr::CsrSan;
use crate::ids::{AttrId, AttrType, SocialId};
use crate::read::SanRead;
use std::collections::HashSet;

/// An in-memory Social-Attribute Network.
///
/// Storage is adjacency lists in insertion order:
///
/// * `out[u]` — social nodes `v` with a directed link `u → v`,
/// * `inc[v]` — social nodes `u` with a directed link `u → v` (the mirror of
///   `out`, maintained on every insertion; Google+ exposes both lists and the
///   crawler exploits that, §2.2),
/// * `node_attrs[u]` — attribute nodes linked to social node `u`,
/// * `attr_members[a]` — social nodes linked to attribute node `a`.
///
/// Self-loops and duplicate links are rejected by the mutation API; the
/// structure therefore always encodes a simple directed graph plus a simple
/// bipartite graph.
#[derive(Debug, Clone, Default)]
pub struct San {
    out: Vec<Vec<SocialId>>,
    inc: Vec<Vec<SocialId>>,
    node_attrs: Vec<Vec<AttrId>>,
    attr_members: Vec<Vec<SocialId>>,
    attr_types: Vec<AttrType>,
    num_social_links: usize,
    num_attr_links: usize,
}

impl San {
    /// Creates an empty SAN.
    pub fn new() -> Self {
        San::default()
    }

    /// Creates an empty SAN with capacity hints for the expected node counts.
    pub fn with_capacity(social: usize, attrs: usize) -> Self {
        San {
            out: Vec::with_capacity(social),
            inc: Vec::with_capacity(social),
            node_attrs: Vec::with_capacity(social),
            attr_members: Vec::with_capacity(attrs),
            attr_types: Vec::with_capacity(attrs),
            num_social_links: 0,
            num_attr_links: 0,
        }
    }

    // ------------------------------------------------------------------
    // Counts
    // ------------------------------------------------------------------

    /// Number of social nodes `|Vs|`.
    #[inline]
    pub fn num_social_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of attribute nodes `|Va|`.
    #[inline]
    pub fn num_attr_nodes(&self) -> usize {
        self.attr_members.len()
    }

    /// Number of directed social links `|Es|`.
    #[inline]
    pub fn num_social_links(&self) -> usize {
        self.num_social_links
    }

    /// Number of undirected attribute links `|Ea|`.
    #[inline]
    pub fn num_attr_links(&self) -> usize {
        self.num_attr_links
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Adds a social node and returns its id (ids are dense, in arrival
    /// order).
    pub fn add_social_node(&mut self) -> SocialId {
        let id = SocialId(self.out.len() as u32);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.node_attrs.push(Vec::new());
        id
    }

    /// Adds an attribute node of the given type and returns its id.
    pub fn add_attr_node(&mut self, ty: AttrType) -> AttrId {
        let id = AttrId(self.attr_members.len() as u32);
        self.attr_members.push(Vec::new());
        self.attr_types.push(ty);
        id
    }

    /// Adds the directed social link `src → dst`.
    ///
    /// Returns `false` (and leaves the SAN unchanged) for self-loops and
    /// duplicate links.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist.
    pub fn add_social_link(&mut self, src: SocialId, dst: SocialId) -> bool {
        assert!(src.index() < self.out.len(), "unknown source {src}");
        assert!(dst.index() < self.out.len(), "unknown destination {dst}");
        if src == dst || self.has_social_link(src, dst) {
            return false;
        }
        self.out[src.index()].push(dst);
        self.inc[dst.index()].push(src);
        self.num_social_links += 1;
        true
    }

    /// Adds the undirected attribute link `user — attr`.
    ///
    /// Returns `false` (and leaves the SAN unchanged) for duplicates.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist.
    pub fn add_attr_link(&mut self, user: SocialId, attr: AttrId) -> bool {
        assert!(user.index() < self.out.len(), "unknown user {user}");
        assert!(
            attr.index() < self.attr_members.len(),
            "unknown attr {attr}"
        );
        if self.has_attr_link(user, attr) {
            return false;
        }
        self.node_attrs[user.index()].push(attr);
        self.attr_members[attr.index()].push(user);
        self.num_attr_links += 1;
        true
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// True when the directed link `src → dst` exists.
    ///
    /// Scans the shorter of `out[src]` and `inc[dst]`.
    pub fn has_social_link(&self, src: SocialId, dst: SocialId) -> bool {
        let out = &self.out[src.index()];
        let inc = &self.inc[dst.index()];
        if out.len() <= inc.len() {
            out.contains(&dst)
        } else {
            inc.contains(&src)
        }
    }

    /// True when the attribute link `user — attr` exists.
    pub fn has_attr_link(&self, user: SocialId, attr: AttrId) -> bool {
        let ua = &self.node_attrs[user.index()];
        let am = &self.attr_members[attr.index()];
        if ua.len() <= am.len() {
            ua.contains(&attr)
        } else {
            am.contains(&user)
        }
    }

    /// `Γs,out(u)` — outgoing social neighbours, in insertion order.
    #[inline]
    pub fn out_neighbors(&self, u: SocialId) -> &[SocialId] {
        &self.out[u.index()]
    }

    /// `Γs,in(u)` — incoming social neighbours, in insertion order.
    #[inline]
    pub fn in_neighbors(&self, u: SocialId) -> &[SocialId] {
        &self.inc[u.index()]
    }

    /// `Γa(u)` — attribute neighbours of a social node.
    #[inline]
    pub fn attrs_of(&self, u: SocialId) -> &[AttrId] {
        &self.node_attrs[u.index()]
    }

    /// Social neighbours of an attribute node (its "members").
    #[inline]
    pub fn members_of(&self, a: AttrId) -> &[SocialId] {
        &self.attr_members[a.index()]
    }

    /// Type of an attribute node.
    #[inline]
    pub fn attr_type(&self, a: AttrId) -> AttrType {
        self.attr_types[a.index()]
    }

    /// `Γs(u)` — the undirected social neighbourhood of a social node
    /// (union of in- and out-neighbours), sorted and deduplicated.
    pub fn social_neighbors(&self, u: SocialId) -> Vec<SocialId> {
        let mut v: Vec<SocialId> = self.out[u.index()]
            .iter()
            .chain(self.inc[u.index()].iter())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Out-degree of a social node.
    #[inline]
    pub fn out_degree(&self, u: SocialId) -> usize {
        self.out[u.index()].len()
    }

    /// In-degree of a social node.
    #[inline]
    pub fn in_degree(&self, u: SocialId) -> usize {
        self.inc[u.index()].len()
    }

    /// Attribute degree of a social node (`|Γa(u)|`).
    #[inline]
    pub fn attr_degree(&self, u: SocialId) -> usize {
        self.node_attrs[u.index()].len()
    }

    /// Social degree of an attribute node (number of members).
    #[inline]
    pub fn social_degree_of_attr(&self, a: AttrId) -> usize {
        self.attr_members[a.index()].len()
    }

    /// Number of common attributes `a(u, v)` shared by two social nodes —
    /// the attribute-affinity term of the LAPA/PAPA attachment models (§5.1).
    pub fn common_attrs(&self, u: SocialId, v: SocialId) -> usize {
        let (small, large) = if self.attr_degree(u) <= self.attr_degree(v) {
            (&self.node_attrs[u.index()], &self.node_attrs[v.index()])
        } else {
            (&self.node_attrs[v.index()], &self.node_attrs[u.index()])
        };
        if large.len() <= 8 {
            // Tiny lists: quadratic scan beats hashing.
            return small.iter().filter(|a| large.contains(a)).count();
        }
        let set: HashSet<AttrId> = large.iter().copied().collect();
        small.iter().filter(|a| set.contains(a)).count()
    }

    /// Number of common *undirected* social neighbours of two social nodes
    /// (used by the fine-grained reciprocity analysis, §4.2).
    pub fn common_social_neighbors(&self, u: SocialId, v: SocialId) -> usize {
        let nu = self.social_neighbors(u);
        let nv = self.social_neighbors(v);
        let (small, large) = if nu.len() <= nv.len() {
            (&nu, &nv)
        } else {
            (&nv, &nu)
        };
        let set: HashSet<SocialId> = large.iter().copied().collect();
        small
            .iter()
            .filter(|w| **w != u && **w != v && set.contains(w))
            .count()
    }

    // ------------------------------------------------------------------
    // Iteration
    // ------------------------------------------------------------------

    /// Iterates over all social node ids.
    pub fn social_nodes(&self) -> impl Iterator<Item = SocialId> + '_ {
        (0..self.out.len() as u32).map(SocialId)
    }

    /// Iterates over all attribute node ids.
    pub fn attr_nodes(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attr_members.len() as u32).map(AttrId)
    }

    /// Iterates over all directed social links `(src, dst)`.
    pub fn social_links(&self) -> impl Iterator<Item = (SocialId, SocialId)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, outs)| outs.iter().map(move |&v| (SocialId(u as u32), v)))
    }

    /// Iterates over all attribute links `(user, attr)`.
    pub fn attr_links(&self) -> impl Iterator<Item = (SocialId, AttrId)> + '_ {
        self.node_attrs
            .iter()
            .enumerate()
            .flat_map(|(u, attrs)| attrs.iter().map(move |&a| (SocialId(u as u32), a)))
    }

    // ------------------------------------------------------------------
    // Freezing
    // ------------------------------------------------------------------

    /// Freezes the current state into an immutable [`CsrSan`] snapshot:
    /// sorted, contiguous neighbour rows (binary-search membership,
    /// cache-friendly iteration) that are `Send + Sync` for parallel
    /// metric sweeps. The `San` itself is left untouched.
    pub fn freeze(&self) -> CsrSan {
        CsrSan::from_read(self)
    }

    // ------------------------------------------------------------------
    // Internal consistency (used by property tests and debug assertions)
    // ------------------------------------------------------------------

    /// Exhaustively checks the adjacency mirrors and link counters.
    /// Intended for tests; cost is O(V + E).
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.out.len() != self.inc.len() || self.out.len() != self.node_attrs.len() {
            return Err("social arrays out of sync".into());
        }
        if self.attr_members.len() != self.attr_types.len() {
            return Err("attribute arrays out of sync".into());
        }
        let mut n_social = 0;
        for (u, outs) in self.out.iter().enumerate() {
            let u_id = SocialId(u as u32);
            for &v in outs {
                n_social += 1;
                if v.index() >= self.out.len() {
                    return Err(format!("dangling social link {u_id}->{v}"));
                }
                if v == u_id {
                    return Err(format!("self-loop at {u_id}"));
                }
                if !self.inc[v.index()].contains(&u_id) {
                    return Err(format!("missing mirror of {u_id}->{v}"));
                }
            }
            let mut seen = outs.clone();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            if seen.len() != before {
                return Err(format!("duplicate out-links at {u_id}"));
            }
        }
        if n_social != self.num_social_links {
            return Err(format!(
                "social link count {} != stored {}",
                n_social, self.num_social_links
            ));
        }
        let inc_total: usize = self.inc.iter().map(Vec::len).sum();
        if inc_total != self.num_social_links {
            return Err("incoming mirror count mismatch".into());
        }
        let mut n_attr = 0;
        for (u, attrs) in self.node_attrs.iter().enumerate() {
            let u_id = SocialId(u as u32);
            for &a in attrs {
                n_attr += 1;
                if a.index() >= self.attr_members.len() {
                    return Err(format!("dangling attr link {u_id}-{a}"));
                }
                if !self.attr_members[a.index()].contains(&u_id) {
                    return Err(format!("missing mirror of attr link {u_id}-{a}"));
                }
            }
        }
        if n_attr != self.num_attr_links {
            return Err(format!(
                "attr link count {} != stored {}",
                n_attr, self.num_attr_links
            ));
        }
        let member_total: usize = self.attr_members.iter().map(Vec::len).sum();
        if member_total != self.num_attr_links {
            return Err("attribute member mirror count mismatch".into());
        }
        Ok(())
    }
}

/// The read-only view of a `San` is its inherent API verbatim; every
/// method delegates, so generic analytics over [`SanRead`] and concrete
/// callers observe identical results.
impl SanRead for San {
    #[inline]
    fn num_social_nodes(&self) -> usize {
        San::num_social_nodes(self)
    }

    #[inline]
    fn num_attr_nodes(&self) -> usize {
        San::num_attr_nodes(self)
    }

    #[inline]
    fn num_social_links(&self) -> usize {
        San::num_social_links(self)
    }

    #[inline]
    fn num_attr_links(&self) -> usize {
        San::num_attr_links(self)
    }

    #[inline]
    fn out_neighbors(&self, u: SocialId) -> &[SocialId] {
        San::out_neighbors(self, u)
    }

    #[inline]
    fn in_neighbors(&self, u: SocialId) -> &[SocialId] {
        San::in_neighbors(self, u)
    }

    #[inline]
    fn attrs_of(&self, u: SocialId) -> &[AttrId] {
        San::attrs_of(self, u)
    }

    #[inline]
    fn members_of(&self, a: AttrId) -> &[SocialId] {
        San::members_of(self, a)
    }

    #[inline]
    fn attr_type(&self, a: AttrId) -> AttrType {
        San::attr_type(self, a)
    }

    fn has_social_link(&self, src: SocialId, dst: SocialId) -> bool {
        San::has_social_link(self, src, dst)
    }

    fn has_attr_link(&self, user: SocialId, attr: AttrId) -> bool {
        San::has_attr_link(self, user, attr)
    }

    fn social_neighbors(&self, u: SocialId) -> std::borrow::Cow<'_, [SocialId]> {
        std::borrow::Cow::Owned(San::social_neighbors(self, u))
    }

    fn common_attrs(&self, u: SocialId, v: SocialId) -> usize {
        San::common_attrs(self, u, v)
    }

    fn common_social_neighbors(&self, u: SocialId, v: SocialId) -> usize {
        San::common_social_neighbors(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (San, Vec<SocialId>, Vec<AttrId>) {
        let mut san = San::new();
        let users: Vec<SocialId> = (0..4).map(|_| san.add_social_node()).collect();
        let attrs = vec![
            san.add_attr_node(AttrType::Employer),
            san.add_attr_node(AttrType::City),
        ];
        san.add_social_link(users[0], users[1]);
        san.add_social_link(users[1], users[0]);
        san.add_social_link(users[0], users[2]);
        san.add_attr_link(users[0], attrs[0]);
        san.add_attr_link(users[1], attrs[0]);
        san.add_attr_link(users[1], attrs[1]);
        (san, users, attrs)
    }

    #[test]
    fn counts_track_insertions() {
        let (san, _, _) = tiny();
        assert_eq!(san.num_social_nodes(), 4);
        assert_eq!(san.num_attr_nodes(), 2);
        assert_eq!(san.num_social_links(), 3);
        assert_eq!(san.num_attr_links(), 3);
        san.check_consistency().unwrap();
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let (mut san, users, attrs) = tiny();
        assert!(!san.add_social_link(users[0], users[0]));
        assert!(!san.add_social_link(users[0], users[1]));
        assert!(!san.add_attr_link(users[0], attrs[0]));
        assert_eq!(san.num_social_links(), 3);
        assert_eq!(san.num_attr_links(), 3);
        san.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "unknown destination")]
    fn link_to_unknown_node_panics() {
        let mut san = San::new();
        let u = san.add_social_node();
        san.add_social_link(u, SocialId(99));
    }

    #[test]
    fn directed_link_queries() {
        let (san, users, _) = tiny();
        assert!(san.has_social_link(users[0], users[1]));
        assert!(san.has_social_link(users[1], users[0]));
        assert!(san.has_social_link(users[0], users[2]));
        assert!(!san.has_social_link(users[2], users[0]));
        assert!(!san.has_social_link(users[2], users[3]));
    }

    #[test]
    fn degrees() {
        let (san, users, attrs) = tiny();
        assert_eq!(san.out_degree(users[0]), 2);
        assert_eq!(san.in_degree(users[0]), 1);
        assert_eq!(san.out_degree(users[3]), 0);
        assert_eq!(san.attr_degree(users[1]), 2);
        assert_eq!(san.social_degree_of_attr(attrs[0]), 2);
        assert_eq!(san.social_degree_of_attr(attrs[1]), 1);
    }

    #[test]
    fn social_neighbors_union_dedup() {
        let (san, users, _) = tiny();
        // users[0]: out {1,2}, in {1} -> union {1,2}
        let n = san.social_neighbors(users[0]);
        assert_eq!(n, vec![users[1], users[2]]);
        assert!(san.social_neighbors(users[3]).is_empty());
    }

    #[test]
    fn common_attrs_counts_intersection() {
        let (mut san, users, attrs) = tiny();
        assert_eq!(san.common_attrs(users[0], users[1]), 1);
        assert_eq!(san.common_attrs(users[0], users[2]), 0);
        san.add_attr_link(users[2], attrs[0]);
        san.add_attr_link(users[2], attrs[1]);
        assert_eq!(san.common_attrs(users[1], users[2]), 2);
        // Symmetry.
        assert_eq!(
            san.common_attrs(users[1], users[2]),
            san.common_attrs(users[2], users[1])
        );
    }

    #[test]
    fn common_social_neighbors_excludes_endpoints() {
        let mut san = San::new();
        let u: Vec<SocialId> = (0..5).map(|_| san.add_social_node()).collect();
        // u0 and u1 both link to u2 and u3; u0 links to u1 directly.
        san.add_social_link(u[0], u[2]);
        san.add_social_link(u[0], u[3]);
        san.add_social_link(u[1], u[2]);
        san.add_social_link(u[3], u[1]);
        san.add_social_link(u[0], u[1]);
        assert_eq!(san.common_social_neighbors(u[0], u[1]), 2);
        // The direct u0-u1 link must not be counted as a common neighbour.
        assert_eq!(san.common_social_neighbors(u[0], u[4]), 0);
    }

    #[test]
    fn link_iterators_cover_everything() {
        let (san, _, _) = tiny();
        let social: Vec<_> = san.social_links().collect();
        assert_eq!(social.len(), 3);
        assert!(social.contains(&(SocialId(0), SocialId(1))));
        let attr: Vec<_> = san.attr_links().collect();
        assert_eq!(attr.len(), 3);
        assert!(attr.contains(&(SocialId(1), AttrId(1))));
    }

    #[test]
    fn attr_type_stored() {
        let (san, _, attrs) = tiny();
        assert_eq!(san.attr_type(attrs[0]), AttrType::Employer);
        assert_eq!(san.attr_type(attrs[1]), AttrType::City);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let san = San::with_capacity(100, 10);
        assert_eq!(san.num_social_nodes(), 0);
        assert_eq!(san.num_attr_nodes(), 0);
        san.check_consistency().unwrap();
    }
}
